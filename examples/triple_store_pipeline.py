"""Triple-store pipeline: persist, reload, query, preview.

Demonstrates the database-flavoured workflow the paper's setup implies
(dump -> database -> schema graph -> previews):

1. generate the architecture domain and save it to a TSV triple file;
2. reload it into the indexed triple store;
3. answer ad-hoc pattern queries against the store;
4. materialize the entity graph and discover a preview.

Run:  python examples/triple_store_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import discover_preview, render_preview
from repro.datasets import load_domain, save_domain
from repro.store import (
    entity_graph_from_store,
    load_tsv,
    select,
)


def main():
    graph = load_domain("architecture")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "architecture.tsv"
        rows = save_domain(graph, path)
        print(f"saved {rows} distinct triples to {path.name}")

        store = load_tsv(path)
        print(f"reloaded store: {store!r}\n")

        # Ad-hoc pattern query: which entities are ARCHITECTs?
        architects = select(store, [("?who", "a", "ARCHITECT")], ["?who"])
        print(f"{len(architects)} architects, e.g. {sorted(architects)[:3]}")

        # Join query: architects and the structures they designed.
        designed = select(
            store,
            [
                ("?who", "a", "ARCHITECT"),
                ("?who", "ARCHITECT|Structures Designed|STRUCTURE", "?what"),
            ],
            ["?who", "?what"],
        )
        print(f"{len(designed)} (architect, structure) pairs\n")

        # Materialize and preview.
        reloaded = entity_graph_from_store(store, name="architecture")
        result = discover_preview(reloaded, k=3, n=7, key_scorer="random_walk")
        print(f"preview score={result.score:.4g} ({result.algorithm}):\n")
        print(render_preview(result.preview, reloaded, sample_size=3))


if __name__ == "__main__":
    main()
