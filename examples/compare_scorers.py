"""Compare the four scoring-measure combinations against the gold standard.

For each of the paper's five gold domains, ranks candidate key attributes
with both key scorers (coverage, random walk), scores non-key attributes
with both non-key scorers (coverage, entropy), and reports P@6 / MRR
against the Freebase gold standard (Table 10) plus the YPS09 baseline —
a compact reproduction of the Sec. 6.1.2 accuracy experiments.

Run:  python examples/compare_scorers.py
"""

from repro.baselines import YPS09Summarizer
from repro.bench import format_table
from repro.datasets import (
    GOLD_DOMAINS,
    GOLD_STANDARD,
    gold_key_attributes,
    load_domain,
    load_schema,
)
from repro.eval import mean_reciprocal_rank, precision_at_k
from repro.scoring import ScoringContext


def key_ranking(schema, graph, scorer):
    context = ScoringContext(schema, graph, key_scorer=scorer)
    return [t for t, _ in context.ranked_key_types()]


def nonkey_mrr(schema, graph, scorer, domain):
    """MRR of the scorer against per-type gold attributes (Table 3 style)."""
    context = ScoringContext(
        schema, graph, key_scorer="coverage", nonkey_scorer=scorer
    )
    rankings, golds = [], []
    for key_type, gold_attrs in GOLD_STANDARD[domain].items():
        candidates = context.sorted_candidates(key_type)
        if len(candidates) < 5:  # the paper excludes thin types
            continue
        rankings.append([attr.name for attr, _score in candidates])
        golds.append(set(gold_attrs))
    return mean_reciprocal_rank(rankings, golds)


def main():
    rows = []
    for domain in GOLD_DOMAINS:
        graph = load_domain(domain)
        schema = load_schema(domain)
        gold = set(gold_key_attributes(domain))
        coverage = key_ranking(schema, graph, "coverage")
        walk = key_ranking(schema, graph, "random_walk")
        yps = YPS09Summarizer(graph, schema).ranked_types()
        rows.append(
            [
                domain,
                f"{precision_at_k(coverage, gold, 6):.2f}",
                f"{precision_at_k(walk, gold, 6):.2f}",
                f"{precision_at_k(yps, gold, 6):.2f}",
                f"{nonkey_mrr(schema, graph, 'coverage', domain):.2f}",
                f"{nonkey_mrr(schema, graph, 'entropy', domain):.2f}",
            ]
        )
    print(
        format_table(
            [
                "domain",
                "P@6 coverage",
                "P@6 random-walk",
                "P@6 YPS09",
                "MRR coverage",
                "MRR entropy",
            ],
            rows,
            title="key/non-key scoring accuracy vs. the Freebase gold standard",
        )
    )
    print(
        "\nShape check (paper Sec. 6.1.2): coverage and random-walk beat "
        "YPS09 in most domains; MRR above 0.5 in most domains."
    )


if __name__ == "__main__":
    main()
