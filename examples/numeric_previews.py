"""Numeric attributes in previews (the paper's future work #3).

The paper strips numeric values from Freebase and defers incorporating
them into preview tables.  This example attaches runtime/budget literals
to the Fig. 1 film graph, discovers the usual preview, and augments each
table with its best-covered numeric attributes rendered as summary
statistics.

Run:  python examples/numeric_previews.py
"""

from quickstart import build_film_excerpt

from repro import discover_preview, render_preview
from repro.ext import NumericAttributeStore, augment_preview, render_numeric_summary


def main():
    graph = build_film_excerpt()
    store = NumericAttributeStore(graph)
    store.add("Men in Black", "Runtime (min)", 98)
    store.add("Men in Black II", "Runtime (min)", 88)
    store.add("Hancock", "Runtime (min)", 92)
    store.add("I, Robot", "Runtime (min)", 115)
    store.add("Men in Black", "Box Office ($M)", 589.4)
    store.add("Men in Black II", "Box Office ($M)", 441.8)
    store.add("I, Robot", "Box Office ($M)", 353.1)
    store.add("Will Smith", "Films Count", 4)
    store.add("Tommy Lee Jones", "Films Count", 2)

    result = discover_preview(graph, k=2, n=6)
    print(render_preview(result.preview, graph, sample_size=2))
    print()
    for augmented in augment_preview(result.preview, store, per_table_budget=2):
        print(render_numeric_summary(augmented))
        print()


if __name__ == "__main__":
    main()
