"""Cached parameter sweeps with the PreviewEngine.

Sizing a preview means exploring the ``(k, n, d)`` space — the paper's
Fig. 9 grids.  The naive way re-runs full discovery per point; the
engine computes the Apriori compatibility cliques and per-subset
allocation profiles once per ``(k, d, mode)`` group, answers every ``n``
from cached prefix scores, and memoizes results so a repeated sweep is
free.  This example runs the same grid both ways on a built-in domain,
checks the results agree, and prints the timings and cache counters.

Run:  PYTHONPATH=src python examples/engine_sweep.py
"""

import time

from repro import PreviewEngine, PreviewQuery, discover_preview, make_context
from repro.datasets import load_domain


def main():
    graph = load_domain("architecture", scale=1000, seed=0)
    # One scoring context shared by both loops, so the comparison isolates
    # what the engine adds on top of score precomputation.
    context = make_context(graph)
    engine = PreviewEngine(context)

    grid = list(
        PreviewQuery.grid(
            ks=(2, 3, 4),
            ns=range(6, 15, 2),
            distances=[(2, "tight"), (3, "diverse")],
        )
    )
    print(f"grid: {len(grid)} (k, n, d) points on the architecture domain\n")

    start = time.perf_counter()
    naive = []
    for q in grid:
        naive.append(
            discover_preview(context, k=q.k, n=q.n, d=q.d, mode=q.mode)
        )
    naive_ms = (time.perf_counter() - start) * 1000

    start = time.perf_counter()
    swept = engine.sweep(grid)
    engine_ms = (time.perf_counter() - start) * 1000

    assert all(
        a.preview == b.preview and a.score == b.score
        for a, b in zip(naive, swept)
    ), "engine sweep must match per-call discovery exactly"

    for q, result in zip(grid[:5], swept[:5]):
        print(f"  {q.describe():<24} score={result.score:10.1f}  {result.preview}")
    print(f"  ... {len(grid) - 5} more points\n")

    print(f"naive per-call loop : {naive_ms:8.1f} ms")
    print(f"engine sweep        : {engine_ms:8.1f} ms "
          f"({naive_ms / engine_ms:.1f}x faster)")

    # A repeated sweep is answered entirely from the memo cache.
    start = time.perf_counter()
    engine.sweep(grid)
    cached_ms = (time.perf_counter() - start) * 1000
    info = engine.cache_info()
    print(f"repeat sweep (warm) : {cached_ms:8.1f} ms "
          f"({info['hits']} hits, {info['misses']} misses)")


if __name__ == "__main__":
    main()
