"""Quickstart: build a tiny entity graph and generate its preview.

Recreates the paper's running example (Fig. 1: a film-domain excerpt) and
discovers the 2-table preview of Fig. 2.

Run:  python examples/quickstart.py
"""

from repro import EntityGraphBuilder, discover_preview, render_preview


def build_film_excerpt():
    """The entity graph of the paper's Fig. 1."""
    b = EntityGraphBuilder("film-excerpt")
    for film in ("Men in Black", "Men in Black II", "Hancock", "I, Robot"):
        b.entity(film, "FILM")
    b.entity("Will Smith", "FILM ACTOR", "FILM PRODUCER")
    b.entity("Tommy Lee Jones", "FILM ACTOR")
    b.entity("Barry Sonnenfeld", "FILM DIRECTOR")
    b.entity("Peter Berg", "FILM DIRECTOR")
    b.entity("Alex Proyas", "FILM DIRECTOR")
    b.entity("Action Film", "FILM GENRE")
    b.entity("Science Fiction", "FILM GENRE")
    b.entity("Saturn Award", "AWARD")
    b.entity("Academy Award", "AWARD")

    for film in ("Men in Black", "Men in Black II", "Hancock", "I, Robot"):
        b.relate("Will Smith", "Actor", film, source_type="FILM ACTOR")
    b.relate("Will Smith", "Executive Producer", "I, Robot",
             source_type="FILM PRODUCER")
    b.relate("Tommy Lee Jones", "Actor", "Men in Black", source_type="FILM ACTOR")
    b.relate("Tommy Lee Jones", "Actor", "Men in Black II", source_type="FILM ACTOR")
    b.relate("Barry Sonnenfeld", "Director", "Men in Black")
    b.relate("Barry Sonnenfeld", "Director", "Men in Black II")
    b.relate("Peter Berg", "Director", "Hancock")
    b.relate("Alex Proyas", "Director", "I, Robot")
    b.relate("Men in Black", "Genres", "Action Film")
    b.relate("Men in Black", "Genres", "Science Fiction")
    b.relate("Men in Black II", "Genres", "Action Film")
    b.relate("Men in Black II", "Genres", "Science Fiction")
    b.relate("I, Robot", "Genres", "Action Film")
    b.relate("Will Smith", "Award Winners", "Saturn Award", source_type="FILM ACTOR")
    b.relate("Tommy Lee Jones", "Award Winners", "Academy Award",
             source_type="FILM ACTOR")
    return b.build()


def main():
    graph = build_film_excerpt()
    print(f"entity graph: {graph.stats()}\n")

    # The paper's example: an optimal concise preview with k=2 tables and
    # n=6 non-key attributes under coverage/coverage scoring.
    result = discover_preview(graph, k=2, n=6)
    print(
        f"optimal preview (score={result.score:.0f}, "
        f"algorithm={result.algorithm}):\n"
    )
    print(render_preview(result.preview, graph, sample_size=None))


if __name__ == "__main__":
    main()
