"""Explore a Freebase-scale domain: concise vs. tight vs. diverse previews.

Loads the synthetic film domain (schema sized exactly like the paper's
Table 2: 63 entity types, 136 relationship types) and compares the three
preview flavours of Sec. 4 under the same size budget — reproducing the
qualitative behaviour of the paper's Tables 11/12: tight previews cluster
around the FILM hub, diverse previews cover far-apart concepts.

Run:  python examples/explore_film_domain.py
"""

from repro import discover_preview, render_preview
from repro.datasets import load_domain

K, N = 5, 10  # the size constraint used in the paper's Table 11/12 samples


def show(result, graph, title):
    print(f"== {title} ==")
    print(f"keys: {', '.join(result.preview.keys())}")
    print(f"score: {result.score:.4g}   algorithm: {result.algorithm}")
    schema_distance = []
    keys = result.preview.keys()
    from repro.model import SchemaGraph

    schema = SchemaGraph.from_entity_graph(graph)
    for i, a in enumerate(keys):
        for b in keys[i + 1:]:
            schema_distance.append(schema.distance(a, b))
    if schema_distance:
        print(
            f"pairwise key distances: min={min(schema_distance)} "
            f"max={max(schema_distance)}"
        )
    print(render_preview(result.preview, graph, sample_size=2))
    print()


def main():
    graph = load_domain("film")
    print(f"film domain: {graph.stats()}\n")

    concise = discover_preview(graph, k=K, n=N)
    show(concise, graph, f"concise preview (k={K}, n={N})")

    tight = discover_preview(graph, k=K, n=N, d=2, mode="tight")
    show(tight, graph, "tight preview (d=2): keys huddle around the FILM hub")

    diverse = discover_preview(graph, k=K, n=N, d=4, mode="diverse")
    show(diverse, graph, "diverse preview (d=4): keys cover far-apart concepts")


if __name__ == "__main__":
    main()
