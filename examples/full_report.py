"""Generate the one-shot reproduction report across gold domains.

Builds a Markdown report with scoring accuracy, crowd correlation and
user-study summaries per domain — the quick way to see the whole paper
reproduction at a glance (the precise per-table artifacts live under
``results/`` after running the benchmark suite).

Run:  python examples/full_report.py [domain ...]
"""

import sys

from repro.eval.report import full_report


def main():
    domains = sys.argv[1:] or ["film", "people"]
    print(full_report(domains))


if __name__ == "__main__":
    main()
