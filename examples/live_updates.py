"""Incremental maintenance: previews over a growing entity graph.

Sec. 5 of the paper notes schema graphs and scores can be maintained
incrementally while optimal previews cannot.  This example streams
relationship batches into an :class:`IncrementalEntityGraph`, shows the
coverage scores tracking the stream in O(1) per edge, and re-discovers
the preview after each batch — watching the preview flip as a new entity
type overtakes the old hub.

Run:  python examples/live_updates.py
"""

from repro.ext import IncrementalEntityGraph
from repro.model import RelationshipTypeId

REVIEWED = RelationshipTypeId("Reviewed", "USER", "PRODUCT")
BOUGHT = RelationshipTypeId("Bought", "USER", "PRODUCT")
TAGGED = RelationshipTypeId("Tagged", "PRODUCT", "TAG")


def main():
    graph = IncrementalEntityGraph(name="shop")
    for i in range(8):
        graph.add_entity(f"user{i}", ["USER"])
    for i in range(5):
        graph.add_entity(f"product{i}", ["PRODUCT"])
    for i in range(3):
        graph.add_entity(f"tag{i}", ["TAG"])

    batches = [
        # Batch 1: purchases dominate.
        [(f"user{i}", BOUGHT, f"product{i % 5}") for i in range(8)],
        # Batch 2: a review storm makes REVIEWED the top relationship.
        [(f"user{i % 8}", REVIEWED, f"product{(i * 3) % 5}") for i in range(20)],
        # Batch 3: heavy tagging shifts weight toward TAG.
        [(f"product{i % 5}", TAGGED, f"tag{i % 3}") for i in range(30)],
    ]

    for number, batch in enumerate(batches, start=1):
        for source, rel, target in batch:
            graph.add_relationship(source, target, rel)
        print(f"after batch {number} (generation {graph.generation}):")
        print(
            f"  coverage: USER={graph.key_coverage('USER')} "
            f"PRODUCT={graph.key_coverage('PRODUCT')} "
            f"TAG={graph.key_coverage('TAG')}"
        )
        print(
            f"  edges: bought={graph.nonkey_coverage(BOUGHT)} "
            f"reviewed={graph.nonkey_coverage(REVIEWED)} "
            f"tagged={graph.nonkey_coverage(TAGGED)}"
        )
        result = graph.discover(k=2, n=4)
        print(f"  preview: {result.preview}  (score={result.score:.0f})")
        assert graph.verify_against_rescan()
        print("  incremental aggregates verified against full rescan ✓\n")


if __name__ == "__main__":
    main()
