"""Profile a dataset before previewing it.

A data worker deciding whether to fetch a dataset first wants the cheap
statistics: sizes, skew, schema topology.  This example profiles built-in
domains, then uses the topology to pick sensible tight/diverse distance
constraints and generates both previews — the end-to-end "look before you
download" workflow the paper motivates.

Run:  python examples/dataset_profile.py [domain ...]
"""

import sys

from repro import discover_preview
from repro.analysis import profile_dataset, profile_report
from repro.datasets import load_domain, load_schema
from repro.ext import suggest_diverse_distance, suggest_size, suggest_tight_distance


def main():
    domains = sys.argv[1:] or ["architecture", "film"]
    for domain in domains:
        graph = load_domain(domain)
        schema = load_schema(domain)
        print(profile_report(profile_dataset(graph)))

        suggestion = suggest_size(schema, display_rows=30, display_cols=8)
        tight_d = suggest_tight_distance(schema)
        diverse_d = suggest_diverse_distance(schema)
        print(
            f"  suggested: k={suggestion.k} n={suggestion.n} "
            f"tight d={tight_d} diverse d={diverse_d}"
        )
        tight = discover_preview(
            graph, k=suggestion.k, n=suggestion.n, d=tight_d, mode="tight"
        )
        diverse = discover_preview(
            graph, k=suggestion.k, n=suggestion.n, d=diverse_d, mode="diverse"
        )
        print(f"  tight preview keys:   {', '.join(tight.preview.keys())}")
        print(f"  diverse preview keys: {', '.join(diverse.preview.keys())}")
        print()


if __name__ == "__main__":
    main()
