"""Shared fixtures: the paper's Fig. 1 entity graph and small datasets."""

from __future__ import annotations

import pytest

from repro.model import EntityGraph, EntityGraphBuilder, SchemaGraph
from repro.scoring import ScoringContext


def build_fig1_graph() -> EntityGraph:
    """The running example of the paper (Fig. 1).

    4 FILM entities, 2 FILM ACTOR (Will Smith also FILM PRODUCER),
    3 FILM DIRECTOR, 2 FILM GENRE, 2 AWARD entities; 18 relationships.
    """
    b = EntityGraphBuilder("fig1")
    for film in ("Men in Black", "Men in Black II", "Hancock", "I, Robot"):
        b.entity(film, "FILM")
    b.entity("Will Smith", "FILM ACTOR", "FILM PRODUCER")
    b.entity("Tommy Lee Jones", "FILM ACTOR")
    b.entity("Barry Sonnenfeld", "FILM DIRECTOR")
    b.entity("Peter Berg", "FILM DIRECTOR")
    b.entity("Alex Proyas", "FILM DIRECTOR")
    b.entity("Action Film", "FILM GENRE")
    b.entity("Science Fiction", "FILM GENRE")
    b.entity("Saturn Award", "AWARD")
    b.entity("Academy Award", "AWARD")

    for film in ("Men in Black", "Men in Black II", "Hancock", "I, Robot"):
        b.relate("Will Smith", "Actor", film, source_type="FILM ACTOR")
    b.relate("Will Smith", "Executive Producer", "I, Robot", source_type="FILM PRODUCER")
    b.relate("Tommy Lee Jones", "Actor", "Men in Black", source_type="FILM ACTOR")
    b.relate("Tommy Lee Jones", "Actor", "Men in Black II", source_type="FILM ACTOR")
    b.relate("Barry Sonnenfeld", "Director", "Men in Black")
    b.relate("Barry Sonnenfeld", "Director", "Men in Black II")
    b.relate("Peter Berg", "Director", "Hancock")
    b.relate("Alex Proyas", "Director", "I, Robot")
    b.relate("Men in Black", "Genres", "Action Film")
    b.relate("Men in Black", "Genres", "Science Fiction")
    b.relate("Men in Black II", "Genres", "Action Film")
    b.relate("Men in Black II", "Genres", "Science Fiction")
    b.relate("I, Robot", "Genres", "Action Film")
    b.relate("Will Smith", "Award Winners", "Saturn Award", source_type="FILM ACTOR")
    b.relate(
        "Tommy Lee Jones", "Award Winners", "Academy Award", source_type="FILM ACTOR"
    )
    return b.build()


@pytest.fixture(scope="session")
def fig1_graph() -> EntityGraph:
    return build_fig1_graph()


@pytest.fixture(scope="session")
def fig1_schema(fig1_graph) -> SchemaGraph:
    return SchemaGraph.from_entity_graph(fig1_graph)


@pytest.fixture(scope="session")
def fig1_context(fig1_graph, fig1_schema) -> ScoringContext:
    """Coverage/coverage scoring context over the Fig. 1 graph."""
    return ScoringContext(
        fig1_schema, fig1_graph, key_scorer="coverage", nonkey_scorer="coverage"
    )


@pytest.fixture(scope="session")
def tiny_domain():
    """A small cached Freebase-like domain for integration tests."""
    from repro.datasets import load_domain

    return load_domain("architecture", scale=1000, seed=0)


@pytest.fixture(scope="session")
def tiny_schema(tiny_domain):
    return SchemaGraph.from_entity_graph(tiny_domain)
