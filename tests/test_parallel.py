"""Parallel sharded execution: parallel == serial, bit for bit.

The CI matrix runs this module a second time with ``REPRO_TEST_JOBS=2``
exported, so every parallel==serial property here is exercised both
inline (degenerate single-shard paths) and across a real process pool.
"""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import apriori_discover, brute_force_discover
from repro.core.candidates import (
    best_preview_for_keys,
    build_allocation_profile,
    sharded_best_preview,
)
from repro.core.constraints import DistanceConstraint, SizeConstraint
from repro.datasets import random_schema_graph
from repro.engine import PreviewEngine, PreviewQuery
from repro.exceptions import DiscoveryError, InfeasiblePreviewError
from repro.parallel import ScoringSnapshot, ShardedExecutor, resolve_jobs
from repro.scoring import ScoringContext
from repro import config, plan

#: Worker count used by the equivalence tests (the CI "jobs=2 leg" sets
#: REPRO_TEST_JOBS=2 explicitly; any value >= 2 exercises real shards).
JOBS = config.test_jobs()

SMALL = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

schema_params = st.tuples(
    st.integers(min_value=3, max_value=8),  # types
    st.integers(min_value=3, max_value=12),  # rel types
    st.integers(min_value=0, max_value=10_000),  # seed
)


def context_for(params) -> ScoringContext:
    num_types, num_rels, seed = params
    schema = random_schema_graph(
        num_types, max(num_rels, num_types - 1), seed=seed
    )
    return ScoringContext(schema)


class TestResolveJobs:
    def test_passthrough_and_zero(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1  # 0 = all usable cores

    def test_negative_rejected(self):
        with pytest.raises(DiscoveryError, match="non-negative"):
            resolve_jobs(-1)


class TestShardedExecutor:
    def test_tie_break_is_lowest_subset_index(self):
        """Equal scores must resolve to the first subset, as serially."""
        snapshot = ScoringSnapshot(
            index={"A": 0, "B": 1, "C": 2},
            weighted=((5.0, 1.0), (5.0, 1.0), (5.0, 1.0)),
        )
        subsets = [("A",), ("B",), ("C",)]
        with ShardedExecutor(JOBS) as executor:
            best = executor.best_allocation(snapshot, subsets, extra_cap=1)
        assert best == (6.0, 0)

    def test_all_infeasible_returns_none(self):
        snapshot = ScoringSnapshot(index={"A": 0, "B": 1}, weighted=((), ()))
        with ShardedExecutor(JOBS) as executor:
            assert executor.best_allocation(snapshot, [("A",), ("B",)], 1) is None
            assert executor.best_allocation(snapshot, [], 1) is None

    def test_profiles_match_serial_build(self, fig1_context):
        pool = fig1_context.candidate_pool()
        snapshot = ScoringSnapshot.from_pool(pool)
        subsets = [(t,) for t in pool.eligible] + [pool.eligible[:2]]
        with ShardedExecutor(JOBS) as executor:
            payloads = executor.build_profiles(snapshot, subsets, cap=2)
        assert len(payloads) == len(subsets)
        for keys, payload in zip(subsets, payloads):
            serial = build_allocation_profile(pool, keys, cap=2)
            assert payload is not None and serial is not None
            picks, cum, cap = payload
            assert picks == serial.picks
            assert cum == serial.cum  # float-exact, not approximate
            assert cap == serial.cap

    def test_duplicate_key_subsets_are_infeasible_not_winning(
        self, fig1_context
    ):
        """A duplicate-keys subset must lose like it does serially.

        ``best_preview_for_keys`` rejects duplicates, so a worker must
        not let one win the reduction on its double-counted score (the
        shipped callers never produce duplicates, but the helper's
        contract should hold for any subset list).
        """
        pool = fig1_context.candidate_pool()
        strongest = max(
            pool.eligible, key=lambda t: pool.top_m_score(t, 2)
        )
        other = next(t for t in pool.eligible if t != strongest)
        size = SizeConstraint(k=2, n=4)
        result = sharded_best_preview(
            fig1_context,
            size,
            [(strongest, strongest), (strongest, other)],
            jobs=JOBS,
        )
        assert result == best_preview_for_keys(
            fig1_context, (strongest, other), size
        )

    def test_executor_reuse_across_calls(self, fig1_context):
        """One executor may serve many calls (the engine sweep pattern)."""
        size = SizeConstraint(k=2, n=5)
        with ShardedExecutor(JOBS) as executor:
            for distance in (None, DistanceConstraint.tight(1)):
                serial = brute_force_discover(fig1_context, size, distance)
                shared = brute_force_discover(
                    fig1_context, size, distance, executor=executor
                )
                assert serial == shared
            serial = apriori_discover(
                fig1_context, size, DistanceConstraint.tight(2)
            )
            shared = apriori_discover(
                fig1_context,
                size,
                DistanceConstraint.tight(2),
                executor=executor,
            )
            assert serial == shared

class TestShardBoundaries:
    """Shard-boundary edge cases: empty input, 1-subset shards, n < jobs."""

    def test_payloads_of_empty_subsets_is_total(self):
        """Sharding zero subsets yields zero shards, not a ZeroDivisionError."""
        snapshot = ScoringSnapshot(index={"A": 0}, weighted=((1.0,),))
        executor = ShardedExecutor(JOBS)
        assert executor._payloads(snapshot, [], cap=1) == []
        assert executor.best_allocation(snapshot, [], 1) is None
        assert executor.build_profiles(snapshot, [], cap=1) == []

    @pytest.mark.parametrize("mode", ["static", "auto"])
    @pytest.mark.parametrize("subset_count", [1, 2, 3, 5, 9])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_no_shard_is_ever_empty(self, subset_count, jobs, mode):
        """Every shard carries >= 1 subset and they tile the input.

        Static mode keeps the PR 6 tiling (min(jobs, n) shards); auto
        may oversubscribe up to 2x jobs, but never past the subset
        count and never with an empty shard.
        """
        snapshot = ScoringSnapshot(index={"A": 0}, weighted=((1.0,),))
        subsets = [(f"T{i}",) for i in range(subset_count)]
        with plan.use_mode(mode):
            payloads = ShardedExecutor(jobs)._payloads(
                snapshot, subsets, cap=1
            )
        floor = min(jobs, subset_count)
        ceiling = (
            floor if mode == "static" else min(2 * jobs, subset_count)
        )
        assert floor <= len(payloads) <= ceiling
        rebuilt = []
        expected_start = 0
        for _, start, shard, _, _backend in payloads:
            assert shard, "empty shard"
            assert start == expected_start  # contiguous, in order
            expected_start += len(shard)
            rebuilt.extend(shard)
        assert rebuilt == subsets

    def test_single_subset_runs_inline_without_a_pool(self):
        """One subset = one shard: answered inline, no worker pool spun."""
        snapshot = ScoringSnapshot(
            index={"A": 0, "B": 1}, weighted=((5.0, 2.0), (4.0,))
        )
        with ShardedExecutor(JOBS) as executor:
            best = executor.best_allocation(snapshot, [("A",)], extra_cap=1)
            assert best == (7.0, 0)
            payloads = executor.build_profiles(snapshot, [("A", "B")], cap=2)
            assert len(payloads) == 1 and payloads[0] is not None
            assert executor._pool is None, "degenerate shard spun up a pool"

    def test_fewer_subsets_than_jobs_matches_serial(self, fig1_context):
        """n < jobs must shard to n workers and stay bit-identical."""
        pool = fig1_context.candidate_pool()
        snapshot = ScoringSnapshot.from_pool(pool)
        subsets = [(t,) for t in pool.eligible[:2]]
        with ShardedExecutor(4) as executor:
            payloads = executor.build_profiles(snapshot, subsets, cap=3)
        assert len(payloads) == len(subsets)
        for keys, payload in zip(subsets, payloads):
            serial = build_allocation_profile(pool, keys, cap=3)
            assert payload == (serial.picks, serial.cum, serial.cap)

    def test_one_shard_all_infeasible_other_feasible(self):
        """A shard whose every subset is infeasible reduces to the other's."""
        snapshot = ScoringSnapshot(
            index={"A": 0, "B": 1}, weighted=((), (3.0,))
        )
        with ShardedExecutor(2) as executor:
            # Shard 1 = [("A",)] (empty Γ: infeasible), shard 2 = [("B",)].
            best = executor.best_allocation(snapshot, [("A",), ("B",)], 1)
        assert best == (3.0, 1)


class TestSnapshot:
    def test_snapshot_ships_no_graph_objects(self, fig1_context):
        snapshot = ScoringSnapshot.from_pool(fig1_context.candidate_pool())
        assert all(isinstance(key, str) for key in snapshot.index)
        for row in snapshot.weighted:
            assert all(isinstance(score, float) for score in row)
        assert snapshot.attrs is snapshot.weighted


class TestAlgorithmEquivalence:
    @SMALL
    @given(schema_params, st.integers(2, 3), st.integers(1, 3), st.booleans())
    def test_apriori_parallel_matches_serial(self, params, k, d, tight):
        context = context_for(params)
        k = min(k, params[0])
        size = SizeConstraint(k=k, n=k + 3)
        constraint = (
            DistanceConstraint.tight(d) if tight else DistanceConstraint.diverse(d)
        )
        serial = apriori_discover(context, size, constraint)
        parallel = apriori_discover(context, size, constraint, jobs=JOBS)
        assert serial == parallel  # dataclass equality: bit-identical floats

    @SMALL
    @given(schema_params, st.integers(2, 3), st.integers(0, 3))
    def test_brute_force_parallel_matches_serial(self, params, k, d):
        context = context_for(params)
        k = min(k, params[0])
        size = SizeConstraint(k=k, n=k + 3)
        constraint = DistanceConstraint.tight(d) if d else None
        serial = brute_force_discover(context, size, constraint)
        parallel = brute_force_discover(context, size, constraint, jobs=JOBS)
        assert serial == parallel

    @SMALL
    @given(schema_params, st.integers(2, 3), st.integers(1, 3))
    def test_engine_parallel_matches_serial_all_four_algorithms(
        self, params, k, d
    ):
        """Every registered algorithm answers identically at any jobs."""
        context = context_for(params)
        k = min(k, params[0])
        cases = [
            PreviewQuery(k=k, n=k + 3, algorithm="brute-force"),
            PreviewQuery(k=k, n=k + 3, algorithm="dynamic-programming"),
            PreviewQuery(k=k, n=k + 3, algorithm="branch-and-bound"),
            PreviewQuery(k=k, n=k + 3, d=d, mode="tight", algorithm="apriori"),
            PreviewQuery(k=k, n=k + 3, d=d, mode="diverse", algorithm="apriori"),
            PreviewQuery(k=k, n=k + 3, d=d, mode="tight", algorithm="brute-force"),
            PreviewQuery(
                k=k, n=k + 3, d=d, mode="diverse", algorithm="branch-and-bound"
            ),
        ]
        serial_engine = PreviewEngine(context)
        parallel_engine = PreviewEngine(context)
        for query in cases:
            try:
                serial = serial_engine.run(query)
            except InfeasiblePreviewError:
                serial = None
            try:
                parallel = parallel_engine.run(query, jobs=JOBS)
            except InfeasiblePreviewError:
                parallel = None
            assert serial == parallel, query

    @SMALL
    @given(schema_params, st.integers(1, 3))
    def test_engine_sweep_parallel_matches_serial(self, params, d):
        context = context_for(params)
        k = min(3, params[0])
        grid = list(
            PreviewQuery.grid(
                ks=(2, k),
                ns=(k + 1, k + 3, k + 5),
                distances=[None, (d, "tight"), (d, "diverse")],
            )
        )
        serial = PreviewEngine(context).sweep(grid, skip_infeasible=True)
        parallel = PreviewEngine(context).sweep(
            grid, skip_infeasible=True, jobs=JOBS
        )
        assert serial == parallel

    def test_engine_sweep_brute_force_points_share_the_batch_pool(
        self, fig1_context
    ):
        """Forced brute-force sweep points ride the batch executor."""
        grid = [
            PreviewQuery(k=2, n=n, algorithm="brute-force") for n in (4, 5, 6)
        ] + [
            PreviewQuery(k=2, n=n, d=1, mode="tight", algorithm="brute-force")
            for n in (4, 5)
        ]
        serial = PreviewEngine(fig1_context).sweep(grid, skip_infeasible=True)
        parallel = PreviewEngine(fig1_context).sweep(
            grid, skip_infeasible=True, jobs=JOBS
        )
        assert serial == parallel
        assert any(result is not None for result in serial)


class TestDeltaUnderShards:
    """Type-scoped invalidation must hold under a real worker pool too."""

    @SMALL
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_mutating_sweeps_match_serial_and_rescan(self, seed, d):
        """Interleave mutations with sharded sweeps: every batch must
        equal the serial answer on a fresh engine, and the incremental
        aggregates + delta-patched candidate pools must diff clean
        against a full rescan after every mutation."""
        from repro.core import make_context
        from repro.ext import IncrementalEntityGraph
        from repro.model import RelationshipTypeId

        acted = RelationshipTypeId("Acted In", "ACTOR", "FILM")
        directed = RelationshipTypeId("Directed", "DIRECTOR", "FILM")
        inc = IncrementalEntityGraph(name=f"shard-delta-{seed}")
        inc.add_entity("film0", ["FILM"])
        inc.add_entity("actor0", ["ACTOR"])
        inc.add_entity("director0", ["DIRECTOR"])
        inc.add_relationship("actor0", "film0", acted)
        inc.add_relationship("director0", "film0", directed)
        engine = inc.engine()
        grid = [
            PreviewQuery(k=2, n=n, d=d, mode="tight") for n in (3, 4, 5)
        ] + [PreviewQuery(k=2, n=4)]
        for batch in range(3):
            sharded = engine.sweep(grid, skip_infeasible=True, jobs=JOBS)
            fresh = PreviewEngine(make_context(inc.entity_graph)).sweep(
                grid, skip_infeasible=True
            )
            assert sharded == fresh, (seed, d, batch)
            # Mutate: the next batch must observe the delta exactly.
            inc.add_entity(f"film{batch + 1}", ["FILM"])
            inc.add_relationship(
                ("actor0", "director0")[batch % 2],
                f"film{batch + 1}",
                (acted, directed)[batch % 2],
            )
            assert inc.verify_against_rescan(), (seed, d, batch)


class TestSerialFallback:
    # The former subprocess guard (test_jobs_1_never_imports_multiprocessing)
    # is retired: lint rule REP101 (repro.lint.rules.OptionalImportConfinement)
    # proves statically that no module outside repro.parallel imports
    # multiprocessing at module top level, which is the property the
    # subprocess probe checked dynamically.  The numpy analogue in
    # tests/test_kernel.py is kept as the one end-to-end backstop.

    def test_jobs_zero_resolves_to_cpu_count(self, fig1_context):
        """jobs=0 must work end to end, whatever the machine size."""
        serial = apriori_discover(
            fig1_context, SizeConstraint(k=2, n=4), DistanceConstraint.tight(1)
        )
        auto = apriori_discover(
            fig1_context,
            SizeConstraint(k=2, n=4),
            DistanceConstraint.tight(1),
            jobs=0,
        )
        assert serial == auto


class TestCliJobs:
    def test_sweep_output_identical_at_any_jobs(self, capsys):
        args = [
            "--domain",
            "architecture",
            "-k",
            "2",
            "-n",
            "5",
            "--tight",
            "2",
            "--sweep-n",
            "4:6",
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--jobs", str(JOBS)]) == 0
        assert capsys.readouterr().out == serial_out

    def test_single_query_with_jobs(self, capsys):
        code = main(
            [
                "--domain",
                "basketball",
                "-k",
                "2",
                "-n",
                "4",
                "--tight",
                "2",
                "--jobs",
                "2",
            ]
        )
        assert code == 0
        assert "apriori" in capsys.readouterr().out

    def test_negative_jobs_errors_cleanly(self, capsys):
        code = main(
            [
                "--domain",
                "basketball",
                "-k",
                "2",
                "-n",
                "4",
                "--tight",
                "2",
                "--jobs",
                "-2",
            ]
        )
        assert code == 1
        assert "non-negative" in capsys.readouterr().err


class TestMappedSnapshot:
    """The zero-copy mmap snapshot transport (docs/disk-store.md)."""

    def test_pickles_to_bytes_not_megabytes(self, fig1_context):
        import pickle

        from repro.parallel import MappedScoringSnapshot

        pool = fig1_context.candidate_pool()
        plain = pickle.dumps(ScoringSnapshot.from_pool(pool))
        mapped_snapshot = MappedScoringSnapshot.from_pool(pool)
        try:
            mapped = pickle.dumps(mapped_snapshot)
            # The mapped payload is a path + lengths, independent of the
            # score volume; the plain payload carries every float.
            assert len(mapped) < len(plain)
        finally:
            mapped_snapshot.close()

    def test_rows_are_bit_identical_to_plain_snapshot(self, fig1_context):
        from repro.parallel import MappedScoringSnapshot

        pool = fig1_context.candidate_pool()
        plain = ScoringSnapshot.from_pool(pool)
        mapped = MappedScoringSnapshot.from_pool(pool)
        try:
            assert mapped.index == plain.index
            for mapped_row, plain_row in zip(mapped.weighted, plain.weighted):
                assert [score.hex() for score in mapped_row] == [
                    score.hex() for score in plain_row
                ]
            assert mapped.attrs is mapped.weighted
        finally:
            mapped.close()

    def test_allocation_profile_identical_over_mapped_rows(self, fig1_context):
        from repro.parallel import MappedScoringSnapshot

        pool = fig1_context.candidate_pool()
        keys = tuple(sorted(pool.index))[:3]
        reference = build_allocation_profile(pool, keys)
        mapped = MappedScoringSnapshot.from_pool(pool)
        try:
            profile = build_allocation_profile(mapped, keys)
            assert profile.picks == reference.picks
            assert [s.hex() for s in profile.cum] == [
                s.hex() for s in reference.cum
            ]
        finally:
            mapped.close()

    def test_pickle_round_trip_shares_the_file(self, fig1_context):
        import pickle

        from repro.parallel import MappedScoringSnapshot

        pool = fig1_context.candidate_pool()
        owner = MappedScoringSnapshot.from_pool(pool)
        try:
            clone = pickle.loads(pickle.dumps(owner))
            for owner_row, clone_row in zip(owner.weighted, clone.weighted):
                assert list(owner_row) == list(clone_row)
        finally:
            owner.close()

    def test_refresh_patches_in_place(self, fig1_context):
        from repro.parallel import MappedScoringSnapshot

        pool = fig1_context.candidate_pool()
        snapshot = MappedScoringSnapshot.from_pool(pool)
        try:
            dirty = next(iter(pool.index))
            refreshed = snapshot.refresh(pool, [dirty])
            # Same shape, same pool: identity (and the planner's one-time
            # cost measurement) survives the refresh.
            assert refreshed is snapshot
            i = pool.index[dirty]
            assert list(snapshot.weighted[i]) == list(pool.weighted[i])
            assert snapshot.refresh(pool, []) is snapshot
        finally:
            snapshot.close()

    def test_refresh_rebuilds_on_universe_change(self, fig1_context):
        from repro.parallel import MappedScoringSnapshot

        pool = fig1_context.candidate_pool()
        snapshot = MappedScoringSnapshot.from_pool(pool)
        try:
            rebuilt = snapshot.refresh(pool, ["NO SUCH TYPE"])
            assert rebuilt is not snapshot
            rebuilt.close()
        finally:
            snapshot.close()

    def test_transport_knob(self, fig1_context, monkeypatch):
        from repro.exceptions import ConfigError
        from repro.parallel import MappedScoringSnapshot, make_snapshot

        pool = fig1_context.candidate_pool()
        monkeypatch.setenv("REPRO_SNAPSHOT", "pickle")
        assert isinstance(make_snapshot(pool), ScoringSnapshot)
        monkeypatch.setenv("REPRO_SNAPSHOT", "mmap")
        snapshot = make_snapshot(pool)
        assert isinstance(snapshot, MappedScoringSnapshot)
        snapshot.close()
        monkeypatch.setenv("REPRO_SNAPSHOT", "bogus")
        with pytest.raises(ConfigError):
            make_snapshot(pool)

    def test_auto_falls_back_when_scratch_fails(self, fig1_context, monkeypatch):
        import tempfile as tempfile_module

        from repro.exceptions import ConfigError
        from repro.parallel import make_snapshot
        from repro.parallel import snapshot as snapshot_module

        def exploding_mkstemp(*args, **kwargs):
            raise OSError("no scratch space")

        monkeypatch.setattr(
            snapshot_module.tempfile, "mkstemp", exploding_mkstemp
        )
        assert tempfile_module.mkstemp is not exploding_mkstemp or True
        pool = fig1_context.candidate_pool()
        monkeypatch.setenv("REPRO_SNAPSHOT", "auto")
        assert isinstance(make_snapshot(pool), ScoringSnapshot)
        monkeypatch.setenv("REPRO_SNAPSHOT", "mmap")
        with pytest.raises(ConfigError, match="mmap"):
            make_snapshot(pool)

    @pytest.mark.parametrize("transport", ["pickle", "mmap"])
    def test_engine_results_identical_across_transports(
        self, fig1_graph, monkeypatch, transport
    ):
        """The transport moves bytes, never scores."""
        monkeypatch.setenv("REPRO_SNAPSHOT", "pickle")
        engine = PreviewEngine(fig1_graph)
        reference = engine.query(k=2, n=4, jobs=1)
        monkeypatch.setenv("REPRO_SNAPSHOT", transport)
        engine = PreviewEngine(fig1_graph)
        result = engine.query(k=2, n=4, jobs=JOBS)
        assert result.score.hex() == reference.score.hex()
        assert result.preview.keys() == reference.preview.keys()
