"""Replay every wire example in ``docs/serving.md`` verbatim.

The protocol reference documents a complete captured session; this test
re-runs it against a fresh service — each documented request is sent
byte-for-byte as its own frame, in document order, on one connection —
and asserts the service answers exactly the documented response.  If the
protocol, the serving counters or the film domain's deterministic
generation drift, this fails and the document must be re-captured.
"""

from __future__ import annotations

import json
import re
import socket
from pathlib import Path

import pytest

from repro import kernel, plan
from repro.datasets.freebase_like import generate_domain
from repro.serve import EngineHost, PreviewService, run_in_background

DOC = Path(__file__).resolve().parents[1] / "docs" / "serving.md"

#: The dataset fixture the document states its session was captured on.
DOC_DOMAIN, DOC_SCALE, DOC_SEED = "film", 1000, 0

BLOCK = re.compile(r"```json (request|response)\n(.*?)\n```", re.S)


def documented_session():
    """The (request_text, response_json) pairs of docs/serving.md, in order."""
    blocks = BLOCK.findall(DOC.read_text(encoding="utf-8"))
    assert blocks, f"no fenced wire examples found in {DOC}"
    pairs = []
    for index in range(0, len(blocks), 2):
        kind, request_text = blocks[index]
        assert kind == "request", f"unpaired wire block #{index} in {DOC}"
        kind, response_text = blocks[index + 1]
        assert kind == "response", f"request block #{index} lacks a response"
        assert "\n" not in request_text.strip(), (
            "documented requests must be single-line frames (they are "
            "sent verbatim)"
        )
        pairs.append((request_text.strip(), json.loads(response_text)))
    return pairs


def test_serving_doc_examples_are_live():
    pairs = documented_session()
    assert len(pairs) >= 8, "the documented session lost examples"
    host = EngineHost(
        DOC_DOMAIN, generate_domain(DOC_DOMAIN, scale=DOC_SCALE, seed=DOC_SEED)
    )
    server = run_in_background(PreviewService({DOC_DOMAIN: host}))
    try:
        # The documented session was captured with the always-available
        # python kernel backend pinned (REPRO_KERNEL=python): the stats
        # response reports `kernel_backend`, which would otherwise vary
        # with whether numpy happens to be installed.  The planner mode
        # is pinned to the default `auto` the same way: the stats
        # response reports `plan_mode`, which would otherwise vary with
        # REPRO_PLAN (the CI planner leg runs this suite under every
        # mode, and the replay must stay byte-identical in all of them).
        with kernel.use_backend("python"), plan.use_mode(
            "auto"
        ), socket.create_connection(
            ("127.0.0.1", server.port), timeout=60
        ) as sock:
            reader = sock.makefile("rb")
            for index, (request_text, documented) in enumerate(pairs):
                sock.sendall(request_text.encode("utf-8") + b"\n")
                answered = json.loads(reader.readline().decode("utf-8"))
                assert answered == documented, (
                    f"response #{index + 1} diverged from docs/serving.md "
                    f"for request: {request_text}"
                )
    finally:
        server.stop()


@pytest.mark.parametrize("field", ["bad-frame", "overloaded", "timeout"])
def test_documented_error_codes_exist(field):
    """Every code the doc's error table names is a real protocol code."""
    from repro.serve import ERROR_CODES

    text = DOC.read_text(encoding="utf-8")
    assert f"`{field}`" in text
    assert field in ERROR_CODES
