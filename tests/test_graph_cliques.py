"""Unit tests for repro.graph.cliques (both k-clique backends)."""

from itertools import combinations

import pytest

from repro.exceptions import GraphError
from repro.graph import apriori_k_cliques, bron_kerbosch_k_cliques, k_cliques

BACKENDS = (apriori_k_cliques, bron_kerbosch_k_cliques)


def adjacency_from_edges(edges):
    present = {frozenset(edge) for edge in edges}

    def adjacent(u, v):
        return frozenset((u, v)) in present

    return adjacent


@pytest.fixture
def diamond():
    """4-node graph: triangle a-b-c plus pendant d-a."""
    nodes = ["a", "b", "c", "d"]
    adjacent = adjacency_from_edges([("a", "b"), ("b", "c"), ("a", "c"), ("a", "d")])
    return nodes, adjacent


@pytest.mark.parametrize("backend", BACKENDS)
class TestKCliques:
    def test_triangles(self, diamond, backend):
        nodes, adjacent = diamond
        assert backend(nodes, adjacent, 3) == [("a", "b", "c")]

    def test_pairs_are_edges(self, diamond, backend):
        nodes, adjacent = diamond
        pairs = set(backend(nodes, adjacent, 2))
        assert pairs == {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c")}

    def test_singletons(self, diamond, backend):
        nodes, adjacent = diamond
        assert backend(nodes, adjacent, 1) == [(n,) for n in nodes]

    def test_k_zero_vacuous(self, diamond, backend):
        nodes, adjacent = diamond
        assert backend(nodes, adjacent, 0) == [()]

    def test_no_cliques_above_max(self, diamond, backend):
        nodes, adjacent = diamond
        assert backend(nodes, adjacent, 4) == []

    def test_complete_graph_counts(self, backend):
        nodes = list("abcde")
        def adjacent(u, v):
            return True

        for k in range(1, 6):
            expected = len(list(combinations(nodes, k)))
            assert len(backend(nodes, adjacent, k)) == expected

    def test_negative_k_raises(self, diamond, backend):
        nodes, adjacent = diamond
        with pytest.raises(GraphError):
            backend(nodes, adjacent, -1)


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_random_graphs(self, seed, k):
        import random

        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(10)]
        edges = [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1:]
            if rng.random() < 0.45
        ]
        adjacent = adjacency_from_edges(edges)
        assert set(apriori_k_cliques(nodes, adjacent, k)) == set(
            bron_kerbosch_k_cliques(nodes, adjacent, k)
        )


class TestDispatch:
    def test_named_backends(self, diamond):
        nodes, adjacent = diamond
        assert k_cliques(nodes, adjacent, 3, backend="apriori") == k_cliques(
            nodes, adjacent, 3, backend="bron-kerbosch"
        )

    def test_unknown_backend_raises(self, diamond):
        nodes, adjacent = diamond
        with pytest.raises(GraphError):
            k_cliques(nodes, adjacent, 2, backend="magic")

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            apriori_k_cliques(["a", "a"], lambda u, v: True, 2)
