"""`ServeClient` transport/error paths, driven by a hostile fake server.

The serve tests exercise the client against a well-behaved
:class:`PreviewService`; these cover the other half of its contract —
what it does when the *server* misbehaves: closing early, closing
mid-frame, answering garbage, answering the wrong request id, or
streaming a response far past the request-frame cap.  A scripted
line-server stands in for the service so each failure shape is exact.
"""

from __future__ import annotations

import json
import socket
import threading
from contextlib import contextmanager

import pytest

from repro.exceptions import ServeError, ServeRequestError
from repro.serve import MAX_FRAME_BYTES, ServeClient


#: Script return value: send these bytes, then close the connection.
CLOSE_AFTER = "close-after"


@contextmanager
def scripted_server(script):
    """A TCP server answering one connection with scripted bytes.

    ``script(line)`` maps each received request line to raw response
    bytes; ``None`` closes the connection immediately, and a
    ``(bytes, CLOSE_AFTER)`` pair sends the bytes *then* closes (the
    mid-frame hang-up shape).
    """
    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]

    def serve():
        try:
            conn, _ = listener.accept()
        except OSError:
            return  # listener closed at teardown before accept woke up
        with conn:
            reader = conn.makefile("rb")
            while True:
                line = reader.readline()
                if not line:
                    return
                response = script(line)
                if response is None:
                    return
                if isinstance(response, tuple):
                    data, action = response
                    conn.sendall(data)
                    assert action == CLOSE_AFTER
                    return
                conn.sendall(response)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield port
    finally:
        listener.close()
        thread.join(timeout=5)


class TestServeClientErrors:
    def test_server_closing_before_answering(self):
        with scripted_server(lambda line: None) as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeError, match="closed the connection"):
                    client.health()

    def test_server_closing_mid_frame(self):
        with scripted_server(
            lambda line: (b'{"id": 1, "ok"', CLOSE_AFTER)
        ) as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeError, match="mid-response"):
                    client.health()

    def test_read_timeout_becomes_serve_error(self):
        """A silent server raises ServeError, not a raw socket.timeout.

        (Bug surfaced by this suite: the read loop used to leak
        ``TimeoutError`` through the documented ServeError contract.)
        """

        def stall(line):
            return b""  # send nothing, keep the connection open

        with scripted_server(stall) as port:
            with ServeClient(port=port, timeout=0.3) as client:
                with pytest.raises(ServeError, match="timed out"):
                    client.health()

    def test_undecodable_response(self):
        with scripted_server(lambda line: b"not json at all\n") as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeError, match="undecodable response"):
                    client.health()

    def test_non_object_response(self):
        with scripted_server(lambda line: b"[1, 2, 3]\n") as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeError, match="not an object"):
                    client.health()

    def test_response_id_mismatch(self):
        def wrong_id(line):
            return b'{"id": 999, "ok": true, "result": {}}\n'

        with scripted_server(wrong_id) as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeError, match="does not match"):
                    client.health()

    def test_explicit_request_id_is_echo_checked(self):
        def echo(line):
            request = json.loads(line)
            return (
                json.dumps({"id": request["id"], "ok": True, "result": {"fine": 1}})
                .encode() + b"\n"
            )

        with scripted_server(echo) as port:
            with ServeClient(port=port, timeout=5) as client:
                response = client.request("health", request_id="custom-7")
                assert response["id"] == "custom-7"

    def test_error_response_without_error_object_defaults(self):
        """A malformed error frame still raises a typed client error."""
        with scripted_server(
            lambda line: b'{"id": 1, "ok": false}\n'
        ) as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeRequestError) as excinfo:
                    client.health()
                assert excinfo.value.code == "internal"

    def test_error_code_and_message_surface(self):
        def refuse(line):
            request = json.loads(line)
            return (
                json.dumps({
                    "id": request["id"], "ok": False,
                    "error": {"code": "overloaded", "message": "busy"},
                }).encode() + b"\n"
            )

        with scripted_server(refuse) as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeRequestError, match=r"\[overloaded\] busy"):
                    client.preview(k=2, n=4)

    def test_response_longer_than_frame_cap_is_assembled(self):
        """Responses are uncapped: a >MAX_FRAME_BYTES line reads whole."""
        padding = "x" * (MAX_FRAME_BYTES + 4096)

        def huge(line):
            request = json.loads(line)
            return (
                json.dumps({
                    "id": request["id"], "ok": True,
                    "result": {"padding": padding},
                }).encode() + b"\n"
            )

        with scripted_server(huge) as port:
            with ServeClient(port=port, timeout=15) as client:
                assert client.health()["padding"] == padding

    def test_call_unwraps_and_raises_like_the_convenience_methods(self):
        def script(line):
            request = json.loads(line)
            if request["op"] == "health":
                return (
                    json.dumps({
                        "id": request["id"], "ok": True, "result": {"a": 1},
                    }).encode() + b"\n"
                )
            return (
                json.dumps({
                    "id": request["id"], "ok": False,
                    "error": {"code": "unknown-op", "message": "nope"},
                }).encode() + b"\n"
            )

        with scripted_server(script) as port:
            with ServeClient(port=port, timeout=5) as client:
                assert client.call("health") == {"a": 1}
                with pytest.raises(ServeRequestError) as excinfo:
                    client.call("stats")
                assert excinfo.value.code == "unknown-op"

    def test_send_after_peer_hangup_becomes_serve_error(self):
        """The transport contract holds on the send half too.

        (Bug surfaced in review: only the read side wrapped socket
        errors, so the request after a server hang-up leaked a raw
        BrokenPipeError through the documented ServeError contract.)
        """
        with scripted_server(lambda line: None) as port:
            with ServeClient(port=port, timeout=5) as client:
                with pytest.raises(ServeError):
                    client.health()  # server hangs up on this one
                # The peer is gone; keep writing until the kernel
                # surfaces the broken pipe — it must arrive typed.
                with pytest.raises(ServeError):
                    for _ in range(50):
                        client.health()

    def test_close_is_idempotent(self):
        with scripted_server(lambda line: None) as port:
            client = ServeClient(port=port, timeout=5)
            client.close()
            client.close()
