"""Unit tests for repro.graph.traversal."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph import (
    DirectedMultigraph,
    UndirectedGraph,
    all_pairs_shortest_paths,
    average_path_length,
    bfs_order,
    diameter,
    eccentricity,
    shortest_path,
    shortest_path_lengths,
)


@pytest.fixture
def chain():
    """Directed chain a -> b -> c -> d (undirected distances ignore arrows)."""
    g = DirectedMultigraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "d")
    return g


@pytest.fixture
def disconnected():
    g = UndirectedGraph()
    g.add_edge("a", "b")
    g.add_node("island")
    return g


class TestBfs:
    def test_order_starts_at_source(self, chain):
        order = bfs_order(chain, "b")
        assert order[0] == "b"
        assert set(order) == {"a", "b", "c", "d"}

    def test_missing_source_raises(self, chain):
        with pytest.raises(NodeNotFoundError):
            bfs_order(chain, "zzz")


class TestShortestPaths:
    def test_lengths_undirected(self, chain):
        lengths = shortest_path_lengths(chain, "d")
        # Edges are traversed against their direction too.
        assert lengths == {"d": 0, "c": 1, "b": 2, "a": 3}

    def test_unreachable_absent(self, disconnected):
        lengths = shortest_path_lengths(disconnected, "a")
        assert "island" not in lengths

    def test_path_endpoints(self, chain):
        path = shortest_path(chain, "a", "d")
        assert path[0] == "a" and path[-1] == "d"
        assert len(path) == 4

    def test_path_to_self(self, chain):
        assert shortest_path(chain, "b", "b") == ["b"]

    def test_path_unreachable_is_none(self, disconnected):
        assert shortest_path(disconnected, "a", "island") is None

    def test_all_pairs_symmetric(self, chain):
        table = all_pairs_shortest_paths(chain)
        for u in table:
            for v, d in table[u].items():
                assert table[v][u] == d


class TestGraphMetrics:
    def test_eccentricity(self, chain):
        assert eccentricity(chain, "a") == 3
        assert eccentricity(chain, "b") == 2

    def test_diameter(self, chain):
        assert diameter(chain) == 3

    def test_diameter_disconnected_uses_components(self, disconnected):
        assert diameter(disconnected) == 1

    def test_average_path_length(self, chain):
        # Ordered pairs: 2*(1+2+3 + 1+2 + 1) = 20 over 12 pairs.
        assert average_path_length(chain) == pytest.approx(20 / 12)

    def test_average_path_length_trivial(self):
        g = UndirectedGraph()
        g.add_node("solo")
        assert average_path_length(g) == 0.0
