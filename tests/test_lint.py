"""repro.lint: the framework, every rule against its fixture pair, and
the repo-wide contract that the codebase lints clean.

The fixture corpus lives in ``tests/data/lint`` (one ``repNNN_bad.py``
true positive and one ``repNNN_ok.py`` clean snippet per rule); each
file is linted with an explicit ``module=`` override that places it in
the rule's scope.  The corpus directory is named ``data`` precisely so
the repo-wide run (and CI's lint leg) skips it.
"""

import json
from pathlib import Path

import pytest

from repro import config
from repro.exceptions import ConfigError, LintError
from repro.lint import (
    LINT_RULES,
    Finding,
    PARSE_ERROR_ID,
    STALE_SUPPRESSION_ID,
    apply_suppressions,
    lint_file,
    lint_paths,
    lint_source,
    load_suppressions,
    module_name_for,
    parse_suppressions,
    register_lint_rule,
    rules_for_module,
    unregister_lint_rule,
)
from repro.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parents[1]
CORPUS = REPO / "tests" / "data" / "lint"

#: (fixture, module override, rule id): the bad file must produce the
#: rule's finding; the ok file must produce none.
RULE_FIXTURES = [
    ("rep101", "repro.core.sample", "REP101"),
    ("rep102", "repro.core.sample", "REP102"),
    ("rep103", "repro.scoring.sample", "REP103"),
    ("rep104", "repro.scoring.sample", "REP104"),
    ("rep105", "repro.anywhere.sample", "REP105"),
    ("rep106", "repro.anywhere.sample", "REP106"),
    ("rep107", "repro.anywhere.sample", "REP107"),
    ("rep108", "repro.serve.sample", "REP108"),
    ("rep109", "repro.serve.sample", "REP109"),
    ("rep110", "repro.anywhere.sample", "REP110"),
    ("rep111", "repro.plugins.sample", "REP111"),
    ("rep112", "repro.anywhere.sample", "REP112"),
]


class TestModuleNames:
    def test_src_tree(self):
        assert module_name_for("src/repro/core/apriori.py") == "repro.core.apriori"

    def test_absolute_src_tree(self):
        path = REPO / "src" / "repro" / "scoring" / "base.py"
        assert module_name_for(path) == "repro.scoring.base"

    def test_package_init_scopes_as_package(self):
        assert module_name_for("src/repro/lint/__init__.py") == "repro.lint"

    def test_bare_trees(self):
        assert module_name_for("tests/test_lint.py") == "tests.test_lint"
        assert module_name_for("tools/check_docs.py") == "tools.check_docs"

    def test_unanchored_path_maps_to_stem(self):
        assert module_name_for("/somewhere/else/script.py") == "script"


class TestRegistry:
    def test_builtin_rules_are_registered(self):
        expected = {f"REP1{i:02d}" for i in range(1, 13)}
        assert expected <= set(LINT_RULES)

    def test_scoping(self):
        in_core = {r.rule_id for r in rules_for_module("repro.core.apriori")}
        assert "REP102" in in_core and "REP103" in in_core
        in_tests = {r.rule_id for r in rules_for_module("tests.test_lint")}
        assert "REP102" not in in_tests  # determinism rules scope to repro
        assert "REP105" in in_tests  # bare-except applies everywhere

    def test_exclude_beats_modules(self):
        rule = LINT_RULES["REP110"]
        assert rule.applies_to("repro.kernel.plan")
        assert not rule.applies_to("repro.config")

    def test_register_validates_checker_surface(self):
        with pytest.raises(LintError, match="interests"):
            register_lint_rule("REP900", "bad", "no surface")(object)
        assert "REP900" not in LINT_RULES

    def test_register_and_unregister_round_trip(self):
        @register_lint_rule("REP901", "test-rule", "fixture", modules=("repro",))
        class _Checker:
            interests = ()

            def check(self, node, ctx):
                return iter(())

        try:
            assert LINT_RULES["REP901"].checker is _Checker
        finally:
            unregister_lint_rule("REP901")
        assert "REP901" not in LINT_RULES


class TestFindings:
    def test_format_and_order(self):
        a = Finding("a.py", 3, "REP105", "msg", "hint")
        b = Finding("a.py", 9, "REP101", "msg")
        assert a.format() == "a.py:3: REP105 msg (hint)"
        assert b.format() == "a.py:9: REP101 msg"
        assert sorted([b, a]) == [a, b]

    def test_parse_error_is_a_finding_not_an_exception(self):
        findings = lint_source("def broken(:\n", path="x.py", module="repro.x")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]

    def test_unreadable_file_raises(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths([str(REPO / "does-not-exist")])


@pytest.mark.parametrize("stem,module,rule_id", RULE_FIXTURES)
class TestRuleCorpus:
    def test_bad_fixture_fires(self, stem, module, rule_id):
        findings = lint_file(CORPUS / f"{stem}_bad.py", module=module)
        assert rule_id in {f.rule_id for f in findings}, findings

    def test_ok_fixture_is_clean(self, stem, module, rule_id):
        findings = lint_file(CORPUS / f"{stem}_ok.py", module=module)
        assert findings == [], findings


class TestRuleEdgeCases:
    def test_rep101_multiprocessing_at_top_level(self):
        findings = lint_file(CORPUS / "rep101_mp_bad.py", module="repro.engine")
        assert {f.rule_id for f in findings} == {"REP101"}

    def test_rep101_out_of_scope_for_tests(self):
        # numpy is a legitimate test dependency; the rule scopes to repro.
        findings = lint_file(
            CORPUS / "rep101_bad.py", module="tests.test_sample"
        )
        assert findings == []

    def test_rep103_counts_both_calls(self):
        findings = lint_file(CORPUS / "rep103_bad.py", module="repro.core.x")
        assert len([f for f in findings if f.rule_id == "REP103"]) == 2

    def test_rep110_resolves_module_constants(self):
        findings = lint_file(CORPUS / "rep110_bad.py", module="repro.sample")
        messages = [f.message for f in findings]
        assert len(findings) == 3
        assert any("REPRO_FIXTURE_FLAG" in m for m in messages)

    def test_rep999_reserves_the_whole_file(self):
        findings = lint_file(CORPUS / "rep999_bad.py", module="repro.sample")
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]


class TestSuppressions:
    def test_parse_comments_lines_and_line_numbers(self):
        text = "# header\nREP104 src/a.py\n\nREP107 src/b.py:88  # why\n"
        sups = parse_suppressions(text)
        assert [(s.rule_id, s.path, s.line) for s in sups] == [
            ("REP104", "src/a.py", None),
            ("REP107", "src/b.py", 88),
        ]

    def test_malformed_line_raises(self):
        with pytest.raises(LintError, match="expected 'RULE_ID"):
            parse_suppressions("REP104\n")

    def test_missing_file_means_no_suppressions(self, tmp_path):
        assert load_suppressions(tmp_path / "nope.txt") == []

    def test_matching_splits_active_and_suppressed(self):
        findings = [
            Finding("src/a.py", 3, "REP104", "m"),
            Finding("src/a.py", 9, "REP105", "m"),
        ]
        sups = parse_suppressions("REP104 src/a.py:3\n")
        active, suppressed = apply_suppressions(findings, sups)
        assert [f.rule_id for f in active] == ["REP105"]
        assert [f.rule_id for f in suppressed] == ["REP104"]

    def test_wrong_line_does_not_match(self):
        findings = [Finding("src/a.py", 3, "REP104", "m")]
        sups = parse_suppressions("REP104 src/a.py:4\n")
        active, _ = apply_suppressions(findings, sups)
        assert {f.rule_id for f in active} == {"REP104", STALE_SUPPRESSION_ID}

    def test_stale_suppression_is_fatal(self):
        sups = parse_suppressions("REP104 src/gone.py\n")
        active, suppressed = apply_suppressions([], sups)
        assert suppressed == []
        assert [f.rule_id for f in active] == [STALE_SUPPRESSION_ID]
        assert "src/gone.py" in active[0].message


class TestRepoIsClean:
    def test_whole_repo_lints_clean_with_empty_suppressions(self):
        paths = [
            REPO / tree
            for tree in ("src", "tests", "benchmarks", "examples", "tools")
            if (REPO / tree).exists()
        ]
        findings = lint_paths(paths)
        suppressions = load_suppressions(REPO / "lint-suppressions.txt")
        assert suppressions == [], (
            "lint-suppressions.txt must stay empty; fix findings instead"
        )
        active, _ = apply_suppressions(findings, suppressions)
        assert active == [], "\n".join(f.format() for f in active)

    def test_corpus_is_skipped_by_directory_walks(self):
        findings = lint_paths([REPO / "tests"])
        assert all("data/lint" not in f.path for f in findings)


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        code = lint_main(
            [
                str(CORPUS / "rep105_ok.py"),
                "--suppressions",
                str(tmp_path / "none.txt"),
            ]
        )
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_file_exits_nonzero_with_text_report(self, tmp_path, capsys):
        code = lint_main(
            [
                str(CORPUS / "rep105_bad.py"),
                "--suppressions",
                str(tmp_path / "none.txt"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REP105" in out and "bare except" in out

    def test_json_format(self, tmp_path, capsys):
        code = lint_main(
            [
                str(CORPUS / "rep105_bad.py"),
                "--format",
                "json",
                "--suppressions",
                str(tmp_path / "none.txt"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule_id"] == "REP105"
        assert payload["suppressed"] == []

    def test_stale_suppression_fails_the_run(self, tmp_path, capsys):
        sup = tmp_path / "sup.txt"
        sup.write_text("REP105 tests/data/lint/nothing.py\n")
        code = lint_main(
            [str(CORPUS / "rep105_ok.py"), "--suppressions", str(sup)]
        )
        assert code == 1
        assert STALE_SUPPRESSION_ID in capsys.readouterr().out

    def test_suppression_rescues_a_finding(self, tmp_path, capsys):
        sup = tmp_path / "sup.txt"
        bad = (CORPUS / "rep105_bad.py").as_posix()
        sup.write_text(f"REP105 {bad}\n")
        code = lint_main([str(CORPUS / "rep105_bad.py"), "--suppressions", str(sup)])
        assert code == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_malformed_suppressions_is_a_usage_error(self, tmp_path, capsys):
        sup = tmp_path / "sup.txt"
        sup.write_text("garbage\n")
        code = lint_main(
            [str(CORPUS / "rep105_ok.py"), "--suppressions", str(sup)]
        )
        assert code == 2
        assert "expected" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP101" in out and "REP112" in out

    def test_cli_subcommand_dispatch(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", "--list-rules"]) == 0
        assert "REP101" in capsys.readouterr().out


class TestConfigRegistry:
    def test_declared_knobs_are_enumerable(self):
        names = {k["name"] for k in config.knob_catalog()}
        assert {
            "REPRO_KERNEL",
            "REPRO_DISPATCH_THRESHOLD",
            "REPRO_TEST_JOBS",
            "REPRO_RESULTS_DIR",
        } <= names

    def test_undeclared_read_raises(self):
        with pytest.raises(ConfigError, match="undeclared"):
            config.raw_knob("REPRO_NOT_A_KNOB")

    def test_reads_are_lazy(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_JOBS", "7")
        assert config.test_jobs() == 7
        monkeypatch.delenv("REPRO_TEST_JOBS")
        assert config.test_jobs() == 2  # declared default

    def test_malformed_test_jobs_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_JOBS", "many")
        with pytest.raises(ConfigError, match="integer"):
            config.test_jobs()

    def test_kernel_backend_normalizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "  PYTHON ")
        assert config.kernel_backend() == "python"
        monkeypatch.delenv("REPRO_KERNEL")
        assert config.kernel_backend() == "auto"
