"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
    brute_force_discover,
    discover_preview,
    dynamic_programming_discover,
)
from repro.core.candidates import best_preview_for_keys
from repro.engine import PreviewEngine, PreviewQuery
from repro.exceptions import InfeasiblePreviewError
from repro.datasets import random_entity_graph, random_schema_graph
from repro.eval import pearson_correlation, two_proportion_z_test
from repro.graph import apriori_k_cliques, bron_kerbosch_k_cliques
from repro.model import Triple, entity_graph_to_triples, triples_to_entity_graph
from repro.scoring import ScoringContext, value_set_entropy
from repro.store import TripleStore, load_tsv, save_tsv

# Keep generated workloads small: these properties are structural, not
# scale tests, and the suite must stay fast.
SMALL = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

schema_params = st.tuples(
    st.integers(min_value=2, max_value=8),  # types
    st.integers(min_value=2, max_value=12),  # rel types
    st.integers(min_value=0, max_value=10_000),  # seed
)


@SMALL
@given(schema_params, st.integers(1, 4), st.integers(0, 6))
def test_dp_matches_brute_force(params, k, extra_n):
    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    k = min(k, num_types)
    size = SizeConstraint(k=k, n=k + extra_n)
    bf = brute_force_discover(context, size)
    dp = dynamic_programming_discover(context, size)
    assert (bf is None) == (dp is None)
    if bf is not None:
        assert math.isclose(bf.score, dp.score, rel_tol=1e-9)


@SMALL
@given(
    schema_params,
    st.integers(2, 3),
    st.integers(1, 3),
    st.booleans(),
)
def test_apriori_matches_brute_force(params, k, d, tight):
    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    k = min(k, num_types)
    size = SizeConstraint(k=k, n=k + 3)
    constraint = DistanceConstraint.tight(d) if tight else DistanceConstraint.diverse(d)
    bf = brute_force_discover(context, size, constraint)
    ap = apriori_discover(context, size, constraint)
    assert (bf is None) == (ap is None)
    if bf is not None:
        assert math.isclose(bf.score, ap.score, rel_tol=1e-9)


@SMALL
@given(schema_params, st.integers(1, 3), st.integers(0, 4), st.integers(1, 3))
def test_engine_identical_to_legacy_for_all_algorithms(params, k, extra_n, d):
    """PreviewEngine answers == per-call discover_preview, all 4 algorithms.

    Runs the whole case list through one engine (exercising its memo and
    shared sweep state) and through the per-call facade on the same
    context, comparing full DiscoveryResults — previews, exact scores
    and bookkeeping alike — including agreement on infeasibility.  For
    apriori-resolved points the facade shares the engine's fast path, so
    those are additionally pinned against the legacy apriori_discover
    (the independent oracle); the dedicated fast-path property below
    covers that pairing across budgets.
    """
    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    k = min(k, num_types)
    n = k + extra_n
    queries = [
        PreviewQuery(k=k, n=n, algorithm=algorithm)
        for algorithm in ("auto", "brute-force", "dynamic-programming", "branch-and-bound")
    ] + [
        PreviewQuery(k=k, n=n, d=d, mode=mode, algorithm=algorithm)
        for mode in ("tight", "diverse")
        for algorithm in ("auto", "apriori", "brute-force", "branch-and-bound")
    ]
    engine = PreviewEngine(context)
    swept = engine.sweep(queries, skip_infeasible=True)
    for query, result in zip(queries, swept):
        try:
            expected = discover_preview(
                context,
                k=query.k,
                n=query.n,
                d=query.d,
                mode=query.mode,
                algorithm=query.algorithm,
            )
        except InfeasiblePreviewError:
            expected = None
        assert result == expected, query
        if result is not None and result.algorithm.startswith("apriori"):
            legacy = apriori_discover(
                context, SizeConstraint(k=query.k, n=query.n), query.distance()
            )
            assert result == legacy, query


@SMALL
@given(schema_params, st.integers(2, 3), st.integers(1, 3), st.booleans())
def test_engine_apriori_fast_path_matches_legacy(params, k, d, tight):
    """The engine's shared-profile fast path == apriori_discover, exactly."""
    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    k = min(k, num_types)
    constraint = DistanceConstraint.tight(d) if tight else DistanceConstraint.diverse(d)
    mode = "tight" if tight else "diverse"
    engine = PreviewEngine(context)
    for n in range(k, k + 4):
        legacy = apriori_discover(context, SizeConstraint(k=k, n=n), constraint)
        try:
            fast = engine.query(k=k, n=n, d=d, mode=mode, algorithm="apriori")
        except InfeasiblePreviewError:
            fast = None
        if legacy is None:
            assert fast is None
        else:
            assert fast == legacy


@SMALL
@given(schema_params, st.integers(1, 3))
def test_proposition_2_monotone_in_attributes(params, k):
    """Prop. 2: adding a non-key attribute never lowers a table's score."""
    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    for type_name in schema.entity_types():
        ranked = context.sorted_candidates(type_name)
        prev = 0.0
        for m in range(1, len(ranked) + 1):
            score = context.top_m_table_score(type_name, m)
            assert score >= prev - 1e-12
            prev = score


@SMALL
@given(schema_params, st.integers(2, 4))
def test_proposition_1_monotone_in_n(params, k):
    """Growing the attribute budget never lowers the optimal score."""
    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    k = min(k, num_types)
    prev = None
    for n in range(k, k + 5):
        result = dynamic_programming_discover(context, SizeConstraint(k=k, n=n))
        if result is None:
            assert prev is None
            continue
        if prev is not None:
            assert result.score >= prev - 1e-12
        prev = result.score


@SMALL
@given(
    st.integers(2, 6),
    st.integers(2, 9),
    st.integers(10, 40),
    st.integers(10, 80),
    st.integers(0, 10_000),
)
def test_triple_round_trip(num_types, num_rels, entities, edges, seed):
    graph = random_entity_graph(
        num_types,
        max(num_rels, num_types - 1),
        max(entities, num_types),
        edges,
        seed=seed,
    )
    clone = triples_to_entity_graph(entity_graph_to_triples(graph))
    assert clone.stats() == graph.stats()
    for rel in graph.relationship_types():
        assert clone.relationship_count(rel) == graph.relationship_count(rel)


_term = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=12
)


@SMALL
@given(st.lists(st.tuples(_term, _term, _term), min_size=1, max_size=20))
def test_tsv_round_trip_arbitrary_terms(rows):
    import tempfile
    from pathlib import Path

    store = TripleStore()
    for s, p, o in rows:
        store.add(Triple(s, p, o))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "data.tsv"
        save_tsv(store, path)
        loaded = load_tsv(path)
    assert sorted(loaded.triples()) == sorted(store.triples())


@SMALL
@given(st.lists(st.integers(1, 50), min_size=1, max_size=12))
def test_entropy_bounds(counts):
    """0 <= H <= log10(#groups) for any value histogram."""
    from collections import Counter

    groups = Counter({f"v{i}": c for i, c in enumerate(counts)})
    total = sum(counts)
    h = value_set_entropy(groups, total)
    assert -1e-12 <= h <= math.log10(len(counts)) + 1e-12


@SMALL
@given(st.integers(3, 9), st.floats(0.1, 0.9), st.integers(0, 10_000), st.integers(2, 4))
def test_clique_backends_agree(n, p, seed, k):
    import random as _random

    rng = _random.Random(seed)
    nodes = [f"n{i}" for i in range(n)]
    edges = {
        frozenset((u, v))
        for i, u in enumerate(nodes)
        for v in nodes[i + 1:]
        if rng.random() < p
    }

    def adjacent(u, v):
        return frozenset((u, v)) in edges

    assert set(apriori_k_cliques(nodes, adjacent, k)) == set(
        bron_kerbosch_k_cliques(nodes, adjacent, k)
    )


@SMALL
@given(schema_params, st.integers(2, 4), st.integers(0, 4))
def test_best_allocation_is_optimal_for_fixed_keys(params, k, extra_n):
    """The k-way-merge allocation beats any exhaustive split of n."""
    from itertools import product

    num_types, num_rels, seed = params
    schema = random_schema_graph(num_types, max(num_rels, num_types - 1), seed=seed)
    context = ScoringContext(schema)
    k = min(k, num_types)
    keys = schema.entity_types()[:k]
    size = SizeConstraint(k=k, n=k + extra_n)
    allocation = best_preview_for_keys(context, keys, size)
    if allocation is None:
        return
    _preview, merged_score = allocation
    # Exhaustive: every way to give each key m_i >= 1 attrs, sum <= n.
    best = 0.0
    ranges = [range(1, size.n + 1) for _ in keys]
    for split in product(*ranges):
        if sum(split) > size.n:
            continue
        score = sum(
            context.top_m_table_score(key, m) for key, m in zip(keys, split)
        )
        best = max(best, score)
    assert math.isclose(merged_score, best, rel_tol=1e-9)


@SMALL
@given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
def test_pearson_bounded(xs):
    ys = [x * 2 + 1 for x in xs]
    value = pearson_correlation(xs, ys)
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@SMALL
@given(
    st.integers(1, 100),
    st.integers(1, 100),
)
def test_z_test_antisymmetric(n_a, n_b):
    s_a, s_b = n_a // 2, n_b // 3
    forward = two_proportion_z_test(s_a, n_a, s_b, n_b)
    backward = two_proportion_z_test(s_b, n_b, s_a, n_a)
    assert math.isclose(forward.z, -backward.z, abs_tol=1e-12)
