"""Unit tests for repro.graph.stationary (random walks)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    UndirectedGraph,
    power_iteration,
    stationary_distribution,
    transition_matrix,
)


@pytest.fixture
def triangle():
    g = UndirectedGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 1.0)
    g.add_edge("c", "a", 1.0)
    return g


class TestTransitionMatrix:
    def test_rows_stochastic(self, triangle):
        nodes = list(triangle.nodes())
        matrix = transition_matrix(triangle, nodes)
        for row in matrix:
            assert sum(row) == pytest.approx(1.0)

    def test_proportional_to_weights(self):
        g = UndirectedGraph()
        g.add_edge("a", "b", 3.0)
        g.add_edge("a", "c", 1.0)
        matrix = transition_matrix(g, ["a", "b", "c"], jump_probability=0.0)
        assert matrix[0][1] == pytest.approx(0.75)
        assert matrix[0][2] == pytest.approx(0.25)

    def test_negative_jump_rejected(self, triangle):
        with pytest.raises(GraphError):
            transition_matrix(triangle, list(triangle.nodes()), jump_probability=-1)

    def test_isolated_node_row_uniform(self):
        g = UndirectedGraph()
        g.add_edge("a", "b")
        g.add_node("island")
        matrix = transition_matrix(g, ["a", "b", "island"], jump_probability=0.0)
        island_row = matrix[2]
        assert island_row == pytest.approx([0.5, 0.5, 0.0])

    def test_self_loops_excluded_by_default(self):
        g = UndirectedGraph()
        g.add_edge("a", "a", 100.0)
        g.add_edge("a", "b", 1.0)
        matrix = transition_matrix(g, ["a", "b"], jump_probability=0.0)
        assert matrix[0][0] == 0.0
        assert matrix[0][1] == pytest.approx(1.0)

    def test_self_loops_included_on_request(self):
        g = UndirectedGraph()
        g.add_edge("a", "a", 3.0)
        g.add_edge("a", "b", 1.0)
        matrix = transition_matrix(
            g, ["a", "b"], jump_probability=0.0, self_loops=True
        )
        assert matrix[0][0] == pytest.approx(0.75)

    def test_single_node(self):
        g = UndirectedGraph()
        g.add_node("a")
        assert transition_matrix(g, ["a"]) == [[1.0]]


class TestStationaryDistribution:
    def test_sums_to_one(self, triangle):
        pi = stationary_distribution(triangle)
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_symmetric_triangle_uniform(self, triangle):
        pi = stationary_distribution(triangle)
        for value in pi.values():
            assert value == pytest.approx(1 / 3, abs=1e-6)

    def test_heavier_node_ranks_higher(self):
        g = UndirectedGraph()
        g.add_edge("hub", "x", 10.0)
        g.add_edge("hub", "y", 10.0)
        g.add_edge("x", "y", 1.0)
        pi = stationary_distribution(g)
        assert pi["hub"] > pi["x"]
        assert pi["hub"] > pi["y"]

    def test_disconnected_converges_with_smoothing(self):
        g = UndirectedGraph()
        g.add_edge("a", "b", 5.0)
        g.add_edge("c", "d", 5.0)
        pi = stationary_distribution(g, jump_probability=1e-5)
        assert sum(pi.values()) == pytest.approx(1.0)
        assert all(value > 0 for value in pi.values())

    def test_stationary_is_fixed_point(self, triangle):
        nodes = list(triangle.nodes())
        matrix = transition_matrix(triangle, nodes)
        pi = stationary_distribution(triangle)
        vec = [pi[node] for node in nodes]
        nxt = [
            sum(vec[i] * matrix[i][j] for i in range(len(nodes)))
            for j in range(len(nodes))
        ]
        for a, b in zip(vec, nxt):
            assert a == pytest.approx(b, abs=1e-9)

    def test_empty_graph(self):
        assert stationary_distribution(UndirectedGraph()) == {}


class TestPowerIteration:
    def test_known_two_state_chain(self):
        # p(a->b)=1, p(b->a)=0.5, p(b->b)=0.5  =>  pi = (1/3, 2/3)
        matrix = [[0.0, 1.0], [0.5, 0.5]]
        pi = power_iteration(matrix)
        assert pi[0] == pytest.approx(1 / 3, abs=1e-9)
        assert pi[1] == pytest.approx(2 / 3, abs=1e-9)

    def test_non_convergent_raises(self):
        # Periodic bipartite chain oscillates from the uniform start.
        matrix = [
            [0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0],
            [0.5, 0.5, 0.0],
        ]
        with pytest.raises(GraphError):
            power_iteration(matrix, max_iterations=50)

    def test_empty_matrix(self):
        assert power_iteration([]) == []
