"""Tests for multi-way (mediator/CVT) relationship support."""

import pytest

from repro.exceptions import ModelError
from repro.ext.multiway import (
    detect_mediator_types,
    format_multiway_cell,
    mediator_summary,
    multiway_attribute_values,
)
from repro.model import (
    EntityGraphBuilder,
    NonKeyAttribute,
    Direction,
    RelationshipTypeId,
    SchemaGraph,
)


def build_performance_graph():
    """FILM/ACTOR/CHARACTER joined through PERFORMANCE mediator nodes."""
    b = EntityGraphBuilder("performances")
    b.entity("Men in Black", "FILM").entity("Hancock", "FILM")
    b.entity("Will Smith", "ACTOR").entity("Tommy Lee Jones", "ACTOR")
    b.entity("Agent J", "CHARACTER").entity("Agent K", "CHARACTER")
    b.entity("Hancock (char)", "CHARACTER")
    performances = [
        ("perf1", "Men in Black", "Will Smith", "Agent J"),
        ("perf2", "Men in Black", "Tommy Lee Jones", "Agent K"),
        ("perf3", "Hancock", "Will Smith", "Hancock (char)"),
    ]
    for node, film, actor, character in performances:
        b.entity(node, "PERFORMANCE")
        b.relate(film, "Performances", node)
        b.relate(node, "Performance Actor", actor)
        b.relate(node, "Performance Character", character)
    return b.build()


@pytest.fixture(scope="module")
def graph():
    return build_performance_graph()


@pytest.fixture(scope="module")
def schema(graph):
    return SchemaGraph.from_entity_graph(graph)


class TestDetection:
    def test_performance_detected(self, graph, schema):
        profiles = detect_mediator_types(graph, schema)
        mediators = {p.mediator for p in profiles}
        assert "PERFORMANCE" in mediators

    def test_roles_enumerated(self, graph, schema):
        profile = next(
            p for p in detect_mediator_types(graph, schema)
            if p.mediator == "PERFORMANCE"
        )
        assert profile.arity == 3
        assert profile.roles["Performance Actor"] == "ACTOR"
        assert profile.roles["Performance Character"] == "CHARACTER"
        assert profile.roles["Performances"] == "FILM"

    def test_plain_types_not_mediators(self, graph, schema):
        mediators = {p.mediator for p in detect_mediator_types(graph, schema)}
        assert "FILM" not in mediators
        assert "ACTOR" not in mediators

    def test_fig1_has_no_mediators(self, fig1_graph, fig1_schema):
        # Fig. 1 is a plain binary graph; hub types have multi-valued
        # attributes, which disqualifies them.
        assert detect_mediator_types(fig1_graph, fig1_schema) == []

    def test_summary(self, graph, schema):
        summary = mediator_summary(graph, schema)
        assert summary.get("PERFORMANCE") == 3


class TestJoinThrough:
    @pytest.fixture(scope="class")
    def profile(self, graph, schema):
        return next(
            p for p in detect_mediator_types(graph, schema)
            if p.mediator == "PERFORMANCE"
        )

    @pytest.fixture(scope="class")
    def into_mediator(self):
        rel = RelationshipTypeId("Performances", "FILM", "PERFORMANCE")
        return NonKeyAttribute(rel, Direction.OUT)

    def test_values_for_film(self, graph, schema, profile, into_mediator):
        values = multiway_attribute_values(
            graph, schema, "Men in Black", into_mediator, profile
        )
        assert len(values) == 2
        flattened = {tuple(filler for _r, filler in v) for v in values}
        assert ("Will Smith", "Agent J") in flattened
        assert ("Tommy Lee Jones", "Agent K") in flattened

    def test_values_exclude_anchor_role(self, graph, schema, profile, into_mediator):
        values = multiway_attribute_values(
            graph, schema, "Hancock", into_mediator, profile
        )
        roles = {role for value in values for role, _f in value}
        assert "Performances" not in roles

    def test_empty_for_unrelated(self, graph, schema, profile, into_mediator):
        b_values = multiway_attribute_values(
            graph, schema, "Agent J", into_mediator, profile
        ) if graph.has_entity("Agent J") else []
        assert b_values == []

    def test_wrong_attribute_rejected(self, graph, schema, profile):
        wrong = NonKeyAttribute(
            RelationshipTypeId("Performance Actor", "PERFORMANCE", "ACTOR"),
            Direction.OUT,
        )
        with pytest.raises(ModelError):
            multiway_attribute_values(graph, schema, "perf1", wrong, profile)


class TestRendering:
    def test_format_cell(self):
        values = [
            (("Performance Actor", "Will Smith"), ("Performance Character", "Agent J")),
            (("Performance Actor", "Tommy Lee Jones"), ("Performance Character", None)),
        ]
        text = format_multiway_cell(values)
        assert text == "Will Smith / Agent J; Tommy Lee Jones / -"

    def test_format_empty(self):
        assert format_multiway_cell([]) == "-"
