"""Regression and edge-case tests across module boundaries.

Each test here pins a behaviour that was easy to get wrong during the
build (periodic random walks, boundary ties, self-loops, empty values)
or exercises a cross-module path no unit file owns.
"""

import math

import pytest

from repro.core import (
    SizeConstraint,
    all_optimal_previews,
    discover_preview,
    dynamic_programming_discover,
)
from repro.model import EntityGraph, EntityGraphBuilder, RelationshipTypeId, SchemaGraph, outgoing
from repro.scoring import ScoringContext


class TestBipartiteRandomWalk:
    """Stars/trees are periodic chains; the lazy transform must converge."""

    def test_star_converges(self):
        schema = SchemaGraph()
        for i in range(5):
            schema.add_relationship_type(
                RelationshipTypeId(f"spoke{i}", "HUB", f"LEAF{i}"), edge_count=2
            )
        context = ScoringContext(schema, key_scorer="random_walk")
        scores = context.key_scores()
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["HUB"] > max(scores[f"LEAF{i}"] for i in range(5))

    def test_path_graph_converges(self):
        schema = SchemaGraph()
        for i in range(6):
            schema.add_relationship_type(
                RelationshipTypeId(f"step{i}", f"N{i}", f"N{i+1}"), edge_count=1
            )
        context = ScoringContext(schema, key_scorer="random_walk")
        scores = context.key_scores()
        # Interior nodes carry more stationary mass than endpoints.
        assert scores["N3"] > scores["N0"]
        assert scores["N3"] > scores["N6"]


class TestSelfLoopSchema:
    """Self-loop relationship types (Previous/Next Episode) end to end."""

    @pytest.fixture
    def episodes(self):
        b = EntityGraphBuilder("episodes")
        for i in range(5):
            b.entity(f"ep{i}", "EPISODE")
        for i in range(4):
            b.relate(f"ep{i}", "Next", f"ep{i+1}")
        return b.build()

    def test_discovery_with_only_self_loops(self, episodes):
        result = discover_preview(episodes, k=1, n=2)
        table = result.preview.tables[0]
        assert table.key == "EPISODE"
        # Both orientations of the loop are usable attributes.
        directions = {attr.direction for attr in table.nonkey}
        assert len(table.nonkey) == 2
        assert len(directions) == 2

    def test_self_loop_weight_in_type_graph(self, episodes):
        schema = SchemaGraph.from_entity_graph(episodes)
        weighted = schema.undirected_weighted()
        assert weighted.weight("EPISODE", "EPISODE") == 4.0

    def test_self_loop_distance_zero(self, episodes):
        schema = SchemaGraph.from_entity_graph(episodes)
        assert schema.distance("EPISODE", "EPISODE") == 0


class TestZeroScoreBoundaries:
    def test_zero_score_attributes_not_padded_in(self):
        """Attributes with zero marginal value are dropped, keeping the
        preview minimal while score-equal (Definition 2 upper-bounds n)."""
        schema = SchemaGraph()
        schema.add_entity_type("A", entity_count=10)
        schema.add_relationship_type(
            RelationshipTypeId("good", "A", "B"), edge_count=5
        )
        # A zero-count relationship can exist in a schema built by hand.
        schema.add_entity_type("C")
        schema._rel_weights[RelationshipTypeId("empty", "A", "C")] = 0  # noqa: SLF001
        context = ScoringContext(schema)
        result = dynamic_programming_discover(context, SizeConstraint(k=1, n=4))
        assert result.preview.attribute_count == 1

    def test_all_zero_scores_still_forms_preview(self):
        schema = SchemaGraph()
        schema.add_entity_type("A", entity_count=0)
        schema.add_relationship_type(RelationshipTypeId("r", "A", "B"), edge_count=1)
        context = ScoringContext(schema)
        result = dynamic_programming_discover(context, SizeConstraint(k=1, n=1))
        assert result is not None
        assert result.score == 0.0


class TestEmptyAndDegenerate:
    def test_empty_entity_graph_schema(self):
        graph = EntityGraph("empty")
        schema = SchemaGraph.from_entity_graph(graph)
        assert schema.entity_type_count == 0
        assert schema.relationship_type_count == 0

    def test_single_entity_no_edges_infeasible(self):
        from repro.exceptions import InfeasiblePreviewError

        graph = EntityGraph("one")
        graph.add_entity("solo", ["T"])
        with pytest.raises(Exception) as excinfo:
            discover_preview(graph, k=1, n=1)
        assert isinstance(
            excinfo.value, (InfeasiblePreviewError, Exception)
        )

    def test_parallel_rel_types_between_same_pair(self):
        """Producer and Executive Producer between the same type pair."""
        b = EntityGraphBuilder("parallel")
        b.entity("p", "PRODUCER").entity("f", "FILM")
        b.relate("p", "Producer", "f")
        b.relate("p", "Executive Producer", "f")
        schema = SchemaGraph.from_entity_graph(b.build())
        assert schema.relationship_type_count == 2
        # The undirected weight sums both parallel relationship types.
        assert schema.undirected_weighted().weight("PRODUCER", "FILM") == 2.0

    def test_unicode_entity_names_round_trip(self, tmp_path):
        from repro.datasets import load_domain_file, save_domain

        b = EntityGraphBuilder("unicode")
        b.entity("Amélie", "FILM").entity("Jean-Pierre Jeunet", "DIRECTOR")
        b.relate("Jean-Pierre Jeunet", "Réalisé", "Amélie")
        graph = b.build()
        path = tmp_path / "unicode.tsv"
        save_domain(graph, path)
        clone = load_domain_file(path)
        assert clone.has_entity("Amélie")
        assert clone.stats() == graph.stats()


class TestTieStability:
    def test_all_optimal_contains_single_result(self, fig1_context):
        """The single-result algorithms return a member of the full set."""
        size = SizeConstraint(k=2, n=6)
        optima = all_optimal_previews(fig1_context, size)
        single = dynamic_programming_discover(fig1_context, size)
        fingerprints = {
            tuple((t.key, frozenset(t.nonkey)) for t in p.tables)
            for p in optima
        }
        single_fp = tuple(
            (t.key, frozenset(t.nonkey)) for t in single.preview.tables
        )
        assert single_fp in fingerprints

    def test_deterministic_across_runs(self, fig1_graph):
        a = discover_preview(fig1_graph, k=2, n=6)
        b = discover_preview(fig1_graph, k=2, n=6)
        assert a.preview == b.preview
        assert a.score == b.score


class TestEntropyValueSemantics:
    def test_multivalued_sets_not_elements(self):
        """{A, B} vs {A}: grouped as distinct sets, per the paper's note."""
        b = EntityGraphBuilder("sets")
        b.entity("f1", "FILM").entity("f2", "FILM").entity("f3", "FILM")
        b.entity("A", "GENRE").entity("B", "GENRE")
        b.relate("f1", "Genres", "A")
        b.relate("f1", "Genres", "B")
        b.relate("f2", "Genres", "A")
        b.relate("f2", "Genres", "B")
        b.relate("f3", "Genres", "A")
        graph = b.build()
        from repro.scoring import attribute_entropy

        rel = RelationshipTypeId("Genres", "FILM", "GENRE")
        value = attribute_entropy(graph, "FILM", outgoing(rel))
        # Two groups {A,B}x2 and {A}x1 over 3 tuples (the paper's 0.28
        # example shape, not 2/5-3/5 element counting).
        expected = (2 / 3) * math.log10(3 / 2) + (1 / 3) * math.log10(3)
        assert value == pytest.approx(expected)

    def test_duplicate_edges_make_multiset_but_set_value(self):
        b = EntityGraphBuilder("dupes")
        b.entity("f", "FILM").entity("A", "GENRE")
        b.relate("f", "Genres", "A")
        b.relate("f", "Genres", "A")  # parallel duplicate edge
        graph = b.build()
        rel = RelationshipTypeId("Genres", "FILM", "GENRE")
        assert graph.relationship_count(rel) == 2  # coverage sees both
        assert graph.attribute_value("f", outgoing(rel)) == {"A"}  # set value
