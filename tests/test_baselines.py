"""Tests for repro.baselines: relationalization, YPS09, curated previews."""

import pytest

from repro.baselines import (
    YPS09Summarizer,
    expert_preview,
    gold_preview,
    present_schema_graph,
    relationalize,
)
from repro.baselines.yps09 import (
    column_entropy,
    information_content,
    join_graph,
    table_importance,
    weighted_k_center,
)
from repro.baselines.yps09.kcenter import assign_clusters
from repro.baselines.yps09.similarity import distance_matrix
from repro.datasets import load_domain, load_schema
from repro.exceptions import ReproError
from repro.model import SchemaGraph


@pytest.fixture(scope="module")
def fig1_tables(request):
    fig1_graph = request.getfixturevalue("fig1_graph")
    schema = SchemaGraph.from_entity_graph(fig1_graph)
    return relationalize(fig1_graph, schema)


class TestRelationalize:
    def test_one_table_per_type(self, fig1_graph, fig1_schema):
        tables = relationalize(fig1_graph, fig1_schema)
        assert set(tables) == set(fig1_schema.entity_types())

    def test_row_counts(self, fig1_graph, fig1_schema):
        tables = relationalize(fig1_graph, fig1_schema)
        assert tables["FILM"].row_count == 4
        assert tables["AWARD"].row_count == 2

    def test_column_per_incident_rel(self, fig1_graph, fig1_schema):
        tables = relationalize(fig1_graph, fig1_schema)
        film = tables["FILM"]
        assert len(film.columns) == len(fig1_schema.candidate_attributes("FILM"))
        assert film.width == len(film.columns) + 1

    def test_histograms_count_entities(self, fig1_graph, fig1_schema):
        tables = relationalize(fig1_graph, fig1_schema)
        film = tables["FILM"]
        genres = next(c for c in film.columns if c.attribute.name == "Genres")
        assert genres.non_empty == 3  # Hancock has no genre
        assert genres.distinct_values == 2


class TestYPS09Importance:
    def test_column_entropy_zero_for_constant(self, fig1_graph, fig1_schema):
        tables = relationalize(fig1_graph, fig1_schema)
        award = tables["AWARD"]
        # Each award has exactly one distinct winner set -> entropy log(2)
        # over two distinct values, not zero; but a single-valued column is 0.
        for column in award.columns:
            assert column_entropy(column) >= 0.0

    def test_information_content_grows_with_rows(self, fig1_tables):
        assert information_content(fig1_tables["FILM"]) > information_content(
            fig1_tables["AWARD"]
        )

    def test_join_graph_connects_joined_tables(self, fig1_tables):
        graph = join_graph(fig1_tables)
        assert graph.has_edge("FILM", "FILM ACTOR")
        assert not graph.has_edge("FILM GENRE", "AWARD")

    def test_importance_sums_to_one(self, fig1_tables):
        importance = table_importance(fig1_tables)
        assert sum(importance.values()) == pytest.approx(1.0)

    def test_film_most_important(self, fig1_tables):
        importance = table_importance(fig1_tables)
        assert max(importance, key=importance.get) == "FILM"


class TestKCenter:
    DIST = {
        "a": {"a": 0, "b": 1, "c": 2, "d": 3},
        "b": {"a": 1, "b": 0, "c": 1, "d": 2},
        "c": {"a": 2, "b": 1, "c": 0, "d": 1},
        "d": {"a": 3, "b": 2, "c": 1, "d": 0},
    }
    WEIGHTS = {"a": 10.0, "b": 1.0, "c": 1.0, "d": 5.0}

    def test_first_center_most_important(self):
        centers = weighted_k_center(["a", "b", "c", "d"], self.WEIGHTS, self.DIST, 2)
        assert centers[0] == "a"

    def test_second_center_weighted_far(self):
        centers = weighted_k_center(["a", "b", "c", "d"], self.WEIGHTS, self.DIST, 2)
        assert centers[1] == "d"  # weight 5 x dist 3 beats others

    def test_assignment_nearest(self):
        centers = ["a", "d"]
        assignment = assign_clusters(["a", "b", "c", "d"], centers, self.DIST)
        assert assignment["b"] == "a"
        assert assignment["c"] == "d"

    def test_k_validation(self):
        with pytest.raises(ReproError):
            weighted_k_center(["a"], self.WEIGHTS, self.DIST, 0)
        with pytest.raises(ReproError):
            weighted_k_center(["a"], self.WEIGHTS, self.DIST, 5)


class TestYPS09EndToEnd:
    def test_summarize_film_domain(self):
        graph = load_domain("architecture")
        schema = load_schema("architecture")
        summarizer = YPS09Summarizer(graph, schema)
        summary = summarizer.summarize(k=4)
        assert len(summary.centers) == 4
        # Every type is assigned to some center.
        assert set(summary.assignment) == set(schema.entity_types())
        # Summary tables are full-width.
        for center in summary.centers:
            assert len(summary.attributes[center]) == len(
                schema.candidate_attributes(center)
            )

    def test_ranked_types_deterministic(self):
        graph = load_domain("architecture")
        schema = load_schema("architecture")
        a = YPS09Summarizer(graph, schema).ranked_types()
        b = YPS09Summarizer(graph, schema).ranked_types()
        assert a == b

    def test_distance_matrix_metric_properties(self):
        graph = load_domain("basketball")
        schema = load_schema("basketball")
        tables = relationalize(graph, schema)
        matrix = distance_matrix(tables)
        for a in matrix:
            assert matrix[a][a] == 0
            for b in matrix[a]:
                assert matrix[a][b] == matrix[b][a]
                assert matrix[a][b] >= 0


class TestCuratedPreviews:
    def test_gold_preview_resolves(self):
        schema = load_schema("film")
        preview = gold_preview("film", schema)
        assert preview.table_count == 6
        keys = set(preview.keys())
        assert "FILM" in keys and "FILM ACTOR" in keys

    def test_gold_preview_attributes_match_table10(self):
        schema = load_schema("film")
        preview = gold_preview("film", schema)
        film = preview.table_for("FILM")
        assert {attr.name for attr in film.nonkey} == {
            "Directed By",
            "Tagline",
            "Initial Release Date",
        }

    def test_expert_preview_overlap(self):
        from repro.datasets import gold_key_attributes

        schema = load_schema("music")
        preview = expert_preview("music", schema)
        gold = set(gold_key_attributes("music"))
        expert = set(preview.keys())
        # Tables 22/23: music has the highest overlap (5 of 6).
        assert len(gold & expert) == 5

    def test_expert_preview_width_capped(self):
        schema = load_schema("tv")
        preview = expert_preview("tv", schema, attributes_per_table=2)
        assert all(table.width <= 2 for table in preview.tables)


class TestSchemaGraphBaseline:
    def test_presentation_sizes(self, fig1_schema):
        p = present_schema_graph(fig1_schema)
        assert len(p.entity_types) == 6
        assert len(p.relationship_types) == 5
        assert p.display_items == 11

    def test_text_mentions_everything(self, fig1_schema):
        p = present_schema_graph(fig1_schema)
        assert "FILM" in p.text
        assert "Genres" in p.text
        assert "[5]" in p.text  # Genres edge weight
