"""Unit tests for repro.model.entity_graph and repro.model.ids/attributes."""

import pytest

from repro.exceptions import (
    ModelError,
    SchemaViolationError,
    UnknownEntityError,
    UnknownRelationshipTypeError,
    UnknownTypeError,
)
from repro.model import (
    Direction,
    EntityGraph,
    RelationshipTypeId,
    incoming,
    outgoing,
    parse_qualified_name,
    qualified_name,
)

ACTOR = RelationshipTypeId("Actor", "FILM ACTOR", "FILM")
DIRECTOR = RelationshipTypeId("Director", "FILM DIRECTOR", "FILM")


@pytest.fixture
def graph():
    g = EntityGraph("test")
    g.add_entity("Will Smith", ["FILM ACTOR"])
    g.add_entity("MIB", ["FILM"])
    g.add_entity("Sonnenfeld", ["FILM DIRECTOR"])
    g.add_relationship("Will Smith", "MIB", ACTOR)
    g.add_relationship("Sonnenfeld", "MIB", DIRECTOR)
    return g


class TestRelationshipTypeId:
    def test_same_name_different_types_distinct(self):
        a = RelationshipTypeId("Award Winners", "FILM ACTOR", "AWARD")
        b = RelationshipTypeId("Award Winners", "FILM DIRECTOR", "AWARD")
        assert a != b

    def test_qualified_name_round_trip(self):
        assert parse_qualified_name(qualified_name(ACTOR)) == ACTOR

    def test_parse_malformed_raises(self):
        with pytest.raises(ModelError):
            parse_qualified_name("only|two")

    def test_reversed(self):
        rev = ACTOR.reversed()
        assert rev.source_type == "FILM"
        assert rev.target_type == "FILM ACTOR"


class TestNonKeyAttribute:
    def test_key_and_target_types(self):
        out = outgoing(ACTOR)
        assert out.key_type() == "FILM ACTOR"
        assert out.target_type() == "FILM"
        inc = incoming(ACTOR)
        assert inc.key_type() == "FILM"
        assert inc.target_type() == "FILM ACTOR"

    def test_direction_flip(self):
        assert Direction.OUT.flipped() is Direction.IN
        assert Direction.IN.flipped() is Direction.OUT


class TestEntities:
    def test_multi_type_entity(self, graph):
        graph.add_entity("Will Smith", ["FILM PRODUCER"])
        assert graph.types_of("Will Smith") == {"FILM ACTOR", "FILM PRODUCER"}
        assert "Will Smith" in graph.entities_of_type("FILM PRODUCER")

    def test_typeless_entity_rejected(self, graph):
        with pytest.raises(SchemaViolationError):
            graph.add_entity("nobody", [])

    def test_type_count(self, graph):
        assert graph.type_count("FILM") == 1
        with pytest.raises(UnknownTypeError):
            graph.type_count("GHOST")

    def test_unknown_entity_raises(self, graph):
        with pytest.raises(UnknownEntityError):
            graph.types_of("ghost")


class TestRelationships:
    def test_endpoint_type_validation(self, graph):
        bad = RelationshipTypeId("Actor", "FILM ACTOR", "FILM")
        with pytest.raises(SchemaViolationError):
            graph.add_relationship("Sonnenfeld", "MIB", bad)  # wrong source type
        with pytest.raises(SchemaViolationError):
            graph.add_relationship("Will Smith", "Sonnenfeld", bad)  # wrong target

    def test_unknown_endpoints_raise(self, graph):
        with pytest.raises(UnknownEntityError):
            graph.add_relationship("ghost", "MIB", ACTOR)
        with pytest.raises(UnknownEntityError):
            graph.add_relationship("Will Smith", "ghost", ACTOR)

    def test_parallel_relationships_counted(self, graph):
        graph.add_relationship("Will Smith", "MIB", ACTOR)
        assert graph.relationship_count(ACTOR) == 2
        assert graph.edge_count == 3

    def test_unknown_relationship_type_raises(self, graph):
        ghost = RelationshipTypeId("Ghost", "FILM", "FILM")
        with pytest.raises(UnknownRelationshipTypeError):
            graph.relationship_count(ghost)


class TestAdjacency:
    def test_targets_and_sources(self, graph):
        assert graph.targets("Will Smith", ACTOR) == ["MIB"]
        assert graph.sources("MIB", ACTOR) == ["Will Smith"]
        assert graph.targets("MIB", ACTOR) == []

    def test_attribute_value_out(self, graph):
        assert graph.attribute_value("Will Smith", outgoing(ACTOR)) == {"MIB"}

    def test_attribute_value_in(self, graph):
        value = graph.attribute_value("MIB", incoming(ACTOR))
        assert value == {"Will Smith"}

    def test_attribute_value_empty(self, graph):
        assert graph.attribute_value("Sonnenfeld", outgoing(ACTOR)) == frozenset()


class TestAggregates:
    def test_type_pair_weights(self, graph):
        weights = graph.type_pair_weights()
        assert weights[tuple(sorted(("FILM ACTOR", "FILM")))] == 1
        assert weights[tuple(sorted(("FILM DIRECTOR", "FILM")))] == 1

    def test_stats(self, graph, fig1_graph):
        assert graph.stats() == {
            "entities": 3,
            "relationships": 2,
            "entity_types": 3,
            "relationship_types": 2,
        }
        # Fig. 1: 13 entities, 18 relationships, 6 types, 5 rel types.
        assert fig1_graph.stats() == {
            "entities": 13,
            "relationships": 18,
            "entity_types": 6,
            "relationship_types": 5,
        }
