"""Tests for repro.datasets: profiles, generators, gold standard, loaders."""

import pytest

from repro.datasets import (
    DOMAINS,
    FREEBASE_PROFILES,
    GOLD_STANDARD,
    allocate_counts,
    expert_key_attributes,
    generate_domain,
    gold_key_attributes,
    gold_size_constraint,
    load_domain,
    load_domain_file,
    load_schema,
    random_entity_graph,
    random_schema_graph,
    save_domain,
    table2_row,
    zipf_weights,
)
from repro.exceptions import DatasetError
from repro.model import SchemaGraph


class TestZipfHelpers:
    def test_weights_normalized(self):
        weights = zipf_weights(10)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_zero_count(self):
        assert zipf_weights(0) == []

    def test_allocate_minimum(self):
        counts = allocate_counts(10, zipf_weights(5), minimum=3)
        assert all(c >= 3 for c in counts)

    def test_allocate_negative_rejected(self):
        with pytest.raises(DatasetError):
            allocate_counts(-1, [1.0])


class TestRandomGenerators:
    def test_entity_graph_shape(self):
        graph = random_entity_graph(
            num_types=5, num_rel_types=8, num_entities=60, num_edges=150, seed=3
        )
        stats = graph.stats()
        assert stats["entity_types"] == 5
        assert stats["relationship_types"] == 8

    def test_deterministic(self):
        a = random_entity_graph(4, 6, 40, 80, seed=9)
        b = random_entity_graph(4, 6, 40, 80, seed=9)
        assert a.stats() == b.stats()
        assert sorted(a.entities()) == sorted(b.entities())

    def test_connected_schema(self):
        graph = random_entity_graph(6, 9, 60, 100, seed=1)
        schema = SchemaGraph.from_entity_graph(graph)
        from repro.graph import is_connected

        assert is_connected(schema.multigraph())

    def test_invalid_shapes_rejected(self):
        with pytest.raises(DatasetError):
            random_entity_graph(0, 5, 10, 10)
        with pytest.raises(DatasetError):
            random_entity_graph(5, 2, 10, 10)  # cannot connect
        with pytest.raises(DatasetError):
            random_entity_graph(5, 6, 3, 10)  # fewer entities than types

    def test_random_schema_graph(self):
        schema = random_schema_graph(num_types=7, num_rel_types=11, seed=2)
        assert schema.entity_type_count == 7
        assert schema.relationship_type_count == 11


class TestFreebaseLike:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_schema_sizes_match_table2(self, domain):
        profile = FREEBASE_PROFILES[domain]
        schema = load_schema(domain)
        assert schema.entity_type_count == profile.entity_type_count
        assert schema.relationship_type_count == profile.relationship_type_count

    @pytest.mark.parametrize("domain", ("film", "people"))
    def test_gold_types_present(self, domain):
        schema = load_schema(domain)
        for gold in gold_key_attributes(domain):
            assert schema.has_entity_type(gold)

    @pytest.mark.parametrize("domain", ("film", "tv"))
    def test_expert_types_present(self, domain):
        schema = load_schema(domain)
        for expert in expert_key_attributes(domain):
            assert schema.has_entity_type(expert)

    def test_gold_attributes_resolvable(self):
        schema = load_schema("film")
        for key_type, attrs in GOLD_STANDARD["film"].items():
            names = {a.name for a in schema.candidate_attributes(key_type)}
            for attr in attrs:
                assert attr in names

    def test_deterministic_generation(self):
        a = generate_domain("basketball")
        b = generate_domain("basketball")
        assert a.stats() == b.stats()

    def test_unknown_domain_raises(self):
        with pytest.raises(DatasetError):
            generate_domain("cooking")

    def test_table2_row_reports_paper_columns(self):
        row = table2_row("film")
        assert row["entity_types"] == row["paper_entity_types"] == 63
        assert row["relationship_types"] == row["paper_relationship_types"] == 136

    def test_gold_types_rank_highly_by_coverage(self):
        from repro.scoring import ScoringContext

        schema = load_schema("film")
        context = ScoringContext(schema)
        top10 = [t for t, _ in context.ranked_key_types()[:10]]
        gold = gold_key_attributes("film")
        assert sum(1 for g in gold if g in top10) >= 4

    def test_load_domain_cached(self):
        assert load_domain("basketball") is load_domain("basketball")


class TestGoldStandard:
    def test_five_domains_six_keys(self):
        assert set(GOLD_STANDARD) == {"books", "film", "music", "tv", "people"}
        for domain, tables in GOLD_STANDARD.items():
            assert len(tables) == 6
            for attrs in tables.values():
                assert 1 <= len(attrs) <= 3

    def test_size_constraints_match_table10(self):
        assert gold_size_constraint("film") == (6, 9)
        # Table 10's header says n=15 for books, but the attributes it
        # lists sum to 16 (an off-by-one in the paper); we follow the
        # listed attributes.
        assert gold_size_constraint("books") == (6, 16)
        assert gold_size_constraint("music") == (6, 18)
        assert gold_size_constraint("tv") == (6, 9)
        assert gold_size_constraint("people") == (6, 16)

    def test_expert_overlap_levels(self):
        # Tables 22/23: P@6 between Freebase and Experts per domain.
        expected_overlap = {"books": 2, "film": 3, "music": 5, "tv": 3, "people": 3}
        for domain, expected in expected_overlap.items():
            gold = set(gold_key_attributes(domain))
            expert = set(expert_key_attributes(domain))
            assert len(gold & expert) == expected


class TestLoader:
    @pytest.mark.parametrize("ext", ["tsv", "jsonl"])
    def test_round_trip(self, tmp_path, ext):
        graph = load_domain("basketball")
        path = tmp_path / f"basketball.{ext}"
        rows = save_domain(graph, path)
        assert rows > 0
        clone = load_domain_file(path, name="basketball")
        assert clone.stats() == graph.stats()

    def test_unsupported_extension(self, tmp_path):
        graph = load_domain("basketball")
        with pytest.raises(DatasetError):
            save_domain(graph, tmp_path / "data.parquet")
        with pytest.raises(DatasetError):
            load_domain_file(tmp_path / "data.parquet")
