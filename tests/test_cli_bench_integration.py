"""CLI, bench-utility and end-to-end integration tests."""

import pytest

from repro.bench import Timing, format_series, format_table, speedup, time_callable
from repro.cli import main


class TestCli:
    def test_domain_preview(self, capsys):
        assert main(["--domain", "basketball", "--tables", "2", "--attrs", "4"]) == 0
        out = capsys.readouterr().out
        assert "preview: k=2 n=4" in out
        assert "BASKETBALL" in out

    def test_tight_flag(self, capsys):
        code = main(
            ["--domain", "architecture", "-k", "2", "-n", "4", "--tight", "2"]
        )
        assert code == 0
        assert "apriori" in capsys.readouterr().out

    def test_file_source(self, tmp_path, capsys):
        from repro.datasets import load_domain, save_domain

        path = tmp_path / "bb.tsv"
        save_domain(load_domain("basketball"), path)
        assert main(["--file", str(path), "-k", "2", "-n", "4"]) == 0

    def test_infeasible_errors_cleanly(self, capsys):
        code = main(
            ["--domain", "basketball", "-k", "5", "-n", "10", "--diverse", "5"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_scorer_flags(self, capsys):
        code = main(
            [
                "--domain",
                "basketball",
                "-k",
                "2",
                "-n",
                "4",
                "--key-scorer",
                "random_walk",
                "--nonkey-scorer",
                "entropy",
            ]
        )
        assert code == 0


class TestBenchUtils:
    def test_time_callable_floors_at_1ms(self):
        timing = time_callable(lambda: None, label="noop", runs=2)
        assert timing.milliseconds >= 1.0
        assert timing.runs == 2

    def test_speedup(self):
        base = Timing("slow", 100.0, 3)
        fast = Timing("fast", 10.0, 3)
        assert speedup(base, fast) == pytest.approx(10.0)

    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.23456], ["b", 2]], title="demo"
        )
        assert "demo" in text
        assert "alpha" in text
        assert "1.235" in text

    def test_format_series(self):
        text = format_series("dp", [1, 2], [0.5, 0.25])
        assert text == "dp: 1=0.500 2=0.250"

    def test_results_dir_override(self, tmp_path, monkeypatch):
        from repro.bench import results_dir, write_result

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
        path = write_result("probe.txt", "hello")
        assert path.read_text() == "hello\n"
        assert path.parent == results_dir()


class TestEndToEnd:
    def test_store_to_preview_pipeline(self, tmp_path):
        """Full pipeline: generate -> persist -> reload -> discover -> render."""
        from repro.core import discover_preview, render_preview
        from repro.datasets import load_domain, load_domain_file, save_domain

        source = load_domain("architecture")
        path = tmp_path / "arch.jsonl"
        save_domain(source, path)
        graph = load_domain_file(path, name="architecture")
        result = discover_preview(graph, k=3, n=7, key_scorer="random_walk")
        assert result.preview.table_count == 3
        assert result.preview.attribute_count <= 7
        text = render_preview(result.preview, graph, sample_size=2)
        assert text.count("+-") >= 3  # three rendered tables

    def test_all_scorer_combinations_on_domain(self):
        from repro.core import discover_preview
        from repro.datasets import load_domain

        graph = load_domain("basketball")
        scores = {}
        for key_scorer in ("coverage", "random_walk"):
            for nonkey_scorer in ("coverage", "entropy"):
                result = discover_preview(
                    graph,
                    k=2,
                    n=5,
                    key_scorer=key_scorer,
                    nonkey_scorer=nonkey_scorer,
                )
                scores[(key_scorer, nonkey_scorer)] = result.score
        assert len(scores) == 4
        assert all(score > 0 for score in scores.values())

    def test_gold_domain_discovery_matches_gold_keys(self):
        """Coverage discovery on the film domain recovers gold entrance types."""
        from repro.core import discover_preview
        from repro.datasets import gold_key_attributes, load_domain

        graph = load_domain("film")
        result = discover_preview(graph, k=6, n=9)
        gold = set(gold_key_attributes("film"))
        found = set(result.preview.keys())
        assert len(gold & found) >= 4
