"""Unit tests for repro.graph.simple (UndirectedGraph)."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph import UndirectedGraph


@pytest.fixture
def graph():
    g = UndirectedGraph()
    g.add_edge("a", "b", 2.0)
    g.add_edge("b", "c", 1.0)
    g.add_edge("a", "a", 5.0)  # self loop
    return g


class TestEdges:
    def test_symmetric_weight(self, graph):
        assert graph.weight("a", "b") == graph.weight("b", "a") == 2.0

    def test_weight_accumulates(self, graph):
        graph.add_edge("a", "b", 3.0)
        assert graph.weight("a", "b") == 5.0

    def test_self_loop_stored_once(self, graph):
        assert graph.weight("a", "a") == 5.0

    def test_missing_edge_weight_zero(self, graph):
        assert graph.weight("a", "c") == 0.0

    def test_weight_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.weight("a", "ghost")

    def test_edge_count_counts_loops_once(self, graph):
        assert graph.edge_count == 3

    def test_edges_yields_each_once(self, graph):
        undirected = {frozenset((u, v)) for u, v, _w in graph.edges()}
        assert undirected == {
            frozenset(("a", "b")),
            frozenset(("b", "c")),
            frozenset(("a",)),
        }


class TestAdjacency:
    def test_neighbors(self, graph):
        assert set(graph.neighbors("b")) == {"a", "c"}

    def test_self_loop_is_own_neighbor(self, graph):
        assert "a" in set(graph.neighbors("a"))

    def test_weighted_degree(self, graph):
        assert graph.weighted_degree("a") == pytest.approx(7.0)
        assert graph.weighted_degree("b") == pytest.approx(3.0)

    def test_degree_counts_distinct_neighbors(self, graph):
        assert graph.degree("b") == 2

    def test_neighbors_missing_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            list(graph.neighbors("ghost"))


class TestSubgraph:
    def test_subgraph_preserves_weights(self, graph):
        sub = graph.subgraph(["a", "b"])
        assert sub.weight("a", "b") == 2.0
        assert not sub.has_node("c")

    def test_isolated_node(self):
        g = UndirectedGraph()
        g.add_node("solo")
        assert g.node_count == 1
        assert g.edge_count == 0
        assert g.weighted_degree("solo") == 0.0
