"""Unit tests for repro.model.builder and repro.model.triples."""

import pytest

from repro.exceptions import ModelError, SchemaViolationError, UnknownEntityError
from repro.model import (
    EntityGraphBuilder,
    TYPE_PREDICATE,
    Triple,
    entity_graph_to_triples,
    triples_to_entity_graph,
    validate_round_trip,
)


class TestBuilder:
    def test_chaining(self):
        graph = (
            EntityGraphBuilder("t")
            .entity("a", "A")
            .entity("b", "B")
            .build()
        )
        assert graph.entity_count == 2

    def test_relate_infers_unique_type(self):
        b = EntityGraphBuilder("t").entity("a", "A").entity("b", "B")
        rel = b.relate("a", "likes", "b")
        assert rel.source_type == "A"
        assert rel.target_type == "B"

    def test_relate_requires_disambiguation(self):
        b = EntityGraphBuilder("t").entity("a", "A", "A2").entity("b", "B")
        with pytest.raises(SchemaViolationError):
            b.relate("a", "likes", "b")
        rel = b.relate("a", "likes", "b", source_type="A2")
        assert rel.source_type == "A2"

    def test_relate_rejects_wrong_declared_type(self):
        b = EntityGraphBuilder("t").entity("a", "A").entity("b", "B")
        with pytest.raises(SchemaViolationError):
            b.relate("a", "likes", "b", source_type="NOT_A")

    def test_relate_unknown_entity(self):
        b = EntityGraphBuilder("t").entity("a", "A")
        with pytest.raises(UnknownEntityError):
            b.relate("a", "likes", "ghost")

    def test_entity_requires_types(self):
        with pytest.raises(SchemaViolationError):
            EntityGraphBuilder("t").entity("a")

    def test_rel_type_interned(self):
        b = EntityGraphBuilder("t").entity("a", "A").entity("b", "B")
        r1 = b.relate("a", "likes", "b")
        r2 = b.relate("a", "likes", "b")
        assert r1 is r2

    def test_relate_many(self):
        b = EntityGraphBuilder("t").entity("a", "A").entity("b", "B")
        b.relate_many([("a", "likes", "b"), ("a", "knows", "b")])
        assert b.build().edge_count == 2

    def test_entities_bulk(self):
        b = EntityGraphBuilder("t").entities([("a", ["A"]), ("b", ["B", "C"])])
        graph = b.build()
        assert graph.types_of("b") == {"B", "C"}


class TestTriples:
    def test_round_trip_fig1(self, fig1_graph):
        assert validate_round_trip(fig1_graph)

    def test_typing_triples_first(self, fig1_graph):
        triples = list(entity_graph_to_triples(fig1_graph))
        first_rel = next(
            i for i, t in enumerate(triples) if t.predicate != TYPE_PREDICATE
        )
        assert all(t.predicate == TYPE_PREDICATE for t in triples[:first_rel])

    def test_decode_bad_predicate_raises(self):
        triples = [
            Triple("a", TYPE_PREDICATE, "A"),
            Triple("a", "not-qualified", "a"),
        ]
        with pytest.raises(ModelError):
            triples_to_entity_graph(triples)

    def test_decode_preserves_multiplicity(self):
        triples = [
            Triple("a", TYPE_PREDICATE, "A"),
            Triple("b", TYPE_PREDICATE, "B"),
            Triple("a", "A|r|B", "b"),
            Triple("a", "A|r|B", "b"),
        ]
        graph = triples_to_entity_graph(triples)
        assert graph.edge_count == 2
