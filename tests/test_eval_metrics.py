"""Tests for ranking metrics, correlation and hypothesis tests."""

import math

import pytest

from repro.eval import (
    average_precision,
    correlation_strength,
    dcg_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    normal_cdf,
    optimal_average_precision,
    optimal_precision_at_k,
    pearson_correlation,
    precision_at_k,
    precision_curve,
    reciprocal_rank,
    two_proportion_z_test,
)
from repro.exceptions import EvaluationError

RANKING = ["a", "b", "c", "d", "e", "f"]
GOLD = {"a", "c", "f"}


class TestPrecision:
    def test_values(self):
        assert precision_at_k(RANKING, GOLD, 1) == 1.0
        assert precision_at_k(RANKING, GOLD, 2) == 0.5
        assert precision_at_k(RANKING, GOLD, 3) == pytest.approx(2 / 3)
        assert precision_at_k(RANKING, GOLD, 6) == 0.5

    def test_short_ranking(self):
        assert precision_at_k(["a"], GOLD, 5) == pytest.approx(1 / 5)

    def test_optimal_caps_at_gold_size(self):
        # Paper: "P@10 can be at most 0.6, since there are only 6 gold".
        assert optimal_precision_at_k(6, 10) == 0.6
        assert optimal_precision_at_k(6, 3) == 1.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k(RANKING, GOLD, 0)

    def test_curve_length(self):
        assert len(precision_curve(RANKING, GOLD, 10)) == 10


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "c", "f", "b"], GOLD, 4) == pytest.approx(1.0)

    def test_paper_formula(self):
        # AvgP@3 = (P@1*1 + P@3*1) / 3 = (1 + 2/3) / 3
        assert average_precision(RANKING, GOLD, 3) == pytest.approx((1 + 2 / 3) / 3)

    def test_empty_gold(self):
        assert average_precision(RANKING, set(), 3) == 0.0

    def test_optimal(self):
        assert optimal_average_precision(6, 3) == pytest.approx(0.5)
        assert optimal_average_precision(6, 10) == 1.0


class TestNdcg:
    def test_paper_dcg_formula(self):
        # DCG uses rel_1 + rel_i / log2(i) from i = 2.
        assert dcg_at_k([1, 1, 1], 3) == pytest.approx(1 + 1 / math.log2(2) + 1 / math.log2(3))

    def test_perfect_is_one(self):
        assert ndcg_at_k(["a", "c", "f"], GOLD, 3) == pytest.approx(1.0)

    def test_worse_ranking_lower(self):
        good = ndcg_at_k(["a", "c", "b", "f"], GOLD, 4)
        bad = ndcg_at_k(["b", "d", "a", "c"], GOLD, 4)
        assert good > bad

    def test_no_gold_zero(self):
        assert ndcg_at_k(RANKING, set(), 4) == 0.0


class TestMrr:
    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], GOLD) == 0.5
        assert reciprocal_rank(["x", "y"], GOLD) == 0.0

    def test_mean(self):
        value = mean_reciprocal_rank([["a"], ["x", "c"]], [GOLD, GOLD])
        assert value == pytest.approx((1.0 + 0.5) / 2)

    def test_empty(self):
        assert mean_reciprocal_rank([], []) == 0.0


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_zero_variance(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            pearson_correlation([1], [1, 2])

    def test_empty(self):
        with pytest.raises(EvaluationError):
            pearson_correlation([], [])

    def test_strength_bands(self):
        assert correlation_strength(0.7) == "strong"
        assert correlation_strength(0.4) == "medium"
        assert correlation_strength(0.2) == "small"
        assert correlation_strength(0.05) == "negligible"
        assert correlation_strength(-0.6) == "strong negative"


class TestZTest:
    def test_normal_cdf(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.6449) == pytest.approx(0.95, abs=1e-3)

    def test_clear_difference_significant(self):
        result = two_proportion_z_test(45, 50, 25, 50)
        assert result.z > 0
        assert result.significant
        assert result.winner == "A"

    def test_no_difference(self):
        result = two_proportion_z_test(30, 50, 30, 50)
        assert result.z == pytest.approx(0.0)
        assert not result.significant
        assert result.winner == "-"

    def test_direction(self):
        result = two_proportion_z_test(25, 50, 45, 50)
        assert result.z < 0
        assert result.winner == "B"

    def test_paper_magnitude(self):
        # Table 7 Tight vs Diverse: c=0.979 (n=48) vs 0.730 (n=52) -> z~3.5.
        result = two_proportion_z_test(47, 48, 38, 52)
        assert result.z == pytest.approx(3.48, abs=0.15)
        assert result.p_value < 0.001

    def test_invalid_inputs(self):
        with pytest.raises(EvaluationError):
            two_proportion_z_test(5, 0, 1, 10)
        with pytest.raises(EvaluationError):
            two_proportion_z_test(11, 10, 1, 10)

    def test_degenerate_all_success(self):
        result = two_proportion_z_test(10, 10, 10, 10)
        assert not result.significant
