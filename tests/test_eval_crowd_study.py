"""Tests for the crowd simulation and the user-study simulation."""

import pytest

from repro.eval import (
    APPROACHES,
    PARTICIPANTS,
    attr_fact,
    cross_domain_likert_ranking,
    generate_questions,
    measure_crowd_correlation,
    presentation_from_preview,
    run_crowd_study,
    run_user_study,
    simulate_response,
    type_fact,
)
from repro.eval.likert import QUESTION_KEYS, mean_scores, rank_approaches
from repro.exceptions import EvaluationError


class TestCrowdStudy:
    POPULATIONS = {f"T{i}": 1000 // (i + 1) for i in range(20)}

    def test_shape(self):
        study = run_crowd_study(self.POPULATIONS, seed=0, pairs=50)
        assert len(study.pairs) == 50
        assert study.total_opinions == 50 * 20

    def test_deterministic(self):
        a = run_crowd_study(self.POPULATIONS, seed=3)
        b = run_crowd_study(self.POPULATIONS, seed=3)
        assert a.pairs == b.pairs
        assert a.votes == b.votes

    def test_needs_two_types(self):
        with pytest.raises(EvaluationError):
            run_crowd_study({"ONLY": 5})

    def test_good_ranking_correlates_positively(self):
        study = run_crowd_study(self.POPULATIONS, seed=1)
        ranking = sorted(
            self.POPULATIONS, key=self.POPULATIONS.get, reverse=True
        )
        assert measure_crowd_correlation(study, ranking) > 0.5

    def test_reversed_ranking_correlates_negatively(self):
        study = run_crowd_study(self.POPULATIONS, seed=1)
        ranking = sorted(self.POPULATIONS, key=self.POPULATIONS.get)
        assert measure_crowd_correlation(study, ranking) < -0.5

    def test_pair_cap_on_small_domains(self):
        study = run_crowd_study({"A": 5, "B": 3, "C": 1}, seed=0, pairs=50)
        assert len(study.pairs) == 3  # C(3, 2)


class TestExistenceQuestions:
    def test_mix_of_positive_negative(self, fig1_schema):
        questions = generate_questions(fig1_schema, 20, seed=0)
        answers = [q.answer for q in questions]
        assert any(answers) and not all(answers)
        assert len(questions) == 20

    def test_positive_facts_are_true(self, fig1_schema):
        from repro.eval.existence import all_attribute_facts

        truth = {fact for fact, _ in all_attribute_facts(fig1_schema)}
        for q in generate_questions(fig1_schema, 30, seed=1):
            assert (q.fact in truth) == q.answer

    def test_deterministic(self, fig1_schema):
        a = generate_questions(fig1_schema, 12, seed=7)
        b = generate_questions(fig1_schema, 12, seed=7)
        assert a == b

    def test_count_validation(self, fig1_schema):
        with pytest.raises(EvaluationError):
            generate_questions(fig1_schema, 0)


class TestPresentations:
    def test_preview_presentation_facts(self, fig1_graph):
        from repro.core import discover_preview

        preview = discover_preview(fig1_graph, k=2, n=6).preview
        p = presentation_from_preview("Concise", preview)
        assert p.shows(type_fact("FILM"))
        assert p.shows(attr_fact("FILM", "Genres"))
        assert not p.full_coverage
        assert p.display_items == 2 + preview.attribute_count

    def test_schema_presentation_full(self, fig1_schema):
        from repro.eval import presentation_from_schema_graph

        p = presentation_from_schema_graph("Graph", fig1_schema)
        assert p.full_coverage
        for type_name in fig1_schema.entity_types():
            assert p.shows(type_fact(type_name))


class TestLikert:
    def test_scores_in_range(self):
        import random

        rng = random.Random(0)
        for approach in APPROACHES:
            response = simulate_response(approach, rng)
            assert all(1 <= s <= 5 for s in response.scores)

    def test_unknown_approach(self):
        import random

        with pytest.raises(EvaluationError):
            simulate_response("Votes", random.Random(0))

    def test_mean_scores(self):
        import random

        rng = random.Random(1)
        responses = [simulate_response("Graph", rng) for _ in range(40)]
        means = mean_scores(responses)
        assert set(means) == set(QUESTION_KEYS)
        # Graph has the highest Q2 prior (4.45).
        assert means["Q2"] > 3.8

    def test_mean_scores_empty_raises(self):
        with pytest.raises(EvaluationError):
            mean_scores([])

    def test_rank_unknown_question(self):
        with pytest.raises(EvaluationError):
            rank_approaches({}, "Q9")


class TestUserStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_user_study("people", seed=7)

    def test_sample_sizes_match_table5(self, result):
        rates = result.conversion_rates()
        for approach in APPROACHES:
            n, _rate = rates[approach]
            assert n == PARTICIPANTS[approach] * 4

    def test_conversion_rates_plausible(self, result):
        for approach, (_n, rate) in result.conversion_rates().items():
            assert 0.4 <= rate <= 1.0, approach

    def test_time_ranking_contains_all(self, result):
        ranking = result.time_ranking()
        assert sorted(ranking) == sorted(APPROACHES)

    def test_tight_among_fastest(self, result):
        # Table 6: Tight is first or second in 4 of 5 domains.
        assert result.time_ranking().index("Tight") <= 2

    def test_graph_among_slowest(self, result):
        assert result.time_ranking().index("Graph") >= 4

    def test_pairwise_tests_cover_all_pairs(self, result):
        tests = result.pairwise_z_tests()
        assert len(tests) == 21  # C(7, 2)

    def test_deterministic(self):
        a = run_user_study("people", seed=3)
        b = run_user_study("people", seed=3)
        assert a.conversion_rates() == b.conversion_rates()

    def test_likert_means_shape(self, result):
        means = result.likert_means()
        assert set(means) == set(APPROACHES)

    def test_cross_domain_ranking(self, result):
        rankings = cross_domain_likert_ranking([result])
        assert set(rankings) == set(QUESTION_KEYS)
        for ranking in rankings.values():
            assert sorted(ranking) == sorted(APPROACHES)
