"""Unit tests for repro.graph.components and repro.graph.distance."""

import math

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph import (
    INFINITY,
    DirectedMultigraph,
    DistanceOracle,
    UndirectedGraph,
    connected_components,
    is_connected,
    largest_component,
)


@pytest.fixture
def two_islands():
    g = UndirectedGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("x", "y")
    g.add_node("solo")
    return g


class TestComponents:
    def test_component_count(self, two_islands):
        assert len(connected_components(two_islands)) == 3

    def test_largest_first(self, two_islands):
        components = connected_components(two_islands)
        assert components[0] == {"a", "b", "c"}

    def test_is_connected(self, two_islands):
        assert not is_connected(two_islands)
        g = UndirectedGraph()
        g.add_edge("p", "q")
        assert is_connected(g)

    def test_empty_graph_not_connected(self):
        assert not is_connected(UndirectedGraph())
        assert largest_component(UndirectedGraph()) == set()

    def test_directed_graph_uses_undirected_view(self):
        g = DirectedMultigraph()
        g.add_edge("a", "b")
        g.add_edge("c", "b")
        assert is_connected(g)


class TestDistanceOracle:
    @pytest.fixture
    def oracle(self, two_islands):
        return DistanceOracle(two_islands)

    def test_basic_distances(self, oracle):
        assert oracle.distance("a", "c") == 2
        assert oracle.distance("a", "a") == 0

    def test_unreachable_is_infinite(self, oracle):
        assert oracle.distance("a", "x") == INFINITY
        assert math.isinf(oracle.distance("solo", "a"))

    def test_within_and_at_least(self, oracle):
        assert oracle.within("a", "b", 1)
        assert not oracle.within("a", "c", 1)
        assert oracle.at_least("a", "c", 2)
        # Unreachable pairs satisfy every diverse constraint...
        assert oracle.at_least("a", "x", 100)
        # ...and fail every tight constraint.
        assert not oracle.within("a", "x", 100)

    def test_missing_node_raises(self, oracle):
        with pytest.raises(NodeNotFoundError):
            oracle.distance("ghost", "a")
        with pytest.raises(NodeNotFoundError):
            oracle.distance("a", "ghost")

    def test_pairs_within(self, oracle):
        pairs = {frozenset(p) for p in oracle.pairs_within(1)}
        assert frozenset(("a", "b")) in pairs
        assert frozenset(("a", "c")) not in pairs

    def test_pairs_at_least(self, oracle):
        pairs = {frozenset(p) for p in oracle.pairs_at_least(2)}
        assert frozenset(("a", "c")) in pairs
        assert frozenset(("a", "x")) in pairs  # infinite distance
        assert frozenset(("a", "b")) not in pairs

    def test_matrix_contains_finite_entries_only(self, oracle):
        matrix = oracle.matrix()
        assert matrix["a"]["c"] == 2
        assert "x" not in matrix["a"]
