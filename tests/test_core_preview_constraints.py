"""Unit tests for repro.core.preview and repro.core.constraints."""

import pytest

from repro.core import (
    DistanceConstraint,
    DistanceMode,
    Preview,
    PreviewTable,
    SizeConstraint,
)
from repro.exceptions import DiscoveryError, InvalidConstraintError
from repro.model import RelationshipTypeId, incoming, outgoing

ACTOR = RelationshipTypeId("Actor", "FILM ACTOR", "FILM")
GENRES = RelationshipTypeId("Genres", "FILM", "FILM GENRE")


def film_table():
    return PreviewTable(key="FILM", nonkey=(incoming(ACTOR), outgoing(GENRES)))


def actor_table():
    return PreviewTable(key="FILM ACTOR", nonkey=(outgoing(ACTOR),))


class TestPreviewTable:
    def test_requires_nonkey(self):
        with pytest.raises(DiscoveryError):
            PreviewTable(key="FILM", nonkey=())

    def test_rejects_duplicates(self):
        with pytest.raises(DiscoveryError):
            PreviewTable(key="FILM", nonkey=(outgoing(GENRES), outgoing(GENRES)))

    def test_rejects_foreign_attribute(self):
        with pytest.raises(DiscoveryError):
            PreviewTable(key="AWARD", nonkey=(outgoing(GENRES),))

    def test_width(self):
        assert film_table().width == 2

    def test_same_rel_both_directions_allowed(self):
        loop = RelationshipTypeId("Next", "EP", "EP")
        table = PreviewTable(key="EP", nonkey=(outgoing(loop), incoming(loop)))
        assert table.width == 2


class TestPreview:
    def test_distinct_keys_enforced(self):
        with pytest.raises(DiscoveryError):
            Preview.of(film_table(), film_table())

    def test_counts(self):
        preview = Preview.of(film_table(), actor_table())
        assert preview.table_count == 2
        assert preview.attribute_count == 3
        assert preview.keys() == ["FILM", "FILM ACTOR"]

    def test_table_for(self):
        preview = Preview.of(film_table())
        assert preview.table_for("FILM") is not None
        assert preview.table_for("AWARD") is None

    def test_from_pairs(self):
        preview = Preview.from_pairs([("FILM", [outgoing(GENRES)])])
        assert preview.table_count == 1

    def test_iteration(self):
        preview = Preview.of(film_table(), actor_table())
        assert len(list(preview)) == len(preview) == 2


class TestSizeConstraint:
    def test_valid(self):
        constraint = SizeConstraint(k=2, n=6)
        assert constraint.max_attributes_per_table == 5

    def test_k_below_one_rejected(self):
        with pytest.raises(InvalidConstraintError):
            SizeConstraint(k=0, n=5)

    def test_n_below_k_rejected(self):
        with pytest.raises(InvalidConstraintError):
            SizeConstraint(k=3, n=2)

    def test_satisfied_by(self):
        preview = Preview.of(film_table(), actor_table())
        assert SizeConstraint(k=2, n=3).satisfied_by(preview)
        assert not SizeConstraint(k=2, n=2).satisfied_by(preview)
        assert not SizeConstraint(k=3, n=9).satisfied_by(preview)


class TestDistanceConstraint:
    def test_negative_d_rejected(self):
        with pytest.raises(InvalidConstraintError):
            DistanceConstraint(d=-1)

    def test_tight_and_diverse_semantics(self, fig1_schema):
        oracle = fig1_schema.distance_oracle()
        tight = DistanceConstraint.tight(1)
        diverse = DistanceConstraint.diverse(3)
        assert tight.pair_ok(oracle, "FILM", "FILM ACTOR")
        assert not tight.pair_ok(oracle, "FILM GENRE", "AWARD")
        assert diverse.pair_ok(oracle, "FILM GENRE", "AWARD")
        assert not diverse.pair_ok(oracle, "FILM", "FILM ACTOR")

    def test_keys_ok_checks_all_pairs(self, fig1_schema):
        oracle = fig1_schema.distance_oracle()
        # FILM ACTOR and FILM DIRECTOR are at distance 2 (via FILM), so
        # the triple fails d=1 even though both are adjacent to FILM.
        assert not DistanceConstraint.tight(1).keys_ok(
            oracle, ["FILM", "FILM ACTOR", "FILM DIRECTOR"]
        )
        assert DistanceConstraint.tight(2).keys_ok(
            oracle, ["FILM", "FILM ACTOR", "FILM DIRECTOR"]
        )
        assert not DistanceConstraint.tight(2).keys_ok(
            oracle, ["FILM GENRE", "FILM ACTOR", "AWARD"]
        )

    def test_modes(self):
        assert DistanceConstraint.tight(2).mode is DistanceMode.TIGHT
        assert DistanceConstraint.diverse(2).mode is DistanceMode.DIVERSE
