"""Unit tests for repro.store (triple store, queries, persistence, bridge)."""

import pytest

from repro.exceptions import PersistenceError, StoreError
from repro.model import Triple
from repro.store import (
    TripleStore,
    entity_graph_from_store,
    load_jsonl,
    load_tsv,
    query,
    save_jsonl,
    save_tsv,
    schema_graph_from_store,
    select,
    store_from_entity_graph,
)


@pytest.fixture
def store():
    s = TripleStore()
    s.add(Triple("will", "a", "ACTOR"))
    s.add(Triple("mib", "a", "FILM"))
    s.add(Triple("will", "ACTOR|acted|FILM", "mib"))
    s.add(Triple("will", "ACTOR|acted|FILM", "mib"))  # multiplicity 2
    s.add(Triple("tommy", "a", "ACTOR"))
    s.add(Triple("tommy", "ACTOR|acted|FILM", "mib"))
    return s


class TestTripleStore:
    def test_multiplicity(self, store):
        assert store.count(Triple("will", "ACTOR|acted|FILM", "mib")) == 2
        assert len(store) == 6
        assert store.distinct_count == 5

    def test_contains(self, store):
        assert Triple("will", "a", "ACTOR") in store
        assert Triple("x", "y", "z") not in store

    def test_add_nonpositive_count_rejected(self, store):
        with pytest.raises(StoreError):
            store.add(Triple("a", "b", "c"), count=0)

    def test_remove_decrements(self, store):
        t = Triple("will", "ACTOR|acted|FILM", "mib")
        store.remove(t)
        assert store.count(t) == 1
        store.remove(t)
        assert t not in store

    def test_remove_too_many_raises(self, store):
        with pytest.raises(StoreError):
            store.remove(Triple("will", "a", "ACTOR"), count=5)

    def test_remove_cleans_indexes(self, store):
        t = Triple("tommy", "ACTOR|acted|FILM", "mib")
        store.remove(t)
        assert list(store.scan(subject="tommy", predicate="ACTOR|acted|FILM")) == []


class TestScan:
    def test_scan_by_predicate(self, store):
        results = set(store.scan(predicate="a"))
        assert len(results) == 3

    def test_scan_fully_bound(self, store):
        assert list(store.scan("will", "a", "ACTOR")) == [Triple("will", "a", "ACTOR")]
        assert list(store.scan("will", "a", "FILM")) == []

    def test_scan_subject_object(self, store):
        results = list(store.scan(subject="will", object="mib"))
        assert results == [Triple("will", "ACTOR|acted|FILM", "mib")]

    def test_scan_all(self, store):
        assert len(list(store.scan())) == 5

    def test_scan_counted(self, store):
        counts = dict(store.scan_counted(predicate="ACTOR|acted|FILM"))
        assert counts[Triple("will", "ACTOR|acted|FILM", "mib")] == 2

    def test_predicate_cardinality_includes_multiplicity(self, store):
        assert store.predicate_cardinality("ACTOR|acted|FILM") == 3
        assert store.predicate_cardinality("missing") == 0


class TestQuery:
    def test_single_pattern(self, store):
        rows = select(store, [("?who", "a", "ACTOR")], ["?who"])
        assert {row[0] for row in rows} == {"will", "tommy"}

    def test_join(self, store):
        rows = select(
            store,
            [("?who", "a", "ACTOR"), ("?who", "ACTOR|acted|FILM", "?film")],
            ["?who", "?film"],
        )
        assert set(rows) == {("will", "mib"), ("tommy", "mib")}

    def test_shared_variable_consistency(self, store):
        # ?x must bind to the same value in both positions.
        rows = query(store, [("?x", "ACTOR|acted|FILM", "?x")])
        assert rows == []

    def test_empty_patterns_rejected(self, store):
        with pytest.raises(StoreError):
            query(store, [])

    def test_projection_requires_variables(self, store):
        with pytest.raises(StoreError):
            select(store, [("?who", "a", "ACTOR")], ["who"])

    def test_unbound_projection_raises(self, store):
        with pytest.raises(StoreError):
            select(store, [("?who", "a", "ACTOR")], ["?ghost"])


class TestPersistence:
    @pytest.mark.parametrize(
        "save,load,ext",
        [(save_tsv, load_tsv, "tsv"), (save_jsonl, load_jsonl, "jsonl")],
    )
    def test_round_trip(self, store, tmp_path, save, load, ext):
        path = tmp_path / f"data.{ext}"
        rows = save(store, path)
        assert rows == store.distinct_count
        loaded = load(path)
        assert sorted(loaded.triples()) == sorted(store.triples())

    def test_tsv_escaping(self, tmp_path):
        s = TripleStore()
        tricky = Triple("a\tb", "p\nq", "o\\r")
        s.add(tricky)
        path = tmp_path / "tricky.tsv"
        save_tsv(s, path)
        assert list(load_tsv(path).scan()) == [tricky]

    def test_malformed_tsv_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only\ttwo\n")
        with pytest.raises(PersistenceError):
            load_tsv(path)

    def test_malformed_jsonl_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(PersistenceError):
            load_jsonl(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_tsv(tmp_path / "nope.tsv")


class TestSchemaBridge:
    def test_entity_graph_round_trip(self, fig1_graph):
        store = store_from_entity_graph(fig1_graph)
        clone = entity_graph_from_store(store, name="fig1")
        assert clone.stats() == fig1_graph.stats()

    def test_schema_from_store(self, fig1_graph):
        store = store_from_entity_graph(fig1_graph)
        schema = schema_graph_from_store(store)
        assert schema.entity_type_count == 6
        assert schema.relationship_type_count == 5

    def test_bad_predicate_raises(self):
        s = TripleStore()
        s.add(Triple("a", "a", "A"))
        s.add(Triple("a", "unqualified", "a"))
        with pytest.raises(StoreError):
            entity_graph_from_store(s)


class TestRoundTripOrderRegression:
    """Store round trips must preserve the orders scorers observe.

    Regression for a bug where ``entity_graph_to_triples`` emitted each
    entity's types in set-iteration order and the rebuild side replayed
    them through index sets, so a saved-and-reloaded graph could present
    types in a different first-seen order than its source — same
    extensional content, different preview payloads.
    """

    #: (algorithm, query kwargs) — each with a constraint shape the
    #: algorithm registers for.
    ALGORITHMS = (
        ("apriori", {"d": 2, "mode": "tight"}),
        ("branch-and-bound", {"d": 2, "mode": "tight"}),
        ("brute-force", {"d": 2, "mode": "tight"}),
        ("dynamic-programming", {}),
    )

    def test_fingerprint_survives_text_round_trip(self, fig1_graph, tmp_path):
        """The text formats preserve content (the binary store also
        preserves order — that lives in tests/test_disk_store.py)."""
        from repro.datasets.loader import (
            graph_fingerprint,
            load_domain_file,
            save_domain,
        )

        for ext in ("tsv", "jsonl"):
            path = tmp_path / f"fig1.{ext}"
            save_domain(fig1_graph, path)
            clone = load_domain_file(path, name="fig1")
            assert graph_fingerprint(clone) == graph_fingerprint(fig1_graph)
            for entity in fig1_graph.entities():
                assert clone.types_of(entity) == fig1_graph.types_of(entity)

    @pytest.mark.parametrize(
        "algorithm,kwargs", ALGORITHMS, ids=[name for name, _ in ALGORITHMS]
    )
    def test_preview_payloads_identical_after_round_trip(
        self, fig1_graph, algorithm, kwargs
    ):
        from repro.core.serialize import result_to_dict
        from repro.engine import PreviewEngine

        clone = entity_graph_from_store(
            store_from_entity_graph(fig1_graph), name=fig1_graph.name
        )
        reference = PreviewEngine(fig1_graph).query(
            k=2, n=4, algorithm=algorithm, **kwargs
        )
        result = PreviewEngine(clone).query(
            k=2, n=4, algorithm=algorithm, **kwargs
        )
        assert result_to_dict(result) == result_to_dict(reference)

    def test_multi_type_entity_order_survives(self):
        """An entity introducing several types keeps their caller order."""
        from repro.model import EntityGraph

        graph = EntityGraph(name="order")
        graph.add_entity("zed", ["ZULU", "ALPHA", "MIKE"])  # not sorted
        graph.add_entity("amy", ["ALPHA"])
        clone = entity_graph_from_store(
            store_from_entity_graph(graph), name="order"
        )
        assert clone.entity_types() == graph.entity_types()


class TestStrictPersistence:
    """Malformed dataset rows fail loudly, shape by shape (PR 10)."""

    def test_unknown_escape_raises_with_row_number(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\\xb\tp\to\t1\n")
        with pytest.raises(PersistenceError, match=r"bad\.tsv:1.*unknown escape"):
            load_tsv(path)

    def test_trailing_backslash_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("s\tp\to\\\t1\n")
        with pytest.raises(PersistenceError, match="trailing lone backslash"):
            load_tsv(path)

    @pytest.mark.parametrize(
        "row",
        ["one\ttwo\tthree\n", "a\tb\tc\td\te\n"],
        ids=["three-columns", "five-columns"],
    )
    def test_wrong_column_count_raises(self, tmp_path, row):
        path = tmp_path / "bad.tsv"
        path.write_text(row)
        with pytest.raises(PersistenceError, match="expected 4"):
            load_tsv(path)

    @pytest.mark.parametrize("count", ["zero", "1.5", "0", "-3"])
    def test_bad_counts_raise(self, tmp_path, count):
        path = tmp_path / "bad.tsv"
        path.write_text(f"s\tp\to\t{count}\n")
        with pytest.raises(PersistenceError):
            load_tsv(path)

    @pytest.mark.parametrize(
        "line",
        [
            '{"s": "a", "p": "b", "o": "c", "n": 0}',
            '{"s": "a", "p": "b", "o": "c", "n": -2}',
            '{"s": "a", "p": "b", "o": "c", "n": "many"}',
            '{"s": "a", "p": "b"}',
        ],
        ids=["zero-count", "negative-count", "nonint-count", "missing-term"],
    )
    def test_bad_jsonl_rows_raise(self, tmp_path, line):
        path = tmp_path / "bad.jsonl"
        path.write_text(line + "\n")
        with pytest.raises(PersistenceError):
            load_jsonl(path)
