"""Tests for dataset profiling, the TPC-E validation fixture, and reports."""

import pytest

from repro.analysis import (
    DistributionSummary,
    estimate_zipf_exponent,
    profile_dataset,
    profile_report,
    schema_topology,
)
from repro.baselines import YPS09Summarizer
from repro.datasets.tpce_mini import (
    TPCE_CORE,
    TPCE_LOOKUPS,
    TPCE_TYPES,
    build_tpce_mini,
)
from repro.model import SchemaGraph


class TestDistributionSummary:
    def test_basic(self):
        summary = DistributionSummary.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == 3.0
        assert summary.mean == 22.0

    def test_empty(self):
        summary = DistributionSummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0


class TestZipfEstimate:
    def test_recovers_exponent(self):
        populations = [round(10000 / (i + 1) ** 1.2) for i in range(30)]
        estimate = estimate_zipf_exponent(populations)
        assert estimate == pytest.approx(1.2, abs=0.15)

    def test_degenerate_zero(self):
        assert estimate_zipf_exponent([5, 5, 5]) == 0.0
        assert estimate_zipf_exponent([7]) == 0.0
        assert estimate_zipf_exponent([]) == 0.0


class TestProfiling:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_dataset(build_tpce_mini())

    def test_sizes(self, profile):
        assert profile.entities == sum(pop for _t, pop in TPCE_TYPES)
        assert profile.relationships > 0

    def test_top_types_are_facts(self, profile):
        top = [name for name, _count in profile.top_types(3)]
        assert top[0] == "TRADE"

    def test_topology_sane(self, profile):
        topo = profile.topology
        assert topo.entity_types == len(TPCE_TYPES)
        assert topo.diameter >= 2
        assert 0.0 < topo.density < 1.0
        assert topo.pairs_within(topo.diameter) == pytest.approx(1.0)
        assert topo.pairs_within(0) < 1.0

    def test_report_renders(self, profile):
        text = profile_report(profile)
        assert "tpce-mini" in text
        assert "TRADE" in text
        assert "diameter" in text

    def test_topology_of_schema_only(self, fig1_schema):
        topo = schema_topology(fig1_schema)
        assert topo.entity_types == 6
        assert topo.relationship_types == 5


class TestYPS09OnTpce:
    """The paper validated its YPS09 reimplementation on TPC-E; ours is
    validated on the miniature TPC-E-like fixture."""

    @pytest.fixture(scope="class")
    def summarizer(self):
        graph = build_tpce_mini()
        schema = SchemaGraph.from_entity_graph(graph)
        return YPS09Summarizer(graph, schema)

    def test_core_tables_outrank_lookups(self, summarizer):
        ranking = summarizer.ranked_types()
        # The entire top-6 consists of core tables (TRADE, accounts,
        # securities, ...) — no lookup table sneaks in.
        assert set(ranking[:6]) <= set(TPCE_CORE), ranking
        # Pure enumeration lookups sit in the bottom half.
        positions = {name: i for i, name in enumerate(ranking)}
        for lookup in ("STATUS TYPE", "TRADE TYPE", "EXCHANGE", "SECTOR"):
            assert positions[lookup] >= len(ranking) // 2, ranking

    def test_trade_among_top(self, summarizer):
        assert "TRADE" in summarizer.ranked_types()[:3]

    def test_summary_spans_regions(self, summarizer):
        summary = summarizer.summarize(k=5)
        # Centers are not five lookup tables.
        assert sum(1 for c in summary.centers if c in TPCE_LOOKUPS) <= 1


class TestReport:
    def test_domain_report_film(self):
        from repro.eval.report import domain_report

        text = domain_report("film")
        assert "## Domain: film" in text
        assert "coverage" in text and "YPS09" in text
        assert "| Tight |" in text

    def test_full_report_multiple(self):
        from repro.eval.report import full_report

        text = full_report(["people"])
        assert text.startswith("# Preview tables")
        assert "## Domain: people" in text
