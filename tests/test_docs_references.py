"""The docs reference checker: everything resolves, and rot is caught."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "_check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_all_doc_references_resolve():
    """Every `file:symbol` reference in docs/ names a live symbol."""
    assert check_docs.main([]) == 0


def test_paper_map_is_checked_and_nonempty():
    problems = check_docs.check_document(REPO_ROOT / "docs" / "paper-map.md")
    assert problems == []
    text = (REPO_ROOT / "docs" / "paper-map.md").read_text(encoding="utf-8")
    assert text.count(".py:") >= 30, "the paper map lost its symbol anchors"


def test_checker_catches_dangling_references(tmp_path):
    doc = tmp_path / "rotten.md"
    doc.write_text(
        "see `src/repro/core/apriori.py:no_such_function` and "
        "`src/repro/gone.py:thing` and "
        "`src/repro/engine/engine.py:PreviewEngine.not_a_method`\n",
        encoding="utf-8",
    )
    problems = check_docs.check_document(doc)
    assert len(problems) == 3
    assert check_docs.main([str(doc)]) == 1


def test_checker_resolves_class_members(tmp_path):
    doc = tmp_path / "fine.md"
    doc.write_text(
        "`src/repro/engine/engine.py:PreviewEngine.sweep` and "
        "`src/repro/model/mutation_log.py:MutationLog.dirty_since`\n",
        encoding="utf-8",
    )
    assert check_docs.check_document(doc) == []
