"""The workload subsystem: trace format, generator, replay, oracle, CLI.

The hypothesis property at the bottom is the ISSUE's core guarantee: a
*random* generated trace — interleaved mutations included, query pool
spanning all four discovery algorithms — replayed through the warm
incremental engine and the sharded process pool equals the from-scratch
rebuild oracle at every step.  The CI workload leg re-runs this module
under ``REPRO_TEST_JOBS=2`` so the sharded leg provably crosses a real
pool.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.engine import PreviewQuery
from repro.exceptions import WorkloadError
from repro.serve import parse_query, parse_sweep
from repro import config
from repro.workload import (
    REPLAY_PATHS,
    SCENARIOS,
    ScenarioSpec,
    WorkloadTrace,
    canonical_payload,
    generate_trace,
    payload_digest,
    record_digests,
    replay_trace,
    run_conformance,
    scenario,
)

#: Worker count for the sharded legs (CI pins REPRO_TEST_JOBS=2).
JOBS = config.test_jobs()

#: Small, cheap domain every test trace runs against.
DOMAIN, SCALE = "architecture", 1000


def small_trace(seed=3, ops=16, spec="steady"):
    return generate_trace(
        domain=DOMAIN, scale=SCALE, seed=seed, ops=ops, scenario=spec
    )


# ----------------------------------------------------------------------
# Trace format
# ----------------------------------------------------------------------
class TestTraceFormat:
    def test_roundtrip_is_lossless(self):
        trace = record_digests(small_trace())
        assert WorkloadTrace.loads(trace.dumps()) == trace

    def test_dump_load_file(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.jsonl"
        trace.dump(path)
        assert WorkloadTrace.load(path) == trace

    def test_canonical_payload_is_key_sorted_and_compact(self):
        assert canonical_payload({"b": 1, "a": [None, True]}) == '{"a":[null,true],"b":1}'
        assert payload_digest({"a": 1}) == payload_digest({"a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})
        assert payload_digest({}).startswith("sha256:")

    def test_counts_and_digest_presence(self):
        trace = small_trace(seed=2026, ops=30, spec="write-burst")
        assert trace.mutation_count + trace.read_count <= len(trace.ops)
        assert not trace.has_digests()
        stamped = record_digests(trace)
        assert stamped.has_digests()
        assert all(
            op.digest is None for op in stamped.ops if op.op == "stats"
        )

    def test_with_digests_requires_alignment(self):
        trace = small_trace(ops=5)
        with pytest.raises(WorkloadError, match="5 ops"):
            trace.with_digests(["x"])

    @pytest.mark.parametrize(
        "text, message",
        [
            ("", "empty"),
            ('{"kind": "other"}', "not a workload trace"),
            ('{"kind": "repro-workload", "version": 99, "dataset": {}}', "version"),
            ('{"kind": "repro-workload", "version": 1}', "dataset"),
            ("not json", "not JSON"),
        ],
    )
    def test_malformed_headers_are_rejected(self, text, message):
        with pytest.raises(WorkloadError, match=message):
            WorkloadTrace.loads(text)

    def test_malformed_ops_are_rejected_with_line_numbers(self):
        header = json.dumps(small_trace(ops=1).header())
        for line, message in [
            ('{"op": "explode"}', "line 2: unknown op"),
            ('{"op": "preview", "params": 3}', "line 2: 'params'"),
            ('{"op": "preview", "client": -1}', "line 2: 'client'"),
            ('{"op": "preview", "digest": 5}', "line 2: 'digest'"),
            ("[1, 2]", "line 2 must be a JSON object"),
        ]:
            with pytest.raises(WorkloadError, match=message):
                WorkloadTrace.loads(header + "\n" + line + "\n")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read trace"):
            WorkloadTrace.load(tmp_path / "nope.jsonl")

    def test_dump_to_unwritable_path(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot write trace"):
            small_trace(ops=2).dump(tmp_path / "no-such-dir" / "t.jsonl")

    def test_truncated_trace_is_rejected(self):
        """Lost trailing op lines must not replay (and conform) vacuously."""
        text = small_trace(ops=6).dumps()
        truncated = "\n".join(text.splitlines()[:-2]) + "\n"
        with pytest.raises(WorkloadError, match="truncated"):
            WorkloadTrace.loads(truncated)

    def test_fingerprint_pins_the_starting_graph(self):
        """A drifted dataset fails fast, before any payload is computed."""
        from dataclasses import replace

        from repro.datasets import generate_domain, graph_fingerprint

        trace = small_trace(ops=3)
        assert trace.fingerprint == graph_fingerprint(
            generate_domain(DOMAIN, scale=SCALE, seed=trace.seed)
        )
        drifted = replace(trace, fingerprint="sha256:" + "0" * 64)
        with pytest.raises(WorkloadError, match="dataset mismatch"):
            replay_trace(drifted, path="serial")
        # Unpinned traces (hand-written, or recorded pre-fingerprint)
        # replay without the check.
        unpinned = replace(trace, fingerprint=None)
        assert replay_trace(unpinned, path="serial").ops == 3

    def test_fingerprint_is_content_addressed(self):
        from repro.datasets import generate_domain, graph_fingerprint

        one = graph_fingerprint(generate_domain(DOMAIN, scale=SCALE, seed=0))
        same = graph_fingerprint(generate_domain(DOMAIN, scale=SCALE, seed=0))
        other = graph_fingerprint(generate_domain(DOMAIN, scale=SCALE, seed=1))
        assert one == same
        assert one != other
        mutated = generate_domain(DOMAIN, scale=SCALE, seed=0)
        mutated.add_entity("fingerprint-probe", [mutated.entity_types()[0]])
        assert graph_fingerprint(mutated) != one


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_trace(self):
        assert small_trace(seed=9, ops=40) == small_trace(seed=9, ops=40)
        assert small_trace(seed=9, ops=40) != small_trace(seed=10, ops=40)

    def test_every_preset_generates_parseable_ops(self):
        """Every op of every preset is valid under the wire parsers."""
        for name in SCENARIOS:
            trace = small_trace(seed=4, ops=25, spec=name)
            assert len(trace.ops) == 25
            for op in trace.ops:
                if op.op == "preview":
                    parse_query(op.params)
                elif op.op == "sweep":
                    assert parse_sweep(op.params)

    def test_write_burst_bursts(self):
        trace = small_trace(seed=1, ops=120, spec="write-burst")
        runs, current = [], 0
        for op in trace.ops:
            if op.op == "mutate":
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert max(runs) >= SCENARIOS["write-burst"].burst_length

    def test_multi_client_uses_multiple_clients(self):
        trace = small_trace(seed=2, ops=60, spec="multi-client")
        assert len({op.client for op in trace.ops}) > 1

    def test_structural_spikes_introduce_new_types(self):
        trace = small_trace(seed=5, ops=120, spec="structural-spike")
        spikes = [
            op
            for op in trace.ops
            if op.op == "mutate"
            and any("WL SPIKE" in t for t in op.params.get("types", []))
        ]
        assert spikes, "structural-spike scenario produced no spikes"

    def test_scenario_override_helper(self):
        assert scenario("steady", clients=3).clients == 3
        with pytest.raises(WorkloadError, match="unknown scenario"):
            scenario("nope")
        with pytest.raises(WorkloadError, match="override"):
            scenario("steady", warp_factor=9)

    def test_invalid_inputs(self):
        with pytest.raises(WorkloadError, match="unknown domain"):
            generate_trace(domain="narnia")
        with pytest.raises(WorkloadError, match="unknown scenario"):
            small_trace(spec="nope")
        with pytest.raises(WorkloadError, match="at least 1 op"):
            small_trace(ops=0)
        with pytest.raises(WorkloadError, match="mutate_rate"):
            small_trace(spec=ScenarioSpec(name="bad", mutate_rate=1.5))
        with pytest.raises(WorkloadError, match="burst_length"):
            small_trace(spec=ScenarioSpec(name="bad", burst_length=0))

    def test_narrow_query_space_terminates(self):
        """A pool bigger than the shape-valid space must not hang.

        (Bug surfaced in review: concise-only algorithm lists admit only
        k x n combinations, and unbounded rejection sampling looped
        forever once every draw was a duplicate.)
        """
        spec = ScenarioSpec(
            name="narrow", query_pool=50,
            algorithms=("dynamic-programming",),  # concise-only: 12 shapes
        )
        trace = small_trace(seed=1, ops=10, spec=spec)
        assert len(trace.ops) == 10
        for op in trace.ops:
            if op.op == "preview":
                assert op.params.get("d") is None

    def test_query_to_params_roundtrip(self):
        for query in (
            PreviewQuery(k=2, n=5),
            PreviewQuery(k=3, n=9, d=2, mode="diverse"),
            PreviewQuery(k=2, n=4, d=1, mode="tight", algorithm="apriori"),
        ):
            assert parse_query(query.to_params()) == query


# ----------------------------------------------------------------------
# Replay + oracle
# ----------------------------------------------------------------------
class TestReplayAndOracle:
    def test_unknown_path_rejected(self):
        with pytest.raises(WorkloadError, match="unknown replay path"):
            replay_trace(small_trace(ops=2), path="quantum")

    def test_sharded_path_requires_jobs(self):
        with pytest.raises(WorkloadError, match="jobs >= 2"):
            replay_trace(small_trace(ops=2), path="sharded", jobs=1)

    def test_oracle_needs_a_path(self):
        with pytest.raises(WorkloadError, match="at least one"):
            run_conformance(small_trace(ops=2), paths=())

    def test_serial_and_incremental_agree_with_accounting(self):
        trace = small_trace(seed=12, ops=24, spec="write-burst")
        report = run_conformance(trace, paths=("serial", "incremental"))
        assert report["identical"], report["first_divergence"]
        stats = report["paths"]["incremental"]["stats"]
        assert stats["rescan_ok"] is True
        assert stats["hits"] + stats["misses"] >= trace.read_count

    def test_tampered_digest_is_detected(self):
        trace = record_digests(small_trace(seed=6, ops=10))
        index = next(
            i for i, op in enumerate(trace.ops) if op.digest is not None
        )
        digests = [op.digest for op in trace.ops]
        digests[index] = "sha256:" + "0" * 64
        tampered = trace.with_digests(digests)
        result = replay_trace(tampered, path="incremental", verify_digests=True)
        assert [entry[0] for entry in result.digest_mismatches] == [index]
        report = run_conformance(tampered, paths=("incremental",))
        assert not report["recorded_digests"]["ok"]

    def test_replay_paths_constant_matches_makers(self):
        assert set(REPLAY_PATHS) == {
            "serial", "incremental", "sharded", "serve", "replicated",
        }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestWorkloadCli:
    def test_record_replay_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "workload", "record", "--domain", DOMAIN, "--ops", "12",
            "--seed", "3", "--scenario", "steady", "--out", str(out),
        ]) == 0
        assert "recorded 12 ops" in capsys.readouterr().out
        assert main(["workload", "replay", str(out), "--path", "incremental"]) == 0
        assert "reproduced byte-for-byte" in capsys.readouterr().out

    def test_replay_detects_tampering(self, tmp_path, capsys):
        trace = record_digests(small_trace(seed=6, ops=8))
        digests = [
            None if d is None else "sha256:" + "0" * 64
            for d in (op.digest for op in trace.ops)
        ]
        out = tmp_path / "tampered.jsonl"
        trace.with_digests(digests).dump(out)
        assert main(["workload", "replay", str(out), "--path", "serial"]) == 1
        assert "not reproduced" in capsys.readouterr().err

    def test_replay_detects_tampering_on_partially_digested_traces(
        self, tmp_path, capsys
    ):
        """One lost digest must not silence mismatches on the rest."""
        trace = record_digests(small_trace(seed=6, ops=8))
        digests = [op.digest for op in trace.ops]
        stamped = [i for i, d in enumerate(digests) if d is not None]
        assert len(stamped) >= 2
        digests[stamped[0]] = None  # this op lost its digest...
        digests[stamped[1]] = "sha256:" + "0" * 64  # ...this one is wrong
        out = tmp_path / "partial.jsonl"
        trace.with_digests(digests).dump(out)
        assert main(["workload", "replay", str(out), "--path", "serial"]) == 1
        assert "not reproduced" in capsys.readouterr().err

    def test_run_subcommand_diffs_paths(self, capsys):
        assert main([
            "workload", "run", "--domain", DOMAIN, "--ops", "10",
            "--seed", "4", "--paths", "serial,incremental",
        ]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_errors_are_reported(self, tmp_path, capsys):
        assert main(["workload", "replay", str(tmp_path / "none.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
        out = tmp_path / "t.jsonl"
        small_trace(ops=2).dump(out)
        assert main(["workload", "replay", str(out), "--path", "bogus"]) == 1
        assert "unknown replay path" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The property: cached/sharded replay == from-scratch rebuild oracle
# ----------------------------------------------------------------------
#: Query pool spanning all four registered algorithms (the generator
#: matches shapes: concise-only DP never gets a distance constraint,
#: apriori always does).
ALL_ALGORITHMS = (
    "apriori", "brute-force", "branch-and-bound", "dynamic-programming",
)

PROPERTY = settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestConformanceProperty:
    @PROPERTY
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mutate_rate=st.sampled_from([0.2, 0.4]),
        burst_length=st.sampled_from([1, 3]),
        structural_rate=st.sampled_from([0.0, 0.2]),
    )
    def test_warm_and_sharded_equal_rebuild_oracle(
        self, seed, mutate_rate, burst_length, structural_rate
    ):
        spec = ScenarioSpec(
            name="property",
            mutate_rate=mutate_rate,
            burst_length=burst_length,
            structural_rate=structural_rate,
            sweep_rate=0.15,
            stats_rate=0.1,
            clients=2,
            query_pool=6,
            algorithms=ALL_ALGORITHMS,
        )
        trace = generate_trace(
            domain=DOMAIN, scale=SCALE, seed=seed, ops=14, scenario=spec
        )
        report = run_conformance(
            trace, paths=("serial", "incremental", "sharded"), jobs=JOBS
        )
        assert report["identical"], report["first_divergence"]
        assert report["paths"]["incremental"]["stats"]["rescan_ok"]
        assert report["paths"]["sharded"]["stats"]["rescan_ok"]
