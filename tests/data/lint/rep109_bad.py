"""Direct engine call from the event loop (lint as repro.serve.x)."""


class Host:
    """Async facade that races its own worker thread."""

    def __init__(self, engine):
        self.engine = engine

    async def preview(self, params):
        """Calls the single-threaded engine straight from async code."""
        return self.engine.run(params)  # REP109
