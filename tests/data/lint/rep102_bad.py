"""Hash-order-dependent iteration (lint as repro.core.x)."""


def total(weights):
    """Accumulate over a bare set() — order-dependent construction."""
    out = []
    for item in set(weights):  # REP102
        out.append(item)
    return out
