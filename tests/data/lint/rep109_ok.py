"""Engine access through the worker-thread closure idiom."""


class Host:
    """Async facade with single-threaded engine discipline."""

    def __init__(self, engine):
        self.engine = engine

    async def preview(self, params):
        """Hands a sync closure to the worker thread; reads attrs only."""

        def compute():
            return self.engine.run(params)

        generation = self.engine.generation  # attribute read: legal
        result = await self._on_worker(compute)
        return {"generation": generation, "result": result}

    async def _on_worker(self, fn):
        """Stub of the sanctioned executor hop."""
        return fn()
