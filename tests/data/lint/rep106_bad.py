"""Broad handler that absorbs the error (lint as repro.x)."""


def swallow(fn):
    """Logs nothing, raises nothing: the crash disappears."""
    try:
        return fn()
    except Exception:  # REP106
        return None
