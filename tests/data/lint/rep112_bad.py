"""Public symbols without docstrings (lint as repro.x)."""


def exported():  # REP112
    return 1


class Widget:  # REP112
    def render(self):  # REP112
        return "widget"
