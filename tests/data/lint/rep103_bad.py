"""Wall-clock and unseeded randomness (lint as repro.scoring.x)."""

import random
import time


def jitter():
    """Wall-clock + global RNG: results differ across runs."""
    return time.time() + random.random()  # REP103 twice
