"""Direct registry mutation (lint as repro.x)."""

from repro.core.registry import DISCOVERY_ALGORITHMS


def sneak(spec):
    """Bypasses decorator validation."""
    DISCOVERY_ALGORITHMS["sneaky"] = spec  # REP111
    DISCOVERY_ALGORITHMS.pop("apriori")  # REP111
