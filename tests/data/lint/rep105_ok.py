"""Named exception handling."""


def guard(fn):
    """Catch exactly what the contract names."""
    try:
        return fn()
    except (KeyError, IndexError):
        return None
