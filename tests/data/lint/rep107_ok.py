"""Structured errors publicly; builtins allowed privately."""

from repro.exceptions import ReproError


def lookup(mapping, key):
    """Public entry point raising through the hierarchy."""
    if key not in mapping:
        raise ReproError(f"unknown key: {key!r}")
    return mapping[key]


def _internal_invariant(flag):
    """Private helpers may use builtins freely."""
    if not flag:
        raise ValueError("broken invariant")
