"""Async sleep, and blocking work confined to a nested sync def."""

import asyncio
import time


async def handler():
    """Awaits instead of blocking."""
    await asyncio.sleep(1.0)

    def worker():
        time.sleep(0.1)  # runs on an executor thread, not the loop

    await asyncio.get_running_loop().run_in_executor(None, worker)
