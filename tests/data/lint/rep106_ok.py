"""Broad handler that translates into the error hierarchy."""

from repro.exceptions import ReproError


def translate(fn):
    """Wrap unexpected crashes into the structured hierarchy."""
    try:
        return fn()
    except Exception as exc:
        raise ReproError(f"unexpected: {exc}") from exc
