"""Raw REPRO_* environment reads (lint anywhere)."""

import os

ENV_FLAG = "REPRO_FIXTURE_FLAG"

DIRECT = os.environ.get("REPRO_FIXTURE_DIRECT")  # REP110
VIA_CONSTANT = os.getenv(ENV_FLAG)  # REP110 (resolved through the constant)
SUBSCRIPT = os.environ["REPRO_FIXTURE_SUB"]  # REP110
