"""Documented public surface; private names exempt."""


def exported():
    """One line is enough."""
    return 1


def _helper():
    return 2


class Widget:
    """A documented class."""

    def render(self):
        """A documented method."""
        return "widget"

    def _internal(self):
        return None
