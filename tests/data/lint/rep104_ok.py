"""Sanctioned score comparisons: hex-exact and sentinel checks."""


def same(score_a, score_b):
    """Bit-exact comparison through float.hex."""
    return score_a.hex() == score_b.hex()


def unset(score):
    """Sentinel check against an assigned-never-computed infinity."""
    return score == float("-inf")
