"""Lazy multiprocessing import inside a function is fine."""


def start_pool(jobs):
    """Spin up workers only when explicitly asked to."""
    import multiprocessing

    return multiprocessing.get_context("spawn").Pool(jobs)
