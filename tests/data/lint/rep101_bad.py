"""numpy imported outside its sanctioned home (lint as repro.core.x)."""

import numpy as np  # REP101


def norm(values):
    """Vector norm via the forbidden direct numpy dependency."""
    return float(np.linalg.norm(values))
