"""Blocking call on the event loop (lint as repro.serve.x)."""

import time


async def handler():
    """Stalls every connection sharing the loop."""
    time.sleep(1.0)  # REP108
