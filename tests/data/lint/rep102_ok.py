"""Deterministically ordered iteration over set contents."""


def total(weights):
    """Accumulate over sorted set contents — order is pinned."""
    out = []
    for item in sorted(set(weights)):
        out.append(item)
    return out
