"""Builtin exception from public API (lint as repro.x)."""


def lookup(mapping, key):
    """Public entry point leaking a stdlib type."""
    if key not in mapping:
        raise KeyError(key)  # REP107
    return mapping[key]
