"""Seeded randomness is the sanctioned idiom."""

import random


def sample(values, seed):
    """Deterministic sample from an explicitly seeded generator."""
    rng = random.Random(seed)
    return rng.sample(list(values), 2)
