"""Exact float comparison on scores (lint as repro.scoring.x)."""


def same(score_a, score_b):
    """Fifth-decimal bug waiting to happen."""
    return score_a == score_b  # REP104
