"""multiprocessing at module top level (lint as repro.engine)."""

import multiprocessing  # REP101

POOL = multiprocessing.get_context("spawn")
