"""Registries are read-only outside their defining modules."""

from repro.core.registry import DISCOVERY_ALGORITHMS


def lookup(name):
    """Reading a registry is always fine."""
    return DISCOVERY_ALGORITHMS.get(name)
