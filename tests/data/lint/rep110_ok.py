"""Writes and non-REPRO reads are fine; reads go through config."""

import os

os.environ["REPRO_FIXTURE_FLAG"] = "1"  # a write, not a read
HOME = os.environ.get("HOME")  # not a REPRO_* knob
