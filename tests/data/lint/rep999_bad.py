"""Unparseable file: the analyzer reports REP999, nothing else."""

def broken(:
    pass
