"""Bare except (lint anywhere)."""


def swallow(fn):
    """Catches even KeyboardInterrupt — never acceptable."""
    try:
        return fn()
    except:  # noqa: E722  # REP105
        return None
