"""Additional coverage: report internals, CLI parser, bench result files."""

import pytest

from repro.cli import build_parser
from repro.eval.report import domain_report, full_report


class TestCliParser:
    def test_domain_and_file_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--domain", "film", "--file", "x.tsv"])

    def test_tight_and_diverse_mutually_exclusive(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["--domain", "film", "--tight", "2", "--diverse", "4"]
            )

    def test_requires_a_source(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["-k", "3"])

    def test_defaults(self):
        args = build_parser().parse_args(["--domain", "film"])
        assert args.tables == 3
        assert args.attrs == 9
        assert args.key_scorer == "coverage"
        assert args.tight is None and args.diverse is None

    def test_rejects_unknown_domain(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--domain", "cooking"])

    def test_rejects_unknown_scorer(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--domain", "film", "--key-scorer", "vibes"])


class TestReportContent:
    @pytest.fixture(scope="class")
    def report(self):
        return domain_report("tv")

    def test_all_measures_present(self, report):
        for label in ("coverage", "random walk", "YPS09"):
            assert label in report

    def test_all_approaches_present(self, report):
        for approach in (
            "Concise",
            "Tight",
            "Diverse",
            "Freebase",
            "Experts",
            "YPS09",
            "Graph",
        ):
            assert f"| {approach} |" in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_full_report_defaults_to_all_gold_domains(self):
        text = full_report()
        for domain in ("books", "film", "music", "tv", "people"):
            assert f"## Domain: {domain}" in text
