"""Tests for the three discovery algorithms (Alg. 1-3) and their agreement.

The key invariants, each checked on the Fig. 1 graph, on random schema
graphs and on a generated domain:

* the DP and the brute force find previews with *equal scores* for every
  concise constraint (both are exact optimizers);
* the Apriori algorithm and the distance-checked brute force agree for
  every tight/diverse constraint;
* Theorem 3: every table in a discovered preview uses a top-m prefix of
  its sorted candidate list.
"""

import pytest

from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
    best_preview_for_keys,
    brute_force_discover,
    dynamic_programming_discover,
    eligible_key_types,
)
from repro.core.candidates import upper_bound_for_keys
from repro.datasets import random_schema_graph
from repro.scoring import ScoringContext


def assert_theorem3(context, preview):
    """Every table's attributes are a prefix of the sorted candidates."""
    for table in preview.tables:
        ranked = context.sorted_candidates(table.key)
        prefix_scores = [score for _attr, score in ranked[: table.width]]
        table_scores = [
            context.nonkey_score(table.key, attr) for attr in table.nonkey
        ]
        assert sorted(table_scores, reverse=True) == pytest.approx(prefix_scores)


class TestPaperExample:
    """Sec. 4's worked example on the Fig. 1 graph (coverage/coverage)."""

    def test_optimal_concise_k2_n6(self, fig1_context):
        result = brute_force_discover(fig1_context, SizeConstraint(k=2, n=6))
        assert result is not None
        keys = set(result.preview.keys())
        assert keys == {"FILM", "FILM ACTOR"}
        film = result.preview.table_for("FILM")
        names = {attr.name for attr in film.nonkey}
        # Paper: T1 = FILM with Actor, Genres, Director, (Executive) Producer.
        assert {"Actor", "Genres", "Director"} <= names
        actor = result.preview.table_for("FILM ACTOR")
        assert {attr.name for attr in actor.nonkey} == {"Actor", "Award Winners"}

    def test_dp_matches_brute_force_score(self, fig1_context):
        size = SizeConstraint(k=2, n=6)
        bf = brute_force_discover(fig1_context, size)
        dp = dynamic_programming_discover(fig1_context, size)
        assert dp.score == pytest.approx(bf.score)

    def test_diverse_preview_prefers_far_keys(self, fig1_context):
        result = apriori_discover(
            fig1_context, SizeConstraint(k=2, n=6), DistanceConstraint.diverse(3)
        )
        assert result is not None
        a, b = result.preview.keys()
        assert fig1_context.schema.distance(a, b) >= 3

    def test_tight_preview_keys_close(self, fig1_context):
        # Fig. 1's schema is a star around FILM, so no 3 types are
        # pairwise at distance <= 1; d=2 admits triples through the hub.
        result = apriori_discover(
            fig1_context, SizeConstraint(k=3, n=6), DistanceConstraint.tight(2)
        )
        assert result is not None
        keys = result.preview.keys()
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                assert fig1_context.schema.distance(a, b) <= 2

    def test_theorem3_holds(self, fig1_context):
        for k, n in [(1, 3), (2, 6), (3, 7)]:
            result = brute_force_discover(fig1_context, SizeConstraint(k=k, n=n))
            assert_theorem3(fig1_context, result.preview)


class TestAlgorithmAgreement:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k,n", [(2, 4), (3, 7), (4, 8)])
    def test_dp_equals_brute_force(self, seed, k, n):
        schema = random_schema_graph(num_types=9, num_rel_types=14, seed=seed)
        context = ScoringContext(schema)
        size = SizeConstraint(k=k, n=n)
        bf = brute_force_discover(context, size)
        dp = dynamic_programming_discover(context, size)
        assert (bf is None) == (dp is None)
        if bf is not None:
            assert dp.score == pytest.approx(bf.score)
            assert SizeConstraint(k=k, n=n).satisfied_by(dp.preview)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("d,mode", [(1, "tight"), (2, "tight"), (2, "diverse"), (3, "diverse")])
    def test_apriori_equals_brute_force(self, seed, d, mode):
        schema = random_schema_graph(num_types=9, num_rel_types=14, seed=seed)
        context = ScoringContext(schema)
        size = SizeConstraint(k=3, n=6)
        constraint = (
            DistanceConstraint.tight(d) if mode == "tight" else DistanceConstraint.diverse(d)
        )
        bf = brute_force_discover(context, size, constraint)
        ap = apriori_discover(context, size, constraint)
        assert (bf is None) == (ap is None)
        if bf is not None:
            assert ap.score == pytest.approx(bf.score)

    @pytest.mark.parametrize("backend", ["apriori", "bron-kerbosch"])
    def test_clique_backends_equivalent(self, backend):
        schema = random_schema_graph(num_types=10, num_rel_types=16, seed=7)
        context = ScoringContext(schema)
        result = apriori_discover(
            context,
            SizeConstraint(k=3, n=6),
            DistanceConstraint.tight(2),
            clique_backend=backend,
        )
        reference = brute_force_discover(
            context, SizeConstraint(k=3, n=6), DistanceConstraint.tight(2)
        )
        assert result.score == pytest.approx(reference.score)


class TestCandidates:
    def test_eligible_excludes_isolated_types(self):
        from repro.model import SchemaGraph, RelationshipTypeId

        schema = SchemaGraph()
        schema.add_entity_type("LONELY", entity_count=10)
        schema.add_relationship_type(RelationshipTypeId("r", "A", "B"))
        context = ScoringContext(schema)
        assert "LONELY" not in eligible_key_types(context)
        assert {"A", "B"} <= set(eligible_key_types(context))

    def test_best_preview_duplicate_keys_rejected(self, fig1_context):
        assert (
            best_preview_for_keys(
                fig1_context, ["FILM", "FILM"], SizeConstraint(k=2, n=4)
            )
            is None
        )

    def test_best_preview_respects_budget(self, fig1_context):
        allocation = best_preview_for_keys(
            fig1_context, ["FILM", "FILM ACTOR"], SizeConstraint(k=2, n=3)
        )
        preview, _score = allocation
        assert preview.attribute_count <= 3
        assert all(table.width >= 1 for table in preview.tables)

    def test_best_preview_score_matches_context(self, fig1_context):
        preview, score = best_preview_for_keys(
            fig1_context, ["FILM", "AWARD"], SizeConstraint(k=2, n=5)
        )
        assert score == pytest.approx(fig1_context.preview_score(preview.as_pairs()))

    def test_upper_bound_dominates(self, fig1_context):
        size = SizeConstraint(k=2, n=5)
        keys = ["FILM", "FILM ACTOR"]
        _preview, score = best_preview_for_keys(fig1_context, keys, size)
        assert upper_bound_for_keys(fig1_context, keys, size) >= score


class TestInfeasibility:
    def test_diverse_infeasible_returns_none(self, fig1_context):
        result = apriori_discover(
            fig1_context, SizeConstraint(k=3, n=6), DistanceConstraint.diverse(3)
        )
        # Fig. 1's schema is a star around FILM: no 3 types are pairwise
        # at distance >= 3.
        assert result is None

    def test_k_exceeds_types_raises(self, fig1_context):
        from repro.exceptions import InvalidConstraintError

        with pytest.raises(InvalidConstraintError):
            brute_force_discover(fig1_context, SizeConstraint(k=40, n=80))
