"""Tests for the algorithm registry and the PreviewEngine."""

import logging

import pytest

from repro.core import (
    ALGORITHMS,
    DISCOVERY_ALGORITHMS,
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
    available_algorithms,
    constraint_shape,
    discover_preview,
    make_context,
    register_discovery_algorithm,
    resolve_algorithm,
    unregister_discovery_algorithm,
)
from repro.engine import PreviewEngine, PreviewQuery
from repro.exceptions import (
    DiscoveryError,
    InfeasiblePreviewError,
    InvalidConstraintError,
)
from repro.ext import IncrementalEntityGraph
from repro.model import RelationshipTypeId

ACTED = RelationshipTypeId("Acted In", "ACTOR", "FILM")
DIRECTED = RelationshipTypeId("Directed", "DIRECTOR", "FILM")


class TestRegistry:
    def test_all_four_algorithms_registered(self):
        assert set(DISCOVERY_ALGORITHMS) == {
            "brute-force",
            "dynamic-programming",
            "apriori",
            "branch-and-bound",
        }
        for name in DISCOVERY_ALGORITHMS:
            assert name in ALGORITHMS
        assert available_algorithms()[0] == "auto"

    def test_declared_shapes(self):
        assert DISCOVERY_ALGORITHMS["dynamic-programming"].shapes == {"concise"}
        assert DISCOVERY_ALGORITHMS["apriori"].shapes == {"tight", "diverse"}
        for name in ("brute-force", "branch-and-bound"):
            assert DISCOVERY_ALGORITHMS[name].shapes == {
                "concise",
                "tight",
                "diverse",
            }

    def test_constraint_shape(self):
        assert constraint_shape(None) == "concise"
        assert constraint_shape(DistanceConstraint.tight(2)) == "tight"
        assert constraint_shape(DistanceConstraint.diverse(2)) == "diverse"

    def test_auto_resolves_to_papers_pairing(self):
        assert resolve_algorithm("auto", "concise").name == "dynamic-programming"
        assert resolve_algorithm("auto", "tight").name == "apriori"
        assert resolve_algorithm("auto", "diverse").name == "apriori"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(DiscoveryError, match="unknown algorithm"):
            resolve_algorithm("quantum", "concise")

    def test_dp_with_distance_rejected_via_registry(self, fig1_graph):
        """Satellite: forcing the DP onto a distance constraint must fail
        through the registry path with a DiscoveryError."""
        with pytest.raises(DiscoveryError, match="does not support tight"):
            discover_preview(
                fig1_graph, k=2, n=6, d=2, algorithm="dynamic-programming"
            )
        with pytest.raises(DiscoveryError, match="does not support diverse"):
            discover_preview(
                fig1_graph,
                k=2,
                n=6,
                d=2,
                mode="diverse",
                algorithm="dynamic-programming",
            )

    def test_apriori_without_distance_rejected(self, fig1_graph):
        with pytest.raises(DiscoveryError, match="does not support concise"):
            discover_preview(fig1_graph, k=2, n=6, algorithm="apriori")

    def test_registration_validation(self):
        with pytest.raises(DiscoveryError, match="unknown constraint shapes"):
            register_discovery_algorithm("bad", shapes=("cosy",))
        with pytest.raises(DiscoveryError, match="at least one shape"):
            register_discovery_algorithm("bad", shapes=())

    def test_third_party_algorithm_registers_and_dispatches(self, fig1_graph):
        """A registered third-party algorithm is selectable by name."""
        calls = []

        @register_discovery_algorithm(
            "always-brute", shapes=("concise", "tight", "diverse")
        )
        def _always_brute(context, size, distance=None):
            calls.append((size.k, size.n))
            from repro.core import brute_force_discover

            return brute_force_discover(context, size, distance)

        try:
            result = discover_preview(
                fig1_graph, k=2, n=6, algorithm="always-brute"
            )
            assert calls == [(2, 6)]
            reference = discover_preview(fig1_graph, k=2, n=6)
            assert result.score == pytest.approx(reference.score)
        finally:
            unregister_discovery_algorithm("always-brute")
        assert "always-brute" not in DISCOVERY_ALGORITHMS


class TestPreviewQuery:
    def test_cache_key_ignores_mode_without_distance(self):
        a = PreviewQuery(k=2, n=6, mode="tight")
        b = PreviewQuery(k=2, n=6, mode="diverse")
        assert a.cache_key() == b.cache_key()
        c = PreviewQuery(k=2, n=6, d=2, mode="diverse")
        assert a.cache_key() != c.cache_key()

    def test_shape_and_describe(self):
        assert PreviewQuery(k=2, n=6).shape() == "concise"
        query = PreviewQuery(k=2, n=6, d=3, mode="diverse")
        assert query.shape() == "diverse"
        assert query.describe() == "k=2, n=6, diverse d=3"

    def test_invalid_mode_raises(self):
        with pytest.raises(DiscoveryError):
            PreviewQuery(k=2, n=6, d=2, mode="cosy").distance()

    def test_grid_is_deterministic_cross_product(self):
        grid = list(
            PreviewQuery.grid(
                ks=(1, 2), ns=(3, 4), distances=[None, (2, "tight")]
            )
        )
        assert len(grid) == 8
        assert grid[0] == PreviewQuery(k=1, n=3)
        assert grid[-1] == PreviewQuery(k=2, n=4, d=2, mode="tight")

    def test_grid_rejects_empty_axes(self):
        """An empty axis yields a vacuous sweep — fail loudly instead."""
        with pytest.raises(DiscoveryError, match="grid axis 'ks'"):
            PreviewQuery.grid(ks=(), ns=(4,))
        with pytest.raises(DiscoveryError, match="grid axis 'ns'"):
            PreviewQuery.grid(ks=(2,), ns=())
        with pytest.raises(DiscoveryError, match="grid axis 'distances'"):
            PreviewQuery.grid(ks=(2,), ns=(4,), distances=())

    def test_grid_rejects_exhausted_generator(self):
        ns = (n for n in (4, 5))
        list(PreviewQuery.grid(ks=(2,), ns=ns))  # drains the generator
        with pytest.raises(DiscoveryError, match="grid axis 'ns'"):
            PreviewQuery.grid(ks=(2,), ns=ns)

    def test_grid_validates_eagerly(self):
        """The error must fire at grid() time, not at first iteration."""
        with pytest.raises(DiscoveryError):
            PreviewQuery.grid(ks=(), ns=(4,))  # no list() needed


class TestPreviewEngine:
    def test_accepts_graph_schema_and_context(self, fig1_graph, fig1_schema):
        for data in (fig1_graph, fig1_schema, make_context(fig1_graph)):
            result = PreviewEngine(data).query(k=2, n=6)
            assert result.preview.table_count == 2

    def test_matches_facade_for_every_algorithm(self, fig1_graph):
        context = make_context(fig1_graph)
        engine = PreviewEngine(context)
        cases = [
            dict(algorithm="auto"),
            dict(algorithm="brute-force"),
            dict(algorithm="dynamic-programming"),
            dict(algorithm="branch-and-bound"),
            dict(d=1, mode="tight", algorithm="auto"),
            dict(d=1, mode="tight", algorithm="apriori"),
            dict(d=1, mode="tight", algorithm="brute-force"),
            dict(d=1, mode="tight", algorithm="branch-and-bound"),
            dict(d=2, mode="diverse", algorithm="apriori"),
        ]
        for case in cases:
            expected = discover_preview(context, k=2, n=6, **case)
            actual = engine.query(k=2, n=6, **case)
            assert actual == expected, case

    def test_apriori_fast_path_matches_legacy_algorithm(self, fig1_context):
        """The sweep fast path must replicate apriori_discover exactly."""
        engine = PreviewEngine(fig1_context)
        for d, mode in ((1, "tight"), (2, "tight"), (2, "diverse")):
            for n in range(2, 7):
                constraint = (
                    DistanceConstraint.tight(d)
                    if mode == "tight"
                    else DistanceConstraint.diverse(d)
                )
                legacy = apriori_discover(
                    fig1_context, SizeConstraint(k=2, n=n), constraint
                )
                if legacy is None:
                    with pytest.raises(InfeasiblePreviewError):
                        engine.query(k=2, n=n, d=d, mode=mode)
                else:
                    assert engine.query(k=2, n=n, d=d, mode=mode) == legacy

    def test_shadowed_apriori_beats_fast_path(self, fig1_graph):
        """Latest-wins registration must also win over the sweep fast path."""
        calls = []
        original = DISCOVERY_ALGORITHMS["apriori"]

        @register_discovery_algorithm("apriori", shapes=("tight", "diverse"))
        def _shadow(context, size, distance=None):
            calls.append(size.n)
            return original.run(context, size, distance)

        try:
            engine = PreviewEngine(fig1_graph)
            engine.query(k=2, n=6, d=1, mode="tight", algorithm="apriori")
            assert calls == [6]  # the shadow ran, not the built-in fast path
        finally:
            DISCOVERY_ALGORITHMS["apriori"] = original

    def test_reregistration_is_not_served_stale_results(self, fig1_graph):
        """Memo entries are keyed by the resolved spec, not just the name."""
        engine = PreviewEngine(fig1_graph)
        first = engine.query(k=2, n=6, algorithm="brute-force")
        original = DISCOVERY_ALGORITHMS["brute-force"]

        @register_discovery_algorithm(
            "brute-force", shapes=("concise", "tight", "diverse")
        )
        def _replacement(context, size, distance=None):
            return None  # everything is suddenly infeasible

        try:
            with pytest.raises(InfeasiblePreviewError):
                engine.query(k=2, n=6, algorithm="brute-force")
        finally:
            DISCOVERY_ALGORITHMS["brute-force"] = original
        # And the original spec's cached result is still served afterwards.
        assert engine.query(k=2, n=6, algorithm="brute-force") is first

    def test_memoizes_results(self, fig1_graph):
        engine = PreviewEngine(fig1_graph)
        first = engine.query(k=2, n=6)
        second = engine.query(k=2, n=6)
        assert second is first  # cached object, not a recomputation
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_memoizes_infeasibility(self, fig1_graph):
        engine = PreviewEngine(fig1_graph)
        for _ in range(2):
            with pytest.raises(InfeasiblePreviewError):
                engine.query(k=3, n=6, d=3, mode="diverse")
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_sweep_matches_per_call_facade(self, fig1_graph):
        context = make_context(fig1_graph)
        engine = PreviewEngine(context)
        grid = list(
            PreviewQuery.grid(
                ks=(1, 2),
                ns=(4, 5, 6),
                distances=[None, (1, "tight"), (2, "diverse")],
            )
        )
        swept = engine.sweep(grid, skip_infeasible=True)
        assert len(swept) == len(grid)
        for query, result in zip(grid, swept):
            try:
                expected = discover_preview(
                    context,
                    k=query.k,
                    n=query.n,
                    d=query.d,
                    mode=query.mode,
                    algorithm=query.algorithm,
                )
            except InfeasiblePreviewError:
                expected = None
            assert result == expected, query

    def test_sweep_raises_on_infeasible_by_default(self, fig1_graph):
        engine = PreviewEngine(fig1_graph)
        with pytest.raises(InfeasiblePreviewError):
            engine.sweep([PreviewQuery(k=3, n=6, d=3, mode="diverse")])

    def test_sweep_shares_pruning_state_across_n(self, fig1_graph):
        engine = PreviewEngine(fig1_graph)
        engine.sweep(
            [PreviewQuery(k=2, n=n, d=1, mode="tight") for n in (4, 5, 6)]
        )
        # One clique/profile group serves all three attribute budgets.
        assert engine.cache_info()["profile_groups"] == 1

    def test_invalidate_clears_caches(self, fig1_graph):
        engine = PreviewEngine(fig1_graph)
        engine.query(k=2, n=6)
        engine.invalidate()
        info = engine.cache_info()
        assert info["results"] == 0 and info["invalidations"] == 1
        assert engine.query(k=2, n=6).preview.table_count == 2


class TestEngineCacheInvalidation:
    """Generation-driven invalidation over a mutating entity graph."""

    @pytest.fixture
    def live(self):
        inc = IncrementalEntityGraph(name="live")
        for i in range(3):
            inc.add_entity(f"film{i}", ["FILM"])
        inc.add_entity("actor0", ["ACTOR"])
        inc.add_entity("director0", ["DIRECTOR"])
        for i in range(3):
            inc.add_relationship("actor0", f"film{i}", ACTED)
        inc.add_relationship("director0", "film0", DIRECTED)
        return inc

    def test_engine_is_cached_per_scorer_pair(self, live):
        assert live.engine() is live.engine()
        assert live.engine() is not live.engine("random_walk")

    def test_mutation_invalidates_and_resolves_fresh(self, live):
        engine = live.engine()
        before = engine.query(k=1, n=2)
        assert engine.query(k=1, n=2) is before  # cached while unchanged

        # A directing spree makes DIRECTED the dominant relationship.
        for i in range(1, 3):
            live.add_relationship("director0", f"film{i}", DIRECTED)
        for i in range(10):
            live.add_entity(f"film{i + 3}", ["FILM"])
            live.add_relationship("director0", f"film{i + 3}", DIRECTED)

        after = engine.query(k=1, n=2)
        # FILM/DIRECTOR scores moved, and the concise result depends on
        # them: the entry must have been evicted (type-scoped, not a
        # full invalidation — coverage scorers are delta-capable).
        assert engine.cache_info()["evicted"] >= 1
        assert engine.cache_info()["generation"] == live.generation
        assert after.score > before.score  # re-solved against fresh scores
        # And identical to a from-scratch discovery on the mutated graph.
        fresh = discover_preview(live.context(), k=1, n=2)
        assert after == fresh

    def test_discover_routes_through_generation_aware_engine(self, live):
        first = live.discover(k=1, n=2)
        second = live.discover(k=1, n=2)
        assert second is first  # memo hit between mutations
        live.add_entity("film99", ["FILM"])
        third = live.discover(k=1, n=2)
        assert third is not first

    def test_distance_sweep_state_dropped_on_mutation(self, live):
        # Sweeps (not one-shot queries) build the per-group profile
        # state: one-shot queries answer through the batched kernel
        # without materializing profiles.
        engine = live.engine()
        point = [PreviewQuery(k=2, n=4, d=2, mode="tight")]
        engine.sweep(point)
        assert engine.cache_info()["profile_groups"] == 1
        live.add_entity("genre0", ["GENRE"])
        engine.sweep(point)
        info = engine.cache_info()
        assert info["generation"] == live.generation
        assert info["profile_groups"] == 1  # rebuilt for the new generation

    def test_cache_info_syncs_generation_before_reporting(self, live):
        """Regression: cache_info() must not report a stale generation.

        It used to read ``_cache_generation`` without syncing, so between
        a tracked-source mutation and the next query it reported the old
        generation alongside pre-invalidation cache sizes.

        Since the delta pipeline, the mutation (an entity of the
        existing FILM type — non-structural, coverage scorers) triggers
        a *type-scoped* eviction: both cached results depend on FILM, so
        both are evicted, but the clique/profile group survives (its
        dirty profiles are patched lazily on the next read) and no full
        invalidation is recorded.
        """
        engine = live.engine()
        engine.query(k=1, n=2)
        # A sweep point, so the profile group exists (one-shot queries
        # run the batched kernel and never materialize profiles).
        engine.sweep([PreviewQuery(k=2, n=4, d=2, mode="tight")])
        live.add_entity("film-new", ["FILM"])
        info = engine.cache_info()  # no query ran since the mutation
        assert info["generation"] == live.generation
        assert info["results"] == 0  # evicted, not the stale sizes
        assert info["profile_groups"] == 1  # sweep state retained
        assert info["invalidations"] == 0  # type-scoped, not a full drop
        assert info["evicted"] == 2 and info["retained"] == 0

    def test_sweep_fast_path_under_interleaved_mutation(self, live):
        """Sweep answers after a mutation must match fresh discovery.

        Interleaves mutations between sweep batches; every post-mutation
        result must equal a from-scratch ``apriori_discover`` on the
        current generation (guards the ``_prewarm_profiles`` →
        ``_sync_generation`` ordering: profiles prewarmed before the
        generation check would serve the previous graph's scores).
        """
        engine = live.engine()
        grid = [PreviewQuery(k=2, n=n, d=2, mode="tight") for n in (3, 4, 5)]
        for batch in range(3):
            results = engine.sweep(grid, skip_infeasible=True)
            context = live.context()
            for query, result in zip(grid, results):
                fresh = apriori_discover(
                    context,
                    SizeConstraint(k=query.k, n=query.n),
                    DistanceConstraint.tight(query.d),
                )
                assert result == fresh, (batch, query)
            # Mutate between batches: new entities and a relationship
            # spree that reshuffles the coverage scores.
            live.add_entity(f"film-extra{batch}", ["FILM"])
            live.add_relationship(
                "director0", f"film-extra{batch}", DIRECTED
            )
            live.add_relationship("actor0", f"film-extra{batch}", ACTED)


class TestEngineErrorHygiene:
    """Raised queries must not skew cache statistics or leave memo junk."""

    @pytest.mark.parametrize(
        "bad_query",
        [
            PreviewQuery(k=0, n=5),  # k < 1
            PreviewQuery(k=3, n=2),  # n < k
            PreviewQuery(k=2, n=6, d=-1),  # negative distance
            PreviewQuery(k=2, n=6, d=1, mode="cosy"),  # unknown mode
        ],
    )
    def test_malformed_query_leaves_counters_unchanged(
        self, fig1_graph, bad_query
    ):
        engine = PreviewEngine(fig1_graph)
        engine.query(k=2, n=6)  # one real miss on the books
        before = engine.cache_info()
        for _ in range(2):  # retrying must not accumulate skew either
            with pytest.raises(DiscoveryError):
                engine.run(bad_query)
        assert engine.cache_info() == before
        assert before["hits"] == 0 and before["misses"] == 1

    def test_execution_failure_leaves_counters_and_memo_unchanged(
        self, fig1_graph
    ):
        """A query that fails inside the algorithm (k exceeding the
        candidate pool) must leave hit/miss counts and the result cache
        exactly as they were, so retries do not skew cache_info."""
        engine = PreviewEngine(fig1_graph)
        engine.query(k=2, n=6)
        before = engine.cache_info()
        for _ in range(2):
            with pytest.raises(InvalidConstraintError):
                engine.query(k=50, n=60)
        after = engine.cache_info()
        assert after == before
        assert after["results"] == 1  # only the good query is memoized

    def test_sweep_of_zero_queries_returns_empty_and_logs(
        self, fig1_graph, caplog
    ):
        engine = PreviewEngine(fig1_graph)
        with caplog.at_level(logging.WARNING, logger="repro.engine.engine"):
            assert engine.sweep([]) == []
        assert any("zero queries" in record.message for record in caplog.records)
        assert engine.cache_info()["misses"] == 0
