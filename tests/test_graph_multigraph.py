"""Unit tests for repro.graph.multigraph."""

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph import DirectedMultigraph


@pytest.fixture
def graph():
    g = DirectedMultigraph()
    g.add_edge("a", "b", "x")
    g.add_edge("a", "b", "y")  # parallel edge
    g.add_edge("b", "c", "z")
    g.add_edge("c", "a", "w")
    return g


class TestNodes:
    def test_add_node_idempotent(self):
        g = DirectedMultigraph()
        g.add_node("a")
        g.add_node("a")
        assert g.node_count == 1

    def test_add_edge_adds_endpoints(self, graph):
        assert graph.has_node("a") and graph.has_node("c")

    def test_contains_and_len(self, graph):
        assert "a" in graph
        assert "zzz" not in graph
        assert len(graph) == 3

    def test_remove_node_removes_incident_edges(self, graph):
        graph.remove_node("b")
        assert graph.edge_count == 1  # only c -> a survives
        assert not graph.has_edge("a", "b")

    def test_remove_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("nope")

    def test_remove_node_with_self_loop(self):
        g = DirectedMultigraph()
        g.add_edge("a", "a", "loop")
        g.add_edge("a", "b")
        g.remove_node("a")
        assert g.edge_count == 0
        assert g.node_count == 1


class TestEdges:
    def test_parallel_edges_counted(self, graph):
        assert graph.edge_count == 4
        assert len(graph.edges_between("a", "b")) == 2

    def test_edge_keys_unique(self, graph):
        keys = [key for _, _, key, _ in graph.edges()]
        assert len(keys) == len(set(keys))

    def test_remove_edge_by_key(self, graph):
        (key, _label), _ = graph.edges_between("a", "b")
        graph.remove_edge("a", "b", key)
        assert graph.edge_count == 3
        assert len(graph.edges_between("a", "b")) == 1

    def test_remove_missing_edge_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge("a", "c", 0)

    def test_labels_preserved(self, graph):
        labels = {label for _, _, _, label in graph.edges()}
        assert labels == {"x", "y", "z", "w"}

    def test_edges_between_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.edges_between("nope", "a")


class TestAdjacency:
    def test_successors_predecessors(self, graph):
        assert set(graph.successors("a")) == {"b"}
        assert set(graph.predecessors("a")) == {"c"}

    def test_neighbors_undirected(self, graph):
        assert set(graph.neighbors("a")) == {"b", "c"}

    def test_degrees(self, graph):
        assert graph.out_degree("a") == 2  # two parallel edges
        assert graph.in_degree("a") == 1
        assert graph.degree("a") == 3

    def test_out_edges_yields_labels(self, graph):
        labels = {label for _, _, label in graph.out_edges("a")}
        assert labels == {"x", "y"}

    def test_adjacency_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            list(graph.successors("nope"))


class TestCopySubgraph:
    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add_edge("a", "c")
        assert graph.edge_count == 4
        assert clone.edge_count == 5

    def test_subgraph_induced(self, graph):
        sub = graph.subgraph(["a", "b"])
        assert sub.node_count == 2
        assert sub.edge_count == 2  # both parallel a->b edges

    def test_subgraph_ignores_missing(self, graph):
        sub = graph.subgraph(["a", "ghost"])
        assert sub.node_count == 1
        assert sub.edge_count == 0
