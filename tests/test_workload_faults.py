"""Fault injection: the serve path under hostile workload conditions.

The conformance tests prove the service agrees with the engines when
clients behave; these tests prove a *misbehaving* client or an
over-capacity burst cannot corrupt it.  Each test replays a recorded
workload trace over the socket while injecting one fault — a client
vanishing mid-computation, admission-control rejections, per-request
timeouts — and then requires (a) the replayed payloads still match the
digests recorded from the direct incremental engine, byte for byte, and
(b) a follow-up ``stats`` op shows sane accounting (coalescer drained,
response cache within bounds, counters consistent).
"""

from __future__ import annotations

import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core import brute_force_discover
from repro.core.registry import (
    register_discovery_algorithm,
    unregister_discovery_algorithm,
)
from repro.datasets.freebase_like import generate_domain
from repro.exceptions import ServeRequestError
from repro.serve import (
    EngineHost,
    PreviewService,
    ServeClient,
    encode_frame,
    run_in_background,
)
from repro.workload import (
    generate_trace,
    payload_digest,
    record_digests,
    scenario,
)

SLOW_SECONDS = 0.4

#: The bursty session every fault is injected into.
TRACE = record_digests(
    generate_trace(
        domain="architecture",
        scale=1000,
        seed=77,
        ops=18,
        scenario=scenario("write-burst", clients=2),
    )
)


@pytest.fixture
def slow_algorithm():
    """A sleeping brute-force clone, for in-flight/overload windows."""

    @register_discovery_algorithm(
        "workload-slow", shapes=("concise", "tight", "diverse")
    )
    def _slow(context, size, distance=None):
        time.sleep(SLOW_SECONDS)
        return brute_force_discover(context, size, distance)

    yield "workload-slow"
    unregister_discovery_algorithm("workload-slow")


@contextmanager
def trace_server(**service_kwargs):
    """A service hosting a private copy of the trace's starting graph."""
    host = EngineHost(
        TRACE.domain,
        generate_domain(TRACE.domain, scale=TRACE.scale, seed=TRACE.seed),
        key_scorer=TRACE.key_scorer,
        nonkey_scorer=TRACE.nonkey_scorer,
    )
    server = run_in_background(
        PreviewService({TRACE.domain: host}, **service_kwargs)
    )
    try:
        yield server
    finally:
        server.stop()


def serve_payload(client: ServeClient, op):
    """One trace op over the socket, shaped like the replayers shape it."""
    if op.op == "mutate":
        return client.call("mutate", op.params)
    if op.op == "preview":
        try:
            return {"result": client.call("preview", op.params)["result"]}
        except ServeRequestError as exc:
            if exc.code != "infeasible":
                raise
            return {"result": None}
    if op.op == "sweep":
        return {"results": client.call("sweep", op.params)["results"]}
    return None  # stats


def assert_stats_sane(client: ServeClient) -> dict:
    """The follow-up ``stats`` op: accounting must be internally sane."""
    stats = client.stats()
    dataset = stats["datasets"][0]
    for group in ("engine", "coalescer", "responses"):
        for name, value in dataset[group].items():
            assert not (isinstance(value, int) and value < 0), (group, name, value)
    assert dataset["responses"]["entries"] <= EngineHost.RESPONSE_CACHE_SIZE
    assert dataset["coalescer"]["inflight"] == 0
    service = stats["service"]
    assert service["ok"] + service["errors"] <= service["requests"]
    return stats


def assert_replay_matches(client: ServeClient, ops) -> None:
    """Replay ``ops`` on ``client``; recorded digests must reproduce."""
    for index, op in enumerate(ops):
        payload = serve_payload(client, op)
        if op.digest is not None:
            assert payload_digest(payload) == op.digest, (
                f"op #{index} ({op.op}) diverged from the recorded payload"
            )


class TestWorkloadFaults:
    def test_client_disconnect_mid_trace(self, slow_algorithm):
        """A client dying mid-computation never perturbs the trace."""
        half = len(TRACE.ops) // 2
        with trace_server() as server:
            with ServeClient(port=server.port, timeout=60) as client:
                assert_replay_matches(client, TRACE.ops[:half])
            # The replaying client is gone; a rogue one starts a slow
            # computation and vanishes before the answer exists.
            rogue = socket.create_connection(("127.0.0.1", server.port), timeout=10)
            rogue.sendall(encode_frame({
                "op": "preview", "id": 1,
                "params": {"k": 2, "n": 4, "algorithm": slow_algorithm},
            }))
            rogue.close()
            time.sleep(SLOW_SECONDS * 2)  # let the abandoned work land
            with ServeClient(port=server.port, timeout=60) as client:
                assert client.health()["status"] == "ok"
                # The abandoned computation landed in the caches anyway:
                # the same ask is a response-cache hit, not a recompute.
                before = assert_stats_sane(client)["datasets"][0]
                answered = client.request(
                    "preview",
                    {"k": 2, "n": 4, "algorithm": slow_algorithm},
                )
                assert answered["ok"] is True
                after = assert_stats_sane(client)["datasets"][0]
                assert after["engine"]["misses"] == before["engine"]["misses"]
                assert after["responses"]["hits"] > before["responses"]["hits"]
                assert_replay_matches(client, TRACE.ops[half:])
                assert_stats_sane(client)

    def test_overload_burst_leaves_service_consistent(self, slow_algorithm):
        """Admission rejections under a burst don't corrupt later replay."""
        with trace_server(max_pending=1) as server:
            barrier = threading.Barrier(4)
            codes = []

            def hammer(n):
                with ServeClient(port=server.port, timeout=60) as client:
                    barrier.wait()
                    response = client.request(
                        "preview",
                        {"k": 2, "n": 3 + n, "algorithm": slow_algorithm},
                    )
                    codes.append(
                        "ok" if response["ok"] else response["error"]["code"]
                    )

            threads = [
                threading.Thread(target=hammer, args=(n,)) for n in range(3)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            for thread in threads:
                thread.join(timeout=30)
            assert "overloaded" in codes, codes
            # The rejected burst is gone; the whole trace still replays
            # byte-identically and the accounting is sane.
            with ServeClient(port=server.port, timeout=60) as client:
                assert_replay_matches(client, TRACE.ops)
                stats = assert_stats_sane(client)
                assert stats["service"]["rejected"] >= 1

    def test_timeouts_answer_and_caches_stay_consistent(self, slow_algorithm):
        """Timed-out requests answer, later land in cache, stats stay sane."""
        with trace_server(request_timeout=SLOW_SECONDS / 4) as server:
            slow_params = {"k": 2, "n": 4, "algorithm": slow_algorithm}
            with ServeClient(port=server.port, timeout=60) as client:
                response = client.request("preview", slow_params)
                assert response["ok"] is False
                assert response["error"]["code"] == "timeout"
                # The computation the timeout abandoned still completes
                # on the worker thread and lands in the response cache.
                time.sleep(SLOW_SECONDS * 2)
                answered = client.request("preview", slow_params)
                assert answered["ok"] is True
                stats = assert_stats_sane(client)
                assert stats["service"]["timeouts"] >= 1
                before_hits = stats["datasets"][0]["responses"]["hits"]
                # A warm re-ask is served from the response cache: hit
                # accounting moves, the payload is literally identical.
                again = client.request("preview", slow_params)
                assert again["result"] == answered["result"]
                stats = assert_stats_sane(client)
                assert stats["datasets"][0]["responses"]["hits"] > before_hits
            # Ordinary trace ops fit the tight budget: the whole session
            # still replays byte-identically on the same service.
            with ServeClient(port=server.port, timeout=60) as client:
                assert_replay_matches(client, TRACE.ops)
                assert_stats_sane(client)
