"""Tests for the discovery facade, materialization and rendering."""

import pytest

from repro.core import (
    discover_preview,
    make_context,
    materialize_preview,
    materialize_table,
    non_empty_ratio,
    render_preview,
)
from repro.core.render import format_value, render_materialized_table
from repro.exceptions import (
    DiscoveryError,
    InfeasiblePreviewError,
)


class TestDiscoveryFacade:
    def test_accepts_entity_graph(self, fig1_graph):
        result = discover_preview(fig1_graph, k=2, n=6)
        assert result.preview.table_count == 2
        assert result.algorithm == "dynamic-programming"

    def test_accepts_schema_graph(self, fig1_schema):
        result = discover_preview(fig1_schema, k=2, n=6)
        assert result.preview.table_count == 2

    def test_accepts_context(self, fig1_context):
        result = discover_preview(fig1_context, k=1, n=2)
        assert result.preview.table_count == 1

    def test_auto_uses_apriori_for_distance(self, fig1_graph):
        result = discover_preview(fig1_graph, k=2, n=6, d=1, mode="tight")
        assert result.algorithm.startswith("apriori")

    def test_brute_force_forced(self, fig1_graph):
        result = discover_preview(fig1_graph, k=2, n=6, algorithm="brute-force")
        assert result.algorithm == "brute-force"

    def test_entropy_scorer_via_name(self, fig1_graph):
        result = discover_preview(
            fig1_graph, k=2, n=4, key_scorer="random_walk", nonkey_scorer="entropy"
        )
        assert result.key_scorer == "random_walk"
        assert result.nonkey_scorer == "entropy"

    def test_invalid_mode_raises(self, fig1_graph):
        with pytest.raises(DiscoveryError):
            discover_preview(fig1_graph, k=2, n=6, d=2, mode="cosy")

    def test_unknown_algorithm_raises(self, fig1_graph):
        with pytest.raises(DiscoveryError):
            discover_preview(fig1_graph, k=2, n=6, algorithm="quantum")

    def test_dp_rejects_distance(self, fig1_graph):
        with pytest.raises(DiscoveryError):
            discover_preview(
                fig1_graph, k=2, n=6, d=2, algorithm="dynamic-programming"
            )

    def test_apriori_requires_distance(self, fig1_graph):
        with pytest.raises(DiscoveryError):
            discover_preview(fig1_graph, k=2, n=6, algorithm="apriori")

    def test_infeasible_raises(self, fig1_graph):
        with pytest.raises(InfeasiblePreviewError):
            discover_preview(fig1_graph, k=3, n=6, d=3, mode="diverse")

    def test_make_context_rejects_junk(self):
        with pytest.raises(DiscoveryError):
            make_context(42)

    def test_result_summary(self, fig1_graph):
        summary = discover_preview(fig1_graph, k=2, n=6).summary()
        assert summary["tables"] == 2
        assert summary["attributes"] <= 6


class TestMaterialize:
    @pytest.fixture
    def preview(self, fig1_graph):
        return discover_preview(fig1_graph, k=2, n=6).preview

    def test_all_tuples_without_sampling(self, fig1_graph, preview):
        film = preview.table_for("FILM")
        mat = materialize_table(fig1_graph, film, sample_size=None)
        assert mat.total_tuples == mat.shown == 4

    def test_sampling_bounded_and_deterministic(self, fig1_graph, preview):
        film = preview.table_for("FILM")
        mat1 = materialize_table(fig1_graph, film, sample_size=2, seed=5)
        mat2 = materialize_table(fig1_graph, film, sample_size=2, seed=5)
        assert mat1.shown == 2
        assert [r.key_entity for r in mat1.rows] == [r.key_entity for r in mat2.rows]

    def test_negative_sample_rejected(self, fig1_graph, preview):
        with pytest.raises(DiscoveryError):
            materialize_table(fig1_graph, preview.tables[0], sample_size=-1)

    def test_values_match_graph(self, fig1_graph, preview):
        film = preview.table_for("FILM")
        mat = materialize_table(fig1_graph, film, sample_size=None)
        for row in mat.rows:
            for attr, value in zip(film.nonkey, row.values):
                assert value == fig1_graph.attribute_value(row.key_entity, attr)

    def test_materialize_preview_covers_all_tables(self, fig1_graph, preview):
        mats = materialize_preview(fig1_graph, preview)
        assert len(mats) == preview.table_count

    def test_non_empty_ratio(self, fig1_graph, preview):
        film = preview.table_for("FILM")
        genres = next(a for a in film.nonkey if a.name == "Genres")
        # 3 of 4 films have a genre in Fig. 1.
        assert non_empty_ratio(fig1_graph, film, genres) == pytest.approx(0.75)

    def test_non_empty_ratio_foreign_attr_raises(self, fig1_graph, preview):
        film = preview.table_for("FILM")
        actor_table = preview.table_for("FILM ACTOR")
        with pytest.raises(DiscoveryError):
            non_empty_ratio(fig1_graph, film, actor_table.nonkey[0])


class TestRender:
    def test_format_value(self):
        assert format_value(frozenset()) == "-"
        assert format_value(frozenset({"x"})) == "x"
        assert format_value(frozenset({"b", "a"})) == "{a, b}"

    def test_render_contains_entities(self, fig1_graph):
        preview = discover_preview(fig1_graph, k=2, n=6).preview
        text = render_preview(preview, fig1_graph, sample_size=None)
        assert "Men in Black" in text
        assert "FILM ACTOR" in text
        assert "-" in text  # Hancock has no genre (Fig. 2's t3)

    def test_render_without_entity_graph(self, fig1_graph):
        preview = discover_preview(fig1_graph, k=2, n=6).preview
        text = render_preview(preview)
        assert "[FILM]" in text

    def test_sample_note_shown(self, fig1_graph):
        preview = discover_preview(fig1_graph, k=1, n=2).preview
        mat = materialize_preview(fig1_graph, preview, sample_size=2)[0]
        if mat.total_tuples > 2:
            assert "tuples shown" in render_materialized_table(mat)
