"""Tests for preview/result JSON serialization."""

import json

import pytest

from repro.core import discover_preview
from repro.core.serialize import (
    FORMAT_VERSION,
    attribute_from_dict,
    attribute_to_dict,
    preview_from_dict,
    preview_from_json,
    preview_to_dict,
    preview_to_json,
    result_from_dict,
    result_to_dict,
)
from repro.exceptions import DiscoveryError
from repro.model import Direction, NonKeyAttribute, RelationshipTypeId

GENRES = RelationshipTypeId("Genres", "FILM", "FILM GENRE")


class TestAttributeCodec:
    def test_round_trip_both_directions(self):
        for direction in (Direction.OUT, Direction.IN):
            attr = NonKeyAttribute(GENRES, direction)
            assert attribute_from_dict(attribute_to_dict(attr)) == attr

    def test_malformed_rejected(self):
        with pytest.raises(DiscoveryError):
            attribute_from_dict({"name": "x"})
        with pytest.raises(DiscoveryError):
            attribute_from_dict(
                {"name": "x", "source": "A", "target": "B", "direction": "sideways"}
            )


class TestPreviewCodec:
    @pytest.fixture
    def preview(self, fig1_graph):
        return discover_preview(fig1_graph, k=2, n=6).preview

    def test_round_trip(self, preview):
        clone = preview_from_json(preview_to_json(preview))
        assert clone == preview

    def test_dict_round_trip(self, preview):
        assert preview_from_dict(preview_to_dict(preview)) == preview

    def test_version_stamped(self, preview):
        data = preview_to_dict(preview)
        assert data["version"] == FORMAT_VERSION

    def test_wrong_version_rejected(self, preview):
        data = preview_to_dict(preview)
        data["version"] = 99
        with pytest.raises(DiscoveryError):
            preview_from_dict(data)

    def test_missing_tables_rejected(self):
        with pytest.raises(DiscoveryError):
            preview_from_dict({"version": FORMAT_VERSION, "tables": [{"nope": 1}]})

    def test_invalid_json_rejected(self):
        with pytest.raises(DiscoveryError):
            preview_from_json("{not json")

    def test_json_is_stable(self, preview):
        assert preview_to_json(preview) == preview_to_json(preview)
        json.loads(preview_to_json(preview))  # valid JSON


class TestResultCodec:
    def test_round_trip(self, fig1_graph):
        result = discover_preview(fig1_graph, k=2, n=6)
        clone = result_from_dict(result_to_dict(result))
        assert clone.preview == result.preview
        assert clone.score == pytest.approx(result.score)
        assert clone.algorithm == result.algorithm
        assert clone.key_scorer == result.key_scorer

    def test_missing_metadata_rejected(self, fig1_graph):
        result = discover_preview(fig1_graph, k=1, n=2)
        data = result_to_dict(result)
        del data["discovery"]
        with pytest.raises(DiscoveryError):
            result_from_dict(data)

    def test_bad_score_rejected(self, fig1_graph):
        result = discover_preview(fig1_graph, k=1, n=2)
        data = result_to_dict(result)
        data["discovery"]["score"] = "many"
        with pytest.raises(DiscoveryError):
            result_from_dict(data)
