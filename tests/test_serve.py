"""The preview-table service: protocol, coalescing, admission, edge cases.

Every service test drives the *real* socket path — a
:class:`PreviewService` bound to an ephemeral port on a background
thread, spoken to through :class:`ServeClient` (or raw sockets, for the
frames a well-behaved client would never send).  The edge cases the
ISSUE names are all here: malformed JSON frames, oversized requests,
client disconnect mid-computation, mutation/query interleaving over the
socket, and coalesced-request identity.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from contextlib import contextmanager

import pytest

import importlib.util
from pathlib import Path

# Loaded by path: plain ``from conftest import ...`` would collide with
# benchmarks/conftest.py when the whole repo is collected in one run.
_conftest_spec = importlib.util.spec_from_file_location(
    "_serve_test_fixtures", Path(__file__).with_name("conftest.py")
)
_conftest = importlib.util.module_from_spec(_conftest_spec)
_conftest_spec.loader.exec_module(_conftest)
build_fig1_graph = _conftest.build_fig1_graph

from repro.core import brute_force_discover
from repro.core.registry import (
    register_discovery_algorithm,
    unregister_discovery_algorithm,
)
from repro.core.serialize import result_to_dict
from repro.engine import PreviewEngine, PreviewQuery
from repro.exceptions import ProtocolError, ServeError, ServeRequestError
from repro.ext import IncrementalEntityGraph
from repro.model import RelationshipTypeId
from repro.serve import (
    EngineHost,
    PreviewService,
    ReadWriteLock,
    RequestCoalescer,
    ServeClient,
    decode_frame,
    encode_frame,
    error_response,
    parse_request,
    run_in_background,
)

#: Sleep of the deliberately slow test algorithm (long enough that a
#: second client provably arrives while the first computation is in
#: flight, short enough to keep the suite fast).
SLOW_SECONDS = 0.4


@contextmanager
def fig1_server(**service_kwargs):
    """A fresh service over a private Fig. 1 graph, torn down after."""
    host = EngineHost("fig1", build_fig1_graph())
    service = PreviewService({"fig1": host}, **service_kwargs)
    server = run_in_background(service)
    try:
        yield server
    finally:
        server.stop()


@pytest.fixture
def slow_algorithm():
    """Register a sleeping brute-force clone for concurrency tests."""

    @register_discovery_algorithm("serve-slow", shapes=("concise", "tight", "diverse"))
    def _slow(context, size, distance=None):
        time.sleep(SLOW_SECONDS)
        return brute_force_discover(context, size, distance)

    yield "serve-slow"
    unregister_discovery_algorithm("serve-slow")


# ----------------------------------------------------------------------
# Protocol units (no sockets)
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip_is_key_sorted(self):
        frame = encode_frame({"op": "health", "id": 3})
        assert frame == b'{"id": 3, "op": "health"}\n'
        assert decode_frame(frame) == {"id": 3, "op": "health"}

    def test_decode_rejects_non_json_and_non_objects(self):
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"not json\n")
        assert exc.value.code == "bad-frame"
        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"[1, 2]\n")
        assert exc.value.code == "bad-frame"

    def test_decode_rejects_oversized(self):
        from repro.serve import MAX_FRAME_BYTES

        with pytest.raises(ProtocolError) as exc:
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))
        assert exc.value.code == "oversized"

    def test_parse_request_validation(self):
        request = parse_request({"op": "preview", "id": "a", "params": {"k": 1}})
        assert (request.op, request.id, request.params) == ("preview", "a", {"k": 1})
        for payload, code in (
            ({}, "bad-request"),
            ({"op": 7}, "bad-request"),
            ({"op": "noop"}, "unknown-op"),
            ({"op": "preview", "dataset": 9}, "bad-request"),
            ({"op": "preview", "params": []}, "bad-request"),
        ):
            with pytest.raises(ProtocolError) as exc:
                parse_request(payload)
            assert exc.value.code == code

    def test_unmapped_error_code_becomes_internal(self):
        response = error_response(1, "no-such-code", "boom")
        assert response["error"]["code"] == "internal"


# ----------------------------------------------------------------------
# Async primitives
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_writer_excludes_readers_and_is_not_starved(self):
        events = []

        async def scenario():
            lock = ReadWriteLock()
            reader_entered = asyncio.Event()
            release_reader = asyncio.Event()

            async def reader(name, gate=None):
                async with lock.read_locked():
                    events.append(f"{name}-in")
                    reader_entered.set()
                    if gate is not None:
                        await gate.wait()
                    events.append(f"{name}-out")

            async def writer():
                await reader_entered.wait()
                async with lock.write_locked():
                    events.append("writer")

            first = asyncio.ensure_future(reader("r1", release_reader))
            write = asyncio.ensure_future(writer())
            await asyncio.sleep(0.05)  # writer now queued behind r1
            late = asyncio.ensure_future(reader("r2"))
            await asyncio.sleep(0.05)
            # Writer preference: r2 must not slip in ahead of the writer.
            assert "r2-in" not in events
            release_reader.set()
            await asyncio.gather(first, write, late)

        asyncio.run(scenario())
        assert events == ["r1-in", "r1-out", "writer", "r2-in", "r2-out"]


class TestRequestCoalescer:
    def test_identical_keys_share_one_computation(self):
        async def scenario():
            coalescer = RequestCoalescer()
            runs = []

            async def compute():
                runs.append(1)
                await asyncio.sleep(0.05)
                return {"value": 42}

            results = await asyncio.gather(
                *(coalescer.run("key", compute) for _ in range(5))
            )
            assert len(runs) == 1
            assert all(result is results[0] for result in results)
            stats = coalescer.stats()
            assert stats["leaders"] == 1
            assert stats["coalesced"] == 4
            assert stats["inflight"] == 0

        asyncio.run(scenario())

    def test_shared_failure_reaches_every_waiter(self):
        async def scenario():
            coalescer = RequestCoalescer()

            async def explode():
                await asyncio.sleep(0.05)
                raise ValueError("shared boom")

            results = await asyncio.gather(
                *(coalescer.run("key", explode) for _ in range(3)),
                return_exceptions=True,
            )
            assert len(results) == 3
            assert all(isinstance(result, ValueError) for result in results)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# The socket path
# ----------------------------------------------------------------------
class TestService:
    def test_health_errors_and_unknown_dataset(self):
        with fig1_server() as server, ServeClient(port=server.port) as client:
            assert client.health() == {"status": "ok", "datasets": ["fig1"]}
            response = client.request("preview", {"k": 1, "n": 1}, dataset="nope")
            assert response["ok"] is False
            assert response["error"]["code"] == "unknown-dataset"
            raw = client.send_raw(b'{"op": "reboot", "id": 9}\n')
            assert raw["error"]["code"] == "unknown-op"
            assert raw["id"] == 9

    def test_preview_matches_direct_engine_bit_for_bit(self):
        direct = PreviewEngine(build_fig1_graph())
        with fig1_server() as server, ServeClient(port=server.port) as client:
            for k, n, d, mode in ((1, 1, None, "tight"), (2, 4, None, "tight"),
                                  (2, 4, 2, "tight"), (2, 6, 2, "diverse")):
                served = client.preview(k=k, n=n, d=d, mode=mode)
                expected = direct.run(PreviewQuery(k=k, n=n, d=d, mode=mode))
                assert served["result"] == result_to_dict(expected)

    def test_sweep_matches_per_point_results(self):
        direct = PreviewEngine(build_fig1_graph())
        with fig1_server() as server, ServeClient(port=server.port) as client:
            served = client.sweep(k=2, ns=[2, 4, 6], d=2, mode="tight")
            for n, point in zip([2, 4, 6], served["results"]):
                query = PreviewQuery(k=2, n=n, d=2, mode="tight")
                if point is None:
                    with pytest.raises(Exception):
                        direct.run(query)
                else:
                    assert point == result_to_dict(direct.run(query))

    def test_malformed_frame_leaves_connection_usable(self):
        with fig1_server() as server, ServeClient(port=server.port) as client:
            for garbage in (b"}{ nope\n", b'"just a string"\n', b"[]\n"):
                response = client.send_raw(garbage)
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-frame"
            # The framing survived: a well-formed request still answers.
            assert client.preview(k=1, n=1)["result"]["tables"]

    def test_oversized_request_answers_then_closes(self):
        with fig1_server(max_frame=512) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b'{"op": "health", "pad": "' + b"x" * 4096 + b'"}\n')
                response = decode_frame(reader.readline())
                assert response["error"]["code"] == "oversized"
                assert reader.readline() == b""  # server closed the stream
            # The service itself survived the connection.
            with ServeClient(port=server.port) as client:
                assert client.health()["status"] == "ok"

    def test_invalid_and_infeasible_queries(self):
        with fig1_server() as server, ServeClient(port=server.port) as client:
            with pytest.raises(ServeRequestError) as exc:
                client.preview(k=3, n=2)
            assert exc.value.code == "invalid-query"
            with pytest.raises(ServeRequestError) as exc:
                client.preview(k=2, n=4, d=9, mode="diverse")
            assert exc.value.code == "infeasible"
            response = client.request("preview", {"k": "two", "n": 4})
            assert response["error"]["code"] == "bad-request"

    def test_mutation_query_interleaving_over_the_socket(self):
        replica = IncrementalEntityGraph(base=build_fig1_graph())
        with fig1_server() as server, ServeClient(port=server.port) as client:
            before = client.preview(k=2, n=4)
            assert before["result"] == result_to_dict(
                replica.engine().run(PreviewQuery(k=2, n=4))
            )
            generation = client.mutate_entity("Bad Boys", ["FILM"])["generation"]
            replica.add_entity("Bad Boys", ["FILM"])
            assert generation == replica.generation
            generation = client.mutate_relationship(
                "Will Smith", "Bad Boys", "Actor", "FILM ACTOR", "FILM"
            )["generation"]
            replica.add_relationship(
                "Will Smith",
                "Bad Boys",
                RelationshipTypeId("Actor", "FILM ACTOR", "FILM"),
            )
            assert generation == replica.generation
            after = client.preview(k=2, n=4)
            assert after["generation"] == generation
            assert after["result"] == result_to_dict(
                replica.engine().run(PreviewQuery(k=2, n=4))
            )
            # A schema-violating mutation maps to invalid-query.
            with pytest.raises(ServeRequestError) as exc:
                client.mutate_relationship(
                    "Bad Boys", "Will Smith", "Actor", "FILM ACTOR", "FILM"
                )
            assert exc.value.code == "invalid-query"

    def test_coalesced_requests_get_bit_identical_results(self, slow_algorithm):
        with fig1_server() as server:
            barrier = threading.Barrier(2)
            responses = {}

            def ask(name):
                with ServeClient(port=server.port) as client:
                    barrier.wait()
                    responses[name] = client.request(
                        "preview", {"k": 2, "n": 4, "algorithm": slow_algorithm}
                    )

            threads = [
                threading.Thread(target=ask, args=(name,)) for name in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert responses["a"]["ok"] and responses["b"]["ok"]
            # Bit-identical: the serialized result payloads are equal as
            # JSON text, not merely as approximately equal numbers.
            def dumps(r):
                return json.dumps(r["result"], sort_keys=True)

            assert dumps(responses["a"]) == dumps(responses["b"])

            with ServeClient(port=server.port) as client:
                stats = client.stats()["datasets"][0]
            assert stats["coalescer"]["leaders"] == 1
            assert stats["coalescer"]["coalesced"] == 1
            assert stats["engine"]["misses"] == 1  # one computation served both

    def test_client_disconnect_mid_computation(self, slow_algorithm):
        with fig1_server() as server:
            sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
            sock.sendall(encode_frame({
                "op": "preview", "id": 1,
                "params": {"k": 2, "n": 4, "algorithm": slow_algorithm},
            }))
            sock.close()  # gone before the computation lands
            time.sleep(SLOW_SECONDS * 2)
            # The service survived, and the abandoned computation still
            # landed in the host's response cache: the same ask is
            # answered without touching the engine again.
            with ServeClient(port=server.port) as client:
                assert client.health()["status"] == "ok"
                result = client.request(
                    "preview", {"k": 2, "n": 4, "algorithm": slow_algorithm}
                )
                assert result["ok"]
                stats = client.stats()["datasets"][0]
                assert stats["engine"]["misses"] == 1
                assert stats["responses"]["hits"] == 1

    def test_admission_control_rejects_excess_requests(self, slow_algorithm):
        with fig1_server(max_pending=1) as server:
            barrier = threading.Barrier(3)
            codes = []

            def ask(n):
                with ServeClient(port=server.port) as client:
                    barrier.wait()
                    # Distinct budgets: these must not coalesce.
                    response = client.request(
                        "preview",
                        {"k": 2, "n": 3 + n, "algorithm": slow_algorithm},
                    )
                    codes.append(
                        "ok" if response["ok"] else response["error"]["code"]
                    )

            threads = [threading.Thread(target=ask, args=(n,)) for n in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert "ok" in codes
            assert "overloaded" in codes

    def test_request_timeout_answers_instead_of_hanging(self, slow_algorithm):
        with fig1_server(request_timeout=SLOW_SECONDS / 4) as server:
            with ServeClient(port=server.port) as client:
                start = time.monotonic()
                response = client.request(
                    "preview", {"k": 2, "n": 4, "algorithm": slow_algorithm}
                )
                elapsed = time.monotonic() - start
                assert response["ok"] is False
                assert response["error"]["code"] == "timeout"
                assert elapsed < SLOW_SECONDS * 5  # answered, not hung
                # health is instant and the connection still works.
                assert client.health()["status"] == "ok"

    def test_jobs_host_serves_identical_results_via_spawned_pool(self):
        """A jobs>1 host (spawn-based executor) matches the serial answer."""
        host = EngineHost("fig1", build_fig1_graph(), jobs=2)
        service = PreviewService({"fig1": host})
        server = run_in_background(service)
        try:
            direct = PreviewEngine(build_fig1_graph())
            with ServeClient(port=server.port) as client:
                for k, n, d, mode in ((2, 4, 2, "tight"), (2, 6, 2, "diverse")):
                    served = client.preview(k=k, n=n, d=d, mode=mode)
                    expected = direct.run(PreviewQuery(k=k, n=n, d=d, mode=mode))
                    assert served["result"] == result_to_dict(expected)
                swept = client.sweep(k=2, ns=[4, 5], d=2, mode="tight")
                assert all(point for point in swept["results"])
        finally:
            server.stop()

    def test_cli_serve_subcommand_serves_real_clients(self):
        """``repro-preview serve`` binds, serves, and shuts down on SIGINT."""
        import os
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--datasets", "film", "--port", "0", "--scale", "4000",
            ],
            cwd=str(Path(__file__).resolve().parents[1]),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving film on 127.0.0.1:"), banner
            port = int(banner.split(":")[1].split()[0])
            with ServeClient(port=port) as client:
                assert client.health() == {"status": "ok", "datasets": ["film"]}
                assert client.preview(k=2, n=4)["result"]["tables"]
        finally:
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=15) == 0

    def test_background_server_requires_valid_bind(self):
        host = EngineHost("fig1", build_fig1_graph())
        service = PreviewService({"fig1": host})
        with pytest.raises(ServeError):
            run_in_background(service, host="203.0.113.1")  # TEST-NET, unroutable
        host.close()
