"""Replay the committed golden workload trace through every path.

``tests/data/workload_golden.jsonl`` is a captured mixed read/write
session (Zipf-skewed hot queries, entity/relationship mutations,
structural spikes, sweeps, stats probes, three interleaved clients)
with the payload digest of every diffable op recorded at capture time.
This test mirrors the ``docs/serving.md`` replay pattern one level up:
every execution path must reproduce every recorded digest — i.e. the
recorded payloads byte-for-byte — and all paths must agree with each
other at every step.  If an algorithm, the scoring pipeline, the cache
machinery or the domain generator drifts, this fails and the fixture
must be deliberately re-captured.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import kernel
from repro import config, plan
from repro.workload import (
    REPLAY_PATHS,
    WorkloadTrace,
    replay_trace,
    run_conformance,
)

GOLDEN = Path(__file__).resolve().parent / "data" / "workload_golden.jsonl"

#: Worker count for the sharded path (CI pins REPRO_TEST_JOBS=2).
JOBS = config.test_jobs()


@pytest.fixture(scope="module")
def golden() -> WorkloadTrace:
    return WorkloadTrace.load(GOLDEN)


def test_golden_trace_is_rich(golden):
    """The fixture keeps covering every feature of the format."""
    assert golden.domain == "architecture"
    assert len(golden.ops) == 48
    assert golden.has_digests()
    assert golden.fingerprint is not None  # starting graph is pinned
    kinds = {
        op.params.get("kind") for op in golden.ops if op.op == "mutate"
    }
    assert kinds == {"entity", "relationship"}
    assert any(op.op == "sweep" for op in golden.ops)
    assert any(op.op == "stats" for op in golden.ops)
    assert len({op.client for op in golden.ops}) >= 3
    spikes = [
        op
        for op in golden.ops
        if op.op == "mutate"
        and any("WL SPIKE" in t for t in op.params.get("types", []))
    ]
    assert spikes, "the golden trace lost its structural spikes"


@pytest.mark.parametrize("path", REPLAY_PATHS)
def test_golden_digests_reproduce_on_every_path(golden, path):
    """Each path alone reproduces the recorded payloads byte-for-byte."""
    result = replay_trace(
        golden,
        path=path,
        jobs=JOBS if path == "sharded" else 1,
        verify_digests=True,
    )
    assert result.ops == len(golden.ops)
    assert not result.digest_mismatches, (
        f"{path} diverged from the recorded payloads at op(s) "
        f"{[entry[0] for entry in result.digest_mismatches]}"
    )


@pytest.mark.parametrize(
    "backend",
    [
        "python",
        pytest.param(
            "numpy",
            marks=pytest.mark.skipif(
                "numpy" not in kernel.available_backends(),
                reason="no numpy",
            ),
        ),
    ],
)
@pytest.mark.parametrize("path", ["incremental", "sharded"])
def test_golden_digests_reproduce_under_each_kernel_backend(
    golden, path, backend
):
    """Kernel backends replay the recorded payloads digest-for-digest.

    The trace was captured before the batched kernel existed, so every
    digest match proves the kernel (python and numpy alike, serial and
    sharded dispatch) is bit-identical to the original per-subset path
    on a real mixed read/write session — not merely on unit fixtures.
    """
    with kernel.use_backend(backend):
        result = replay_trace(
            golden,
            path=path,
            jobs=JOBS if path == "sharded" else 1,
            verify_digests=True,
        )
    assert result.ops == len(golden.ops)
    assert not result.digest_mismatches, (
        f"{path} under the {backend} backend diverged at op(s) "
        f"{[entry[0] for entry in result.digest_mismatches]}"
    )


@pytest.mark.parametrize("mode", plan.PLAN_MODES)
def test_golden_digests_reproduce_under_every_plan_mode(golden, mode):
    """Planner modes replay the recorded payloads digest-for-digest.

    The trace was captured before the execution planner existed, so a
    digest match under ``auto`` (adaptive shard sizing, sweep batching,
    possibly mid-replay decision flips as the cost model warms) — and
    under every forced mode — proves planning moves wall time only,
    never payload bytes, on a real mixed read/write session.
    """
    with plan.use_mode(mode):
        result = replay_trace(
            golden, path="sharded", jobs=JOBS, verify_digests=True
        )
    assert result.ops == len(golden.ops)
    assert not result.digest_mismatches, (
        f"sharded replay under REPRO_PLAN={mode} diverged at op(s) "
        f"{[entry[0] for entry in result.digest_mismatches]}"
    )


def test_golden_replicated_reads_at_every_generation_token(golden):
    """At every golden mutation's generation token, the replicas agree.

    The parametrized replay above already proves the ``replicated``
    topology reproduces the recorded payloads in trace order.  This
    test pins the stronger per-token guarantee: after *each* of the
    golden trace's mutations, a read carrying that mutation's
    generation token answers **byte-identically** on the writer and on
    both replicas — i.e. read-your-writes holds at every generation
    the trace ever produced, not just at the end.
    """
    import json

    from repro.replicate import (
        ReplicaHost,
        ReplicaService,
        WriterHost,
        WriterService,
    )
    from repro.serve import ServeClient, run_in_background
    from repro.workload.replay import _starting_graph

    def canonical(payload) -> str:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    probe = dict(
        next(op for op in golden.ops if op.op == "preview").params
    )
    writer_host = WriterHost(
        golden.domain,
        _starting_graph(golden),
        key_scorer=golden.key_scorer,
        nonkey_scorer=golden.nonkey_scorer,
    )
    servers = [
        run_in_background(WriterService({golden.domain: writer_host}))
    ]
    try:
        for _ in range(2):
            host = ReplicaHost(
                golden.domain,
                _starting_graph(golden),
                key_scorer=golden.key_scorer,
                nonkey_scorer=golden.nonkey_scorer,
            )
            servers.append(
                run_in_background(
                    ReplicaService(
                        {golden.domain: host},
                        upstream=("127.0.0.1", servers[0].port),
                    )
                )
            )
        clients = [
            ServeClient(port=server.port, dataset=golden.domain, timeout=120.0)
            for server in servers
        ]
        try:
            tokens = []
            for op in golden.ops:
                if op.op != "mutate":
                    continue
                token = clients[0].call("mutate", op.params)["generation"]
                tokens.append(token)
                payloads = [
                    canonical(
                        client.call(
                            "preview", dict(probe, min_generation=token)
                        )
                    )
                    for client in clients
                ]
                assert payloads[1] == payloads[0] and payloads[2] == payloads[0], (
                    f"replica payloads diverged at generation token {token}"
                )
            assert len(tokens) == 12  # every golden mutation was exercised
            assert tokens == sorted(tokens)
        finally:
            for client in clients:
                client.close()
    finally:
        for server in reversed(servers):
            server.stop()


def test_golden_conformance_across_paths(golden):
    """The differential oracle agrees with itself across every path."""
    report = run_conformance(golden, jobs=JOBS)
    assert report["identical"], report["first_divergence"]
    assert report["recorded_digests"]["ok"], report["recorded_digests"]
    incremental = report["paths"]["incremental"]["stats"]
    assert incremental["rescan_ok"] is True
    # The warm engine actually got warm: hot queries repeated.
    assert incremental["hits"] > 0


# ----------------------------------------------------------------------
# Store-opened starting graph (docs/disk-store.md)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_store(golden, tmp_path_factory):
    """The golden trace's starting graph, serialized to a binary store."""
    from repro.datasets import generate_domain
    from repro.store import build_store

    graph = generate_domain(
        golden.domain, scale=golden.scale, seed=golden.seed
    )
    path = tmp_path_factory.mktemp("golden-store") / "golden.rgs"
    build_store(graph, path)
    return str(path)


@pytest.mark.parametrize("path", ["serial", "incremental", "sharded"])
def test_golden_digests_reproduce_from_store(golden, golden_store, path):
    """A store-opened graph replays the golden trace digest-identically.

    The strongest round-trip statement the repo can make: the binary
    store's materialized graph is indistinguishable from the generated
    one under 48 mixed ops — previews, sweeps and mutations included —
    on the cold, warm and process-sharded paths alike.
    """
    result = replay_trace(
        golden,
        path=path,
        jobs=JOBS if path == "sharded" else 1,
        verify_digests=True,
        store=golden_store,
    )
    assert result.ops == len(golden.ops)
    assert not result.digest_mismatches, (
        f"{path} from the store diverged from the recorded payloads at "
        f"op(s) {[entry[0] for entry in result.digest_mismatches]}"
    )


def test_golden_store_fingerprint_mismatch_is_rejected(golden, tmp_path):
    """A store of the wrong graph fails fast, before any payload diffs."""
    from repro.datasets import generate_domain
    from repro.exceptions import WorkloadError
    from repro.store import build_store

    other = generate_domain(golden.domain, scale=golden.scale, seed=golden.seed + 1)
    path = tmp_path / "wrong.rgs"
    build_store(other, path)
    with pytest.raises(WorkloadError, match="dataset mismatch"):
        replay_trace(golden, path="serial", store=str(path))
