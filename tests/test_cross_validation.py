"""Cross-validation of the hand-rolled substrates against networkx/numpy.

The graph substrate is dependency-free by design, but the test
environment ships networkx and numpy — so we use them as independent
oracles: BFS distances, connected components, cliques and stationary
distributions must agree with the reference implementations on random
inputs.
"""

import random

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    DistanceOracle,
    UndirectedGraph,
    apriori_k_cliques,
    connected_components,
    diameter,
    shortest_path_lengths,
    stationary_distribution,
    transition_matrix,
)
from repro.model import Triple
from repro.store import TripleStore


def random_undirected(n, p, seed, weighted=False):
    rng = random.Random(seed)
    ours = UndirectedGraph()
    theirs = nx.Graph()
    for i in range(n):
        ours.add_node(i)
        theirs.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                weight = rng.randint(1, 9) if weighted else 1.0
                ours.add_edge(i, j, float(weight))
                theirs.add_edge(i, j, weight=float(weight))
    return ours, theirs


@pytest.mark.parametrize("seed", range(6))
class TestDistancesAgainstNetworkx:
    def test_single_source_lengths(self, seed):
        ours, theirs = random_undirected(12, 0.25, seed)
        expected = dict(nx.single_source_shortest_path_length(theirs, 0))
        assert shortest_path_lengths(ours, 0) == expected

    def test_all_pairs_oracle(self, seed):
        ours, theirs = random_undirected(10, 0.3, seed)
        oracle = DistanceOracle(ours)
        expected = dict(nx.all_pairs_shortest_path_length(theirs))
        for u in range(10):
            for v in range(10):
                if v in expected[u]:
                    assert oracle.distance(u, v) == expected[u][v]
                else:
                    assert oracle.distance(u, v) == float("inf")

    def test_components(self, seed):
        ours, theirs = random_undirected(14, 0.12, seed)
        mine = sorted(sorted(c) for c in connected_components(ours))
        reference = sorted(sorted(c) for c in nx.connected_components(theirs))
        assert sorted(map(tuple, mine)) == sorted(map(tuple, reference))

    def test_diameter_on_connected(self, seed):
        ours, theirs = random_undirected(9, 0.5, seed)
        if not nx.is_connected(theirs):
            pytest.skip("disconnected sample")
        assert diameter(ours) == nx.diameter(theirs)

    def test_cliques(self, seed):
        ours, theirs = random_undirected(10, 0.4, seed)

        def adjacent(u, v):
            return theirs.has_edge(u, v)

        for k in (3, 4):
            mine = set(apriori_k_cliques(list(range(10)), adjacent, k))
            from itertools import combinations

            reference = set()
            for clique in nx.find_cliques(theirs):
                for combo in combinations(sorted(clique), k):
                    reference.add(combo)
            assert mine == reference


@pytest.mark.parametrize("seed", range(4))
class TestStationaryAgainstNumpy:
    def test_matches_eigenvector(self, seed):
        ours, _theirs = random_undirected(8, 0.5, seed, weighted=True)
        nodes = list(ours.nodes())
        matrix = np.array(transition_matrix(ours, nodes, jump_probability=1e-5))
        pi = stationary_distribution(ours, jump_probability=1e-5)
        vec = np.array([pi[node] for node in nodes])
        # pi M = pi within solver tolerance.
        assert np.allclose(vec @ matrix, vec, atol=1e-8)
        # And it matches the dominant left eigenvector from numpy.
        values, vectors = np.linalg.eig(matrix.T)
        dominant = np.argmin(np.abs(values - 1.0))
        reference = np.real(vectors[:, dominant])
        reference = reference / reference.sum()
        assert np.allclose(vec, reference, atol=1e-6)

    def test_unweighted_walk_proportional_to_degree(self, seed):
        """On a connected unweighted graph, pi_i ∝ degree(i) exactly."""
        ours, theirs = random_undirected(8, 0.6, seed)
        if not nx.is_connected(theirs):
            pytest.skip("disconnected sample")
        pi = stationary_distribution(ours, jump_probability=0.0)
        total_degree = sum(dict(theirs.degree()).values())
        for node in theirs.nodes():
            assert pi[node] == pytest.approx(
                theirs.degree(node) / total_degree, abs=1e-9
            )


class TestStoreScanOracle:
    """Index-backed scans must equal brute-force filtering."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_patterns(self, seed):
        rng = random.Random(seed)
        terms = [f"t{i}" for i in range(6)]
        store = TripleStore()
        universe = []
        for _ in range(60):
            triple = Triple(
                rng.choice(terms), rng.choice(terms), rng.choice(terms)
            )
            store.add(triple)
            universe.append(triple)
        distinct = set(universe)
        for _ in range(30):
            pattern = [
                None if rng.random() < 0.5 else rng.choice(terms)
                for _ in range(3)
            ]
            scanned = set(store.scan(*pattern))
            expected = {
                t
                for t in distinct
                if all(p is None or field == p for field, p in zip(t, pattern))
            }
            assert scanned == expected
