"""The replication tier: codecs, ring, tokens, and the conformance property.

Unit coverage for the pieces of :mod:`repro.replicate` — the
``MutationDelta`` wire codec, the replication window of the mutation
log, snapshot capture/restore, the consistent-hash ring — plus two
behavioural suites over real sockets:

* the stale-read regression the ``affinity`` field exists to catch: a
  replica that never applies deltas serves pre-mutation payloads to
  untokened pinned reads, while a ``min_generation`` token *never*
  observes the pre-mutation payload (it blocks, then answers
  ``lagging``);
* the hypothesis property that random multi-client traces replayed
  through the full writer + replicas + router topology stay
  byte-identical to the from-scratch serial oracle.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

_conftest_spec = importlib.util.spec_from_file_location(
    "_replicate_test_fixtures", Path(__file__).with_name("conftest.py")
)
_conftest = importlib.util.module_from_spec(_conftest_spec)
_conftest_spec.loader.exec_module(_conftest)
build_fig1_graph = _conftest.build_fig1_graph

from repro.datasets import graph_fingerprint
from repro.exceptions import (
    ReplicationError,
    ServeRequestError,
    WorkloadError,
)
from repro.ext import IncrementalEntityGraph
from repro.model import RelationshipTypeId, TypeId
from repro.model.mutation_log import MutationDelta
from repro.replicate import (
    ReplicaHost,
    WriterHost,
    build_ring,
    capture_snapshot,
    preference_list,
    restore_snapshot,
)
from repro.serve import PreviewService, ServeClient, run_in_background
from repro.workload import ScenarioSpec, generate_trace, run_conformance
from repro.workload.trace import TraceOp


def canonical(payload) -> str:
    """The canonical JSON form digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# MutationDelta wire codec
# ----------------------------------------------------------------------
class TestDeltaCodec:
    def roundtrip(self, delta: MutationDelta) -> MutationDelta:
        record = delta.to_record()
        # The record must be wire-safe: canonical JSON round-trippable.
        assert json.loads(canonical(record)) == record
        return MutationDelta.from_record(record)

    def test_entity_delta_roundtrip(self):
        delta = MutationDelta(
            key_types=frozenset({TypeId("ARCHITECT"), TypeId("PERSON")}),
            rel_types=frozenset(),
            structural=False,
        )
        assert self.roundtrip(delta) == delta

    def test_relationship_delta_roundtrip(self):
        delta = MutationDelta(
            key_types=frozenset({TypeId("FIRM")}),
            rel_types=frozenset(
                {
                    RelationshipTypeId(
                        name="Employs",
                        source_type=TypeId("FIRM"),
                        target_type=TypeId("ARCHITECT"),
                    )
                }
            ),
            structural=True,
        )
        assert self.roundtrip(delta) == delta

    def test_full_delta_roundtrip(self):
        delta = MutationDelta(
            key_types=frozenset(), rel_types=frozenset(), full=True
        )
        restored = self.roundtrip(delta)
        assert restored.full is True

    @pytest.mark.parametrize(
        "record",
        [
            "not a dict",
            {"key_types": "FIRM", "rel_types": [], "structural": False},
            {"key_types": [], "rel_types": "Employs", "structural": False},
            {"key_types": [], "rel_types": [["only-two", "items"]], "structural": False},
            {"key_types": [], "rel_types": [[1, 2, 3]], "structural": False},
            {"key_types": [3], "rel_types": [], "structural": False},
        ],
    )
    def test_malformed_records_raise(self, record):
        with pytest.raises(ReplicationError):
            MutationDelta.from_record(record)


# ----------------------------------------------------------------------
# Mutation log: replication window primitives
# ----------------------------------------------------------------------
class TestMutationLogWindow:
    def graph(self) -> IncrementalEntityGraph:
        return IncrementalEntityGraph(base=build_fig1_graph())

    def test_entries_since_returns_oldest_first(self):
        graph = self.graph()
        start = graph.generation
        graph.add_entity("LOG E1", ["ARCHITECT"])
        graph.add_entity("LOG E2", ["ARCHITECT"])
        entries = graph.mutation_log.entries_since(start)
        assert [generation for generation, _ in entries] == [start + 1, start + 2]

    def test_entries_since_below_horizon_raises(self):
        graph = self.graph()
        with pytest.raises(ReplicationError):
            graph.mutation_log.entries_since(graph.mutation_log.horizon - 1)

    def test_fast_forward_never_rewinds(self):
        graph = self.graph()
        log = graph.mutation_log
        target = graph.generation + 10
        log.fast_forward(target)
        assert log.generation == target
        assert log.horizon == target
        with pytest.raises(ReplicationError):
            log.fast_forward(target - 1)


# ----------------------------------------------------------------------
# Snapshot capture / restore
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_roundtrip_preserves_fingerprint_and_generation(self):
        graph = IncrementalEntityGraph(base=build_fig1_graph())
        graph.add_entity("SNAP ENTITY", ["FILM ACTOR", "SNAP TYPE"])
        graph.add_relationship(
            "SNAP ENTITY",
            "Will Smith",
            RelationshipTypeId(
                name="Mentors",
                source_type=TypeId("FILM ACTOR"),
                target_type=TypeId("FILM ACTOR"),
            ),
        )
        record = capture_snapshot(graph.entity_graph, graph.generation)
        assert json.loads(canonical(record)) == record  # wire-safe
        restored = restore_snapshot(record)
        assert graph_fingerprint(restored) == graph_fingerprint(
            graph.entity_graph
        )
        assert restored.generation == graph.generation

    def test_restored_graph_extends_identically(self):
        """Post-restore mutations produce the same state as the original.

        This is the property replication actually needs: a replica
        bootstrapped from a snapshot then fed deltas must land on the
        writer's exact graph, so the restore must preserve every bit of
        order-sensitive internal state the scorers can observe.
        """
        graph = IncrementalEntityGraph(base=build_fig1_graph())
        record = capture_snapshot(graph.entity_graph, graph.generation)
        restored = IncrementalEntityGraph(base=restore_snapshot(record))
        for target in (graph, restored):
            target.add_entity("POST SNAP", ["ARCHITECT", "POST TYPE"])
        assert graph_fingerprint(graph.entity_graph) == graph_fingerprint(
            restored.entity_graph
        )

    def test_fingerprint_tamper_is_rejected(self):
        graph = IncrementalEntityGraph(base=build_fig1_graph())
        record = capture_snapshot(graph.entity_graph, graph.generation)
        record["fingerprint"] = "sha256:" + "0" * 64
        with pytest.raises(ReplicationError):
            restore_snapshot(record)

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda r: r.update(kind="bogus"),
            lambda r: r.update(version=99),
            lambda r: r.update(entities="not a list"),
            lambda r: r.update(generation="ten"),
            lambda r: r.pop("type_order"),
            lambda r: r.update(relationships=[["too", "short"]]),
        ],
    )
    def test_malformed_snapshots_raise(self, corrupt):
        graph = IncrementalEntityGraph(base=build_fig1_graph())
        record = capture_snapshot(graph.entity_graph, graph.generation)
        corrupt(record)
        with pytest.raises(ReplicationError):
            restore_snapshot(record)


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
class TestRing:
    BACKENDS = ["10.0.0.1:9401", "10.0.0.2:9401", "10.0.0.3:9401"]

    def test_ring_is_deterministic_across_processes(self):
        """sha256, not ``hash()``: two routers must agree on placement."""
        assert build_ring(self.BACKENDS) == build_ring(list(self.BACKENDS))
        first = preference_list(build_ring(self.BACKENDS), "film")
        second = preference_list(build_ring(self.BACKENDS), "film")
        assert first == second

    def test_preference_list_covers_every_backend_once(self):
        ring = build_ring(self.BACKENDS)
        for dataset in ("film", "music", "architecture", "geography"):
            preference = preference_list(ring, dataset)
            assert sorted(preference) == sorted(self.BACKENDS)

    def test_datasets_spread_across_backends(self):
        ring = build_ring(self.BACKENDS)
        firsts = {
            preference_list(ring, f"dataset-{index}")[0]
            for index in range(32)
        }
        assert len(firsts) == len(self.BACKENDS)

    def test_empty_ring_yields_empty_preference(self):
        assert preference_list(build_ring([]), "film") == []


# ----------------------------------------------------------------------
# Generator affinity tagging (the PR's bugfix)
# ----------------------------------------------------------------------
class TestGeneratorAffinity:
    def test_multi_client_reads_carry_affinity(self):
        trace = generate_trace(
            domain="film", scale=600, seed=11, ops=24, scenario="multi-client"
        )
        reads = [op for op in trace.ops if op.op in ("preview", "sweep")]
        assert reads
        for op in reads:
            assert op.affinity == op.client

    def test_single_client_reads_have_no_affinity(self):
        trace = generate_trace(
            domain="film", scale=600, seed=11, ops=12, scenario="steady"
        )
        assert all(op.affinity is None for op in trace.ops)

    def test_affinity_survives_the_record_roundtrip(self):
        op = TraceOp(op="preview", client=2, params={"k": 2, "n": 5}, affinity=2)
        record = op.to_record()
        assert record["affinity"] == 2
        assert TraceOp.from_record(record, line=2).affinity == 2
        bare = TraceOp(op="preview", client=0, params={"k": 2, "n": 5})
        assert "affinity" not in bare.to_record()

    def test_invalid_affinity_is_rejected(self):
        with pytest.raises(WorkloadError):
            TraceOp.from_record(
                {"op": "preview", "client": 0, "params": {}, "affinity": -1},
                line=2,
            )
        with pytest.raises(WorkloadError):
            TraceOp.from_record(
                {"op": "preview", "client": 0, "params": {}, "affinity": True},
                line=2,
            )


# ----------------------------------------------------------------------
# The stale-read regression (real sockets)
# ----------------------------------------------------------------------
class TestStaleReadRegression:
    """One caught-up replica, one frozen replica, a router over both.

    Without affinity pinning this scenario is non-deterministic (the
    read may or may not land on the frozen replica); with it, the test
    deterministically aims reads at each replica and proves the
    ``min_generation`` token never observes a pre-mutation payload.
    """

    DATASET = "fig1"

    @pytest.fixture
    def topology(self):
        from repro.replicate import RouterService, WriterService

        servers = []
        try:
            writer_host = WriterHost(self.DATASET, build_fig1_graph())
            writer = run_in_background(
                WriterService({self.DATASET: writer_host})
            )
            servers.append(writer)

            from repro.replicate import ReplicaService

            fresh_host = ReplicaHost(self.DATASET, build_fig1_graph())
            fresh = run_in_background(
                ReplicaService(
                    {self.DATASET: fresh_host},
                    upstream=("127.0.0.1", writer.port),
                )
            )
            servers.append(fresh)

            # The frozen replica: a ReplicaHost served WITHOUT a
            # subscription loop — it never hears about mutations, the
            # deterministic stand-in for an arbitrarily lagging node.
            frozen_host = ReplicaHost(self.DATASET, build_fig1_graph())
            frozen_host.REPLICA_WAIT_SECONDS = 0.3
            frozen = run_in_background(
                PreviewService({self.DATASET: frozen_host})
            )
            servers.append(frozen)

            router = run_in_background(
                RouterService(
                    writer=("127.0.0.1", writer.port),
                    replicas=[
                        ("127.0.0.1", fresh.port),
                        ("127.0.0.1", frozen.port),
                    ],
                    datasets=[self.DATASET],
                )
            )
            servers.append(router)
            labels = sorted(
                (f"127.0.0.1:{fresh.port}", f"127.0.0.1:{frozen.port}")
            )
            preference = preference_list(build_ring(labels), self.DATASET)
            frozen_affinity = preference.index(f"127.0.0.1:{frozen.port}")
            fresh_affinity = preference.index(f"127.0.0.1:{fresh.port}")
            yield {
                "router": router,
                "frozen_affinity": frozen_affinity,
                "fresh_affinity": fresh_affinity,
            }
        finally:
            for server in reversed(servers):
                server.stop()

    def test_token_never_observes_pre_mutation_payload(self, topology):
        query = {"k": 2, "n": 5}
        with ServeClient(
            port=topology["router"].port, dataset=self.DATASET, timeout=30.0
        ) as client:
            def read(affinity, token=None):
                params = dict(query, affinity=affinity)
                if token is not None:
                    params["min_generation"] = token
                return client.call("preview", params)

            before = read(topology["frozen_affinity"])
            token = client.mutate_entity(
                "STALE PROBE", ["ARCHITECT", "STALE TYPE"]
            )["generation"]

            # The untokened pinned read IS stale: same payload as before
            # the acknowledged mutation — the bug affinity pinning makes
            # reproducible.
            stale = read(topology["frozen_affinity"])
            assert canonical(stale) == canonical(before)
            assert stale["generation"] < token

            # The tokened read on the same frozen replica never returns
            # the stale payload: it blocks, then answers ``lagging``.
            with pytest.raises(ServeRequestError) as excinfo:
                read(topology["frozen_affinity"], token=token)
            assert excinfo.value.code == "lagging"

            # The caught-up replica satisfies the token with the
            # post-mutation payload.
            fresh = read(topology["fresh_affinity"], token=token)
            assert fresh["generation"] >= token
            assert canonical(fresh) != canonical(before)


# ----------------------------------------------------------------------
# The conformance property (real sockets, full topology)
# ----------------------------------------------------------------------
PROPERTY = settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestReplicatedConformanceProperty:
    @PROPERTY
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        mutate_rate=st.sampled_from([0.2, 0.4]),
        structural_rate=st.sampled_from([0.0, 0.2]),
    )
    def test_replicated_equals_serial_oracle(
        self, seed, mutate_rate, structural_rate
    ):
        """Random traces through writer + replicas + router stay
        byte-identical to the from-scratch serial oracle, with every
        read carrying the read-your-writes token of the last
        acknowledged mutation (so a stale answer would diverge)."""
        spec = ScenarioSpec(
            name="replicate-property",
            mutate_rate=mutate_rate,
            structural_rate=structural_rate,
            sweep_rate=0.15,
            stats_rate=0.1,
            clients=3,
            query_pool=5,
        )
        trace = generate_trace(
            domain="film", scale=500, seed=seed, ops=10, scenario=spec
        )
        report = run_conformance(trace, paths=("serial", "replicated"))
        assert report["identical"], report["first_divergence"]
