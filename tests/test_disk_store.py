"""The persistent binary graph store (repro.store.disk).

Three properties carry the module:

* **round-trip bit-identity** — a reopened graph preserves insertion
  order, first-seen type order and the header fingerprint, so scorers
  cannot tell it from the source graph;
* **index equivalence** — interval scans, permutation scans and the
  CSR neighborhood walk answer exactly what the in-memory structures
  answer;
* **loud corruption** — every damaged-file shape raises
  ``DiskStoreError`` (mirroring the snapshot corruption suite in
  ``tests/test_replicate.py``), never a wrong answer.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.cli import main
from repro.datasets import generate_domain
from repro.datasets.loader import (
    graph_fingerprint,
    load_domain_file,
    save_domain,
)
from repro.exceptions import DiskStoreError, StoreError
from repro.store import (
    STORE_EXTENSION,
    build_store,
    open_store,
    store_from_entity_graph,
)
from repro.store.disk import SECTION_NAMES, VERSION

import importlib.util
from pathlib import Path

# Loaded by path: plain ``from conftest import ...`` would collide with
# benchmarks/conftest.py when the whole repo is collected in one run.
_conftest_spec = importlib.util.spec_from_file_location(
    "_disk_store_test_fixtures", Path(__file__).with_name("conftest.py")
)
_conftest = importlib.util.module_from_spec(_conftest_spec)
_conftest_spec.loader.exec_module(_conftest)
build_fig1_graph = _conftest.build_fig1_graph

_HEADER_PREFIX = struct.calcsize("<8sII9Q")  # fingerprint field offset
_SECTION_TABLE = struct.calcsize("<8sII9Q72s")  # section table offset


@pytest.fixture()
def fig1_store(tmp_path):
    path = tmp_path / f"fig1{STORE_EXTENSION}"
    build_store(build_fig1_graph(), path)
    return path


@pytest.fixture(scope="module")
def domain_pair(tmp_path_factory):
    """A generated domain graph and its store file, built once."""
    graph = generate_domain("architecture", scale=300, seed=11)
    path = tmp_path_factory.mktemp("store") / f"arch{STORE_EXTENSION}"
    build_store(graph, path)
    return graph, path


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_build_returns_file_size(self, tmp_path):
        path = tmp_path / f"g{STORE_EXTENSION}"
        written = build_store(build_fig1_graph(), path)
        assert written == path.stat().st_size

    def test_orders_and_fingerprint_survive(self, domain_pair):
        graph, path = domain_pair
        with open_store(path) as store:
            clone = store.entity_graph()
        assert clone.name == graph.name
        assert list(clone.entities()) == list(graph.entities())
        assert clone.entity_types() == graph.entity_types()
        assert list(clone.relationships()) == list(graph.relationships())
        assert clone.generation == graph.generation
        assert graph_fingerprint(clone) == graph_fingerprint(graph)

    def test_types_of_every_entity_survive(self, domain_pair):
        graph, path = domain_pair
        with open_store(path) as store:
            clone = store.entity_graph()
        for entity in graph.entities():
            assert clone.types_of(entity) == graph.types_of(entity)

    def test_header_is_o1_and_matches_graph(self, domain_pair):
        graph, path = domain_pair
        with open_store(path) as store:
            assert store.name == graph.name
            assert store.generation == graph.generation
            assert store.fingerprint == graph_fingerprint(graph)
            assert store.entity_count == len(list(graph.entities()))
            assert store.type_count == len(graph.entity_types())
            counts = store.describe()["counts"]
            assert counts["relationships"] == len(list(graph.relationships()))

    def test_loader_round_trip_via_extension(self, tmp_path):
        graph = build_fig1_graph()
        path = tmp_path / f"fig1{STORE_EXTENSION}"
        save_domain(graph, path)
        clone = load_domain_file(path)
        assert clone.name == "fig1"  # stored name wins over the default
        assert graph_fingerprint(clone) == graph_fingerprint(graph)

    def test_mutations_continue_from_stored_generation(self, fig1_store):
        """A reopened graph accepts mutations with agreeing generations.

        The mutation-op payload digests include the post-mutation
        generation, so a store-opened graph must count from the stored
        generation — not from zero — for replays to agree.
        """
        source = build_fig1_graph()
        with open_store(fig1_store) as store:
            clone = store.entity_graph()
        source.add_entity("NEW ONE", ["FILM"])
        clone.add_entity("NEW ONE", ["FILM"])
        assert clone.generation == source.generation
        assert graph_fingerprint(clone) == graph_fingerprint(source)


# ----------------------------------------------------------------------
# Index equivalence
# ----------------------------------------------------------------------
class TestQueries:
    def test_interval_scan_matches_entities_of_type(self, domain_pair):
        graph, path = domain_pair
        with open_store(path) as store:
            for type_name in graph.entity_types():
                start, end = store.type_interval(type_name)
                members = store.entities_of_type(type_name)
                assert end - start == len(members)
                assert set(members) == set(graph.entities_of_type(type_name))

    def test_unknown_type_raises(self, fig1_store):
        with open_store(fig1_store) as store:
            with pytest.raises(DiskStoreError, match="unknown entity type"):
                store.type_interval("NO SUCH TYPE")

    def test_triple_scans_match_triple_store(self, domain_pair):
        graph, path = domain_pair
        expected = {
            (t.subject, t.predicate, t.object): count
            for t, count in store_from_entity_graph(graph).triples()
        }
        with open_store(path) as store:
            actual = {
                (t.subject, t.predicate, t.object): count
                for t, count in store.triples()
            }
            assert actual == expected
            subject = next(iter(graph.entities()))
            got = {
                (t.subject, t.predicate, t.object): count
                for t, count in store.scan_counted(subject=subject)
            }
            assert got == {
                key: count for key, count in expected.items() if key[0] == subject
            }
            predicate = "a"
            got = {
                (t.subject, t.predicate, t.object): count
                for t, count in store.scan_counted(predicate=predicate)
            }
            assert got == {
                key: count
                for key, count in expected.items()
                if key[1] == predicate
            }

    def test_scan_of_absent_term_is_empty(self, fig1_store):
        with open_store(fig1_store) as store:
            assert list(store.scan_counted(subject="nobody")) == []
            assert store.string_id("nobody") is None
            assert store.entity_row("nobody") is None

    def test_neighborhood_matches_graph_bfs(self, domain_pair):
        graph, path = domain_pair
        adjacency = {}
        for source, target, _rel in graph.relationships():
            adjacency.setdefault(source, set()).add(target)
            adjacency.setdefault(target, set()).add(source)
        with open_store(path) as store:
            for entity in list(graph.entities())[:20]:
                for hops in (0, 1, 2):
                    expected = {entity}
                    frontier = {entity}
                    for _ in range(hops):
                        frontier = {
                            neighbor
                            for node in frontier
                            for neighbor in adjacency.get(node, ())
                        } - expected
                        expected |= frontier
                    assert store.neighborhood(entity, hops=hops) == expected

    def test_neighborhood_of_unknown_entity_raises(self, fig1_store):
        with open_store(fig1_store) as store:
            with pytest.raises(DiskStoreError, match="unknown entity"):
                store.neighborhood("nobody")
            with pytest.raises(DiskStoreError, match=">= 0"):
                store.neighborhood("Will Smith", hops=-1)


# ----------------------------------------------------------------------
# Corruption (every shape raises DiskStoreError)
# ----------------------------------------------------------------------
def _rewrite(path, mutate):
    data = bytearray(path.read_bytes())
    mutate(data)
    path.write_bytes(bytes(data))


def _truncate_half(data):
    del data[len(data) // 2:]


def _truncate_header(data):
    del data[100:]


def _bad_magic(data):
    data[0:8] = b"NOTSTORE"


def _bad_version(data):
    struct.pack_into("<I", data, 8, VERSION + 41)


def _oversized(data):
    data.extend(b"\x00" * 64)


def _garbage_fingerprint(data):
    data[_HEADER_PREFIX:_HEADER_PREFIX + 72] = b"md5:garbage".ljust(72, b"\x00")


def _dangling_section(data):
    # Point the spo section (index 9) past the end of the file.
    entry = _SECTION_TABLE + SECTION_NAMES.index("spo") * 16
    struct.pack_into("<QQ", data, entry, len(data), 4096)


def _short_section(data):
    # Shrink the entity_ids section below what entity_count implies.
    entry = _SECTION_TABLE + SECTION_NAMES.index("entity_ids") * 16
    offset, length = struct.unpack_from("<QQ", data, entry)
    struct.pack_into("<QQ", data, entry, offset, max(0, length - 8))


class TestCorruption:
    @pytest.mark.parametrize(
        "corrupt",
        [
            _truncate_half,
            _truncate_header,
            _bad_magic,
            _bad_version,
            _oversized,
            _garbage_fingerprint,
            _dangling_section,
            _short_section,
        ],
        ids=lambda f: f.__name__.lstrip("_"),
    )
    def test_damaged_headers_fail_to_open(self, fig1_store, corrupt):
        _rewrite(fig1_store, corrupt)
        with pytest.raises(DiskStoreError):
            open_store(fig1_store)

    def test_empty_and_missing_files_raise(self, tmp_path):
        empty = tmp_path / f"empty{STORE_EXTENSION}"
        empty.write_bytes(b"")
        with pytest.raises(DiskStoreError, match="empty"):
            open_store(empty)
        with pytest.raises(DiskStoreError, match="cannot open"):
            open_store(tmp_path / f"missing{STORE_EXTENSION}")

    def test_fingerprint_mismatch_is_rejected(self, fig1_store):
        """A valid-format but wrong fingerprint fails at materialization."""

        def flip_fingerprint(data):
            digest = bytes(
                data[_HEADER_PREFIX:_HEADER_PREFIX + 72]
            ).rstrip(b"\x00").decode("ascii")
            hex_part = digest[len("sha256:"):]
            flipped = ("0" if hex_part[0] != "0" else "1") + hex_part[1:]
            data[_HEADER_PREFIX:_HEADER_PREFIX + 72] = (
                f"sha256:{flipped}".encode("ascii").ljust(72, b"\x00")
            )

        _rewrite(fig1_store, flip_fingerprint)
        with open_store(fig1_store) as store:
            with pytest.raises(DiskStoreError, match="fingerprint mismatch"):
                store.entity_graph()

    def test_dangling_dictionary_offset_is_rejected(self, fig1_store):
        """A dictionary offset past the blob raises, never misreads."""

        def dangle(data):
            # dict_offsets is the first section after the header table;
            # bump the second cumulative offset past any possible blob.
            entry = _SECTION_TABLE + SECTION_NAMES.index("dict_offsets") * 16
            offset, _length = struct.unpack_from("<QQ", data, entry)
            struct.pack_into("<Q", data, offset + 8, 1 << 40)

        _rewrite(fig1_store, dangle)
        with open_store(fig1_store) as store:
            with pytest.raises(DiskStoreError, match="dangling dictionary"):
                store.string(0)

    def test_out_of_range_string_id_raises(self, fig1_store):
        with open_store(fig1_store) as store:
            with pytest.raises(DiskStoreError, match="outside the"):
                store.string(10_000_000)

    def test_disk_store_error_is_a_store_error(self):
        assert issubclass(DiskStoreError, StoreError)


# ----------------------------------------------------------------------
# CLI: repro-preview dataset build / info, --file .rgs
# ----------------------------------------------------------------------
class TestDatasetCli:
    def test_build_and_info(self, tmp_path, capsys):
        out = tmp_path / f"arch{STORE_EXTENSION}"
        code = main([
            "dataset", "build", "--domain", "architecture",
            "--scale", "300", "--seed", "11", "--out", str(out),
        ])
        assert code == 0
        assert "fingerprint sha256:" in capsys.readouterr().out
        code = main(["dataset", "info", str(out), "--verify"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["name"] == "architecture"
        assert summary["verified"] is True
        assert summary["counts"]["entities"] > 0
        assert set(summary["sections"]) == set(SECTION_NAMES)

    def test_info_on_damaged_store_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / f"bad{STORE_EXTENSION}"
        path.write_bytes(b"NOTSTORE" + b"\x00" * 500)
        code = main(["dataset", "info", str(path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_build_rejects_wrong_extension(self, tmp_path, capsys):
        code = main([
            "dataset", "build", "--domain", "film",
            "--out", str(tmp_path / "store.bin"),
        ])
        assert code == 1
        assert STORE_EXTENSION in capsys.readouterr().err

    def test_query_cli_accepts_store_file(self, tmp_path, capsys):
        store_path = tmp_path / f"q{STORE_EXTENSION}"
        build_store(generate_domain("film", scale=600, seed=0), store_path)
        code = main([
            "--file", str(store_path), "--tables", "2", "--attrs", "4",
        ])
        assert code == 0
        assert "preview: k=2 n=4" in capsys.readouterr().out
