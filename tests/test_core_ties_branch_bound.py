"""Tests for all-optimal enumeration (ties) and branch-and-bound discovery."""

import pytest

from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    brute_force_discover,
    discover_preview,
    dynamic_programming_discover,
)
from repro.core.branch_bound import branch_and_bound_discover
from repro.core.ties import all_optimal_previews
from repro.datasets import random_schema_graph
from repro.model import RelationshipTypeId, SchemaGraph
from repro.scoring import ScoringContext


def symmetric_schema():
    """Two interchangeable wings around a hub: guaranteed score ties."""
    schema = SchemaGraph()
    schema.add_entity_type("HUB", entity_count=10)
    for wing in ("LEFT", "RIGHT"):
        schema.add_entity_type(wing, entity_count=5)
        schema.add_relationship_type(
            RelationshipTypeId(f"{wing.lower()}-link", "HUB", wing), edge_count=7
        )
    return schema


class TestAllOptimalPreviews:
    def test_symmetric_wings_tie(self):
        context = ScoringContext(symmetric_schema())
        # k=1 over LEFT or RIGHT (each scores 5*7); HUB scores 10*14.
        optima = all_optimal_previews(context, SizeConstraint(k=1, n=1))
        # HUB with one of two equally scored attributes -> 2 optima.
        assert len(optima) == 2
        assert all(p.keys() == ["HUB"] for p in optima)
        names = {p.tables[0].nonkey[0].name for p in optima}
        assert names == {"left-link", "right-link"}

    def test_key_subset_ties(self):
        context = ScoringContext(symmetric_schema())
        # k=2, n=2: {HUB, LEFT} and {HUB, RIGHT} tie.
        optima = all_optimal_previews(context, SizeConstraint(k=2, n=2))
        key_sets = {frozenset(p.keys()) for p in optima}
        assert frozenset({"HUB", "LEFT"}) in key_sets
        assert frozenset({"HUB", "RIGHT"}) in key_sets

    def test_all_have_best_score(self):
        context = ScoringContext(symmetric_schema())
        size = SizeConstraint(k=2, n=3)
        reference = brute_force_discover(context, size)
        for preview in all_optimal_previews(context, size):
            assert context.preview_score(preview.as_pairs()) == pytest.approx(
                reference.score
            )

    def test_unique_optimum_single_result(self):
        schema = random_schema_graph(num_types=6, num_rel_types=10, seed=42)
        context = ScoringContext(schema)
        optima = all_optimal_previews(context, SizeConstraint(k=2, n=4))
        assert len(optima) >= 1
        scores = {
            round(context.preview_score(p.as_pairs()), 6) for p in optima
        }
        assert len(scores) == 1

    def test_limit_respected(self):
        # The NP-hardness style all-zero-score setting explodes; limit caps it.
        schema = SchemaGraph()
        for i in range(6):
            schema.add_entity_type(f"T{i}", entity_count=0)
        for i in range(6):
            for j in range(i + 1, 6):
                schema.add_relationship_type(
                    RelationshipTypeId("e", f"T{i}", f"T{j}"), edge_count=1
                )
        context = ScoringContext(schema)
        optima = all_optimal_previews(
            context, SizeConstraint(k=2, n=2), limit=5
        )
        assert len(optima) == 5

    def test_distance_constrained(self, fig1_context):
        optima = all_optimal_previews(
            fig1_context,
            SizeConstraint(k=2, n=4),
            distance=DistanceConstraint.diverse(3),
        )
        for preview in optima:
            a, b = preview.keys()
            assert fig1_context.schema.distance(a, b) >= 3


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k,n", [(2, 4), (3, 6)])
    def test_matches_dp_on_concise(self, seed, k, n):
        schema = random_schema_graph(num_types=10, num_rel_types=16, seed=seed)
        context = ScoringContext(schema)
        size = SizeConstraint(k=k, n=n)
        bb = branch_and_bound_discover(context, size)
        dp = dynamic_programming_discover(context, size)
        assert (bb is None) == (dp is None)
        if bb is not None:
            assert bb.score == pytest.approx(dp.score)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force_with_distance(self, seed):
        schema = random_schema_graph(num_types=9, num_rel_types=14, seed=seed)
        context = ScoringContext(schema)
        size = SizeConstraint(k=3, n=6)
        constraint = DistanceConstraint.tight(2)
        bb = branch_and_bound_discover(context, size, constraint)
        bf = brute_force_discover(context, size, constraint)
        assert (bb is None) == (bf is None)
        if bb is not None:
            assert bb.score == pytest.approx(bf.score)

    def test_prunes_subsets(self, fig1_context):
        size = SizeConstraint(k=2, n=6)
        bb = branch_and_bound_discover(fig1_context, size)
        bf = brute_force_discover(fig1_context, size)
        assert bb.score == pytest.approx(bf.score)
        # The bound should avoid evaluating every complete subset.
        assert bb.candidates_examined <= bf.candidates_examined

    def test_exposed_through_facade(self, fig1_graph):
        result = discover_preview(fig1_graph, k=2, n=6, algorithm="branch-and-bound")
        assert result.algorithm == "branch-and-bound"
        reference = discover_preview(fig1_graph, k=2, n=6)
        assert result.score == pytest.approx(reference.score)

    def test_infeasible_returns_none(self, fig1_context):
        result = branch_and_bound_discover(
            fig1_context, SizeConstraint(k=3, n=6), DistanceConstraint.diverse(3)
        )
        assert result is None
