"""Tests for incremental maintenance and numeric-attribute extensions."""

import math

import pytest

from repro.exceptions import ModelError, UnknownEntityError
from repro.ext import (
    IncrementalEntityGraph,
    NumericAttributeStore,
    augment_preview,
    preview_to_dot,
    render_numeric_summary,
    schema_graph_to_dot,
)
from repro.model import RelationshipTypeId

ACTED = RelationshipTypeId("Acted In", "ACTOR", "FILM")


@pytest.fixture
def incremental():
    inc = IncrementalEntityGraph(name="inc")
    inc.add_entity("film1", ["FILM"])
    inc.add_entity("actor1", ["ACTOR"])
    inc.add_relationship("actor1", "film1", ACTED)
    return inc


class TestIncremental:
    def test_coverage_maintained(self, incremental):
        assert incremental.key_coverage("FILM") == 1
        assert incremental.nonkey_coverage(ACTED) == 1
        incremental.add_entity("film2", ["FILM"])
        incremental.add_relationship("actor1", "film2", ACTED)
        assert incremental.key_coverage("FILM") == 2
        assert incremental.nonkey_coverage(ACTED) == 2

    def test_generation_bumps(self, incremental):
        before = incremental.generation
        incremental.add_entity("film2", ["FILM"])
        assert incremental.generation == before + 1

    def test_matches_full_rescan(self, incremental):
        for i in range(20):
            incremental.add_entity(f"film{i+10}", ["FILM"])
            incremental.add_relationship("actor1", f"film{i+10}", ACTED)
        assert incremental.verify_against_rescan()

    def test_multi_type_entity_counted_once_per_type(self, incremental):
        incremental.add_entity("dual", ["FILM", "ACTOR"])
        incremental.add_entity("dual", ["FILM"])  # re-add: no double count
        assert incremental.key_coverage("FILM") == 2
        assert incremental.key_coverage("ACTOR") == 2

    def test_context_cache_invalidation(self, incremental):
        ctx1 = incremental.context()
        ctx2 = incremental.context()
        assert ctx1 is ctx2  # same generation -> cached
        incremental.add_entity("film2", ["FILM"])
        ctx3 = incremental.context()
        assert ctx3 is not ctx1
        assert ctx3.key_score("FILM") == 2.0

    def test_discovery_sees_updates(self, incremental):
        first = incremental.discover(k=1, n=1)
        assert first.preview.keys() == ["FILM"] or first.preview.keys() == ["ACTOR"]
        # Flood a new type with entities and edges so it dominates.
        incremental.add_entity("genreX", ["GENRE"])
        has = RelationshipTypeId("Has Genre", "FILM", "GENRE")
        for i in range(50):
            incremental.add_entity(f"g{i}", ["GENRE"])
            incremental.add_relationship("film1", f"g{i}", has)
        second = incremental.discover(k=1, n=1)
        assert "GENRE" in (second.preview.keys() + ["GENRE"])  # feasible
        assert incremental.verify_against_rescan()

    def test_wraps_existing_graph(self, fig1_graph):
        inc = IncrementalEntityGraph(base=fig1_graph)
        assert inc.key_coverage("FILM") == 4
        assert inc.verify_against_rescan()


class TestNumericStore:
    @pytest.fixture
    def store(self, fig1_graph):
        store = NumericAttributeStore(fig1_graph)
        store.add("Men in Black", "runtime", 98)
        store.add("Men in Black II", "runtime", 88)
        store.add("I, Robot", "runtime", 115)
        store.add("Men in Black", "gross", 589.4)
        return store

    def test_summary_statistics(self, store):
        summary = store.summary("FILM", "runtime")
        assert summary.count == 3
        assert summary.minimum == 88
        assert summary.maximum == 115
        assert summary.mean == pytest.approx((98 + 88 + 115) / 3)
        assert summary.stddev == pytest.approx(
            math.sqrt(sum((v - summary.mean) ** 2 for v in (98, 88, 115)) / 3)
        )

    def test_candidates_by_coverage(self, store):
        candidates = store.candidates("FILM")
        assert [name for name, _ in candidates] == ["runtime", "gross"]

    def test_coverage(self, store):
        assert store.coverage("FILM", "runtime") == 3
        assert store.coverage("FILM", "nonexistent") == 0

    def test_per_entity_values(self, store):
        assert store.values("Men in Black", "runtime") == [98]
        assert store.values("Hancock", "runtime") == []

    def test_unknown_entity_rejected(self, store):
        with pytest.raises(UnknownEntityError):
            store.add("ghost", "runtime", 1)

    def test_non_numeric_rejected(self, store):
        with pytest.raises(ModelError):
            store.add("Men in Black", "runtime", "long")
        with pytest.raises(ModelError):
            store.add("Men in Black", "runtime", float("nan"))

    def test_augment_preview(self, fig1_graph, store):
        from repro.core import discover_preview

        preview = discover_preview(fig1_graph, k=2, n=6).preview
        augmented = augment_preview(preview, store, per_table_budget=1)
        film = next(a for a in augmented if a.table.key == "FILM")
        assert [name for name, _ in film.numeric] == ["runtime"]
        text = render_numeric_summary(film)
        assert "runtime" in text and "n=3" in text

    def test_augment_budget_zero(self, fig1_graph, store):
        from repro.core import discover_preview

        preview = discover_preview(fig1_graph, k=1, n=2).preview
        augmented = augment_preview(preview, store, per_table_budget=0)
        assert all(not a.numeric for a in augmented)
        assert "(none)" in render_numeric_summary(augmented[0])

    def test_negative_budget_rejected(self, fig1_graph, store):
        from repro.core import discover_preview

        preview = discover_preview(fig1_graph, k=1, n=2).preview
        with pytest.raises(ModelError):
            augment_preview(preview, store, per_table_budget=-1)


class TestDotExport:
    def test_schema_dot_well_formed(self, fig1_schema):
        dot = schema_graph_to_dot(fig1_schema, highlight=["FILM"])
        assert dot.startswith('digraph "schema" {')
        assert dot.rstrip().endswith("}")
        assert '"FILM"' in dot
        assert "lightblue" in dot  # highlight applied
        assert "Genres [5]" in dot  # weight label

    def test_preview_dot_marks_keys(self, fig1_graph):
        from repro.core import discover_preview

        preview = discover_preview(fig1_graph, k=2, n=6).preview
        dot = preview_to_dot(preview)
        assert dot.count("penwidth=2") == 2  # two key attributes
        assert "cluster_0" in dot and "cluster_1" in dot

    def test_quoting(self, fig1_schema):
        dot = schema_graph_to_dot(fig1_schema, name='we"ird')
        assert 'digraph "we\\"ird"' in dot
