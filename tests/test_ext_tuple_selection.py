"""Tests for representative tuple selection (paper future work #2)."""

import pytest

from repro.core import discover_preview, materialize_table
from repro.exceptions import DiscoveryError
from repro.ext import (
    materialize_preview_representative,
    select_representative_tuples,
    selection_diagnostics,
)


@pytest.fixture
def film_table(fig1_graph):
    preview = discover_preview(fig1_graph, k=2, n=6).preview
    return preview.table_for("FILM")


class TestSelection:
    def test_respects_sample_size(self, fig1_graph, film_table):
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=2)
        assert mat.shown == 2
        assert mat.total_tuples == 4

    def test_all_when_budget_exceeds(self, fig1_graph, film_table):
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=10)
        assert mat.shown == 4

    def test_zero_budget(self, fig1_graph, film_table):
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=0)
        assert mat.shown == 0

    def test_negative_budget_rejected(self, fig1_graph, film_table):
        with pytest.raises(DiscoveryError):
            select_representative_tuples(fig1_graph, film_table, sample_size=-1)

    def test_deterministic(self, fig1_graph, film_table):
        a = select_representative_tuples(fig1_graph, film_table, sample_size=2)
        b = select_representative_tuples(fig1_graph, film_table, sample_size=2)
        assert [r.key_entity for r in a.rows] == [r.key_entity for r in b.rows]

    def test_redundant_row_picked_last(self, fig1_graph, film_table):
        """Men in Black II duplicates Men in Black's values on every
        attribute, so the selector defers it behind Hancock, whose
        Director value (Peter Berg) is new information."""
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=4)
        order = [row.key_entity for row in mat.rows]
        assert order[-1] == "Men in Black II"
        assert set(order[:2]) == {"I, Robot", "Men in Black"}

    def test_values_correct(self, fig1_graph, film_table):
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=4)
        for row in mat.rows:
            for attr, value in zip(film_table.nonkey, row.values):
                assert value == fig1_graph.attribute_value(row.key_entity, attr)


class TestDiagnostics:
    def test_counts(self, fig1_graph, film_table):
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=4)
        diag = selection_diagnostics(mat)
        assert diag.total_cells == 4 * film_table.width
        assert 0 < diag.non_empty_cells <= diag.total_cells
        assert diag.distinct_values_covered <= diag.non_empty_cells
        assert 0.0 < diag.fill_ratio <= 1.0

    def test_empty_table_ratio(self, fig1_graph, film_table):
        mat = select_representative_tuples(fig1_graph, film_table, sample_size=0)
        assert selection_diagnostics(mat).fill_ratio == 0.0


class TestAgainstRandom:
    @pytest.mark.parametrize("domain", ["basketball", "architecture"])
    def test_beats_or_ties_random_on_fill(self, domain):
        """The headline property: representative >= random on fill ratio."""
        from repro.core import discover_preview
        from repro.datasets import load_domain

        graph = load_domain(domain)
        preview = discover_preview(graph, k=2, n=5).preview
        for table in preview.tables:
            rep = selection_diagnostics(
                select_representative_tuples(graph, table, sample_size=4)
            )
            rnd = selection_diagnostics(
                materialize_table(graph, table, sample_size=4, seed=1)
            )
            assert rep.non_empty_cells >= rnd.non_empty_cells
            assert rep.distinct_values_covered >= rnd.distinct_values_covered

    def test_preview_level_helper(self, fig1_graph):
        preview = discover_preview(fig1_graph, k=2, n=6).preview
        mats = materialize_preview_representative(fig1_graph, preview, sample_size=2)
        assert len(mats) == 2
        assert all(m.shown <= 2 for m in mats)
