"""Unit tests for repro.model.schema_graph."""

import pytest

from repro.exceptions import UnknownRelationshipTypeError, UnknownTypeError
from repro.model import (
    Direction,
    RelationshipTypeId,
    SchemaGraph,
)


@pytest.fixture
def schema(fig1_graph):
    return SchemaGraph.from_entity_graph(fig1_graph)


class TestDerivation:
    def test_entity_types(self, schema):
        assert set(schema.entity_types()) == {
            "FILM",
            "FILM ACTOR",
            "FILM PRODUCER",
            "FILM DIRECTOR",
            "FILM GENRE",
            "AWARD",
        }

    def test_relationship_types(self, schema):
        names = {rel.name for rel in schema.relationship_types()}
        assert names == {
            "Actor",
            "Executive Producer",
            "Director",
            "Genres",
            "Award Winners",
        }

    def test_counts_propagated(self, schema):
        assert schema.entity_count("FILM") == 4
        actor = RelationshipTypeId("Actor", "FILM ACTOR", "FILM")
        assert schema.relationship_count(actor) == 6

    def test_n_is_twice_edge_count(self, schema):
        assert schema.candidate_attribute_count == 2 * schema.relationship_type_count

    def test_unknown_lookups_raise(self, schema):
        with pytest.raises(UnknownTypeError):
            schema.entity_count("GHOST")
        with pytest.raises(UnknownRelationshipTypeError):
            schema.relationship_count(RelationshipTypeId("x", "FILM", "FILM"))


class TestCandidates:
    def test_candidates_both_directions(self, schema):
        candidates = schema.candidate_attributes("FILM")
        directions = {(attr.name, attr.direction) for attr in candidates}
        # FILM receives Actor/Director/Executive Producer and emits Genres.
        assert ("Actor", Direction.IN) in directions
        assert ("Genres", Direction.OUT) in directions
        assert ("Director", Direction.IN) in directions

    def test_self_loop_contributes_two_candidates(self):
        schema = SchemaGraph()
        loop = RelationshipTypeId("Next", "EPISODE", "EPISODE")
        schema.add_relationship_type(loop, edge_count=3)
        candidates = schema.candidate_attributes("EPISODE")
        assert len(candidates) == 2
        assert {attr.direction for attr in candidates} == {
            Direction.OUT,
            Direction.IN,
        }

    def test_unknown_type_raises(self, schema):
        with pytest.raises(UnknownTypeError):
            schema.candidate_attributes("GHOST")


class TestDerivedGraphs:
    def test_undirected_weights_sum_directions(self):
        schema = SchemaGraph()
        schema.add_relationship_type(
            RelationshipTypeId("a2b", "A", "B"), edge_count=3
        )
        schema.add_relationship_type(
            RelationshipTypeId("b2a", "B", "A"), edge_count=2
        )
        weighted = schema.undirected_weighted()
        assert weighted.weight("A", "B") == 5.0

    def test_distance(self, schema):
        assert schema.distance("FILM", "FILM ACTOR") == 1
        assert schema.distance("FILM GENRE", "AWARD") == 3

    def test_distance_cache_invalidated_on_mutation(self, fig1_graph):
        schema = SchemaGraph.from_entity_graph(fig1_graph)
        assert schema.distance("FILM GENRE", "AWARD") == 3
        shortcut = RelationshipTypeId("Shortcut", "FILM GENRE", "AWARD")
        schema.add_relationship_type(shortcut)
        assert schema.distance("FILM GENRE", "AWARD") == 1

    def test_repeated_relationship_type_accumulates(self):
        schema = SchemaGraph()
        rel = RelationshipTypeId("r", "A", "B")
        schema.add_relationship_type(rel, edge_count=2)
        schema.add_relationship_type(rel, edge_count=3)
        assert schema.relationship_count(rel) == 5
        assert schema.relationship_type_count == 1

    def test_transition_probability_example(self, fig1_graph):
        """Sec. 3.2 worked example shape: M proportional to pair weights."""
        schema = SchemaGraph.from_entity_graph(fig1_graph)
        weighted = schema.undirected_weighted()
        w_genre = weighted.weight("FILM", "FILM GENRE")
        w_actor = weighted.weight("FILM", "FILM ACTOR")
        assert w_genre == 5.0  # 5 Genres edges
        assert w_actor == 6.0  # 6 Actor edges
