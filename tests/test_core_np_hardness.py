"""End-to-end checks of the NP-hardness reductions (Theorems 1 and 2).

The reductions are *executable*: we decide Clique on random graphs both
directly and through tight/diverse preview discovery on the constructed
schema graphs, and require exact agreement.
"""

import random

import pytest

from repro.exceptions import DiscoveryError

from repro.core.np_hardness import (
    HUB,
    brute_force_has_clique,
    diverse_reduction_schema,
    has_clique_via_diverse_preview,
    has_clique_via_tight_preview,
    tight_reduction_schema,
)


def random_graph(n, p, seed):
    rng = random.Random(seed)
    vertices = [f"v{i}" for i in range(n)]
    edges = [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1:]
        if rng.random() < p
    ]
    return vertices, edges


class TestConstructions:
    def test_tight_schema_isomorphic(self):
        vertices, edges = ["a", "b", "c"], [("a", "b"), ("b", "c")]
        schema = tight_reduction_schema(vertices, edges)
        assert schema.entity_type_count == 3
        assert schema.relationship_type_count == 2
        assert schema.distance("a", "b") == 1
        assert schema.distance("a", "c") == 2

    def test_diverse_schema_complement_plus_hub(self):
        vertices, edges = ["a", "b", "c"], [("a", "b")]
        schema = diverse_reduction_schema(vertices, edges)
        # Hub connects to everything.
        assert schema.distance(HUB, "a") == 1
        # a-b adjacent in G -> NOT adjacent in Gs -> distance exactly 2.
        assert schema.distance("a", "b") == 2
        # a-c non-adjacent in G -> adjacent in Gs.
        assert schema.distance("a", "c") == 1

    def test_hub_name_collision_rejected(self):
        with pytest.raises(DiscoveryError):
            diverse_reduction_schema([HUB], [])


class TestTriangle:
    VERTICES = ["a", "b", "c", "d"]
    EDGES = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]

    def test_triangle_found(self):
        assert has_clique_via_tight_preview(self.VERTICES, self.EDGES, 3)
        assert has_clique_via_diverse_preview(self.VERTICES, self.EDGES, 3)

    def test_no_4_clique(self):
        assert not has_clique_via_tight_preview(self.VERTICES, self.EDGES, 4)
        assert not has_clique_via_diverse_preview(self.VERTICES, self.EDGES, 4)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("k", [2, 3, 4])
class TestReductionEquivalence:
    def test_tight_matches_direct(self, seed, k):
        vertices, edges = random_graph(7, 0.45, seed)
        expected = brute_force_has_clique(vertices, edges, k)
        assert has_clique_via_tight_preview(vertices, edges, k) == expected

    def test_diverse_matches_direct(self, seed, k):
        vertices, edges = random_graph(7, 0.45, seed)
        expected = brute_force_has_clique(vertices, edges, k)
        assert has_clique_via_diverse_preview(vertices, edges, k) == expected
