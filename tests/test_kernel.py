"""Conformance and dispatch tests for the batched scoring kernel.

Every batched backend must be *bit-identical* to the retained per-subset
path (:class:`~repro.kernel.OracleBackend` wraps the original heap
merge), so the property tests compare ``float.hex`` representations, not
approximate equality.  Coverage:

* hypothesis conformance on synthetic pools drawn from a small score
  grid (grids force ties, the hardest case for accumulation order);
* explicit lowest-index tie-break and edge batches (empty, singleton,
  all-infeasible, duplicate keys, ``extra_cap=0``);
* end-to-end conformance of all four discovery algorithms under each
  backend, including against a mutation-patched incremental pool;
* a subprocess guard proving ``REPRO_KERNEL=python`` never imports
  numpy;
* unit tests for backend selection and the dispatch planner.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernel, plan
from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
    branch_and_bound_discover,
    brute_force_discover,
    dynamic_programming_discover,
)
from repro.exceptions import KernelError, UnknownTypeError
from repro.ext import IncrementalEntityGraph
from repro.model import RelationshipTypeId

ACTED = RelationshipTypeId("Acted In", "ACTOR", "FILM")
DIRECTED = RelationshipTypeId("Directed", "DIRECTOR", "FILM")

NUMPY_MISSING = "numpy" not in kernel.available_backends()

#: Every batched backend loadable here, as parametrize values.
BATCHED = [
    "python",
    pytest.param(
        "numpy", marks=pytest.mark.skipif(NUMPY_MISSING, reason="no numpy")
    ),
]


class FakeSource:
    """Duck-typed pool: ``index``/``weighted``/``attrs`` is all a backend
    (and the oracle's heap merge) ever reads."""

    def __init__(self, rows):
        self.index = {f"T{i}": i for i in range(len(rows))}
        self.weighted = tuple(tuple(row) for row in rows)
        # One dummy attribute per weighted value: the oracle treats an
        # empty attrs row as infeasible, matching an empty weighted row.
        self.attrs = tuple(
            tuple(f"a{i}.{j}" for j in range(len(row)))
            for i, row in enumerate(rows)
        )

    @property
    def types(self):
        return tuple(self.index)


def hexes(scores):
    """Bit-exact comparison key for a list of Optional[float]."""
    return [None if s is None else s.hex() for s in scores]


# A coarse grid of scores: repeated values across rows force score ties
# between different subsets, the case where accumulation order and
# tie-break rules actually matter.
GRID = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 2.0])

rows_strategy = st.lists(
    st.lists(GRID, min_size=0, max_size=5).map(
        lambda vals: tuple(sorted(vals, reverse=True))
    ),
    min_size=1,
    max_size=5,
)

CONFORMANCE = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def pool_and_batch(draw):
    rows = draw(rows_strategy)
    source = FakeSource(rows)
    keys = st.sampled_from(source.types)
    # Duplicates allowed on purpose: duplicate-key subsets must come
    # back infeasible from every backend.
    subsets = draw(
        st.lists(
            st.lists(keys, min_size=1, max_size=4).map(tuple),
            min_size=0,
            max_size=8,
        )
    )
    extra_cap = draw(st.integers(min_value=0, max_value=6))
    return source, subsets, extra_cap


class TestBatchedMatchesOracle:
    """Property: every batched backend == the per-subset oracle, bit for bit."""

    @pytest.mark.parametrize("name", BATCHED)
    @CONFORMANCE
    @given(case=pool_and_batch())
    def test_batch_scores_bit_identical(self, name, case):
        source, subsets, extra_cap = case
        oracle = kernel.get_backend("oracle")
        backend = kernel.get_backend(name)
        expected = oracle.batch_scores(
            oracle.lower(source), subsets, extra_cap
        )
        actual = backend.batch_scores(
            backend.lower(source), subsets, extra_cap
        )
        assert hexes(actual) == hexes(expected)

    @pytest.mark.parametrize("name", BATCHED)
    @CONFORMANCE
    @given(case=pool_and_batch())
    def test_best_allocation_bit_identical(self, name, case):
        source, subsets, extra_cap = case
        oracle = kernel.get_backend("oracle")
        backend = kernel.get_backend(name)
        expected = oracle.best_allocation(
            oracle.lower(source), subsets, extra_cap
        )
        actual = backend.best_allocation(
            backend.lower(source), subsets, extra_cap
        )
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual[1] == expected[1]
            assert actual[0].hex() == expected[0].hex()


@pytest.mark.parametrize("name", ["oracle"] + BATCHED)
class TestTieBreaksAndEdges:
    def test_lowest_index_wins_on_equal_scores(self, name):
        # T0 and T1 carry identical rows, so (T0,) and (T1,) score the
        # same at every budget: the batch winner must be the first.
        source = FakeSource([(2.0, 1.0), (2.0, 1.0), (3.0,)])
        backend = kernel.get_backend(name)
        columns = backend.lower(source)
        best = backend.best_allocation(columns, [("T0",), ("T1",)], 1)
        assert best is not None
        assert best[1] == 0
        assert best[0].hex() == (3.0).hex()
        # Order flipped, the winner is still the lowest batch index.
        best = backend.best_allocation(columns, [("T1",), ("T0",)], 1)
        assert best[1] == 0

    def test_empty_batch(self, name):
        source = FakeSource([(1.0,)])
        backend = kernel.get_backend(name)
        assert backend.best_allocation(backend.lower(source), [], 2) is None
        assert backend.batch_scores(backend.lower(source), [], 2) == []

    def test_singleton_batch(self, name):
        source = FakeSource([(2.0, 1.0, 0.5)])
        backend = kernel.get_backend(name)
        best = backend.best_allocation(backend.lower(source), [("T0",)], 2)
        assert best == (3.5, 0)

    def test_extra_cap_zero_is_top1_sum(self, name):
        source = FakeSource([(2.0, 1.0), (1.5, 0.5)])
        backend = kernel.get_backend(name)
        best = backend.best_allocation(
            backend.lower(source), [("T0", "T1")], 0
        )
        assert best == (3.5, 0)

    def test_duplicate_keys_are_infeasible(self, name):
        source = FakeSource([(2.0,), (1.0,)])
        backend = kernel.get_backend(name)
        columns = backend.lower(source)
        assert backend.batch_scores(columns, [("T0", "T0")], 1) == [None]
        # A batch of only duplicate-key subsets has no winner at all.
        assert backend.best_allocation(columns, [("T0", "T0")], 1) is None

    def test_empty_row_is_infeasible(self, name):
        source = FakeSource([(), (1.0,)])
        backend = kernel.get_backend(name)
        columns = backend.lower(source)
        assert backend.batch_scores(columns, [("T0",), ("T1",)], 1) == [
            None,
            1.0,
        ]
        assert backend.best_allocation(columns, [("T0",)], 1) is None

    def test_unknown_key_raises(self, name):
        source = FakeSource([(1.0,)])
        backend = kernel.get_backend(name)
        with pytest.raises(UnknownTypeError):
            backend.best_allocation(backend.lower(source), [("NOPE",)], 1)
        with pytest.raises(UnknownTypeError):
            backend.batch_scores(backend.lower(source), [("NOPE",)], 1)

    def test_ragged_arities_in_one_batch(self, name):
        source = FakeSource([(2.0, 1.0), (1.5, 0.5), (1.0,)])
        backend = kernel.get_backend(name)
        oracle = kernel.get_backend("oracle")
        batch = [("T0",), ("T0", "T1", "T2"), ("T1", "T2"), ("T2", "T2")]
        assert hexes(
            backend.batch_scores(backend.lower(source), batch, 2)
        ) == hexes(oracle.batch_scores(oracle.lower(source), batch, 2))


POINTS = [
    dict(k=1, n=2, d=None, mode="tight"),
    dict(k=2, n=4, d=2, mode="tight"),
    dict(k=2, n=5, d=2, mode="diverse"),
    dict(k=3, n=6, d=3, mode="tight"),
]


def _discoveries(context, point):
    """One result per algorithm for a grid point (None where the
    algorithm does not apply to the point's constraint shape)."""
    size = SizeConstraint(k=point["k"], n=point["n"])
    if point["d"] is None:
        constraint = None
    elif point["mode"] == "tight":
        constraint = DistanceConstraint.tight(point["d"])
    else:
        constraint = DistanceConstraint.diverse(point["d"])
    results = {
        "brute-force": brute_force_discover(context, size, constraint),
        "branch-and-bound": branch_and_bound_discover(
            context, size, constraint
        ),
    }
    if constraint is None:
        results["dynamic-programming"] = dynamic_programming_discover(
            context, size
        )
    else:
        results["apriori"] = apriori_discover(context, size, constraint)
    return results


class TestAlgorithmConformance:
    """All four discovery algorithms are bit-identical across backends."""

    @pytest.mark.parametrize("name", BATCHED)
    @pytest.mark.parametrize("point", POINTS, ids=lambda p: repr(p))
    def test_fig1_discoveries_match_oracle(self, fig1_context, name, point):
        with kernel.use_backend("oracle"):
            expected = _discoveries(fig1_context, point)
        with kernel.use_backend(name):
            actual = _discoveries(fig1_context, point)
        assert set(actual) == set(expected)
        for algorithm, reference in expected.items():
            result = actual[algorithm]
            if reference is None:
                assert result is None, algorithm
                continue
            assert result == reference, algorithm
            assert result.score.hex() == reference.score.hex(), algorithm

    @pytest.mark.parametrize("name", BATCHED)
    def test_patched_pool_after_mutation(self, name):
        """Backends read mutation-patched pools identically to fresh ones."""
        inc = IncrementalEntityGraph(name="live")
        for i in range(3):
            inc.add_entity(f"film{i}", ["FILM"])
        inc.add_entity("actor0", ["ACTOR"])
        inc.add_entity("director0", ["DIRECTOR"])
        for i in range(3):
            inc.add_relationship("actor0", f"film{i}", ACTED)
        inc.add_relationship("director0", "film0", DIRECTED)
        inc.context().candidate_pool()  # cache, so the mutation patches
        for i in range(3, 8):
            inc.add_entity(f"film{i}", ["FILM"])
            inc.add_relationship("director0", f"film{i}", DIRECTED)
        pool = inc.context().candidate_pool()  # the patched pool

        oracle = kernel.get_backend("oracle")
        backend = kernel.get_backend(name)
        types = pool.types
        batch = [(t,) for t in types] + [
            (a, b) for a in types for b in types
        ]
        for extra_cap in (0, 1, 3):
            assert hexes(
                backend.batch_scores(backend.lower(pool), batch, extra_cap)
            ) == hexes(
                oracle.batch_scores(oracle.lower(pool), batch, extra_cap)
            )
        with kernel.use_backend("oracle"):
            expected = _discoveries(
                inc.context(), dict(k=2, n=4, d=2, mode="tight")
            )
        with kernel.use_backend(name):
            actual = _discoveries(
                inc.context(), dict(k=2, n=4, d=2, mode="tight")
            )
        assert actual == expected


class TestBackendSelection:
    def test_available_backends_always_offer_fallbacks(self):
        names = kernel.available_backends()
        assert "oracle" in names and "python" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelError, match="unknown kernel backend"):
            kernel.get_backend("quantum")

    def test_use_backend_restores_previous(self):
        before = kernel.backend_name()
        with kernel.use_backend("python") as backend:
            assert backend.name == "python"
            assert kernel.backend_name() == "python"
            with kernel.use_backend("oracle"):
                assert kernel.backend_name() == "oracle"
            assert kernel.backend_name() == "python"
        assert kernel.backend_name() == before

    def test_auto_prefers_numpy_when_available(self):
        resolved = kernel.get_backend("auto")
        if NUMPY_MISSING:
            assert resolved.name == "python"
        else:
            assert resolved.name == "numpy"

    def test_backends_are_cached(self):
        assert kernel.get_backend("python") is kernel.get_backend("python")

    def test_serial_dispatch_counts_batches(self, fig1_context):
        pool = fig1_context.candidate_pool()
        before = kernel.kernel_stats()
        best = kernel.best_allocation(pool, [(t,) for t in pool.types], 1)
        after = kernel.kernel_stats()
        assert best is not None
        assert after["batches"] == before["batches"] + 1
        assert after["subsets"] == before["subsets"] + len(pool.types)
        # An empty batch short-circuits without touching the counters.
        assert kernel.best_allocation(pool, [], 1) is None
        assert kernel.kernel_stats() == after

    def test_python_backend_never_imports_numpy(self):
        """REPRO_KERNEL=python must keep numpy out of the process, even
        when it is installed: the probe uses find_spec, not import."""
        code = (
            "import sys\n"
            "from repro.core import apriori_discover, brute_force_discover\n"
            "from repro.core.constraints import DistanceConstraint, "
            "SizeConstraint\n"
            "from repro.datasets import random_schema_graph\n"
            "from repro.engine import PreviewEngine, PreviewQuery\n"
            "from repro.scoring import ScoringContext\n"
            "from repro import kernel\n"
            "assert kernel.backend_name() == 'python'\n"
            "context = ScoringContext(random_schema_graph(5, 8, seed=1))\n"
            "size = SizeConstraint(k=2, n=4)\n"
            "apriori_discover(context, size, DistanceConstraint.tight(2))\n"
            "brute_force_discover(context, size)\n"
            "engine = PreviewEngine(context)\n"
            "engine.query(k=2, n=4, d=2, mode='tight')\n"
            "assert 'numpy' not in sys.modules, \\\n"
            "    'numpy imported under REPRO_KERNEL=python'\n"
        )
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ, PYTHONPATH=str(src), REPRO_KERNEL="python")
        subprocess.run([sys.executable, "-c", code], check=True, env=env)


class TestDispatchPlan:
    """The static-threshold contract (now served by :mod:`repro.plan`).

    Forced to ``static`` mode: these tests pin the PR 6 rule itself,
    independent of whatever the auto planner's cost model has learned
    from earlier tests in the same process.  The planner's own behavior
    (modes, cost model, sweep batching) lives in ``tests/test_plan.py``.
    """

    @pytest.fixture(autouse=True)
    def _static_mode(self):
        plan.reset_plan_caches()
        with plan.use_mode("static"):
            yield
        plan.reset_plan_caches()

    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv(plan.ENV_THRESHOLD, raising=False)
        assert (
            kernel.dispatch_threshold() == kernel.DEFAULT_DISPATCH_THRESHOLD
        )

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(plan.ENV_THRESHOLD, "100")
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 8)
        assert kernel.dispatch_threshold() == 100
        assert kernel.should_shard(100, 2)
        assert not kernel.should_shard(99, 2)

    def test_threshold_cache_tracks_env_changes(self, monkeypatch):
        """The memoized parse re-reads the env value (setenv stays honored)."""
        monkeypatch.setenv(plan.ENV_THRESHOLD, "100")
        assert kernel.dispatch_threshold() == 100
        assert kernel.dispatch_threshold() == 100  # served from the memo
        monkeypatch.setenv(plan.ENV_THRESHOLD, "200")
        assert kernel.dispatch_threshold() == 200

    @pytest.mark.parametrize("raw", ["four", "", "1.5"])
    def test_non_integer_threshold_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(plan.ENV_THRESHOLD, raw)
        with pytest.raises(KernelError, match="must be an integer"):
            kernel.dispatch_threshold()

    def test_negative_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv(plan.ENV_THRESHOLD, "-1")
        with pytest.raises(KernelError, match="must be >= 0"):
            kernel.dispatch_threshold()

    def test_serial_jobs_never_shard(self, monkeypatch):
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 8)
        assert not kernel.should_shard(10**9, 1)
        assert kernel.should_shard(
            kernel.DEFAULT_DISPATCH_THRESHOLD, 2
        )
        assert not kernel.should_shard(
            kernel.DEFAULT_DISPATCH_THRESHOLD - 1, 2
        )

    def test_one_core_vetoes_sharding(self, monkeypatch):
        """Workers pinned to one core serialize: never worth dispatching."""
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 1)
        assert not kernel.should_shard(10**9, 8)
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 2)
        assert kernel.should_shard(10**9, 8)

    def test_estimated_subsets(self):
        assert kernel.estimated_subsets(5, 2) == 10
        assert kernel.estimated_subsets(5, 0) == 1
        assert kernel.estimated_subsets(5, 6) == 0
        assert kernel.estimated_subsets(5, -1) == 0

    def test_kernel_plan_shim_reexports(self):
        """The historical repro.kernel.plan names are the same objects."""
        from repro.kernel import plan as kernel_plan

        assert kernel_plan.should_shard is plan.should_shard
        assert kernel_plan.dispatch_threshold is plan.dispatch_threshold
        assert kernel_plan.usable_cpus is plan.usable_cpus
        assert (
            kernel_plan.DEFAULT_DISPATCH_THRESHOLD
            == plan.DEFAULT_DISPATCH_THRESHOLD
        )
