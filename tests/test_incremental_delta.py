"""Delta-maintained scoring pipeline, end to end.

Covers the mutation changelog (:class:`MutationLog`), O(delta) patching
of :class:`ScoringContext`/:class:`CandidatePool`/:class:`ScoringSnapshot`,
and the engine's type-scoped invalidation — always against the ground
truth of a from-scratch rebuild, compared bit-for-bit.
"""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import make_context
from repro.engine import PreviewEngine, PreviewQuery
from repro.exceptions import InfeasiblePreviewError, ScoringError
from repro.ext import IncrementalEntityGraph
from repro.model import MutationLog, RelationshipTypeId
from repro.parallel import ScoringSnapshot
from repro.scoring import ScoringContext
from repro import config

#: Worker count for the sharded legs (CI pins REPRO_TEST_JOBS=2/4).
JOBS = config.test_jobs()

SMALL = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ACTED = RelationshipTypeId("Acted In", "ACTOR", "FILM")
DIRECTED = RelationshipTypeId("Directed", "DIRECTOR", "FILM")
WORKS_WITH = RelationshipTypeId("Works With", "ACTOR", "DIRECTOR")
HAS_GENRE = RelationshipTypeId("Has Genre", "FILM", "GENRE")
WON = RelationshipTypeId("Won", "FILM", "AWARD")


def triangle_graph() -> IncrementalEntityGraph:
    """FILM–ACTOR–DIRECTOR triangle plus a FILM→GENRE pendant.

    The triangle is the only 3-clique at distance 1, so a ``k=3, d=1``
    tight sweep's qualifying subsets never contain GENRE — the eligible
    type whose mutations the type-scoped invalidation must survive.
    """
    inc = IncrementalEntityGraph(name="triangle")
    for i in range(3):
        inc.add_entity(f"film{i}", ["FILM"])
    inc.add_entity("actor0", ["ACTOR"])
    inc.add_entity("director0", ["DIRECTOR"])
    inc.add_entity("genre0", ["GENRE"])
    for i in range(3):
        inc.add_relationship("actor0", f"film{i}", ACTED)
    inc.add_relationship("director0", "film0", DIRECTED)
    inc.add_relationship("actor0", "director0", WORKS_WITH)
    inc.add_relationship("film0", "genre0", HAS_GENRE)
    return inc


def fresh_answer(entity_graph, query):
    """The query answered by a from-scratch context and engine."""
    engine = PreviewEngine(make_context(entity_graph))
    try:
        return engine.run(query)
    except InfeasiblePreviewError:
        return None


class TestMutationLog:
    def test_record_bumps_generation_and_folds(self):
        log = MutationLog()
        assert log.dirty_since(0).empty
        log.record(key_types=("A",))
        log.record(key_types=("B",), rel_types=(ACTED,))
        assert log.generation == 2
        delta = log.dirty_since(0)
        assert delta.key_types == {"A", "B"}
        assert delta.rel_types == {ACTED}
        assert not delta.structural and not delta.full
        assert log.dirty_since(1).key_types == {"B"}
        assert log.dirty_since(2).empty

    def test_structural_flag_folds(self):
        log = MutationLog()
        log.record(key_types=("A",), structural=True)
        log.record(key_types=("B",))
        assert log.dirty_since(0).structural
        assert not log.dirty_since(1).structural

    def test_horizon_overflow_answers_full(self):
        log = MutationLog(max_entries=2)
        for name in ("A", "B", "C"):
            log.record(key_types=(name,))
        assert log.dirty_since(0).full  # compacted away
        assert not log.dirty_since(0).patchable
        recent = log.dirty_since(1)  # still inside the window
        assert not recent.full and recent.key_types == {"B", "C"}

    def test_entity_graph_records_mutations(self):
        inc = triangle_graph()
        log = inc.mutation_log
        generation = log.generation
        inc.add_entity("film99", ["FILM"])  # known type: not structural
        delta = inc.dirty_since(generation)
        assert delta.key_types == {"FILM"} and not delta.structural
        inc.add_relationship("film99", "genre0", HAS_GENRE)
        delta = inc.dirty_since(generation)
        assert delta.key_types == {"FILM", "GENRE"}
        assert delta.rel_types == {HAS_GENRE}
        assert not delta.structural
        inc.add_entity("award0", ["AWARD"])  # brand-new type: structural
        assert inc.dirty_since(generation).structural

    def test_noop_mutation_records_empty_delta(self):
        inc = triangle_graph()
        generation = inc.generation
        inc.add_entity("film0", ["FILM"])  # re-add: nothing dirtied
        assert inc.generation == generation + 1
        assert inc.dirty_since(generation).empty


class TestContextPatching:
    def test_coverage_pair_supports_delta(self):
        inc = triangle_graph()
        assert inc.context().supports_delta
        assert not inc.context("random_walk", "coverage").supports_delta
        assert not inc.context("coverage", "entropy").supports_delta

    def test_patched_context_matches_rebuild(self):
        inc = triangle_graph()
        before = inc.context()
        inc.add_entity("film9", ["FILM"])
        inc.add_relationship("actor0", "film9", ACTED)
        patched = inc.context()
        assert patched is not before
        rebuilt = make_context(inc.entity_graph)
        assert patched.key_scores() == rebuilt.key_scores()
        for type_name in rebuilt.schema.entity_types():
            assert patched.sorted_candidates(type_name) == rebuilt.sorted_candidates(
                type_name
            )

    def test_patched_pool_shares_untouched_rows(self):
        inc = triangle_graph()
        old_pool = inc.context().candidate_pool()
        inc.add_entity("genre9", ["GENRE"])  # dirties GENRE only
        new_pool = inc.context().candidate_pool()
        assert new_pool is not old_pool
        genre = old_pool.index["GENRE"]
        for i, type_name in enumerate(old_pool.types):
            if i == genre:
                continue
            # Untouched types share their tuples — O(delta), not a copy.
            assert new_pool.attrs[i] is old_pool.attrs[i], type_name
            assert new_pool.weighted[i] is old_pool.weighted[i], type_name
            assert new_pool.prefix[i] is old_pool.prefix[i], type_name
        assert new_pool.index is old_pool.index
        # And the patched pool equals a from-scratch build exactly.
        rebuilt = make_context(inc.entity_graph).candidate_pool()
        assert new_pool.key_scores == rebuilt.key_scores
        assert new_pool.attrs == rebuilt.attrs
        assert new_pool.weighted == rebuilt.weighted
        assert new_pool.prefix == rebuilt.prefix
        assert new_pool.eligible == rebuilt.eligible

    def test_pool_patch_rejects_unknown_type(self):
        inc = triangle_graph()
        context = inc.context()
        pool = context.candidate_pool()
        with pytest.raises(ScoringError, match="structural"):
            pool.patched(["NOT-A-TYPE"], context)

    def test_context_patch_rejects_non_delta_scorers(self):
        inc = triangle_graph()
        context = inc.context("random_walk", "coverage")
        with pytest.raises(ScoringError, match="does not support delta"):
            context.patched(["FILM"])

    def test_noop_mutation_keeps_context_identity(self):
        inc = triangle_graph()
        before = inc.context()
        inc.add_entity("film0", ["FILM"])  # no-op re-add
        assert inc.context() is before

    def test_structural_mutation_rebuilds_nondelta_combo_individually(self):
        inc = triangle_graph()
        coverage = inc.context()
        walk = inc.context("random_walk", "coverage")
        inc.add_entity("film8", ["FILM"])  # non-structural
        # Coverage combo was patched; the random-walk combo was dropped
        # (its global scores cannot be patched) and rebuilt on demand.
        assert inc.context() is not coverage
        rebuilt_walk = inc.context("random_walk", "coverage")
        assert rebuilt_walk is not walk
        fresh = ScoringContext(
            inc.schema, inc.entity_graph, key_scorer="random_walk"
        )
        assert rebuilt_walk.key_scores() == fresh.key_scores()


class TestSnapshotRefresh:
    def test_refresh_patches_only_dirty_rows(self):
        inc = triangle_graph()
        old_pool = inc.context().candidate_pool()
        snapshot = ScoringSnapshot.from_pool(old_pool)
        inc.add_entity("film7", ["FILM"])
        new_pool = inc.context().candidate_pool()
        refreshed = snapshot.refresh(new_pool, {"FILM"})
        assert refreshed.index is snapshot.index
        film = snapshot.index["FILM"]
        for i in range(len(snapshot.weighted)):
            if i == film:
                assert refreshed.weighted[i] == new_pool.weighted[i]
            else:
                assert refreshed.weighted[i] is snapshot.weighted[i]
        assert refreshed.weighted == ScoringSnapshot.from_pool(new_pool).weighted

    def test_refresh_with_no_dirt_returns_self(self):
        pool = triangle_graph().context().candidate_pool()
        snapshot = ScoringSnapshot.from_pool(pool)
        assert snapshot.refresh(pool, ()) is snapshot

    def test_refresh_falls_back_on_universe_change(self):
        inc = triangle_graph()
        snapshot = ScoringSnapshot.from_pool(inc.context().candidate_pool())
        inc.add_entity("award0", ["AWARD"])  # structural: new type
        inc.add_relationship("film0", "award0", WON)
        rebuilt_pool = inc.context().candidate_pool()
        refreshed = snapshot.refresh(rebuilt_pool, {"FILM"})
        assert refreshed.index == dict(rebuilt_pool.index)
        assert refreshed.weighted == rebuilt_pool.weighted


class TestTypeScopedInvalidation:
    def test_sweep_survives_mutation_of_unrelated_type(self):
        """The acceptance scenario: GENRE moves, the triangle sweep stays.

        GENRE is *eligible* (it can key a table) but appears in no
        qualifying subset of the ``k=3, d=1`` tight group, so its score
        change provably cannot alter any sweep point — the memo entries
        must be answered from cache, not re-executed.
        """
        inc = triangle_graph()
        engine = inc.engine()
        grid = [PreviewQuery(k=3, n=n, d=1, mode="tight") for n in (4, 5, 6)]
        first = engine.sweep(grid, skip_infeasible=True)
        info = engine.cache_info()
        assert info["misses"] == 3 and info["hits"] == 0

        inc.add_entity("genre99", ["GENRE"])  # non-structural, dirty={GENRE}
        info = engine.cache_info()
        assert info["results"] == 3  # all retained
        assert info["retained"] == 3 and info["evicted"] == 0
        assert info["invalidations"] == 0
        assert info["generation"] == inc.generation

        second = engine.sweep(grid, skip_infeasible=True)
        info = engine.cache_info()
        assert info["hits"] == 3 and info["misses"] == 3  # pure cache hits
        for a, b in zip(first, second):
            assert a is b  # the very same memoized objects
        # And the retained answers still match a from-scratch rebuild.
        for query, result in zip(grid, second):
            assert result == fresh_answer(inc.entity_graph, query), query

    def test_mutation_of_dependency_evicts_and_repatches(self):
        inc = triangle_graph()
        engine = inc.engine()
        grid = [PreviewQuery(k=2, n=n, d=1, mode="tight") for n in (3, 4, 5)]
        engine.sweep(grid, skip_infeasible=True)
        inc.add_entity("film42", ["FILM"])
        inc.add_relationship("actor0", "film42", ACTED)
        info = engine.cache_info()
        assert info["evicted"] == 3  # FILM is in every pair's dependency set
        assert info["profile_groups"] == 1  # sweep state kept, patched lazily
        assert info["invalidations"] == 0
        results = engine.sweep(grid, skip_infeasible=True)
        for query, result in zip(grid, results):
            assert result == fresh_answer(inc.entity_graph, query), query
        assert inc.verify_against_rescan()

    def test_concise_points_survive_ineligible_type_mutation(self):
        inc = triangle_graph()
        inc.add_entity("lonely0", ["LONELY"])  # no relationships: ineligible
        engine = inc.engine()
        first = engine.query(k=2, n=4)
        inc.add_entity("lonely1", ["LONELY"])  # non-structural now
        assert engine.query(k=2, n=4) is first  # retained: LONELY can't key
        assert engine.cache_info()["hits"] == 1
        assert engine.cache_info()["invalidations"] == 0

    def test_structural_mutation_still_fully_invalidates(self):
        inc = triangle_graph()
        engine = inc.engine()
        engine.query(k=2, n=4)
        inc.add_entity("award0", ["AWARD"])  # new type: structural
        info = engine.cache_info()
        assert info["invalidations"] == 1 and info["results"] == 0
        assert engine.query(k=2, n=4) == fresh_answer(
            inc.entity_graph, PreviewQuery(k=2, n=4)
        )

    def test_non_delta_scorers_fall_back_to_full_invalidation(self):
        inc = triangle_graph()
        engine = inc.engine("random_walk", "coverage")
        engine.query(k=2, n=4)
        inc.add_entity("film77", ["FILM"])  # non-structural, but no delta
        info = engine.cache_info()
        assert info["invalidations"] == 1 and info["results"] == 0
        result = engine.query(k=2, n=4)
        fresh = PreviewEngine(
            ScoringContext(inc.schema, inc.entity_graph, key_scorer="random_walk")
        ).query(k=2, n=4)
        assert result == fresh

    def test_noop_mutation_retains_everything(self):
        inc = triangle_graph()
        engine = inc.engine()
        first = engine.query(k=2, n=4)
        inc.add_entity("film0", ["FILM"])  # no-op re-add, generation bumps
        info = engine.cache_info()
        assert info["generation"] == inc.generation
        assert info["results"] == 1 and info["evicted"] == 0
        assert engine.query(k=2, n=4) is first


class TestDirectGraphMutations:
    """Mutations bypassing the wrapper must still be observed soundly."""

    def test_direct_nonstructural_mutation_is_reconciled(self):
        inc = triangle_graph()
        engine = inc.engine()
        engine.query(k=2, n=4)
        # Bypass the wrapper entirely: the changelog still records it.
        inc.entity_graph.add_entity("film-direct", ["FILM"])
        assert inc.key_coverage("FILM") == 4  # reconciled from the graph
        after = engine.query(k=2, n=4)
        assert after == fresh_answer(inc.entity_graph, PreviewQuery(k=2, n=4))
        assert inc.verify_against_rescan()

    def test_schema_property_reconciles_direct_mutations(self):
        """Regression: ``.schema`` must not serve pre-mutation state.

        Every read path reconciles with the changelog; the schema
        property used to skip that, so a direct graph mutation left
        anything built from ``inc.schema`` scoring against stale counts.
        """
        inc = triangle_graph()
        film_count = inc.schema.entity_count("FILM")
        inc.entity_graph.add_entity("film-direct", ["FILM"])
        assert inc.schema.entity_count("FILM") == film_count + 1
        inc.entity_graph.add_entity("award-direct", ["AWARD"])  # structural
        assert inc.schema.has_entity_type("AWARD")

    def test_direct_structural_mutation_rederives_schema(self):
        inc = triangle_graph()
        inc.context()  # cache a combo so the rebuild path is exercised
        inc.entity_graph.add_entity("award-direct", ["AWARD"])
        inc.entity_graph.add_relationship("film0", "award-direct", WON)
        assert inc.key_coverage("AWARD") == 1
        assert inc.nonkey_coverage(WON) == 1
        assert inc.schema.has_entity_type("AWARD")
        assert inc.verify_against_rescan()
        result = inc.discover(k=2, n=4)
        assert result == fresh_answer(inc.entity_graph, PreviewQuery(k=2, n=4))


class TestVerifyAgainstRescan:
    def test_passes_after_interleaved_mutations(self):
        inc = triangle_graph()
        inc.context()  # populate the combo cache so pools get diffed
        for i in range(5):
            inc.add_entity(f"film-x{i}", ["FILM"])
            inc.add_relationship("actor0", f"film-x{i}", ACTED)
            inc.add_relationship(f"film-x{i}", "genre0", HAS_GENRE)
            assert inc.verify_against_rescan()

    def test_detects_corrupted_counts(self):
        inc = triangle_graph()
        inc._key_coverage["FILM"] += 1
        assert not inc.verify_against_rescan()

    def test_detects_corrupted_pool(self):
        import dataclasses

        inc = triangle_graph()
        context = inc.context()
        pool = context.candidate_pool()
        context._pool = dataclasses.replace(
            pool, prefix=tuple(row[:-1] + (row[-1] + 1.0,) for row in pool.prefix)
        )
        assert not inc.verify_against_rescan()
        assert inc.verify_against_rescan(check_pools=False)  # counts still fine


# ---------------------------------------------------------------------------
# Property: interleaved mutations and queries == from-scratch, always
# ---------------------------------------------------------------------------

#: The op universe the hypothesis interpreter draws from.
TYPES = ("FILM", "ACTOR", "DIRECTOR", "GENRE", "AWARD")
RELS = (ACTED, DIRECTED, WORKS_WITH, HAS_GENRE, WON)

QUERIES = (
    PreviewQuery(k=1, n=2, algorithm="dynamic-programming"),
    PreviewQuery(k=2, n=4, algorithm="brute-force"),
    PreviewQuery(k=2, n=4, algorithm="branch-and-bound"),
    PreviewQuery(k=2, n=4, d=2, mode="tight", algorithm="apriori"),
    PreviewQuery(k=2, n=5, d=1, mode="diverse", algorithm="apriori"),
    PreviewQuery(k=2, n=5),  # auto
)

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("entity"), st.integers(0, len(TYPES) - 1), st.integers(0, 7)
        ),
        st.tuples(
            st.just("rel"),
            st.integers(0, len(RELS) - 1),
            st.integers(0, 7),
            st.integers(0, 7),
        ),
        st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
    ),
    min_size=1,
    max_size=20,
)


def apply_op(inc: IncrementalEntityGraph, op) -> None:
    if op[0] == "entity":
        inc.add_entity(f"{TYPES[op[1]]}_{op[2]}", [TYPES[op[1]]])
    elif op[0] == "rel":
        rel = RELS[op[1]]
        source = f"{rel.source_type}_{op[2]}"
        target = f"{rel.target_type}_{op[3]}"
        inc.add_entity(source, [rel.source_type])
        inc.add_entity(target, [rel.target_type])
        inc.add_relationship(source, target, rel)


class TestDeltaEqualsRebuildProperty:
    @pytest.mark.parametrize("jobs", [1, JOBS], ids=["serial", f"jobs{JOBS}"])
    @SMALL
    @given(ops)
    def test_interleaved_mutations_match_fresh_rebuild(self, jobs, op_list):
        """Every query along a random mutate/query interleaving answers
        exactly like a freshly built context + engine — all four
        registered algorithms, serial and sharded."""
        inc = IncrementalEntityGraph(name="prop")
        inc.add_entity("FILM_0", ["FILM"])
        inc.add_entity("ACTOR_0", ["ACTOR"])
        inc.add_relationship("ACTOR_0", "FILM_0", ACTED)
        engine = inc.engine()
        for op in op_list:
            if op[0] == "query":
                query = QUERIES[op[1]]
                try:
                    live = engine.run(query, jobs=jobs)
                except InfeasiblePreviewError:
                    live = None
                assert live == fresh_answer(inc.entity_graph, query), query
            else:
                apply_op(inc, op)
        # Terminal sweep over every algorithm, then a full rescan diff
        # of the delta-maintained aggregates and candidate pools.
        for query in QUERIES:
            try:
                live = engine.run(query, jobs=jobs)
            except InfeasiblePreviewError:
                live = None
            assert live == fresh_answer(inc.entity_graph, query), query
        assert inc.verify_against_rescan()
