"""Unit tests for repro.scoring — including the paper's worked examples."""

import math

import pytest

from repro.exceptions import ScoringError, UnknownScorerError
from repro.model import RelationshipTypeId, SchemaGraph, incoming, outgoing
from repro.scoring import (
    CoverageKeyScorer,
    EntropyNonKeyScorer,
    RandomWalkKeyScorer,
    ScoringContext,
    attribute_entropy,
    make_key_scorer,
    make_nonkey_scorer,
    value_set_entropy,
)

DIRECTOR = RelationshipTypeId("Director", "FILM DIRECTOR", "FILM")
GENRES = RelationshipTypeId("Genres", "FILM", "FILM GENRE")
ACTOR = RelationshipTypeId("Actor", "FILM ACTOR", "FILM")


class TestCoverage:
    def test_key_scores_are_populations(self, fig1_schema):
        scores = CoverageKeyScorer().score_all(fig1_schema)
        assert scores["FILM"] == 4.0  # Scov(FILM) = 4 in the paper
        assert scores["FILM ACTOR"] == 2.0
        assert scores["AWARD"] == 2.0

    def test_nonkey_scores_are_edge_counts(self, fig1_context):
        # SFILMcov(Director) = 4 and SFILMcov(Genres) = 5 (Sec. 3.3).
        assert fig1_context.nonkey_score("FILM", incoming(DIRECTOR)) == 4.0
        assert fig1_context.nonkey_score("FILM", outgoing(GENRES)) == 5.0

    def test_coverage_symmetric(self, fig1_graph, fig1_schema):
        ctx = ScoringContext(fig1_schema, fig1_graph, "coverage", "coverage")
        assert ctx.nonkey_score("FILM", incoming(ACTOR)) == ctx.nonkey_score(
            "FILM ACTOR", outgoing(ACTOR)
        )


class TestRandomWalk:
    def test_transition_example(self, fig1_graph, fig1_schema):
        """Sec. 3.2: M(FILM -> FILM GENRE) = w / (total incident w).

        Our Fig. 1 excerpt has FILM incident weights Genres=5, Actor=6,
        Director=4, Executive Producer=1 (total 16); the paper's Fig. 3
        adds Producer edges it does not draw in Fig. 1.
        """
        weighted = fig1_schema.undirected_weighted()
        total = weighted.weighted_degree("FILM")
        assert total == pytest.approx(16.0)
        assert weighted.weight("FILM", "FILM GENRE") / total == pytest.approx(
            5 / 16
        )

    def test_scores_sum_to_one(self, fig1_schema):
        scores = RandomWalkKeyScorer().score_all(fig1_schema)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_hub_ranks_first(self, fig1_schema):
        scores = RandomWalkKeyScorer().score_all(fig1_schema)
        assert max(scores, key=scores.get) == "FILM"

    def test_empty_schema(self):
        assert RandomWalkKeyScorer().score_all(SchemaGraph()) == {}


class TestEntropy:
    def test_paper_director_example(self, fig1_graph):
        """SFILMent(Director) = 0.45 (base-10, Sec. 3.3)."""
        value = attribute_entropy(fig1_graph, "FILM", incoming(DIRECTOR))
        assert value == pytest.approx(0.4515, abs=1e-3)

    def test_paper_genres_example(self, fig1_graph):
        """SFILMent(Genres) = 0.28: multi-valued sets compared as sets."""
        value = attribute_entropy(fig1_graph, "FILM", outgoing(GENRES))
        assert value == pytest.approx(0.2764, abs=1e-3)

    def test_entropy_asymmetric(self, fig1_graph):
        # Sτent(γ) depends on which side's tuples are grouped: Genres has
        # entropy 0.276 from FILM's side but log10(2) from FILM GENRE's.
        film_side = attribute_entropy(fig1_graph, "FILM", outgoing(GENRES))
        genre_side = attribute_entropy(fig1_graph, "FILM GENRE", incoming(GENRES))
        assert film_side == pytest.approx(0.2764, abs=1e-3)
        assert genre_side == pytest.approx(math.log10(2), abs=1e-9)
        assert film_side != pytest.approx(genre_side)

    def test_uniform_values_max_entropy(self):
        from collections import Counter

        groups = Counter({"a": 1, "b": 1, "c": 1, "d": 1})
        assert value_set_entropy(groups, 4) == pytest.approx(math.log10(4))

    def test_constant_value_zero_entropy(self):
        from collections import Counter

        assert value_set_entropy(Counter({"a": 7}), 7) == 0.0

    def test_empty_histogram_zero(self):
        from collections import Counter

        assert value_set_entropy(Counter(), 0) == 0.0

    def test_requires_entity_graph(self, fig1_schema):
        with pytest.raises(ScoringError):
            ScoringContext(fig1_schema, None, "coverage", "entropy")

    def test_bad_log_base_rejected(self):
        with pytest.raises(ScoringError):
            EntropyNonKeyScorer(log_base=1.0)


class TestRegistry:
    def test_known_scorers(self):
        assert make_key_scorer("coverage").name == "coverage"
        assert make_key_scorer("random_walk").name == "random_walk"
        assert make_nonkey_scorer("coverage").name == "coverage"
        assert make_nonkey_scorer("entropy").name == "entropy"

    def test_unknown_scorer_raises(self):
        with pytest.raises(UnknownScorerError):
            make_key_scorer("pagerank9000")
        with pytest.raises(UnknownScorerError):
            make_nonkey_scorer("vibes")


class TestScoringContext:
    def test_table_score_eq2(self, fig1_context):
        """S(T) = S(τ) × Σ Sτ(γ): FILM table with Director+Genres."""
        score = fig1_context.table_score(
            "FILM", [incoming(DIRECTOR), outgoing(GENRES)]
        )
        assert score == pytest.approx(4.0 * (4.0 + 5.0))

    def test_preview_score_eq1_additive(self, fig1_context):
        tables = [
            ("FILM", (incoming(DIRECTOR),)),
            ("FILM ACTOR", (outgoing(ACTOR),)),
        ]
        total = fig1_context.preview_score(tables)
        parts = sum(
            fig1_context.table_score(key, attrs) for key, attrs in tables
        )
        assert total == pytest.approx(parts)

    def test_sorted_candidates_descending(self, fig1_context):
        ranked = fig1_context.sorted_candidates("FILM")
        scores = [score for _attr, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_top_m_prefix_sum(self, fig1_context):
        ranked = fig1_context.sorted_candidates("FILM")
        manual = fig1_context.key_score("FILM") * sum(s for _a, s in ranked[:2])
        assert fig1_context.top_m_table_score("FILM", 2) == pytest.approx(manual)

    def test_top_m_negative_rejected(self, fig1_context):
        with pytest.raises(ScoringError):
            fig1_context.top_m_table_score("FILM", -1)

    def test_nonkey_score_wrong_key_raises(self, fig1_context):
        with pytest.raises(ScoringError):
            fig1_context.nonkey_score("AWARD", outgoing(GENRES))

    def test_ranked_key_types_order(self, fig1_context):
        ranked = fig1_context.ranked_key_types()
        assert ranked[0][0] == "FILM"
        scores = [score for _t, score in ranked]
        assert scores == sorted(scores, reverse=True)
