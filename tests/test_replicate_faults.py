"""Fault injection for the replication tier.

Every scenario here breaks the writer→replica stream in a way a real
deployment would — a replica killed mid-stream that rejoins cold, a
transport that delays and reorders delta frames, a writer restart, a
subscriber too slow to keep up — and then asserts the tier's one
invariant: after convergence, replica reads are **byte-identical** to
the writer's, and the stats surface tells the true story (snapshot
bootstraps, resyncs and kicks are counted; lag returns to zero).

All scenarios run over real sockets; the reordering proxy is a real TCP
proxy thread, not a monkeypatched queue.
"""

from __future__ import annotations

import importlib.util
import json
import socket
import threading
import time
from pathlib import Path

import pytest

_conftest_spec = importlib.util.spec_from_file_location(
    "_replicate_fault_fixtures", Path(__file__).with_name("conftest.py")
)
_conftest = importlib.util.module_from_spec(_conftest_spec)
_conftest_spec.loader.exec_module(_conftest)
build_fig1_graph = _conftest.build_fig1_graph

from repro.datasets import graph_fingerprint
from repro.replicate import (
    ReplicaHost,
    ReplicaService,
    WriterHost,
    WriterService,
)
from repro.serve import ServeClient, encode_frame, run_in_background

DATASET = "fig1"

#: A read every scenario replays on both sides of the topology.
PROBE = {"k": 2, "n": 5}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.05):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    pytest.fail(f"condition not reached within {timeout}s: {predicate}")


def make_writer(**host_kwargs):
    host = WriterHost(DATASET, build_fig1_graph(), **host_kwargs)
    server = run_in_background(WriterService({DATASET: host}))
    return host, server


def make_replica(upstream_port: int):
    host = ReplicaHost(DATASET, build_fig1_graph())
    server = run_in_background(
        ReplicaService({DATASET: host}, upstream=("127.0.0.1", upstream_port))
    )
    return host, server


def replication_of(client: ServeClient) -> dict:
    """The probe dataset's replication stats block."""
    datasets = client.stats()["datasets"]
    (entry,) = [d for d in datasets if d["dataset"] == DATASET]
    return entry["replication"]


def assert_reads_identical(writer_port: int, replica_port: int, token: int):
    """The tokened probe answers byte-for-byte alike on both hosts."""
    params = dict(PROBE, min_generation=token)
    with ServeClient(port=writer_port, dataset=DATASET) as writer_client:
        expected = writer_client.call("preview", params)
    with ServeClient(port=replica_port, dataset=DATASET) as replica_client:
        actual = replica_client.call("preview", params)
    assert canonical(actual) == canonical(expected)
    assert actual["generation"] >= token


# ----------------------------------------------------------------------
# Scenario 1: replica killed mid-stream, rejoins from a snapshot
# ----------------------------------------------------------------------
class TestSnapshotRejoin:
    def test_cold_rejoin_bootstraps_from_snapshot(self):
        # A tiny retention window guarantees the rejoining replica's
        # baseline has fallen behind the horizon, forcing the snapshot
        # path rather than a delta backlog.
        writer_host, writer = make_writer(window=2)
        base = writer_host.graph.generation
        servers = [writer]
        try:
            first_host, first = make_replica(writer.port)
            servers.append(first)
            with ServeClient(port=writer.port, dataset=DATASET) as client:
                for index in range(2):
                    client.mutate_entity(f"PRE KILL {index}", ["FILM ACTOR"])
            wait_until(lambda: first_host.graph.generation == base + 2)

            # Kill the replica mid-stream; the writer keeps mutating far
            # past what its window retains.
            first.stop()
            servers.remove(first)
            with ServeClient(port=writer.port, dataset=DATASET) as client:
                for index in range(5):
                    client.mutate_entity(
                        f"POST KILL {index}", ["FILM ACTOR", f"SPIKE {index}"]
                    )
            assert writer_host.replication_horizon > base + 2

            # The rejoining replica starts cold (baseline = the built
            # graph's generation, behind the horizon) and must converge
            # via snapshot bootstrap.
            second_host, second = make_replica(writer.port)
            servers.append(second)
            wait_until(
                lambda: second_host.graph.generation
                == writer_host.graph.generation
            )
            assert graph_fingerprint(
                second_host.graph.entity_graph
            ) == graph_fingerprint(writer_host.graph.entity_graph)

            with ServeClient(port=second.port, dataset=DATASET) as client:
                replication = replication_of(client)
            assert replication["snapshots"] == 1
            assert replication["lag"] == 0
            assert replication["generation"] == writer_host.graph.generation
            assert_reads_identical(
                writer.port, second.port, writer_host.graph.generation
            )
        finally:
            for server in reversed(servers):
                server.stop()


# ----------------------------------------------------------------------
# Scenario 2: delta frames delayed and reordered by a flaky proxy
# ----------------------------------------------------------------------
class ReorderProxy:
    """A TCP proxy that reverses server→client lines in windows of 3.

    The client→server direction (the subscribe request) passes through
    verbatim.  Stream lines from the writer are buffered and flushed in
    reversed windows — with a short idle flush so a partial window
    (e.g. the acknowledgement alone) is merely *delayed*, not lost.
    """

    WINDOW = 3
    IDLE_FLUSH_SECONDS = 0.2

    def __init__(self, upstream_port: int) -> None:
        self.upstream_port = upstream_port
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._threads = []
        self._closing = False
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            upstream = socket.create_connection(
                ("127.0.0.1", self.upstream_port)
            )
            for target, args in (
                (self._pump_verbatim, (client, upstream)),
                (self._pump_reordered, (upstream, client)),
            ):
                thread = threading.Thread(target=target, args=args, daemon=True)
                thread.start()
                self._threads.append(thread)

    def _pump_verbatim(self, source: socket.socket, sink: socket.socket):
        try:
            while True:
                chunk = source.recv(65536)
                if not chunk:
                    break
                sink.sendall(chunk)
        except OSError:
            pass

    def _pump_reordered(self, source: socket.socket, sink: socket.socket):
        source.settimeout(self.IDLE_FLUSH_SECONDS)
        window: list = []
        buffer = b""
        try:
            while True:
                try:
                    chunk = source.recv(65536)
                    if not chunk:
                        break
                except socket.timeout:
                    chunk = b""
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    window.append(line + b"\n")
                # Full windows flush reversed; idle flushes whatever is
                # pending (still reversed — a delayed, shuffled wire).
                if len(window) >= self.WINDOW or (not chunk and window):
                    sink.sendall(b"".join(reversed(window)))
                    window.clear()
            if window:
                sink.sendall(b"".join(reversed(window)))
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._closing = True
        self._listener.close()


class TestReorderedDeltas:
    def test_reordered_stream_converges_without_resync(self):
        writer_host, writer = make_writer()
        proxy = ReorderProxy(writer.port)
        servers = [writer]
        try:
            replica_host, replica = make_replica(proxy.port)
            servers.append(replica)
            with ServeClient(port=writer.port, dataset=DATASET) as client:
                for index in range(7):
                    client.mutate_entity(
                        f"REORDER {index}", ["FILM ACTOR", f"RT {index}"]
                    )
                token = writer_host.graph.generation
            wait_until(lambda: replica_host.graph.generation == token)

            with ServeClient(port=replica.port, dataset=DATASET) as client:
                replication = replication_of(client)
            # Order was restored by buffering, not by tearing the
            # subscription down: every delta applied, zero resyncs,
            # zero snapshots.
            assert replication["applied"] == 7
            assert replication["resyncs"] == 0
            assert replication["snapshots"] == 0
            assert replication["lag"] == 0
            assert_reads_identical(writer.port, replica.port, token)
        finally:
            proxy.close()
            for server in reversed(servers):
                server.stop()


# ----------------------------------------------------------------------
# Scenario 3: writer restart
# ----------------------------------------------------------------------
class TestWriterRestart:
    def test_replica_resyncs_across_writer_restart(self):
        writer_host, writer = make_writer()
        base = writer_host.graph.generation
        port = writer.port
        servers = [writer]
        try:
            replica_host, replica = make_replica(port)
            servers.append(replica)
            mutations = [(f"RESTART {i}", ["FILM ACTOR", f"GEN {i}"]) for i in range(3)]
            with ServeClient(port=port, dataset=DATASET) as client:
                for entity, types in mutations:
                    client.mutate_entity(entity, types)
            wait_until(lambda: replica_host.graph.generation == base + 3)

            # The writer dies.  The replica is now ahead of the *new*
            # writer until the operator replays the mutation prefix —
            # its subscription must keep retrying (resync), never
            # serve wrong data, and reattach once the writer catches
            # back up.
            writer.stop()
            servers.remove(writer)
            restarted_host = WriterHost(DATASET, build_fig1_graph())
            restarted = run_in_background(
                WriterService({DATASET: restarted_host}), port=port
            )
            servers.append(restarted)
            with ServeClient(port=port, dataset=DATASET) as client:
                for entity, types in mutations:
                    client.mutate_entity(entity, types)
                client.mutate_entity("POST RESTART", ["FILM ACTOR"])
                token = restarted_host.graph.generation
            assert token == base + 4

            wait_until(lambda: replica_host.graph.generation == token)
            assert graph_fingerprint(
                replica_host.graph.entity_graph
            ) == graph_fingerprint(restarted_host.graph.entity_graph)
            with ServeClient(port=replica.port, dataset=DATASET) as client:
                replication = replication_of(client)
            assert replication["resyncs"] >= 1
            assert replication["lag"] == 0
            assert_reads_identical(port, replica.port, token)
        finally:
            for server in reversed(servers):
                server.stop()


# ----------------------------------------------------------------------
# Scenario 4: slow replica backpressure (Redis-style kick)
# ----------------------------------------------------------------------
class BoundedWriterService(WriterService):
    """A writer whose per-subscriber buffers are tiny, so a slow
    subscriber hits its bounded queue within a handful of mutations
    instead of megabytes of kernel buffering."""

    STREAM_HIGH_WATER = 0
    STREAM_SNDBUF = 4096


class TestSlowReplicaBackpressure:
    def test_queue_overflow_kicks_subscriber_without_stalling_writer(self):
        writer_host = WriterHost(DATASET, build_fig1_graph(), queue_size=2)
        writer = run_in_background(BoundedWriterService({DATASET: writer_host}))
        servers = [writer]
        slow = None
        try:
            # A healthy replica rides along: the kick must be surgical.
            replica_host, replica = make_replica(writer.port)
            servers.append(replica)
            wait_until(
                lambda: replication_stats_subscribers(writer_host) == 1
            )

            # The slow subscriber: subscribes with a tiny receive
            # buffer, reads the acknowledgement, then stops reading.
            slow = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            slow.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            slow.connect(("127.0.0.1", writer.port))
            slow.sendall(
                encode_frame(
                    {
                        "op": "subscribe",
                        "id": 1,
                        "dataset": DATASET,
                        "params": {
                            "from_generation": writer_host.graph.generation
                        },
                    }
                )
            )
            slow_file = slow.makefile("rb")
            ack = json.loads(slow_file.readline())
            assert ack["ok"] and ack["result"]["snapshot"] is False
            wait_until(
                lambda: replication_stats_subscribers(writer_host) == 2
            )

            # Mutate until the slow subscriber's bounded queue
            # overflows.  Every mutate returns promptly — the writer
            # never blocks on the laggard.
            kicked_at = None
            with ServeClient(port=writer.port, dataset=DATASET) as client:
                for index in range(400):
                    client.mutate_entity(
                        f"FLOOD {index}", ["FILM ACTOR", f"FT {index % 7}"]
                    )
                    if writer_host.replication_stats()["kicked"]:
                        kicked_at = index + 1
                        break
                token = writer_host.graph.generation
            assert kicked_at is not None, "slow subscriber was never kicked"

            stats = writer_host.replication_stats()
            assert stats["kicked"] == 1
            assert stats["subscribers"] == 1  # only the healthy replica

            # The healthy replica was unaffected: fully caught up and
            # byte-identical.
            wait_until(lambda: replica_host.graph.generation == token)
            with ServeClient(port=replica.port, dataset=DATASET) as client:
                replication = replication_of(client)
            assert replication["lag"] == 0
            assert replication["resyncs"] == 0
            assert_reads_identical(writer.port, replica.port, token)

            # Once the laggard finally drains its socket it finds the
            # kick notice: deltas, then ``lagging``, then EOF.
            slow.settimeout(10.0)
            saw_lagging = False
            while True:
                line = slow_file.readline()
                if not line:
                    break
                frame = json.loads(line)
                if frame.get("stream") == "lagging":
                    saw_lagging = True
                    break
            assert saw_lagging
        finally:
            if slow is not None:
                slow.close()
            for server in reversed(servers):
                server.stop()


def replication_stats_subscribers(host: WriterHost) -> int:
    return host.replication_stats()["subscribers"]
