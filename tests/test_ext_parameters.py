"""Tests for parameter suggestion and tight/diverse choice (future work #1/#4)."""

import pytest

from repro.core import SizeConstraint
from repro.datasets import load_domain, load_schema
from repro.exceptions import DiscoveryError
from repro.ext import (
    choose_preview_flavour,
    distance_quantile,
    suggest_diverse_distance,
    suggest_size,
    suggest_tight_distance,
)
from repro.scoring import ScoringContext


class TestSuggestSize:
    def test_grows_with_budget(self, tiny_schema):
        small = suggest_size(tiny_schema, display_rows=12, display_cols=5)
        large = suggest_size(tiny_schema, display_rows=60, display_cols=12)
        assert large.k >= small.k
        assert large.n >= small.n

    def test_valid_constraint(self, tiny_schema):
        suggestion = suggest_size(tiny_schema, display_rows=30, display_cols=8)
        constraint = suggestion.as_constraint()
        assert constraint.k >= 1
        assert constraint.n >= constraint.k

    def test_clamped_to_schema(self, fig1_schema):
        suggestion = suggest_size(fig1_schema, display_rows=1000, display_cols=1000)
        assert suggestion.k <= fig1_schema.entity_type_count
        assert suggestion.n <= fig1_schema.candidate_attribute_count

    def test_tiny_budget_rejected(self, tiny_schema):
        with pytest.raises(DiscoveryError):
            suggest_size(tiny_schema, display_rows=2, display_cols=1)

    def test_suggested_size_is_discoverable(self, tiny_domain, tiny_schema):
        from repro.core import discover_preview

        suggestion = suggest_size(tiny_schema, display_rows=24, display_cols=6)
        result = discover_preview(tiny_domain, k=suggestion.k, n=suggestion.n)
        assert result.preview.table_count == suggestion.k


class TestDistanceSuggestion:
    def test_quantiles_monotone(self, tiny_schema):
        assert distance_quantile(tiny_schema, 0.0) <= distance_quantile(
            tiny_schema, 0.5
        ) <= distance_quantile(tiny_schema, 1.0)

    def test_bad_quantile_rejected(self, tiny_schema):
        with pytest.raises(DiscoveryError):
            distance_quantile(tiny_schema, 1.5)

    def test_tight_at_least_one(self, tiny_schema):
        assert suggest_tight_distance(tiny_schema) >= 1

    def test_diverse_at_least_two(self, tiny_schema):
        assert suggest_diverse_distance(tiny_schema) >= 2

    def test_diverse_at_or_above_tight(self, tiny_schema):
        assert suggest_diverse_distance(tiny_schema) >= suggest_tight_distance(
            tiny_schema
        )

    @pytest.mark.parametrize("domain", ["film", "tv"])
    def test_suggested_d_satisfiable(self, domain):
        """Suggested distances admit actual previews (non-degenerate)."""
        from repro.core import DistanceConstraint, apriori_discover

        schema = load_schema(domain)
        graph = load_domain(domain)
        context = ScoringContext(schema, graph)
        size = SizeConstraint(k=3, n=6)
        tight = apriori_discover(
            context, size, DistanceConstraint.tight(suggest_tight_distance(schema))
        )
        diverse = apriori_discover(
            context,
            size,
            DistanceConstraint.diverse(suggest_diverse_distance(schema)),
        )
        assert tight is not None
        assert diverse is not None


class TestFlavourChoice:
    @pytest.fixture(scope="class")
    def recommendation(self):
        graph = load_domain("architecture")
        schema = load_schema("architecture")
        context = ScoringContext(schema, graph)
        return choose_preview_flavour(context, SizeConstraint(k=3, n=6))

    def test_produces_all_candidates(self, recommendation):
        assert recommendation.concise is not None
        assert recommendation.recommendation in ("tight", "diverse", "concise")

    def test_retentions_bounded(self, recommendation):
        assert 0.0 <= recommendation.tight_retention <= 1.0 + 1e-9
        assert 0.0 <= recommendation.diverse_retention <= 1.0 + 1e-9

    def test_recommended_result_consistent(self, recommendation):
        result = recommendation.recommended_result()
        assert result is not None
        if recommendation.recommendation == "tight":
            assert result is recommendation.tight
        elif recommendation.recommendation == "diverse":
            assert result is recommendation.diverse
        else:
            assert result is recommendation.concise

    def test_tight_preferred_when_retention_high(self, recommendation):
        if recommendation.tight_retention >= 0.8:
            assert recommendation.recommendation == "tight"

    def test_threshold_extremes(self):
        graph = load_domain("architecture")
        schema = load_schema("architecture")
        context = ScoringContext(schema, graph)
        size = SizeConstraint(k=3, n=6)
        always = choose_preview_flavour(context, size, retention_threshold=0.0)
        assert always.recommendation == "tight"
        never = choose_preview_flavour(context, size, retention_threshold=1.1)
        assert never.recommendation == "concise"
