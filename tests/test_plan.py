"""The execution planner: every mode bit-identical, every fit earned.

Three layers, mirroring the planner's own contract:

* **CostModel units** — cold-start refusal (no fit before
  ``MIN_SAMPLES`` diverse observations), calibration convergence on
  synthetic linear workloads, and ring-buffer eviction (a regime change
  overwrites stale timings instead of averaging against them forever).
* **Planner units** — mode forcing and validation, the single-core
  affinity veto, warm-model serial/sharded verdicts, adaptive shard
  layout, sweep-point batching, the process-wide caches and their reset
  hooks, and once-per-identity snapshot costing.
* **The hypothesis property** — for random schema pools, query points
  and *any* ``REPRO_PLAN`` forcing, planner-chosen execution is
  bit-identical to the serial oracle (``float.hex`` scores + winning
  key subset) for all four discovery algorithms, including runs with
  mutations interleaved between sharded sweeps.  Planning may only ever
  move wall time, never answers.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import config, plan
from repro.core import make_context
from repro.datasets import random_schema_graph
from repro.engine import PreviewEngine, PreviewQuery
from repro.exceptions import (
    ConfigError,
    InfeasiblePreviewError,
    KernelError,
    PlanError,
)
from repro.plan import MIN_SAMPLES, CostModel, LinearFit, Planner
from repro.scoring import ScoringContext

#: Worker count for the equivalence properties (the CI planner leg also
#: re-runs the whole suite under REPRO_PLAN=serial and =auto).
JOBS = config.test_jobs()

SMALL = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

schema_params = st.tuples(
    st.integers(min_value=3, max_value=8),  # types
    st.integers(min_value=3, max_value=12),  # rel types
    st.integers(min_value=0, max_value=10_000),  # seed
)


def context_for(params) -> ScoringContext:
    num_types, num_rels, seed = params
    schema = random_schema_graph(
        num_types, max(num_rels, num_types - 1), seed=seed
    )
    return ScoringContext(schema)


# ----------------------------------------------------------------------
# CostModel
# ----------------------------------------------------------------------
class TestCostModel:
    def test_cold_start_refuses_to_predict(self):
        model = CostModel(window=8)
        assert model.fit("serial", "python") is None
        assert model.predict("serial", "python", 100) is None
        assert not model.warm("python")
        # MIN_SAMPLES - 1 diverse points: still cold.
        for n in range(1, MIN_SAMPLES):
            model.observe("serial", "python", n * 100, n * 0.01)
        assert model.fit("serial", "python") is None

    def test_single_batch_size_cannot_identify_a_slope(self):
        """MIN_SAMPLES observations all at one size: slope unidentified."""
        model = CostModel(window=8)
        for _ in range(MIN_SAMPLES + 2):
            model.observe("serial", "python", 500, 0.01)
        assert model.fit("serial", "python") is None
        assert model.predict("serial", "python", 500) is None

    def test_calibration_converges_on_linear_workload(self):
        """Exact linear timings are recovered coefficient-for-coefficient."""
        model = CostModel(window=16)
        setup, rate = 0.002, 5e-6
        for n in (100, 200, 400, 800, 1600):
            model.observe("serial", "python", n, setup + rate * n)
        fitted = model.fit("serial", "python")
        assert fitted is not None
        assert fitted.setup == pytest.approx(setup, rel=1e-9)
        assert fitted.rate == pytest.approx(rate, rel=1e-9)
        assert fitted.samples == 5
        assert model.predict("serial", "python", 10_000) == pytest.approx(
            setup + rate * 10_000, rel=1e-9
        )

    def test_warm_needs_both_strategy_fits(self):
        model = CostModel(window=8)
        for n in (100, 200, 300, 400):
            model.observe("serial", "python", n, 1e-5 * n)
        assert not model.warm("python")  # sharded line still missing
        for n in (100, 200, 300, 400):
            model.observe("sharded", "python", n, 0.05 + 1e-6 * n)
        assert model.warm("python")
        assert not model.warm("numpy")  # warmth is per backend

    def test_ring_buffer_evicts_the_old_regime(self):
        """After a load change, ``window`` new points own the fit."""
        window = MIN_SAMPLES
        model = CostModel(window=window)
        for n in (100, 200, 300, 400):  # old regime: 1 us/subset
            model.observe("serial", "python", n, 1e-6 * n)
        for n in (100, 200, 300, 400):  # new regime: 1 ms/subset
            model.observe("serial", "python", n, 1e-3 * n)
        counts = model.observation_counts()
        assert counts["serial/python"] == window  # old points evicted
        fitted = model.fit("serial", "python")
        assert fitted.rate == pytest.approx(1e-3, rel=1e-9)

    def test_degenerate_observations_are_ignored(self):
        model = CostModel(window=8)
        model.observe("serial", "python", 0, 1.0)  # no subsets
        model.observe("serial", "python", -5, 1.0)  # negative count
        model.observe("serial", "python", 10, -0.1)  # negative seconds
        assert model.observation_counts() == {}
        model.observe_snapshot(0, 1.0)
        model.observe_snapshot(100, -1.0)
        assert model.snapshot_stats()["samples"] == 0

    def test_window_floor_is_enforced(self):
        with pytest.raises(ValueError, match=f">= {MIN_SAMPLES}"):
            CostModel(window=MIN_SAMPLES - 1)

    def test_linear_fit_clamps_noise_negative_coefficients(self):
        fitted = LinearFit(setup=-0.5, rate=-1e-6, samples=4)
        assert fitted.setup == 0.0
        assert fitted.rate == 0.0
        assert fitted.predict(10_000) == 0.0

    def test_reset_forgets_everything(self):
        model = CostModel(window=8)
        for n in (100, 200, 300, 400):
            model.observe("serial", "python", n, 1e-5 * n)
        model.observe_snapshot(1024, 0.001)
        model.reset()
        assert model.observation_counts() == {}
        assert model.fit("serial", "python") is None
        assert model.snapshot_stats()["samples"] == 0


# ----------------------------------------------------------------------
# Planner decisions
# ----------------------------------------------------------------------
def warm_planner(
    serial_rate=1e-5, sharded_setup=0.05, sharded_rate=1e-6
) -> Planner:
    """A planner whose python-backend cost lines are fitted and warm.

    With the defaults the strategies cross near 5.5k subsets: below
    that, serial wins (sharded pays its 50 ms setup for nothing); far
    above, sharded's 10x better rate wins.
    """
    planner = Planner(model=CostModel(window=16))
    for n in (1_000, 2_000, 4_000, 8_000):
        planner.observe("serial", "python", n, serial_rate * n)
        planner.observe(
            "sharded", "python", n, sharded_setup + sharded_rate * n
        )
    return planner


@pytest.fixture
def many_cores(monkeypatch):
    """Pretend this box has 8 usable cores (defeats the affinity veto)."""
    monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 8)
    monkeypatch.setattr(plan.planner, "_active_backend_name", lambda: "python")


class TestPlannerDecisions:
    def test_serial_mode_never_shards(self, many_cores):
        planner = warm_planner()
        with plan.use_mode("serial"):
            assert not planner.should_shard(10**6, jobs=8)
        assert planner.decision_counts()["serial"] == 1
        assert planner.decision_counts()["sharded"] == 0

    def test_sharded_mode_forces_even_past_the_veto(self, monkeypatch):
        """Forced sharding is a bisection tool: it bypasses the veto."""
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 1)
        planner = Planner(model=CostModel(window=8))
        with plan.use_mode("sharded"):
            assert planner.should_shard(2, jobs=2)
            assert not planner.should_shard(1, jobs=2)  # nothing to split
            assert not planner.should_shard(100, jobs=1)  # no workers
        counts = planner.decision_counts()
        assert counts["sharded"] == 1 and counts["serial"] == 2

    def test_static_mode_is_the_threshold_rule(self, many_cores, monkeypatch):
        monkeypatch.setenv(plan.ENV_THRESHOLD, "100")
        plan.reset_plan_caches()
        planner = warm_planner()  # a warm model must not matter here
        with plan.use_mode("static"):
            assert planner.should_shard(100, jobs=4)
            assert not planner.should_shard(99, jobs=4)
        counts = planner.decision_counts()
        assert counts["model_warm"] == 0 and counts["fallback"] == 0

    def test_auto_falls_back_to_threshold_while_cold(
        self, many_cores, monkeypatch
    ):
        monkeypatch.setenv(plan.ENV_THRESHOLD, "1000")
        plan.reset_plan_caches()
        planner = Planner(model=CostModel(window=8))  # cold
        with plan.use_mode("auto"):
            assert planner.should_shard(1000, jobs=4)
            assert not planner.should_shard(999, jobs=4)
        assert planner.decision_counts()["fallback"] == 2
        assert planner.decision_counts()["model_warm"] == 0

    def test_auto_trusts_the_warm_model_over_the_threshold(
        self, many_cores, monkeypatch
    ):
        """Warm verdicts ignore the static threshold entirely."""
        monkeypatch.setenv(plan.ENV_THRESHOLD, "10")  # would always shard
        plan.reset_plan_caches()
        planner = warm_planner()  # crossover near 5.5k subsets
        with plan.use_mode("auto"):
            assert not planner.should_shard(100, jobs=4)  # 1 ms vs 50 ms
            assert planner.should_shard(100_000, jobs=4)  # 1 s vs 0.15 s
        counts = planner.decision_counts()
        assert counts["model_warm"] == 2 and counts["fallback"] == 0

    def test_auto_single_core_veto(self, monkeypatch):
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 1)
        planner = warm_planner()
        with plan.use_mode("auto"):
            assert not planner.should_shard(10**6, jobs=8)
        counts = planner.decision_counts()
        assert counts["vetoed_single_core"] == 1
        assert counts["serial"] == 1

    def test_reset_stats_zeroes_counters(self, many_cores):
        planner = warm_planner()
        with plan.use_mode("serial"):
            planner.should_shard(10, jobs=2)
        planner.reset_stats()
        assert all(v == 0 for v in planner.decision_counts().values())


class TestShardLayout:
    def test_static_layout_is_the_pr6_tiling(self, many_cores):
        planner = Planner(model=CostModel(window=8))
        with plan.use_mode("static"):
            layout = planner.shard_layout(10, jobs=4)
        assert layout == [3, 3, 2, 2]  # min(jobs, n) shards, first-heavy

    def test_auto_layout_oversubscribes_when_cold(self, many_cores):
        planner = Planner(model=CostModel(window=8))
        with plan.use_mode("auto"):
            layout = planner.shard_layout(100, jobs=4)
        assert len(layout) == 8  # OVERSUBSCRIPTION x jobs
        assert sum(layout) == 100
        assert max(layout) - min(layout) <= 1
        assert sorted(layout, reverse=True) == layout  # remainder first

    def test_auto_layout_caps_split_at_the_payoff_size(self, many_cores):
        """A warm per-shard fit stops the split where setup stops paying."""
        planner = Planner(model=CostModel(window=16))
        # setup 10 ms, rate 10 us/subset: payoff size = 8 * 0.01 / 1e-5
        # = 8000 subsets per shard.
        for n in (10, 100, 1_000, 5_000):
            planner.observe("shard", "python", n, 0.01 + 1e-5 * n)
        with plan.use_mode("auto"):
            layout = planner.shard_layout(48_001, jobs=4)
        # target is 8 shards, but only 48001 // 8000 = 6 pay for their
        # own dispatch; never fewer than min(jobs, n).
        assert len(layout) == 6
        assert sum(layout) == 48_001
        assert sorted(layout, reverse=True) == layout

    def test_layout_never_goes_below_the_job_floor(self, many_cores):
        """The payoff cap cannot starve the pool below min(jobs, n)."""
        planner = Planner(model=CostModel(window=16))
        for n in (10, 100, 1_000, 5_000):
            planner.observe("shard", "python", n, 0.01 + 1e-5 * n)
        with plan.use_mode("auto"):
            layout = planner.shard_layout(16_000, jobs=4)  # affords only 2
        assert len(layout) == 4
        assert sum(layout) == 16_000

    @pytest.mark.parametrize("mode", plan.PLAN_MODES)
    def test_degenerate_layouts(self, mode, many_cores):
        planner = Planner(model=CostModel(window=8))
        with plan.use_mode(mode):
            assert planner.shard_layout(0, jobs=4) == []
            assert planner.shard_layout(5, jobs=1) == [5]
            assert planner.shard_layout(1, jobs=4) == [1]


class TestPlanSweep:
    def test_serial_mode_runs_every_group_inline(self, many_cores):
        planner = warm_planner()
        with plan.use_mode("serial"):
            sweep = planner.plan_sweep([100, 100_000, 7], jobs=4)
        assert sweep.sharded == [] and sweep.batched == []
        assert sweep.serial == [0, 1, 2]

    def test_sharded_mode_shards_every_splittable_group(self, monkeypatch):
        monkeypatch.setattr(plan.planner, "usable_cpus", lambda: 1)
        planner = Planner(model=CostModel(window=8))
        with plan.use_mode("sharded"):
            sweep = planner.plan_sweep([100, 1, 50], jobs=4)
        assert sweep.sharded == [0, 2]
        assert sweep.batched == []
        assert sweep.serial == [1]  # a 1-subset group cannot split

    def test_static_mode_never_batches(self, many_cores, monkeypatch):
        monkeypatch.setenv(plan.ENV_THRESHOLD, "1000")
        plan.reset_plan_caches()
        planner = warm_planner()
        with plan.use_mode("static"):
            sweep = planner.plan_sweep([600, 600, 5_000], jobs=4)
        # 600 + 600 would clear the threshold combined, but static is
        # the per-group PR 6 rule: smalls stay serial.
        assert sweep.sharded == [2]
        assert sweep.batched == []
        assert sweep.serial == [0, 1]

    def test_auto_batches_small_groups_whose_total_pays(self, many_cores):
        """The sweep-point batching static never did: smalls combine."""
        planner = warm_planner()  # crossover near 5.5k subsets
        with plan.use_mode("auto"):
            sweep = planner.plan_sweep([4_000, 4_000, 100_000], jobs=4)
        assert sweep.sharded == [2]  # big enough on its own
        assert sweep.batched == [0, 1]  # 8k combined beats serial
        assert sweep.serial == []
        assert planner.decision_counts()["batched_sweep"] == 1

    def test_auto_keeps_smalls_serial_when_the_total_does_not_pay(
        self, many_cores
    ):
        planner = warm_planner()
        with plan.use_mode("auto"):
            sweep = planner.plan_sweep([100, 200], jobs=4)  # 300 total
        assert sweep.sharded == [] and sweep.batched == []
        assert sweep.serial == [0, 1]
        assert planner.decision_counts()["batched_sweep"] == 0

    def test_single_small_group_is_never_batched(self, many_cores):
        planner = warm_planner()
        with plan.use_mode("auto"):
            sweep = planner.plan_sweep([4_000], jobs=4)
        assert sweep.batched == []  # batching needs >= 2 groups
        assert sweep.serial == [0]

    def test_empty_sweep(self, many_cores):
        planner = warm_planner()
        with plan.use_mode("auto"):
            sweep = planner.plan_sweep([], jobs=4)
        assert sweep.sharded == sweep.batched == sweep.serial == []


# ----------------------------------------------------------------------
# Mode selection, caches and process-wide state
# ----------------------------------------------------------------------
class TestModeAndCaches:
    def test_plan_mode_defaults_to_auto(self, monkeypatch):
        monkeypatch.delenv(plan.ENV_PLAN, raising=False)
        assert plan.plan_mode() == "auto"

    def test_plan_mode_reads_and_validates_the_env(self, monkeypatch):
        monkeypatch.setenv(plan.ENV_PLAN, "STATIC")  # case-insensitive
        assert plan.plan_mode() == "static"
        monkeypatch.setenv(plan.ENV_PLAN, "bogus")
        with pytest.raises(PlanError, match="REPRO_PLAN"):
            plan.plan_mode()

    def test_use_mode_overrides_env_and_restores(self, monkeypatch):
        monkeypatch.setenv(plan.ENV_PLAN, "serial")
        with plan.use_mode("sharded"):
            assert plan.plan_mode() == "sharded"
            with plan.use_mode("static"):  # nesting restores one level
                assert plan.plan_mode() == "static"
            assert plan.plan_mode() == "sharded"
        assert plan.plan_mode() == "serial"

    def test_use_mode_rejects_unknown_modes(self):
        with pytest.raises(PlanError, match="unknown planner mode"):
            with plan.use_mode("turbo"):
                pass  # pragma: no cover - must not execute

    def test_usable_cpus_probes_once_until_reset(self, monkeypatch):
        if not hasattr(os, "sched_getaffinity"):  # pragma: no cover
            pytest.skip("no affinity mask on this platform")
        plan.reset_plan_caches()
        calls = []
        real = os.sched_getaffinity

        def probe(pid):
            calls.append(pid)
            return real(pid)

        monkeypatch.setattr(os, "sched_getaffinity", probe)
        first = plan.usable_cpus()
        assert plan.usable_cpus() == first
        assert len(calls) == 1  # memoized: the hot path never re-probes
        plan.reset_plan_caches()
        assert plan.usable_cpus() == first
        assert len(calls) == 2  # reset hook forces one re-probe

    def test_dispatch_threshold_memo_tracks_env(self, monkeypatch):
        plan.reset_plan_caches()
        monkeypatch.delenv(plan.ENV_THRESHOLD, raising=False)
        assert plan.dispatch_threshold() == plan.DEFAULT_DISPATCH_THRESHOLD
        monkeypatch.setenv(plan.ENV_THRESHOLD, "123")
        assert plan.dispatch_threshold() == 123  # memo keyed by raw value
        monkeypatch.setenv(plan.ENV_THRESHOLD, "nope")
        with pytest.raises(KernelError, match="must be an integer"):
            plan.dispatch_threshold()

    def test_plan_window_knob_is_validated(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLAN_WINDOW", raising=False)
        assert config.plan_window() == plan.DEFAULT_WINDOW
        monkeypatch.setenv("REPRO_PLAN_WINDOW", "16")
        assert config.plan_window() == 16
        for bad in ("2", "abc"):
            monkeypatch.setenv("REPRO_PLAN_WINDOW", bad)
            with pytest.raises(ConfigError):
                config.plan_window()

    def test_snapshot_cost_measured_once_per_identity(self):
        planner = Planner(model=CostModel(window=8))
        snapshot = {"weighted": [(1.0, 2.0)] * 100}
        planner.observe_snapshot_cost(snapshot)
        planner.observe_snapshot_cost(snapshot)  # same object: no re-pickle
        assert planner.model.snapshot_stats()["samples"] == 1
        planner.observe_snapshot_cost({"weighted": [(3.0,)] * 50})
        assert planner.model.snapshot_stats()["samples"] == 2

    def test_module_level_hooks_feed_the_process_planner(self):
        plan.reset_planner()
        try:
            for n in (100, 200, 300, 400):
                plan.observe_serial("python", n, 1e-5 * n)
                plan.observe_sharded("python", n, 0.01 + 1e-6 * n, shards=2)
                plan.observe_shard("python", n, 5e-6 * n)
                plan.observe_lowering("python", n, 1e-7 * n)
            stats = plan.plan_stats()
            observations = stats["model"]["observations"]
            assert observations["serial/python"] == 4
            assert observations["sharded/python"] == 4
            assert observations["shard/python"] == 4
            assert observations["lower/python"] == 4
            assert set(stats["decisions"]) == {
                "serial",
                "sharded",
                "batched_sweep",
                "model_warm",
                "fallback",
                "vetoed_single_core",
            }
            plan.reset_plan_stats()
            assert all(v == 0 for v in plan.decision_counts().values())
        finally:
            plan.reset_planner()  # leave no synthetic timings behind


# ----------------------------------------------------------------------
# The bit-identity property
# ----------------------------------------------------------------------
def fingerprint(result):
    """(hex score, winning key subset) — the bit-identity witness."""
    if result is None:
        return None
    return (float(result.score).hex(), tuple(result.preview.keys()))


def answer_grid(context, queries, jobs):
    engine = PreviewEngine(context)
    answers = []
    for query in queries:
        try:
            answers.append(engine.run(query, jobs=jobs))
        except InfeasiblePreviewError:
            answers.append(None)
    return answers


class TestModeBitIdentity:
    """Any REPRO_PLAN forcing answers exactly like the serial oracle."""

    @SMALL
    @given(
        schema_params,
        st.integers(2, 3),
        st.integers(1, 3),
        st.sampled_from(plan.PLAN_MODES),
    )
    def test_all_four_algorithms_match_the_serial_oracle(
        self, params, k, d, mode
    ):
        context = context_for(params)
        k = min(k, params[0])
        queries = [
            PreviewQuery(k=k, n=k + 3, algorithm="brute-force"),
            PreviewQuery(k=k, n=k + 3, algorithm="dynamic-programming"),
            PreviewQuery(k=k, n=k + 3, algorithm="branch-and-bound"),
            PreviewQuery(k=k, n=k + 3, d=d, mode="tight", algorithm="apriori"),
            PreviewQuery(
                k=k, n=k + 3, d=d, mode="diverse", algorithm="apriori"
            ),
            PreviewQuery(
                k=k, n=k + 3, d=d, mode="tight", algorithm="brute-force"
            ),
        ]
        with plan.use_mode("serial"):
            oracle = answer_grid(context, queries, jobs=1)
        with plan.use_mode(mode):
            answered = answer_grid(context, queries, jobs=JOBS)
        assert [fingerprint(r) for r in answered] == [
            fingerprint(r) for r in oracle
        ], mode
        assert answered == oracle  # full dataclass equality, not just hex

    @SMALL
    @given(
        schema_params,
        st.integers(1, 3),
        st.sampled_from(plan.PLAN_MODES),
    )
    def test_sweeps_match_the_serial_oracle(self, params, d, mode):
        context = context_for(params)
        k = min(3, params[0])
        grid = list(
            PreviewQuery.grid(
                ks=(2, k),
                ns=(k + 1, k + 3, k + 5),
                distances=[None, (d, "tight"), (d, "diverse")],
            )
        )
        with plan.use_mode("serial"):
            oracle = PreviewEngine(context).sweep(grid, skip_infeasible=True)
        with plan.use_mode(mode):
            answered = PreviewEngine(context).sweep(
                grid, skip_infeasible=True, jobs=JOBS
            )
        assert [fingerprint(r) for r in answered] == [
            fingerprint(r) for r in oracle
        ], mode
        assert answered == oracle

    @SMALL
    @given(st.integers(0, 10_000), st.sampled_from(plan.PLAN_MODES))
    def test_mutation_interleaved_runs_stay_identical(self, seed, mode):
        """Mutations between planner-driven sweeps never change answers.

        After every mutation the planner's cost model has drifted (new
        observations, possibly new decisions) — the next batch must
        still equal a fresh serial engine on the same graph, bit for
        bit.
        """
        from repro.ext import IncrementalEntityGraph
        from repro.model import RelationshipTypeId

        acted = RelationshipTypeId("Acted In", "ACTOR", "FILM")
        directed = RelationshipTypeId("Directed", "DIRECTOR", "FILM")
        inc = IncrementalEntityGraph(name=f"plan-delta-{seed}")
        inc.add_entity("film0", ["FILM"])
        inc.add_entity("actor0", ["ACTOR"])
        inc.add_entity("director0", ["DIRECTOR"])
        inc.add_relationship("actor0", "film0", acted)
        inc.add_relationship("director0", "film0", directed)
        engine = inc.engine()
        grid = [
            PreviewQuery(k=2, n=n, d=1, mode="tight") for n in (3, 4)
        ] + [PreviewQuery(k=2, n=4)]
        for batch in range(3):
            with plan.use_mode(mode):
                planned = engine.sweep(grid, skip_infeasible=True, jobs=JOBS)
            with plan.use_mode("serial"):
                oracle = PreviewEngine(make_context(inc.entity_graph)).sweep(
                    grid, skip_infeasible=True
                )
            assert [fingerprint(r) for r in planned] == [
                fingerprint(r) for r in oracle
            ], (seed, mode, batch)
            assert planned == oracle
            inc.add_entity(f"film{batch + 1}", ["FILM"])
            inc.add_relationship(
                ("actor0", "director0")[batch % 2],
                f"film{batch + 1}",
                (acted, directed)[batch % 2],
            )


class TestEngineDecisionAccounting:
    def test_cache_info_reports_mode_and_decision_deltas(self, fig1_context):
        engine = PreviewEngine(fig1_context)
        info = engine.cache_info()
        assert info["plan_mode"] == plan.plan_mode()
        assert info["plan_decisions"] == {}
        with plan.use_mode("sharded"):
            engine.sweep(
                [PreviewQuery(k=2, n=n) for n in (4, 5)],
                skip_infeasible=True,
                jobs=2,
            )
        decisions = engine.cache_info()["plan_decisions"]
        # The engine attributes only its own deltas — whatever this box
        # decided, the counters are non-negative and strategy-shaped.
        assert all(v >= 0 for v in decisions.values())
        assert set(decisions) <= {
            "serial",
            "sharded",
            "batched_sweep",
            "model_warm",
            "fallback",
            "vetoed_single_core",
        }


class _WeakrefableSnapshot:
    """A minimal weakref-able snapshot stand-in for memoization tests."""

    def __init__(self) -> None:
        self.weighted = [(1.0, 2.0)] * 50


class TestSnapshotCostIdReuse:
    """The snapshot-cost memo must key on identity, not on ``id()`` alone.

    Regression for a bug where the memo was a bare ``set`` of ``id()``
    values: CPython recycles addresses after garbage collection, so a
    fresh snapshot allocated at a dead snapshot's address silently
    inherited its cost measurement and was never pickled-probed itself.
    """

    def test_recycled_id_is_measured_independently(self):
        import gc

        planner = Planner(model=CostModel(window=8))
        first = _WeakrefableSnapshot()
        planner.observe_snapshot_cost(first)
        assert planner.model.snapshot_stats()["samples"] == 1
        second = _WeakrefableSnapshot()
        # Simulate address reuse: transplant the dead entry onto the new
        # snapshot's id, then drop the original so its weakref dies.
        planner._measured_snapshots[id(second)] = (
            planner._measured_snapshots.pop(id(first))
        )
        del first
        gc.collect()
        planner.observe_snapshot_cost(second)
        assert planner.model.snapshot_stats()["samples"] == 2

    def test_live_collision_with_different_object_remeasures(self):
        planner = Planner(model=CostModel(window=8))
        first = _WeakrefableSnapshot()
        second = _WeakrefableSnapshot()
        planner.observe_snapshot_cost(first)
        # A stored entry for second's id that resolves to *first* must
        # not count as a hit for second.
        planner._measured_snapshots[id(second)] = (
            planner._measured_snapshots[id(first)]
        )
        planner.observe_snapshot_cost(second)
        assert planner.model.snapshot_stats()["samples"] == 2

    def test_memo_is_fifo_bounded(self):
        planner = Planner(model=CostModel(window=64))
        keep = [_WeakrefableSnapshot() for _ in range(20)]
        for snapshot in keep:
            planner.observe_snapshot_cost(snapshot)
        assert len(planner._measured_snapshots) <= 16
        assert planner.model.snapshot_stats()["samples"] == 20

    def test_unweakrefable_snapshot_still_memoized(self):
        planner = Planner(model=CostModel(window=8))
        snapshot = {"weighted": [(1.0,)] * 10}  # dicts take no weakrefs
        planner.observe_snapshot_cost(snapshot)
        planner.observe_snapshot_cost(snapshot)
        assert planner.model.snapshot_stats()["samples"] == 1
