"""Replication benchmark — 2-replica read scale-out vs one standalone host.

The replicated tier (``repro.replicate``, [docs/replication.md]) exists
to scale *reads* horizontally; this bench measures what that buys on
real hardware, with byte identity asserted before any throughput number
is reported.

Both topologies run as real OS processes via the CLI
(``python -m repro.cli serve``) — thread-based replicas would share one
GIL and measure nothing:

* *standalone* — one ``--role standalone`` process, the seed serving
  behavior;
* *replicated* — one writer, ``REPLICAS`` delta-following replicas
  subscribed to it, and a consistent-hash router in front
  (``--role writer|replica|router``).

**Identity leg (always asserted).**  A seeded read-heavy workload trace
(:func:`repro.workload.generator.generate_trace`) is replayed against
both topologies in trace order.  Replicated reads carry the
read-your-writes generation token of the last acknowledged mutation and
their client's ``affinity`` pin, exactly like the ``replicated``
conformance path; every response must be byte-identical (as canonical
JSON) to the standalone host's.

**Throughput leg (the headline number).**  After a structural mutation
cold-resets every cache on every backend identically, ``CLIENTS``
client threads split a grid of distinct preview queries and issue them
concurrently — direct to the standalone host, then through the router
with per-client affinity so the work spreads across the replicas.  Each
backend computes its shard of the grid once, so with ``REPLICAS=2`` the
compute halves per process and the replicated tier is required to reach
at least ``SPEEDUP_FLOOR``x the standalone read QPS.  On a single-core
box the replicas cannot actually run in parallel — the floor is
*skipped* there (``vetoed_single_core: true``), as in
``bench_parallel.py``; identity is still asserted.  The grid payloads
themselves are also diffed across the two legs.

Wall times, QPS and the router's replication stats land in
``BENCH_replicate.json`` at the repo root.  Run directly
(``PYTHONPATH=src python benchmarks/bench_replicate.py``) or through
pytest (``pytest benchmarks/bench_replicate.py``).
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import SCALE, SEED  # noqa: E402

from repro import plan  # noqa: E402
from repro.serve import ServeClient  # noqa: E402
from repro.workload.generator import generate_trace  # noqa: E402

DOMAIN = "film"
SCENARIO = "read-heavy"
#: Trace length for the identity leg (~6% writes at this preset).
TRACE_OPS = 60
REPLICAS = 2
CLIENTS = 4
#: Required replicated-over-standalone read-QPS speedup — asserted only
#: on hardware where the replicas can actually run in parallel.
SPEEDUP_FLOOR = 1.5
STARTUP_DEADLINE_S = 120.0
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_replicate.json"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Distinct cold previews for the throughput leg: every query is
#: computed exactly once per backend, so the grid's compute spreads
#: across the replicas (tight d=2 points are the ~10-20 ms flagship
#: shape; the diverse points add the other constraint family).
QUERY_GRID = [
    {"k": k, "n": n, "d": 2, "mode": "tight"}
    for k in (2, 3, 4)
    for n in (8, 9, 10, 11, 12, 13, 14, 15)
] + [
    {"k": k, "n": n, "d": 4, "mode": "diverse"}
    for k in (2, 3)
    for n in (9, 11, 13, 15)
]


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_serve(port: int, *role_args: str) -> subprocess.Popen:
    """One serving process (``repro-preview serve``) as a child."""
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--datasets", DOMAIN, "--scale", str(SCALE), "--seed", str(SEED),
        "--port", str(port), *role_args,
    ]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return subprocess.Popen(
        command,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def await_ready(port: int) -> None:
    start = time.perf_counter()
    while True:
        try:
            with ServeClient(port=port, timeout=5.0) as probe:
                probe.health()
            return
        except OSError:
            if time.perf_counter() - start > STARTUP_DEADLINE_S:
                raise RuntimeError(f"serve process on port {port} never became healthy")
            time.sleep(0.1)


def replay_identity(trace, standalone_port: int, router_port: int):
    """Replay the trace against both topologies, diffing every payload.

    Returns ``(mismatches, final_token, op_counts)`` where the token is
    the generation of the last acknowledged mutation (identical on both
    sides by construction — same seed graph, same mutation order).
    """
    mismatches = []
    token = None
    counts = {"mutate": 0, "preview": 0, "sweep": 0, "stats": 0}
    routed = {}  # one router connection per trace client id

    def routed_client(client_id: int) -> ServeClient:
        client = routed.get(client_id)
        if client is None:
            client = ServeClient(port=router_port, timeout=120.0)
            routed[client_id] = client
        return client

    try:
        with ServeClient(port=standalone_port, timeout=120.0) as single:
            for index, op in enumerate(trace.ops):
                counts[op.op] += 1
                if op.op == "stats":
                    continue  # path-specific, never digested (see workloads.md)
                if op.op == "mutate":
                    baseline = single.call("mutate", op.params)
                    replicated = routed_client(op.client).call("mutate", op.params)
                    token = replicated["generation"]
                else:
                    params = dict(op.params)
                    if token is not None:
                        params["min_generation"] = token
                    params["affinity"] = (
                        op.affinity if op.affinity is not None else op.client
                    )
                    baseline = single.call(op.op, op.params)
                    replicated = routed_client(op.client).call(op.op, params)
                if canonical(baseline) != canonical(replicated):
                    mismatches.append(f"trace[{index}]:{op.op}")
    finally:
        for client in routed.values():
            client.close()
    return mismatches, token, counts


def hammer(port: int, token=None) -> tuple:
    """CLIENTS threads split QUERY_GRID; returns (elapsed_s, payloads).

    With ``token`` set the reads go through the router: each carries its
    client's ``affinity`` (pinning it to one replica) and the
    read-your-writes ``min_generation`` token.
    """
    clients = [ServeClient(port=port, timeout=120.0) for _ in range(CLIENTS)]
    payloads = [None] * len(QUERY_GRID)
    try:
        barrier = threading.Barrier(CLIENTS + 1)

        def run_shard(client_index: int) -> None:
            client = clients[client_index]
            barrier.wait()
            for query_index in range(client_index, len(QUERY_GRID), CLIENTS):
                params = dict(QUERY_GRID[query_index])
                if token is not None:
                    params["min_generation"] = token
                    params["affinity"] = client_index
                payloads[query_index] = client.call("preview", params)

        threads = [
            threading.Thread(target=run_shard, args=(index,))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        barrier.wait()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    finally:
        for client in clients:
            client.close()
    return elapsed, payloads


def replication_stats(router_port: int):
    """A summary of the router's aggregated replication stats."""
    with ServeClient(port=router_port, timeout=120.0) as client:
        stats = client.stats()
    writer_block = None
    for entry in (stats.get("writer") or {}).get("datasets") or []:
        if entry.get("dataset") == DOMAIN:
            writer_block = entry.get("replication")
    return {
        "writer_generation": stats.get("writer_generation"),
        "writer": writer_block,
        "replica_lags": [
            replica.get("lag") for replica in stats.get("replicas", [])
        ],
        "routed": (stats.get("service") or {}).get("routed"),
    }


def run_benchmark():
    trace = generate_trace(
        DOMAIN, scale=SCALE, seed=SEED, ops=TRACE_OPS, scenario=SCENARIO
    )
    cpus = plan.usable_cpus()

    standalone_port = free_port()
    writer_port = free_port()
    replica_ports = [free_port() for _ in range(REPLICAS)]
    router_port = free_port()

    processes = [spawn_serve(standalone_port)]
    processes.append(spawn_serve(writer_port, "--role", "writer"))
    for port in replica_ports:
        processes.append(
            spawn_serve(
                port, "--role", "replica", "--upstream", f"127.0.0.1:{writer_port}"
            )
        )
    processes.append(
        spawn_serve(
            router_port,
            "--role", "router",
            "--writer", f"127.0.0.1:{writer_port}",
            "--replicas", ",".join(f"127.0.0.1:{port}" for port in replica_ports),
        )
    )

    try:
        for port in (standalone_port, writer_port, *replica_ports, router_port):
            await_ready(port)

        # -- Leg 1: trace identity --------------------------------------
        mismatches, token, op_counts = replay_identity(
            trace, standalone_port, router_port
        )

        # Structural mutation: a brand-new entity type forces *full*
        # invalidation on every backend, so the throughput leg below
        # starts from identically cold caches on both topologies.
        with ServeClient(port=standalone_port, timeout=120.0) as single:
            single.mutate_entity("bench-replicate-reset", ["BENCH RESET"])
        with ServeClient(port=router_port, timeout=120.0) as front:
            token = front.mutate_entity("bench-replicate-reset", ["BENCH RESET"])[
                "generation"
            ]

        # -- Leg 2: concurrent cold-read throughput ----------------------
        single_s, single_payloads = hammer(standalone_port)
        replicated_s, replicated_payloads = hammer(router_port, token=token)
        for index, (one, two) in enumerate(
            zip(single_payloads, replicated_payloads)
        ):
            if canonical(one) != canonical(two):
                mismatches.append(f"grid[{index}]")
        single_qps = len(QUERY_GRID) / single_s
        replicated_qps = len(QUERY_GRID) / replicated_s
        speedup = replicated_qps / single_qps if single_qps > 0 else float("inf")

        replication = replication_stats(router_port)
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    # The affinity veto: with one usable core the replica processes
    # serialize on the same CPU and the replicated leg measures pure
    # routing overhead — its speedup says nothing about scale-out.
    vetoed = min(REPLICAS, cpus) <= 1
    payload = {
        "benchmark": "replicate",
        "domain": DOMAIN,
        "scenario": SCENARIO,
        "trace_ops": op_counts,
        "grid_queries": len(QUERY_GRID),
        "clients": CLIENTS,
        "replicas": REPLICAS,
        "cpus": cpus,
        "vetoed_single_core": vetoed,
        "identical": not mismatches,
        "mismatches": mismatches,
        "token": token,
        "standalone_s": round(single_s, 4),
        "replicated_s": round(replicated_s, 4),
        "standalone_read_qps": round(single_qps, 1),
        "replicated_read_qps": round(replicated_qps, 1),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_met": speedup >= SPEEDUP_FLOOR,
        "replication": replication,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert payload["identical"], (
        "replicated payloads diverged from the standalone host at: "
        f"{payload['mismatches']}"
    )
    if payload["vetoed_single_core"]:
        # One usable core: the replicas time-slice one CPU, so any
        # speedup number is scheduling noise, not evidence.  Identity
        # was asserted above; the floor is meaningless here.
        return
    if payload["speedup"] >= payload["speedup_floor"]:
        return
    # Only demonstrably missing cores excuse a miss of the floor — the
    # topology needs the writer plus REPLICAS replicas runnable at once.
    assert payload["cpus"] < payload["replicas"] + 1, (
        f"{payload['replicas']} replicas behind the router reached only "
        f"{payload['replicated_read_qps']:.0f} read QPS vs the standalone "
        f"host's {payload['standalone_read_qps']:.0f} "
        f"({payload['speedup']:.2f}x, floor {payload['speedup_floor']}x) "
        f"on a {payload['cpus']}-core machine"
    )


def test_replicate_throughput(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    print(
        f"{result['replicas']} replicas behind the router: "
        f"{result['replicated_read_qps']:.0f} read QPS vs standalone "
        f"{result['standalone_read_qps']:.0f} "
        f"({result['speedup']:.2f}x, floor {result['speedup_floor']}x); "
        f"payloads identical: {result['identical']}"
    )
    if result["vetoed_single_core"]:
        print(
            "note: single usable core — the replicas cannot run in "
            "parallel, so the speedup floor is skipped; identity was "
            "still asserted"
        )
