"""Extension bench — parameter suggestion and tight/diverse choice.

The paper leaves suggesting k, n, d and choosing between tight and
diverse previews to future work (#1/#4).  This bench exercises the
heuristics on every gold domain across three display budgets and
verifies every suggestion is feasible (a preview actually exists) and
non-degenerate (the suggested d admits some but not all key sets).
"""

from conftest import GOLD_DOMAINS, domain_context, domain_schema

from repro.bench import format_table, write_result
from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
    dynamic_programming_discover,
)
from repro.ext import (
    choose_preview_flavour,
    suggest_diverse_distance,
    suggest_size,
    suggest_tight_distance,
)

BUDGETS = ((18, 5), (36, 8), (72, 12))  # (rows, cols)


def build_suggestions():
    rows = []
    for domain in GOLD_DOMAINS:
        schema = domain_schema(domain)
        context = domain_context(domain)
        tight_d = suggest_tight_distance(schema)
        diverse_d = suggest_diverse_distance(schema)
        for display_rows, display_cols in BUDGETS:
            suggestion = suggest_size(schema, display_rows, display_cols)
            concise = dynamic_programming_discover(context, suggestion.as_constraint())
            rows.append(
                [
                    domain,
                    f"{display_rows}x{display_cols}",
                    suggestion.k,
                    suggestion.n,
                    tight_d,
                    diverse_d,
                    concise is not None,
                ]
            )
        flavour = choose_preview_flavour(context, SizeConstraint(k=4, n=8))
        rows.append(
            [
                domain,
                "flavour",
                4,
                8,
                tight_d,
                diverse_d,
                f"{flavour.recommendation} "
                f"(tight={flavour.tight_retention:.2f}, "
                f"diverse={flavour.diverse_retention:.2f})",
            ]
        )
    return rows


def test_ext_parameter_suggestion(benchmark):
    rows = benchmark.pedantic(build_suggestions, rounds=1, iterations=1)

    for row in rows:
        domain, budget, k, n, tight_d, diverse_d, outcome = row
        if budget != "flavour":
            assert outcome is True, row  # every suggested size discoverable
        context = domain_context(domain)
        # Suggested distances admit previews (non-degenerate both ways).
        size = SizeConstraint(k=3, n=6)
        assert apriori_discover(context, size, DistanceConstraint.tight(tight_d))
        assert apriori_discover(
            context, size, DistanceConstraint.diverse(diverse_d)
        )

    text = format_table(
        ["domain", "budget", "k", "n", "tight d", "diverse d", "outcome"],
        rows,
        title="Extension: parameter suggestion + tight/diverse choice",
    )
    write_result("ext_parameter_suggestion.txt", text)
