"""Extension bench — representative vs. random tuple selection.

The paper defers "how to choose the most representative tuples" (future
work #2).  This bench compares the greedy coverage-representative
selector against the paper's seeded random sampling on every gold
domain's optimal preview: the representative selection must fill at
least as many non-empty cells and cover at least as many distinct values.
"""

from conftest import GOLD_DOMAINS, domain_context, domain_graph

from repro.bench import format_table, write_result
from repro.core import SizeConstraint, dynamic_programming_discover, materialize_table
from repro.ext import select_representative_tuples, selection_diagnostics

SAMPLE = 4


def build_comparison():
    rows = []
    for domain in GOLD_DOMAINS:
        graph = domain_graph(domain)
        context = domain_context(domain)
        result = dynamic_programming_discover(context, SizeConstraint(k=4, n=8))
        rep_cells = rep_values = rnd_cells = rnd_values = total = 0
        for table in result.preview.tables:
            rep = selection_diagnostics(
                select_representative_tuples(graph, table, sample_size=SAMPLE)
            )
            rnd = selection_diagnostics(
                materialize_table(graph, table, sample_size=SAMPLE, seed=13)
            )
            rep_cells += rep.non_empty_cells
            rep_values += rep.distinct_values_covered
            rnd_cells += rnd.non_empty_cells
            rnd_values += rnd.distinct_values_covered
            total += rep.total_cells
        rows.append([domain, total, rnd_cells, rep_cells, rnd_values, rep_values])
    return rows


def test_ext_representative_tuples(benchmark):
    rows = benchmark.pedantic(build_comparison, rounds=1, iterations=1)

    for domain, _total, rnd_cells, rep_cells, rnd_values, rep_values in rows:
        assert rep_cells >= rnd_cells, (domain, rep_cells, rnd_cells)
        assert rep_values >= rnd_values, (domain, rep_values, rnd_values)
    # And strictly better somewhere (otherwise the extension is vacuous).
    assert any(
        rep_cells > rnd_cells or rep_values > rnd_values
        for _d, _t, rnd_cells, rep_cells, rnd_values, rep_values in rows
    )

    text = format_table(
        [
            "domain",
            "cells",
            "random non-empty",
            "repr non-empty",
            "random distinct",
            "repr distinct",
        ],
        rows,
        title=(
            "Extension: representative vs. random tuple selection "
            f"({SAMPLE} tuples per table, k=4 n=8 previews)"
        ),
    )
    write_result("ext_representative_tuples.txt", text)
