"""Table 3 — MRR of non-key attribute scoring (coverage vs. entropy).

Paper: per domain, the mean reciprocal rank of the first gold non-key
attribute across entity types with at least 5 candidates; MRR above 0.5
everywhere except "film" (where only one type qualifies).
"""

from conftest import GOLD_DOMAINS, domain_context

from repro.bench import format_table, write_result
from repro.datasets import GOLD_STANDARD
from repro.eval import mean_reciprocal_rank

#: The paper excludes entity types with fewer than 5 candidates.
MIN_CANDIDATES = 5


def mrr_for(domain: str, scorer: str) -> float:
    context = domain_context(domain, "coverage", scorer)
    rankings, golds = [], []
    for key_type, gold_attrs in GOLD_STANDARD[domain].items():
        candidates = context.sorted_candidates(key_type)
        if len(candidates) < MIN_CANDIDATES:
            continue
        rankings.append([attr.name for attr, _score in candidates])
        golds.append(set(gold_attrs))
    return mean_reciprocal_rank(rankings, golds)


def build_table3():
    return {
        domain: {
            "coverage": mrr_for(domain, "coverage"),
            "entropy": mrr_for(domain, "entropy"),
        }
        for domain in GOLD_DOMAINS
    }


def test_table03_nonkey_mrr(benchmark):
    table = benchmark.pedantic(build_table3, rounds=1, iterations=1)

    # Shape: MRR > 0.5 in the clear majority of (domain, measure) cells
    # (paper: all except film).
    cells = [
        table[domain][measure]
        for domain in GOLD_DOMAINS
        for measure in ("coverage", "entropy")
    ]
    above_half = sum(1 for value in cells if value > 0.5)
    assert above_half >= 7, f"only {above_half}/10 cells above 0.5: {table}"

    text = format_table(
        ["domain", "coverage", "entropy"],
        [
            [domain, f"{table[domain]['coverage']:.3f}", f"{table[domain]['entropy']:.3f}"]
            for domain in GOLD_DOMAINS
        ],
        title="Table 3: MRR of non-key attribute scoring",
    )
    write_result("table03_nonkey_mrr.txt", text)
