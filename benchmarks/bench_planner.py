"""Execution-planner benchmark — adaptive dispatch vs every static plan.

Runs a mixed grid of small and large query points (music + film) under
all four ``REPRO_PLAN`` modes at ``jobs=2`` and prices the adaptive
planner against the static alternatives:

* **regret** — the auto planner's total wall time over the grid must be
  within 10% of an omniscient per-point choice between the two static
  strategies (``sum(min(serial, sharded))`` per point), asserted as
  ``regret <= 1.10``;
* **vs the PR 6 plan** — on the bench-mixed workload trace (the same
  trace ``bench_workload.py`` prices), the auto planner must never lose
  to the static-threshold plan beyond the same 10% noise band;
* **identity** — every mode's every result is bit-identical to the
  serial oracle (``float.hex`` scores and exact
  :class:`~repro.core.DiscoveryResult` equality), recorded as
  ``identical: true``.

The serial and sharded grid legs run first and double as the cost
model's calibration pass — their timing observations are exactly what
warms the model — so the auto leg runs model-warm, the regime the
planner is built for.  Each leg is timed best-of-``REPEATS`` to damp
shared-runner noise.  On a single-core box the affinity veto makes
auto collapse to serial (recorded as ``vetoed_single_core``), and the
regret bound still holds because serial is then the best static choice.

The record lands in ``BENCH_planner.json`` at the repo root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_planner.py``) or
through pytest (``pytest benchmarks/bench_planner.py``).
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import SCALE, SEED, domain_context  # noqa: E402

from repro import kernel, plan  # noqa: E402
from repro.core import apriori_discover, brute_force_discover  # noqa: E402
from repro.core.constraints import (  # noqa: E402
    DistanceConstraint,
    SizeConstraint,
)
from repro.workload import (  # noqa: E402
    ScenarioSpec,
    generate_trace,
    record_digests,
    replay_trace,
)

JOBS = 2
#: Best-of-N timing per (point, mode): damps shared-runner noise without
#: hiding real regressions.
REPEATS = 2
#: Adaptive total wall time may exceed the omniscient per-point static
#: optimum by at most this factor (the acceptance bound).
REGRET_CEILING = 1.10
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_planner.json"

#: The mixed grid: (domain, algorithm, k, n, d, mode).  Music's tight
#: d=3 at k=4 is the ~250k-subset heavyweight the paper flags; the film
#: points and the diverse music point are the sub-threshold small end
#: where pool dispatch is pure overhead.
GRID = (
    ("music", "apriori", 4, 14, 3, "tight"),
    ("music", "apriori", 4, 14, 4, "diverse"),
    ("music", "brute-force", 3, 12, 2, "tight"),
    ("film", "apriori", 3, 9, 2, "tight"),
    ("film", "apriori", 2, 6, 2, "tight"),
    ("film", "brute-force", 2, 8, 2, "tight"),
)

#: The bench-mixed trace spec, mirrored from bench_workload.py: the
#: workload whose sharded replay the PR 6 static threshold was tuned on.
TRACE_SPEC = ScenarioSpec(
    name="bench-mixed",
    mutate_rate=0.25,
    burst_length=3,
    structural_rate=0.05,
    relationship_rate=0.5,
    sweep_rate=0.12,
    stats_rate=0.05,
    zipf_exponent=1.2,
    clients=2,
    query_pool=8,
)
TRACE_DOMAIN = "film"
TRACE_OPS = 64


def run_point(context, point):
    """One grid point once; returns (seconds, DiscoveryResult)."""
    _domain, algorithm, k, n, d, mode = point
    size = SizeConstraint(k=k, n=n)
    distance = DistanceConstraint.from_mode(d, mode) if d is not None else None
    start = time.perf_counter()
    if algorithm == "apriori":
        result = apriori_discover(context, size, distance, jobs=JOBS)
    else:
        result = brute_force_discover(context, size, distance, jobs=JOBS)
    return time.perf_counter() - start, result


def run_leg(contexts, mode_name):
    """Every grid point under one forced planner mode, best-of-REPEATS."""
    times = []
    results = []
    before = plan.decision_counts()
    with plan.use_mode(mode_name):
        for point in GRID:
            context = contexts[point[0]]
            best_seconds = None
            result = None
            for _ in range(REPEATS):
                seconds, result = run_point(context, point)
                if best_seconds is None or seconds < best_seconds:
                    best_seconds = seconds
            times.append(best_seconds)
            results.append(result)
    after = plan.decision_counts()
    decisions = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] - before.get(key, 0)
    }
    return times, results, decisions


def replay_leg(trace, mode_name):
    """The bench-mixed trace through the sharded path under one mode."""
    best = None
    for _ in range(REPEATS):
        with plan.use_mode(mode_name):
            result = replay_trace(
                trace, path="sharded", jobs=JOBS, verify_digests=True
            )
        assert not result.digest_mismatches, (
            f"trace digests not reproduced under REPRO_PLAN={mode_name}"
        )
        if best is None or result.seconds < best:
            best = result.seconds
    return best


def check_identity(serial_results, other_results, mode_name):
    """Exact equality + float.hex score identity against the serial leg."""
    mismatches = []
    for point, serial, other in zip(GRID, serial_results, other_results):
        same = serial == other and (
            serial is None
            or float(serial.score).hex() == float(other.score).hex()
        )
        if not same:
            mismatches.append([mode_name, list(point)])
    return mismatches


def run_benchmark():
    contexts = {
        domain: domain_context(domain) for domain in {p[0] for p in GRID}
    }
    for context in contexts.values():
        context.candidate_pool()  # shared precomputation outside timings
    plan.reset_planner()  # cold model: the serial/sharded legs calibrate it
    plan.reset_plan_stats()

    legs = {}
    all_results = {}
    # Order matters: serial and sharded run first and warm the cost
    # model with exactly the observations auto needs.
    for mode_name in ("serial", "sharded", "static", "auto"):
        times, results, decisions = run_leg(contexts, mode_name)
        legs[mode_name] = {
            "point_seconds": [round(s, 6) for s in times],
            "total_seconds": round(sum(times), 6),
            "plan_decisions": decisions,
        }
        all_results[mode_name] = results

    mismatches = []
    for mode_name in ("sharded", "static", "auto"):
        mismatches.extend(
            check_identity(
                all_results["serial"], all_results[mode_name], mode_name
            )
        )

    # Omniscient static baseline: the better of the two pure strategies,
    # chosen per point with hindsight.
    oracle_total = sum(
        min(serial_s, sharded_s)
        for serial_s, sharded_s in zip(
            legs["serial"]["point_seconds"], legs["sharded"]["point_seconds"]
        )
    )
    auto_total = legs["auto"]["total_seconds"]
    regret = auto_total / oracle_total if oracle_total > 0 else float("inf")

    trace = record_digests(
        generate_trace(
            domain=TRACE_DOMAIN,
            scale=SCALE,
            seed=SEED,
            ops=TRACE_OPS,
            scenario=TRACE_SPEC,
        )
    )
    static_trace_seconds = replay_leg(trace, "static")
    auto_trace_seconds = replay_leg(trace, "auto")
    trace_ratio = (
        auto_trace_seconds / static_trace_seconds
        if static_trace_seconds > 0
        else float("inf")
    )

    payload = {
        "benchmark": "planner",
        "jobs": JOBS,
        "repeats": REPEATS,
        "grid": [list(point) for point in GRID],
        "kernel_backend": kernel.backend_name(),
        "dispatch_threshold": kernel.dispatch_threshold(),
        "vetoed_single_core": min(JOBS, plan.usable_cpus()) <= 1,
        "legs": legs,
        "oracle_total_seconds": round(oracle_total, 6),
        "regret": round(regret, 4),
        "regret_ceiling": REGRET_CEILING,
        "regret_met": regret <= REGRET_CEILING,
        "trace": {
            "scenario": TRACE_SPEC.name,
            "domain": TRACE_DOMAIN,
            "ops": TRACE_OPS,
            "static_seconds": round(static_trace_seconds, 6),
            "auto_seconds": round(auto_trace_seconds, 6),
            "auto_over_static": round(trace_ratio, 4),
            "auto_never_loses": trace_ratio <= REGRET_CEILING,
        },
        "plan_stats": plan.plan_stats(),
        "mismatches": mismatches,
        "identical": not mismatches,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert payload["identical"], (
        f"planner modes diverged from the serial oracle at: "
        f"{payload['mismatches']}"
    )
    assert payload["regret_met"], (
        f"adaptive planner regret {payload['regret']:.3f} exceeds "
        f"{payload['regret_ceiling']} vs the omniscient static choice "
        f"({payload['legs']['auto']['total_seconds']:.3f}s vs "
        f"{payload['oracle_total_seconds']:.3f}s over the grid)"
    )
    assert payload["trace"]["auto_never_loses"], (
        f"auto planner lost to the PR 6 static plan on the bench-mixed "
        f"trace: {payload['trace']['auto_seconds']:.3f}s vs "
        f"{payload['trace']['static_seconds']:.3f}s "
        f"({payload['trace']['auto_over_static']:.3f}x)"
    )


def test_planner_regret(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    print(
        f"\nplanner: regret {result['regret']:.3f} "
        f"(ceiling {result['regret_ceiling']}), trace auto/static "
        f"{result['trace']['auto_over_static']:.3f}, identical results "
        f"in every mode"
    )
