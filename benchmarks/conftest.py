"""Shared helpers for the benchmark/experiment suite.

Each bench module reproduces one table or figure of the paper, writes a
deterministic artifact under ``results/`` and asserts the paper's *shape*
(who wins, by roughly what factor) rather than absolute numbers — our
substrate is a scaled synthetic dataset on different hardware.

Heavy inputs (domains, scoring contexts, YPS09 pipelines, user studies)
are cached per process so the suite stays fast.
"""

from __future__ import annotations

import functools
import math

import pytest

from repro.baselines import YPS09Summarizer
from repro.datasets import load_domain, load_schema
from repro.eval import run_user_study
from repro.scoring import ScoringContext

#: Generation parameters shared by every bench (Table 2 scaled by 1000).
SCALE = 1000
SEED = 0

#: The five gold-standard domains (Sec. 6.1.2) in paper order.
GOLD_DOMAINS = ("books", "film", "music", "tv", "people")

#: Efficiency-experiment domains (Fig. 8/9): basketball, architecture, music.
EFFICIENCY_DOMAINS = ("basketball", "architecture", "music")

#: Brute force is only run when the k-subset count stays below this; the
#: paper's C++ brute force ran for ~10^7 ms on the large sweeps, which we
#: document as infeasible rather than burn hours reproducing.
BRUTE_FORCE_SUBSET_LIMIT = 120_000


@functools.lru_cache(maxsize=64)
def domain_graph(domain: str):
    return load_domain(domain, scale=SCALE, seed=SEED)


@functools.lru_cache(maxsize=64)
def domain_schema(domain: str):
    return load_schema(domain, scale=SCALE, seed=SEED)


@functools.lru_cache(maxsize=64)
def domain_context(
    domain: str, key_scorer: str = "coverage", nonkey_scorer: str = "coverage"
) -> ScoringContext:
    return ScoringContext(
        domain_schema(domain),
        domain_graph(domain),
        key_scorer=key_scorer,
        nonkey_scorer=nonkey_scorer,
    )


@functools.lru_cache(maxsize=8)
def yps09_for(domain: str) -> YPS09Summarizer:
    return YPS09Summarizer(domain_graph(domain), domain_schema(domain))


@functools.lru_cache(maxsize=8)
def user_study_for(domain: str, seed: int = 7):
    return run_user_study(domain, scale=SCALE, seed=seed)


def brute_force_feasible(big_k: int, k: int) -> bool:
    return math.comb(big_k, k) <= BRUTE_FORCE_SUBSET_LIMIT


@pytest.fixture(scope="session")
def gold_domains():
    return GOLD_DOMAINS
