"""Fig. 9 — execution time of optimal tight/diverse preview discovery.

Paper panels: domains at k=5,n=10 (d=2 tight / d=4 diverse); k and n
sweeps on music; a d sweep showing the Apriori algorithm degrading when
the distance constraint stops being selective (tight d=6, diverse d=2).

Findings reproduced as shapes:
* Apriori beats the distance-checked brute force by orders of magnitude
  on the larger domains (where brute force is outright infeasible);
* the Apriori lattice grows as the constraint admits more pairs — time
  increases with d for tight previews and decreases with d for diverse.
"""

import pytest
from conftest import EFFICIENCY_DOMAINS, brute_force_feasible, domain_context

from repro.bench import format_table, time_callable, write_result
from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
    brute_force_discover,
)

ROWS = []


def run_point(label, context, k, n, constraint):
    size = SizeConstraint(k=k, n=n)
    apriori = time_callable(
        lambda: apriori_discover(context, size, constraint), label="apriori", runs=3
    )
    big_k = len(context.schema.entity_types())
    if brute_force_feasible(big_k, k):
        bf = time_callable(
            lambda: brute_force_discover(context, size, constraint),
            label="bf",
            runs=3,
        )
        bf_ms = bf.milliseconds
        a = apriori_discover(context, size, constraint)
        b = brute_force_discover(context, size, constraint)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.score == pytest.approx(b.score)
    else:
        bf_ms = None
    ROWS.append([label, k, n, bf_ms, apriori.milliseconds])
    return bf_ms, apriori.milliseconds


def test_fig09_panel_domains(benchmark):
    def run():
        out = {}
        for domain in EFFICIENCY_DOMAINS:
            context = domain_context(domain)
            out[domain, "tight"] = run_point(
                f"{domain} tight d=2", context, 5, 10, DistanceConstraint.tight(2)
            )
            out[domain, "diverse"] = run_point(
                f"{domain} diverse d=4", context, 5, 10, DistanceConstraint.diverse(4)
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Music brute force infeasible; Apriori answers in interactive time.
    assert results["music", "tight"][0] is None
    assert results["music", "tight"][1] < 60_000
    bf_arch, ap_arch = results["architecture", "tight"]
    assert bf_arch is not None
    assert ap_arch <= bf_arch * 1.5  # Apriori at least competitive


def test_fig09_panel_k_sweep(benchmark):
    context = domain_context("music")

    def run():
        return [
            run_point(
                f"music tight k={k}", context, k, 20, DistanceConstraint.tight(2)
            )
            for k in range(3, 8)
        ]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(ap < 60_000 for _bf, ap in points)


def test_fig09_panel_d_sweep(benchmark):
    """The paper's Fig. 9 right-most panels: music, k fixed, d varied."""
    context = domain_context("music")

    def run():
        tight, diverse = [], []
        for d in range(2, 6):
            tight.append(
                run_point(
                    f"music tight d={d}", context, 3, 16, DistanceConstraint.tight(d)
                )[1]
            )
            diverse.append(
                run_point(
                    f"music diverse d={d}",
                    context,
                    3,
                    16,
                    DistanceConstraint.diverse(d),
                )[1]
            )
        return tight, diverse

    tight, diverse = benchmark.pedantic(run, rounds=1, iterations=1)
    # Shape: tight previews get *more* expensive as d grows (constraint
    # admits more pairs), diverse previews cheaper.
    assert tight[-1] >= tight[0], tight
    assert diverse[-1] <= diverse[0], diverse


def test_fig09_write_results(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = format_table(
        ["point", "k", "n", "brute-force ms", "apriori ms"],
        [
            [label, k, n, "infeasible" if bf is None else f"{bf:.1f}", f"{ap:.1f}"]
            for label, k, n, bf, ap in ROWS
        ],
        title="Fig. 9: optimal tight/diverse preview discovery time (3-run average)",
    )
    write_result("fig09_tight_diverse_efficiency.txt", text)
