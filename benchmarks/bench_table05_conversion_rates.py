"""Table 5 — user-study sample sizes and conversion rates (all domains).

Paper: n per approach/domain (40-52 responses) with conversion rates in
the 0.6-0.98 band; no approach collapses, Graph is strong on accuracy.
"""

from conftest import GOLD_DOMAINS, user_study_for

from repro.bench import format_table, write_result
from repro.eval import APPROACHES, PARTICIPANTS


def build_table5():
    return {domain: user_study_for(domain).conversion_rates() for domain in GOLD_DOMAINS}


def test_table05_conversion_rates(benchmark):
    table = benchmark.pedantic(build_table5, rounds=1, iterations=1)

    for domain, rates in table.items():
        for approach in APPROACHES:
            n, rate = rates[approach]
            # Sample sizes reproduce Table 5 exactly: participants x 4.
            assert n == PARTICIPANTS[approach] * 4
            # Conversion in a plausible band (paper: 0.604 .. 0.979).
            assert 0.45 <= rate <= 1.0, (domain, approach, rate)

    rows = []
    for approach in APPROACHES:
        row = [approach]
        for domain in GOLD_DOMAINS:
            n, rate = table[domain][approach]
            row.append(f"n={n} c={rate:.3f}")
        rows.append(row)
    text = format_table(
        ["approach"] + list(GOLD_DOMAINS),
        rows,
        title="Table 5: sample sizes and conversion rates (simulated study)",
    )
    write_result("table05_conversion_rates.txt", text)
