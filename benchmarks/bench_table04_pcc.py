"""Table 4 — PCC of key/non-key scoring against the (simulated) crowd.

Paper: Pearson correlation between pairwise rankings by each measure and
1,000 AMT judgments per domain; coverage/random-walk show at least medium
positive correlation everywhere and beat YPS09 in 4 of 5 domains.

Crowd substitution: Bradley-Terry workers driven by latent log-population
importance (see DESIGN.md); the PCC computation is the paper's Eq. 4.
"""

from conftest import GOLD_DOMAINS, domain_context, domain_schema, yps09_for

from repro.bench import format_table, write_result
from repro.eval import measure_crowd_correlation, run_crowd_study
from repro.eval.crowd import DEFAULT_PAIRS, DEFAULT_WORKERS_PER_PAIR


def key_rankings(domain):
    coverage = [t for t, _ in domain_context(domain, "coverage").ranked_key_types()]
    walk = [t for t, _ in domain_context(domain, "random_walk").ranked_key_types()]
    yps = yps09_for(domain).ranked_types()
    return {"coverage": coverage, "random_walk": walk, "yps09": yps}


def nonkey_ranking(domain, scorer):
    """A global non-key attribute ranking: candidates of top types."""
    context = domain_context(domain, "coverage", scorer)
    ranked = []
    for type_name, _score in context.ranked_key_types()[:10]:
        for attr, score in context.sorted_candidates(type_name):
            ranked.append(((type_name, attr.name), score))
    ranked.sort(key=lambda item: -item[1])
    return [key for key, _ in ranked]


def build_table4():
    rows = {}
    for domain in GOLD_DOMAINS:
        schema = domain_schema(domain)
        populations = {t: schema.entity_count(t) for t in schema.entity_types()}
        study = run_crowd_study(populations, seed=11)
        rankings = key_rankings(domain)
        rows[domain] = {
            "YPS09": measure_crowd_correlation(study, rankings["yps09"]),
            "Coverage": measure_crowd_correlation(study, rankings["coverage"]),
            "Random Walk": measure_crowd_correlation(study, rankings["random_walk"]),
        }
    return rows


def test_table04_pcc(benchmark):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)

    for domain, cells in rows.items():
        # Shape: our measures show positive correlation everywhere
        # (paper: at least medium positive, >= 0.25 after noise).
        assert cells["Coverage"] > 0.25, (domain, cells)
        assert cells["Random Walk"] > 0.1, (domain, cells)
    # Shape: coverage and/or random walk beat YPS09 in >= 3 of 5 domains.
    wins = sum(
        1
        for cells in rows.values()
        if max(cells["Coverage"], cells["Random Walk"]) > cells["YPS09"]
    )
    assert wins >= 3, rows

    text = format_table(
        ["domain", "YPS09", "Coverage", "Random Walk"],
        [
            [
                domain,
                f"{cells['YPS09']:.3f}",
                f"{cells['Coverage']:.3f}",
                f"{cells['Random Walk']:.3f}",
            ]
            for domain, cells in rows.items()
        ],
        title=(
            "Table 4: PCC of key attribute scoring vs. simulated crowd "
            f"({DEFAULT_PAIRS} pairs x {DEFAULT_WORKERS_PER_PAIR} workers)"
        ),
    )
    write_result("table04_pcc.txt", text)
