"""Ablation — Apriori-style vs. Bron-Kerbosch clique backends in Alg. 3.

The paper cites Kose et al.'s result that the Apriori-style enumeration
beats Bron-Kerbosch for their k-clique workloads; Alg. 3 explicitly
allows plugging in any enumerator.  This bench times both backends on the
music domain under tight and diverse constraints and verifies identical
optima.
"""

import pytest
from conftest import domain_context

from repro.bench import format_table, time_callable, write_result
from repro.core import DistanceConstraint, SizeConstraint, apriori_discover

POINTS = (
    ("tight", 2, 4),
    ("tight", 3, 4),
    ("diverse", 4, 4),
    ("diverse", 5, 4),
)


def build_ablation():
    context = domain_context("music")
    rows = []
    for mode, d, k in POINTS:
        constraint = (
            DistanceConstraint.tight(d)
            if mode == "tight"
            else DistanceConstraint.diverse(d)
        )
        size = SizeConstraint(k=k, n=10)
        results = {}
        timings = {}
        for backend in ("apriori", "bron-kerbosch"):
            timings[backend] = time_callable(
                lambda b=backend: apriori_discover(
                    context, size, constraint, clique_backend=b
                ),
                label=backend,
                runs=3,
            ).milliseconds
            results[backend] = apriori_discover(
                context, size, constraint, clique_backend=backend
            )
        rows.append((mode, d, k, timings, results))
    return rows


def test_ablation_clique_backend(benchmark):
    rows = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    for mode, d, k, timings, results in rows:
        a, b = results["apriori"], results["bron-kerbosch"]
        assert (a is None) == (b is None)
        if a is not None:
            assert a.score == pytest.approx(b.score)

    text = format_table(
        ["mode", "d", "k", "apriori ms", "bron-kerbosch ms"],
        [
            [mode, d, k, f"{t['apriori']:.1f}", f"{t['bron-kerbosch']:.1f}"]
            for mode, d, k, t, _r in rows
        ],
        title="Ablation: clique-enumeration backend inside Alg. 3 (music)",
    )
    write_result("ablation_clique_backend.txt", text)
