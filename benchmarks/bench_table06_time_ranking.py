"""Table 6 — approaches sorted by median existence-test time, per domain.

Paper: Tight needs the least time in 3 of 5 domains (second in a fourth);
Freebase does well; YPS09 and Graph are the least convenient.
"""

from conftest import GOLD_DOMAINS, user_study_for

from repro.bench import format_table, write_result


def build_table6():
    return {
        domain: (
            user_study_for(domain).time_ranking(),
            user_study_for(domain).median_times(),
        )
        for domain in GOLD_DOMAINS
    }


def test_table06_time_ranking(benchmark):
    table = benchmark.pedantic(build_table6, rounds=1, iterations=1)

    tight_top2 = sum(
        1 for ranking, _times in table.values() if ranking.index("Tight") <= 1
    )
    assert tight_top2 >= 3, {d: r for d, (r, _t) in table.items()}
    graph_bottom = sum(
        1 for ranking, _times in table.values() if ranking.index("Graph") >= 4
    )
    assert graph_bottom >= 3

    rows = [
        [domain] + ranking for domain, (ranking, _times) in table.items()
    ]
    text = format_table(
        ["domain"] + [str(i) for i in range(1, 8)],
        rows,
        title="Table 6: approaches by ascending median existence-test time",
    )
    times_rows = [
        [domain]
        + [f"{times[a]:.1f}s" for a in sorted(times, key=times.get)]
        for domain, (_ranking, times) in table.items()
    ]
    text += "\n\n" + format_table(
        ["domain"] + [str(i) for i in range(1, 8)],
        times_rows,
        title="median seconds per question (sorted)",
    )
    write_result("table06_time_ranking.txt", text)
