"""Tables 7 and 13-16 — pairwise z-tests of conversion rates, all domains.

Paper: two-proportion one-tailed z-tests at α=0.1 per domain ("music" is
Table 7; books/film/TV/people are Tables 13-16).  Outcomes are diverse
across domains; the full matrices are written to the results file.
"""

from conftest import GOLD_DOMAINS, user_study_for

from repro.bench import write_result

TABLE_IDS = {"music": "7", "books": "13", "film": "14", "tv": "15", "people": "16"}


def build_matrices():
    return {domain: user_study_for(domain).pairwise_z_tests() for domain in GOLD_DOMAINS}


def test_tables_07_13_16_pairwise_ztests(benchmark):
    matrices = benchmark.pedantic(build_matrices, rounds=1, iterations=1)

    lines = []
    any_significant = 0
    for domain in GOLD_DOMAINS:
        tests = matrices[domain]
        assert len(tests) == 21
        lines.append(
            f"\nTable {TABLE_IDS[domain]} (domain={domain}): "
            "z-score / one-tailed p-value, alpha=0.1"
        )
        for (a, b), result in tests.items():
            marker = ""
            if result.significant:
                any_significant += 1
                winner = a if result.winner == "A" else b
                marker = f"  ** {winner} better"
            lines.append(
                f"  {a:8s} vs {b:8s}: z={result.z:+.2f} p={result.p_value:.4f}"
                f"{marker}"
            )
            # Internal consistency: z sign matches rate ordering.
            if result.z > 0:
                assert result.rate_a >= result.rate_b
            elif result.z < 0:
                assert result.rate_a <= result.rate_b
    # Across 105 comparisons some differences must be significant (the
    # paper finds many), but not all (sample sizes are small).
    assert 5 <= any_significant <= 100

    write_result(
        "table07_13_16_pairwise_ztests.txt",
        "Tables 7/13-16: pairwise conversion-rate z-tests\n" + "\n".join(lines),
    )
