"""Workload benchmark — per-path replay throughput on a common trace.

One deterministic mixed read/write trace (Zipf-skewed hot queries over
the film domain, interleaved mutation bursts) is replayed through every
execution path by the differential oracle, which simultaneously proves
the payloads bit-identical and measures per-path wall time.  The
recorded ops/sec are the numbers the four subsystems can be regressed
against: the serial path prices a from-scratch rebuild per read, the
incremental path shows what the delta pipeline and memo caches save,
the sharded path adds the process-pool round trip, and the serve path
adds the full socket/protocol stack (response cache included).

Required: all paths bit-identical, recorded digests reproduced, and the
warm incremental path at least ``SPEEDUP_FLOOR``x the ops/sec of the
from-scratch serial oracle (the hot-query regime is exactly what the
engine's memo exists for).

The record lands in ``BENCH_workload.json`` at the repo root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_workload.py``) or
through pytest (``pytest benchmarks/bench_workload.py``).
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import SCALE, SEED  # noqa: E402

from repro import kernel, plan  # noqa: E402
from repro.workload import (  # noqa: E402
    ScenarioSpec,
    format_report,
    generate_trace,
    record_digests,
    run_conformance,
)

DOMAIN = "film"
OPS = 64
#: The benchmark scenario: hot-query dominated with real write pressure.
SPEC = ScenarioSpec(
    name="bench-mixed",
    mutate_rate=0.25,
    burst_length=3,
    structural_rate=0.05,
    relationship_rate=0.5,
    sweep_rate=0.12,
    stats_rate=0.05,
    zipf_exponent=1.2,
    clients=2,
    query_pool=8,
)
JOBS = 2
#: Required incremental-over-serial replay throughput ratio.
SPEEDUP_FLOOR = 1.2
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_workload.json"


def run_benchmark():
    trace = generate_trace(
        domain=DOMAIN, scale=SCALE, seed=SEED, ops=OPS, scenario=SPEC
    )
    trace = record_digests(trace)
    plan_before = plan.decision_counts()
    report = run_conformance(trace, jobs=JOBS)
    plan_after = plan.decision_counts()
    plan_decisions = {
        key: plan_after[key] - plan_before.get(key, 0)
        for key in plan_after
        if plan_after[key] - plan_before.get(key, 0)
    }

    paths = {
        path: {
            "ops_per_sec": stats["ops_per_sec"],
            "seconds": stats["seconds"],
        }
        for path, stats in report["paths"].items()
    }
    speedup = (
        paths["incremental"]["ops_per_sec"] / paths["serial"]["ops_per_sec"]
        if paths["serial"]["ops_per_sec"] > 0
        else float("inf")
    )
    payload = {
        "benchmark": "workload",
        "domain": DOMAIN,
        "scale": SCALE,
        "seed": SEED,
        "ops": OPS,
        "reads": trace.read_count,
        "mutations": trace.mutation_count,
        "scenario": trace.scenario,
        "jobs": JOBS,
        "kernel_backend": kernel.backend_name(),
        "dispatch_threshold": kernel.dispatch_threshold(),
        "plan_mode": plan.plan_mode(),
        "plan_decisions": plan_decisions,
        "paths": paths,
        "identical": report["identical"],
        "first_divergence": report["first_divergence"],
        "recorded_digests_ok": report["recorded_digests"]["ok"],
        "incremental_over_serial": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_met": speedup >= SPEEDUP_FLOOR,
        "report": format_report(report),
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert payload["identical"], (
        f"replay paths diverged: {payload['first_divergence']}"
    )
    assert payload["recorded_digests_ok"], "recorded digests not reproduced"
    assert payload["speedup_met"], (
        f"warm incremental replay only {payload['incremental_over_serial']:.2f}x "
        f"the serial from-scratch oracle (floor {payload['speedup_floor']}x): "
        f"{payload['paths']['incremental']['ops_per_sec']:.1f} vs "
        f"{payload['paths']['serial']['ops_per_sec']:.1f} ops/s"
    )


def test_workload_conformance_throughput(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(result["report"])
    check(result)
    print(
        f"\nconformance on {result['ops']} ops ({result['reads']} reads, "
        f"{result['mutations']} mutations): all paths bit-identical; "
        f"incremental {result['incremental_over_serial']:.1f}x serial "
        f"(floor {result['speedup_floor']}x)"
    )
