"""Engine sweep benchmark — PreviewEngine vs a naive per-call loop.

Runs a Fig. 9-style ``(k, n, d)`` grid on the music domain (the largest
efficiency-experiment domain) two ways:

* **naive** — one :func:`repro.core.discover_preview` call per grid
  point, the way the seed code ran parameter sweeps: every point
  re-enumerates the Apriori compatibility cliques and re-allocates
  attributes for every qualifying subset;
* **engine** — one :meth:`repro.engine.PreviewEngine.sweep` over the
  same grid: clique subsets and per-subset allocation profiles are
  computed once per ``(k, d, mode)`` group and every ``n`` along the
  sweep is answered from cached prefix scores.

Asserts the two produce *identical* results at every point and that the
engine is at least 2x faster, then records wall-times to
``BENCH_engine_sweep.json`` at the repo root so later changes can track
the perf trajectory.

Run directly (``PYTHONPATH=src python benchmarks/bench_engine_sweep.py``)
or through pytest (``pytest benchmarks/bench_engine_sweep.py``).
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import domain_context  # noqa: E402

from repro.engine import PreviewEngine, PreviewQuery  # noqa: E402
from repro.exceptions import InfeasiblePreviewError  # noqa: E402

DOMAIN = "music"
KS = (3, 4, 5)
NS = (8, 10, 12, 14, 16)
#: The Fig. 9 domain-panel constraints (tight d=2, diverse d=4).  Wider
#: tight radii blow up the clique lattice (~80 s per point at d=3, k=5 —
#: the paper's own finding) and would make the benchmark impractical.
DISTANCES = ((2, "tight"), (4, "diverse"))
#: Required speedup of the engine sweep over the naive loop.
SPEEDUP_FLOOR = 2.0
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_engine_sweep.json"


def build_grid():
    return list(PreviewQuery.grid(ks=KS, ns=NS, distances=DISTANCES))


def run_naive(context, queries):
    """Per-call facade loop: no state shared beyond the scoring context."""
    from repro.core import discover_preview

    results = []
    for query in queries:
        try:
            results.append(
                discover_preview(
                    context,
                    k=query.k,
                    n=query.n,
                    d=query.d,
                    mode=query.mode,
                    algorithm=query.algorithm,
                )
            )
        except InfeasiblePreviewError:
            results.append(None)
    return results


def run_engine(context, queries):
    """Fresh engine per run (cold caches), one sweep over the grid."""
    engine = PreviewEngine(context)
    return engine.sweep(queries, skip_infeasible=True), engine


def time_runs(fn, runs=3):
    """Best-of-N wall time in milliseconds plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(runs):
        start = time.perf_counter()
        value = fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best, value


def run_benchmark():
    context = domain_context(DOMAIN)
    context.candidate_pool()  # shared precomputation outside both timings
    queries = build_grid()

    naive_ms, naive_results = time_runs(lambda: run_naive(context, queries))
    engine_ms, (engine_results, engine) = time_runs(
        lambda: run_engine(context, queries)
    )

    mismatches = []
    for query, naive, cached in zip(queries, naive_results, engine_results):
        if naive is None or cached is None:
            if (naive is None) != (cached is None):
                mismatches.append(query.describe())
            continue
        if (
            naive.preview != cached.preview
            or naive.score != cached.score
            or naive.algorithm != cached.algorithm
            or naive.candidates_examined != cached.candidates_examined
        ):
            mismatches.append(query.describe())

    speedup = naive_ms / engine_ms if engine_ms > 0 else float("inf")
    payload = {
        "benchmark": "engine_sweep",
        "domain": DOMAIN,
        "grid": {
            "ks": list(KS),
            "ns": list(NS),
            "distances": [list(spec) for spec in DISTANCES],
        },
        "points": len(queries),
        "feasible_points": sum(1 for r in naive_results if r is not None),
        "naive_ms": round(naive_ms, 3),
        "engine_ms": round(engine_ms, 3),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "identical": not mismatches,
        "mismatches": mismatches,
        "engine_cache": engine.cache_info(),
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert payload["identical"], (
        "engine sweep diverged from per-call discovery at: "
        f"{payload['mismatches']}"
    )
    assert payload["speedup"] >= SPEEDUP_FLOOR, (
        f"engine sweep only {payload['speedup']:.2f}x faster than the naive "
        f"loop (floor {SPEEDUP_FLOOR}x): naive {payload['naive_ms']:.1f} ms, "
        f"engine {payload['engine_ms']:.1f} ms"
    )


def test_engine_sweep(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    print(
        f"\nengine sweep: {result['points']} points, "
        f"{result['speedup']:.2f}x faster than the naive loop "
        f"(recorded to {RESULT_FILE.name})"
    )
