"""Binary store benchmark — O(header) cold opens vs domain regeneration.

The seed's only way to get a serving-ready graph was to regenerate it:
every serve host, replica and workload replay re-ran the Freebase-like
generator (O(entities) of sampling and wiring) before answering its
first request.  The persistent binary store (``docs/disk-store.md``)
amortizes that once: ``build_store`` serializes the graph, and
``open_store`` maps it back with a fixed-cost header read — the data
sections fault in lazily, so opening is O(header) however large the
graph is.

Two scales of the architecture domain (the efficiency-experiment domain
whose generator is the most expensive per entity), each measured over
``ROUNDS`` rounds:

* **open** — ``open_store`` + header introspection (name, counts,
  fingerprint).  Must beat regeneration by ``OPEN_SPEEDUP_FLOOR``× at
  the largest scale, and must grow *sub-linearly* between scales (the
  whole point of a fixed-size header: the graph grows, the open does
  not proportionally).
* **materialize** — ``open_store`` + ``entity_graph()`` (fingerprint
  verified), the full cold-start a serve host pays.
* **regenerate** — ``generate_domain``, the seed behavior.

Identity is asserted the strict way: the flagship tight query answers
with byte-identical ``float.hex`` scores and equal serialized payloads
on the regenerated and the store-materialized graph.

Wall times land in ``BENCH_store.json`` at the repo root.  Run directly
(``PYTHONPATH=src python benchmarks/bench_store.py``) or through pytest
(``pytest benchmarks/bench_store.py``).
"""

import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import SEED  # noqa: E402

from repro.core.serialize import result_to_dict  # noqa: E402
from repro.datasets import generate_domain  # noqa: E402
from repro.datasets.loader import graph_fingerprint  # noqa: E402
from repro.engine import PreviewEngine  # noqa: E402
from repro.store import STORE_EXTENSION, build_store, open_store  # noqa: E402

DOMAIN = "architecture"
#: Downscale factors, largest graph last (smaller factor = more entities).
SCALES = (1000, 250)
#: Flagship identity query (tight d=2 at k=3 — profiles, merges, ties).
K, N, D, MODE = 3, 8, 2, "tight"
#: Required regenerate-over-open advantage at the largest scale.
OPEN_SPEEDUP_FLOOR = 10.0
#: Timing rounds per leg (minimum taken: opens are microsecond-scale and
#: any scheduler blip would otherwise dominate them).
ROUNDS = 5
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_store.json"


def _best_ms(fn, rounds=ROUNDS) -> float:
    """Minimum wall milliseconds of ``fn`` over ``rounds`` runs."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


def _measure_scale(scale: int, directory: Path) -> dict:
    graph = generate_domain(DOMAIN, scale=scale, seed=SEED)
    path = directory / f"{DOMAIN}-{scale}{STORE_EXTENSION}"
    start = time.perf_counter()
    size = build_store(graph, path)
    build_ms = (time.perf_counter() - start) * 1000.0

    def open_header():
        with open_store(path) as store:
            # The realistic O(header) surface: identity + counts.
            assert store.name == DOMAIN
            assert store.entity_count > 0
            assert store.fingerprint.startswith("sha256:")

    def materialize():
        with open_store(path) as store:
            store.entity_graph(verify=True)

    def regenerate():
        generate_domain(DOMAIN, scale=scale, seed=SEED)

    open_ms = _best_ms(open_header)
    materialize_ms = _best_ms(materialize, rounds=2)
    regenerate_ms = _best_ms(regenerate, rounds=2)

    with open_store(path) as store:
        reopened = store.entity_graph(verify=True)
    reference = PreviewEngine(graph).query(k=K, n=N, d=D, mode=MODE)
    result = PreviewEngine(reopened).query(k=K, n=N, d=D, mode=MODE)
    return {
        "scale": scale,
        "entities": len(list(graph.entities())),
        "relationships": len(list(graph.relationships())),
        "store_bytes": size,
        "build_ms": round(build_ms, 3),
        "open_ms": round(open_ms, 4),
        "materialize_ms": round(materialize_ms, 3),
        "regenerate_ms": round(regenerate_ms, 3),
        "open_speedup": round(regenerate_ms / open_ms, 1)
        if open_ms > 0
        else float("inf"),
        "fingerprint_identical": (
            graph_fingerprint(reopened) == graph_fingerprint(graph)
        ),
        "score_hex": result.score.hex(),
        "score_hex_identical": result.score.hex() == reference.score.hex(),
        "payload_identical": result_to_dict(result) == result_to_dict(reference),
    }


def run_benchmark():
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        scales = [_measure_scale(scale, Path(tmp)) for scale in SCALES]
    smallest, largest = scales[0], scales[-1]
    growth = {
        "entity_ratio": round(largest["entities"] / smallest["entities"], 2),
        "open_ratio": round(largest["open_ms"] / smallest["open_ms"], 2)
        if smallest["open_ms"] > 0
        else 0.0,
    }
    growth["sublinear"] = growth["open_ratio"] < growth["entity_ratio"]
    payload = {
        "benchmark": "disk_store",
        "domain": DOMAIN,
        "point": [K, N, D, MODE],
        "rounds": ROUNDS,
        "open_speedup_floor": OPEN_SPEEDUP_FLOOR,
        "scales": scales,
        "open_growth": growth,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    for entry in payload["scales"]:
        assert entry["fingerprint_identical"], (
            f"scale {entry['scale']}: reopened graph fingerprint drifted"
        )
        assert entry["score_hex_identical"] and entry["payload_identical"], (
            f"scale {entry['scale']}: store-materialized graph answered the "
            f"flagship query differently (score {entry['score_hex']})"
        )
    largest = payload["scales"][-1]
    assert largest["open_speedup"] >= payload["open_speedup_floor"], (
        f"cold open only {largest['open_speedup']:.1f}x faster than "
        f"regeneration at scale {largest['scale']} "
        f"(floor {payload['open_speedup_floor']}x): open "
        f"{largest['open_ms']:.2f} ms vs regenerate "
        f"{largest['regenerate_ms']:.0f} ms"
    )
    growth = payload["open_growth"]
    assert growth["sublinear"], (
        f"open time grew {growth['open_ratio']}x while the graph grew "
        f"{growth['entity_ratio']}x — the header is no longer O(1)"
    )


def test_disk_store_bench(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    largest = result["scales"][-1]
    print(
        f"{DOMAIN} scale {largest['scale']}: open {largest['open_ms']:.2f} ms "
        f"vs regenerate {largest['regenerate_ms']:.0f} ms "
        f"({largest['open_speedup']:.0f}x), open growth "
        f"{result['open_growth']['open_ratio']}x for "
        f"{result['open_growth']['entity_ratio']}x more entities; payloads "
        "bit-identical"
    )
