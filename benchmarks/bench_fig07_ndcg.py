"""Fig. 7 — nDCG of key attribute scoring, K = 1..20.

Paper: clearly higher nDCG for coverage/random-walk than YPS09 in 4 of 5
domains.
"""

from conftest import GOLD_DOMAINS, domain_context, yps09_for

from repro.bench import format_series, write_result
from repro.datasets import gold_key_attributes
from repro.eval import ndcg_curve

MAX_K = 20


def build_fig7():
    curves = {}
    for domain in GOLD_DOMAINS:
        gold = set(gold_key_attributes(domain))
        coverage = [t for t, _ in domain_context(domain, "coverage").ranked_key_types()]
        walk = [t for t, _ in domain_context(domain, "random_walk").ranked_key_types()]
        yps = yps09_for(domain).ranked_types()
        curves[domain] = {
            "Coverage": ndcg_curve(coverage, gold, MAX_K),
            "Random Walk": ndcg_curve(walk, gold, MAX_K),
            "YPS09": ndcg_curve(yps, gold, MAX_K),
            "Optimal": [1.0] * MAX_K,
        }
    return curves


def test_fig07_ndcg(benchmark):
    curves = benchmark.pedantic(build_fig7, rounds=1, iterations=1)

    wins = 0
    for domain, series in curves.items():
        for name in ("Coverage", "Random Walk", "YPS09"):
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in series[name])
        if series["Coverage"][-1] >= series["YPS09"][-1]:
            wins += 1
    assert wins >= 3, "coverage should reach higher nDCG@20 than YPS09 mostly"

    lines = ["Fig. 7: nDCG of key attribute scoring (K=1..20)"]
    for domain, series in curves.items():
        lines.append(f"\n[{domain}]")
        for name in ("Coverage", "Random Walk", "YPS09", "Optimal"):
            lines.append(
                format_series(name, range(1, MAX_K + 1), series[name], precision=2)
            )
    write_result("fig07_ndcg.txt", "\n".join(lines))
