"""Ablation — all four key x non-key scorer combinations, every domain.

Generalizes Table 11: runs concise discovery (k=5, n=10) under each of
the 2x2 scorer combinations on all gold domains and reports the chosen
key attributes plus their overlap with the gold standard.  The design
question this probes: how much do the chosen previews actually depend on
the scoring measure (the paper's Sec. 3 argues any monotonic measure
plugs in)?
"""

from conftest import GOLD_DOMAINS, domain_context

from repro.bench import format_table, write_result
from repro.core import SizeConstraint, dynamic_programming_discover
from repro.datasets import gold_key_attributes

COMBOS = (
    ("coverage", "coverage"),
    ("coverage", "entropy"),
    ("random_walk", "coverage"),
    ("random_walk", "entropy"),
)


def build_ablation():
    out = {}
    for domain in GOLD_DOMAINS:
        gold = set(gold_key_attributes(domain))
        for key_scorer, nonkey_scorer in COMBOS:
            context = domain_context(domain, key_scorer, nonkey_scorer)
            result = dynamic_programming_discover(context, SizeConstraint(k=5, n=10))
            keys = set(result.preview.keys())
            out[domain, key_scorer, nonkey_scorer] = (
                result.score,
                sorted(keys),
                len(keys & gold),
            )
    return out


def test_ablation_scoring_combos(benchmark):
    results = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    rows = []
    for (domain, ks, nks), (score, keys, gold_hits) in results.items():
        assert len(keys) == 5
        rows.append([domain, ks, nks, f"{score:.4g}", gold_hits, ", ".join(keys)])
    # Coverage-keyed previews recover gold types broadly (>= 3 of 5 keys
    # on average across domains).
    coverage_hits = [
        gold_hits
        for (domain, ks, _nks), (_s, _k, gold_hits) in results.items()
        if ks == "coverage"
    ]
    assert sum(coverage_hits) / len(coverage_hits) >= 3.0

    text = format_table(
        ["domain", "key scorer", "non-key scorer", "score", "gold keys", "keys"],
        rows,
        title="Ablation: scorer combinations (k=5, n=10)",
    )
    write_result("ablation_scoring_combos.txt", text)
