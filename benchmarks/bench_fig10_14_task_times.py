"""Figs. 10-14 — time-per-task distributions per approach and domain.

Paper: per-domain boxplots of seconds per existence-test question.  We
emit five-number summaries per approach per domain and check the ordering
shape (Tight fast, Graph/YPS09 slow).
"""

import statistics

from conftest import GOLD_DOMAINS, user_study_for

from repro.bench import format_table, write_result
from repro.eval import APPROACHES


def five_number(values):
    values = sorted(values)
    n = len(values)
    return (
        values[0],
        values[n // 4],
        statistics.median(values),
        values[(3 * n) // 4],
        values[-1],
    )


def build_figures():
    out = {}
    for domain in GOLD_DOMAINS:
        result = user_study_for(domain)
        out[domain] = {
            approach: five_number(result.outcomes[approach].times)
            for approach in APPROACHES
        }
    return out


def test_fig10_14_task_times(benchmark):
    summaries = benchmark.pedantic(build_figures, rounds=1, iterations=1)

    fast_wins = 0
    for domain, per_approach in summaries.items():
        medians = {a: s[2] for a, s in per_approach.items()}
        if medians["Tight"] < medians["Graph"]:
            fast_wins += 1
        # Sanity: all quartiles ordered.
        for approach, summary in per_approach.items():
            lo, q1, med, q3, hi = summary
            assert lo <= q1 <= med <= q3 <= hi
    assert fast_wins >= 4, "Tight should beat Graph on median time"

    blocks = []
    for domain, per_approach in summaries.items():
        rows = [
            [a] + [f"{v:.1f}" for v in per_approach[a]] for a in APPROACHES
        ]
        blocks.append(
            format_table(
                ["approach", "min", "q1", "median", "q3", "max"],
                rows,
                title=f"Figs. 10-14: seconds per existence test, domain={domain}",
            )
        )
    write_result("fig10_14_task_times.txt", "\n\n".join(blocks))
