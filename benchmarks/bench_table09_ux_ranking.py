"""Tables 8 and 9 — UX questionnaire and cross-domain perception ranking.

Table 8 defines the four Likert questions (encoded in
:mod:`repro.eval.likert`); Table 9 sorts the seven approaches by average
score per question across all five domains.  The paper's headline is the
*mismatch* between perception and efficacy: Graph/YPS09 lead perceived
understanding (Q2/Q3) while Tight — objectively fastest — ranks last on
readability (Q1).
"""

from conftest import GOLD_DOMAINS, user_study_for

from repro.bench import format_table, write_result
from repro.eval import APPROACHES, QUESTIONS, cross_domain_likert_ranking
from repro.eval.likert import QUESTION_KEYS


def build_table9():
    results = [user_study_for(domain) for domain in GOLD_DOMAINS]
    return cross_domain_likert_ranking(results)


def test_table09_ux_ranking(benchmark):
    rankings = benchmark.pedantic(build_table9, rounds=1, iterations=1)

    for question, ranking in rankings.items():
        assert sorted(ranking) == sorted(APPROACHES)
    # The perception/efficacy mismatch (paper Sec. 6.3.2):
    # Graph leads perceived understanding...
    assert rankings["Q2"].index("Graph") <= 1
    # ...while Tight — the objectively fastest approach — is perceived
    # as hard to read.
    assert rankings["Q1"].index("Tight") >= 4
    # YPS09 is perceived as the most complete (Q4) despite its width.
    assert rankings["Q4"].index("YPS09") <= 1

    rows = [
        [question] + rankings[question] for question in QUESTION_KEYS
    ]
    text = format_table(
        ["question"] + [str(i) for i in range(1, 8)],
        rows,
        title="Table 9: approaches by descending average UX score (5 domains)",
    )
    text += "\n\nTable 8 questionnaire:\n" + "\n".join(QUESTIONS)
    write_result("table09_ux_ranking.txt", text)
