"""Fig. 6 — Average Precision of key attribute scoring, K = 1..20.

Paper: significantly higher AvgP for coverage/random-walk than YPS09 in 4
of 5 domains.
"""

from conftest import GOLD_DOMAINS, domain_context, yps09_for

from repro.bench import format_series, write_result
from repro.datasets import gold_key_attributes
from repro.eval import average_precision_curve, optimal_average_precision

MAX_K = 20


def build_fig6():
    curves = {}
    for domain in GOLD_DOMAINS:
        gold = set(gold_key_attributes(domain))
        coverage = [t for t, _ in domain_context(domain, "coverage").ranked_key_types()]
        walk = [t for t, _ in domain_context(domain, "random_walk").ranked_key_types()]
        yps = yps09_for(domain).ranked_types()
        curves[domain] = {
            "Coverage": average_precision_curve(coverage, gold, MAX_K),
            "Random Walk": average_precision_curve(walk, gold, MAX_K),
            "YPS09": average_precision_curve(yps, gold, MAX_K),
            "Optimal": [
                optimal_average_precision(len(gold), k) for k in range(1, MAX_K + 1)
            ],
        }
    return curves


def test_fig06_average_precision(benchmark):
    curves = benchmark.pedantic(build_fig6, rounds=1, iterations=1)

    wins = 0
    for domain, series in curves.items():
        assert all(v <= 1.0 + 1e-9 for v in series["Coverage"])
        # AvgP curves are monotone non-decreasing in K.
        for name in ("Coverage", "Random Walk", "YPS09", "Optimal"):
            values = series[name]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        if series["Coverage"][-1] >= series["YPS09"][-1]:
            wins += 1
    assert wins >= 3, "coverage should reach higher AvgP@20 than YPS09 mostly"

    lines = ["Fig. 6: Average Precision of key attribute scoring (K=1..20)"]
    for domain, series in curves.items():
        lines.append(f"\n[{domain}]")
        for name in ("Coverage", "Random Walk", "YPS09", "Optimal"):
            lines.append(
                format_series(name, range(1, MAX_K + 1), series[name], precision=2)
            )
    write_result("fig06_average_precision.txt", "\n".join(lines))
