"""Fig. 8 — execution time of optimal *concise* preview discovery.

Paper panels: (a) domains basketball/architecture/music at k=5, n=10;
(b) k = 3..9 on music with n=20; (c) n = 8..20 on music with k=6.
Finding: the DP beats brute force by orders of magnitude except on the
smallest domain / smallest k, where data-structure overheads dominate.

Brute force is only run while the k-subset count stays under the
feasibility limit (the paper's C++ brute force itself climbs to ~10^7 ms);
skipped points are recorded as such in the results file — the skip *is*
the paper's finding at those sizes.
"""

import pytest
from conftest import (
    EFFICIENCY_DOMAINS,
    brute_force_feasible,
    domain_context,
)

from repro.bench import format_table, time_callable, write_result
from repro.core import (
    SizeConstraint,
    brute_force_discover,
    dynamic_programming_discover,
)

ROWS = []


def run_point(label, context, k, n):
    size = SizeConstraint(k=k, n=n)
    dp = time_callable(
        lambda: dynamic_programming_discover(context, size), label="dp", runs=3
    )
    big_k = len(context.schema.entity_types())
    if brute_force_feasible(big_k, k):
        bf = time_callable(
            lambda: brute_force_discover(context, size), label="bf", runs=3
        )
        bf_ms = bf.milliseconds
        # Exactness cross-check while we are here.
        a = dynamic_programming_discover(context, size)
        b = brute_force_discover(context, size)
        assert a.score == pytest.approx(b.score)
    else:
        bf_ms = None
    ROWS.append([label, k, n, bf_ms, dp.milliseconds])
    return bf_ms, dp.milliseconds


def test_fig08_panel_domains(benchmark):
    def run():
        out = {}
        for domain in EFFICIENCY_DOMAINS:
            context = domain_context(domain)
            out[domain] = run_point(f"domain={domain}", context, k=5, n=10)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bf_arch, dp_arch = results["architecture"]
    # Shape: on the mid-size domain the DP wins by a wide margin.
    assert bf_arch is not None and bf_arch > dp_arch
    # Music brute force is infeasible (C(69,5) ~ 1.1e7 subsets).
    assert results["music"][0] is None


def test_fig08_panel_k_sweep(benchmark):
    context = domain_context("music")

    def run():
        return [run_point(f"music k={k}", context, k=k, n=20) for k in range(3, 10)]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    dp_times = [dp for _bf, dp in points]
    # DP stays in interactive territory across the whole sweep.
    assert max(dp_times) < 10_000, dp_times
    # Brute force is feasible only for the smallest k (the blow-up *is*
    # the result).
    feasible = [bf for bf, _dp in points if bf is not None]
    assert len(feasible) <= 2


def test_fig08_panel_n_sweep(benchmark):
    context = domain_context("music")

    def run():
        return [run_point(f"music n={n}", context, k=6, n=n) for n in range(8, 21, 4)]

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    for bf_ms, _dp_ms in points:
        assert bf_ms is None  # C(69,6) is far beyond the brute-force limit


def test_fig08_write_results(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = format_table(
        ["point", "k", "n", "brute-force ms", "dp ms"],
        [
            [label, k, n, "infeasible" if bf is None else f"{bf:.1f}", f"{dp:.1f}"]
            for label, k, n, bf, dp in ROWS
        ],
        title="Fig. 8: optimal concise preview discovery time (3-run average)",
    )
    write_result("fig08_concise_efficiency.txt", text)
