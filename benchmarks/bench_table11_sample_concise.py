"""Table 11 — sample optimal concise previews, three scorer combinations.

Paper: film with coverage/coverage, music with random-walk/coverage, TV
with random-walk/entropy, all at k=5, n=10.  Shape reproduced: the
previews centre on the domains' hub types (FILM and friends; the
recording/release cluster in music; the episode cluster in TV).
"""

from conftest import domain_context

from repro.bench import write_result
from repro.core import SizeConstraint, dynamic_programming_discover
from repro.core.render import render_preview

COMBOS = (
    ("film", "coverage", "coverage"),
    ("music", "random_walk", "coverage"),
    ("tv", "random_walk", "entropy"),
)

EXPECTED_HUBS = {
    "film": {"FILM"},
    "music": {"MUSICAL RECORDING", "MUSICAL ARTIST", "MUSICAL ALBUM"},
    "tv": {"TV PROGRAM", "TV EPISODE", "TV ACTOR"},
}


def build_table11():
    out = {}
    for domain, key_scorer, nonkey_scorer in COMBOS:
        context = domain_context(domain, key_scorer, nonkey_scorer)
        out[domain, key_scorer, nonkey_scorer] = dynamic_programming_discover(
            context, SizeConstraint(k=5, n=10)
        )
    return out


def test_table11_sample_concise(benchmark):
    results = benchmark.pedantic(build_table11, rounds=1, iterations=1)

    lines = ["Table 11: sample optimal concise previews (k=5, n=10)"]
    for (domain, ks, nks), result in results.items():
        assert result is not None
        assert result.preview.table_count == 5
        assert result.preview.attribute_count <= 10
        keys = set(result.preview.keys())
        # The domain's hub types appear among the chosen key attributes.
        assert keys & EXPECTED_HUBS[domain], (domain, keys)
        lines.append(f"\nDomain={domain}, KS={ks}, NKS={nks}, score={result.score:.4g}")
        lines.append(render_preview(result.preview))
    write_result("table11_sample_concise.txt", "\n".join(lines))
