"""Fig. 5 — Precision-at-K of key attribute scoring, K = 1..20.

Paper: coverage and random-walk reach P@10 close to the optimal 0.6 in 4
of 5 domains and beat YPS09 in 4 of 5.
"""

from conftest import GOLD_DOMAINS, domain_context, yps09_for

from repro.bench import format_series, write_result
from repro.datasets import gold_key_attributes
from repro.eval import optimal_precision_at_k, precision_curve

MAX_K = 20


def build_fig5():
    curves = {}
    for domain in GOLD_DOMAINS:
        gold = set(gold_key_attributes(domain))
        coverage = [t for t, _ in domain_context(domain, "coverage").ranked_key_types()]
        walk = [t for t, _ in domain_context(domain, "random_walk").ranked_key_types()]
        yps = yps09_for(domain).ranked_types()
        curves[domain] = {
            "Coverage": precision_curve(coverage, gold, MAX_K),
            "Random Walk": precision_curve(walk, gold, MAX_K),
            "YPS09": precision_curve(yps, gold, MAX_K),
            "Optimal": [optimal_precision_at_k(len(gold), k) for k in range(1, MAX_K + 1)],
        }
    return curves


def test_fig05_precision_at_k(benchmark):
    curves = benchmark.pedantic(build_fig5, rounds=1, iterations=1)

    beats_yps = 0
    for domain, series in curves.items():
        # Optimal dominates everything.
        for name in ("Coverage", "Random Walk", "YPS09"):
            assert all(
                ours <= best + 1e-9
                for ours, best in zip(series[name], series["Optimal"])
            )
        # Paper: P@10 close to the 0.6 optimum for our measures (4/5 domains).
        if series["Coverage"][9] >= series["YPS09"][9]:
            beats_yps += 1
    assert beats_yps >= 3, "coverage should beat YPS09 at P@10 in most domains"

    lines = ["Fig. 5: Precision-at-K of key attribute scoring (K=1..20)"]
    for domain, series in curves.items():
        lines.append(f"\n[{domain}]")
        for name in ("Coverage", "Random Walk", "YPS09", "Optimal"):
            lines.append(
                format_series(name, range(1, MAX_K + 1), series[name], precision=2)
            )
    write_result("fig05_precision_at_k.txt", "\n".join(lines))
