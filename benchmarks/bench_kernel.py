"""Batched-kernel benchmark — per-subset oracle vs columnar backends.

Times the Theorem-3 scoring of one large clique group — the tight
``d=3``, ``k=4`` point on the music domain, the most expensive
qualifying-subset set of the Fig. 9 grid (~250k subsets) — three ways:

* **oracle** — the retained per-subset heap merge, the seed behavior;
* **python** — the always-available batched backend (stdlib primitives
  over cap-trimmed columnar tails);
* **numpy** — the optional vectorized backend over padded rectangles
  (skipped, and recorded as such, when numpy is not installed).

Each leg scores the *same* subset list at the same budget through the
uniform :class:`~repro.kernel.KernelBackend` interface, and the winning
``(score, subset_index)`` must be bit-identical across legs (``==`` on
the index and ``float.hex`` on the score — no tolerance).  The floors
are part of the record: numpy must clear ``NUMPY_FLOOR``x the oracle
and pure python ``PYTHON_FLOOR``x.  Backends are single-threaded, so
unlike ``bench_parallel`` there is no low-core excuse.

The record lands in ``BENCH_kernel.json`` at the repo root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_kernel.py``) or
through pytest (``pytest benchmarks/bench_kernel.py``).
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import domain_context  # noqa: E402

from repro import kernel  # noqa: E402
from repro.core.candidates import eligible_key_types  # noqa: E402
from repro.core.constraints import (  # noqa: E402
    DistanceConstraint,
    SizeConstraint,
)
from repro.graph.cliques import k_cliques  # noqa: E402

DOMAIN = "music"
#: The expensive Fig. 9 point: tight d=3 at k=4 on music.
K, N, D, MODE = 4, 14, 3, "tight"
#: Required speedups over the per-subset oracle.
NUMPY_FLOOR = 5.0
PYTHON_FLOOR = 1.5
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_kernel.json"


def qualifying_subsets(context):
    """The point's clique group, enumerated exactly as Alg. 3 does."""
    key_pool = eligible_key_types(context)
    distance = DistanceConstraint.from_mode(D, MODE)
    oracle = context.schema.distance_oracle()

    def adjacent(a, b):
        return distance.pair_ok(oracle, a, b)

    return k_cliques(key_pool, adjacent, K)


def bench_leg(name, pool, subsets, extra_cap):
    backend = kernel.get_backend(name)
    start = time.perf_counter()
    best = backend.best_allocation(backend.lower(pool), subsets, extra_cap)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return {
        "backend": name,
        "ms": round(elapsed_ms, 3),
        "best_index": best[1],
        "best_score_hex": best[0].hex(),
    }


def run_benchmark():
    context = domain_context(DOMAIN)
    pool = context.candidate_pool()  # shared precomputation, untimed
    subsets = qualifying_subsets(context)
    extra_cap = SizeConstraint(k=K, n=N).n - K

    names = ["oracle", "python"]
    numpy_available = "numpy" in kernel.available_backends()
    if numpy_available:
        names.append("numpy")
    legs = [bench_leg(name, pool, subsets, extra_cap) for name in names]

    oracle_leg = legs[0]
    floors = {"python": PYTHON_FLOOR, "numpy": NUMPY_FLOOR}
    for leg in legs[1:]:
        leg["speedup"] = round(oracle_leg["ms"] / leg["ms"], 3)
        leg["floor"] = floors[leg["backend"]]
        leg["floor_met"] = leg["speedup"] >= leg["floor"]
        leg["identical"] = (
            leg["best_index"] == oracle_leg["best_index"]
            and leg["best_score_hex"] == oracle_leg["best_score_hex"]
        )

    payload = {
        "benchmark": "kernel",
        "domain": DOMAIN,
        "point": [K, N, D, MODE],
        "subsets": len(subsets),
        "extra_cap": extra_cap,
        "numpy_available": numpy_available,
        "identical": all(leg.get("identical", True) for leg in legs),
        "floors_met": all(leg.get("floor_met", True) for leg in legs),
        "legs": legs,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert payload["subsets"] > 200_000, (
        f"the benchmark point shrank to {payload['subsets']} subsets; it "
        "no longer stresses the kernel"
    )
    for leg in payload["legs"][1:]:
        assert leg["identical"], (
            f"{leg['backend']} diverged from the oracle: "
            f"index {leg['best_index']} score {leg['best_score_hex']}"
        )
        assert leg["floor_met"], (
            f"{leg['backend']} only {leg['speedup']:.2f}x the per-subset "
            f"oracle (floor {leg['floor']}x): oracle "
            f"{payload['legs'][0]['ms']:.0f} ms vs {leg['ms']:.0f} ms"
        )


def test_kernel_speedup(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    base = result["legs"][0]
    for leg in result["legs"][1:]:
        print(
            f"{leg['backend']}: {leg['ms']:.0f} ms vs oracle "
            f"{base['ms']:.0f} ms ({leg['speedup']:.2f}x, floor "
            f"{leg['floor']}x), bit-identical winner"
        )
    if not result["numpy_available"]:
        print("note: numpy not installed; only the python leg was timed")
