"""Incremental maintenance benchmark — delta pipeline vs. full rebuild.

The seed treated every mutation as a cache apocalypse: one ``add_entity``
bumped the generation, the engine dropped its memo, sweep subsets and
allocation profiles, and the next query rebuilt O(graph) state from
scratch.  The delta pipeline instead consumes the entity graph's
:class:`~repro.model.mutation_log.MutationLog`: scoring contexts and
candidate pools are patched in O(delta), the engine evicts only memo
entries whose key-type dependency set intersects the dirty types, and
allocation profiles are rebuilt per affected subset only.

Two legs on the music domain (the largest efficiency-experiment domain),
at the paper's expensive tight ``d=3`` radius:

* **delta-query** — mutate a single entity of the *least-connected*
  eligible type, then answer the flagship ``k=4, n=14`` tight query on
  the long-lived engine.  Compared against the seed behavior: a full
  ``ScoringContext`` rebuild plus a cold engine answering the same
  query.  Results are asserted bit-identical and the delta path must be
  at least ``SPEEDUP_FLOOR``× faster.
* **retention** — mutate an entity of an *ineligible* type (one that
  cannot key any preview table) and re-run a warmed tight sweep: every
  cached point must be served from the memo (hits only, zero new
  misses, zero evictions) and still equal a from-scratch sweep.

Wall times land in ``BENCH_incremental.json`` at the repo root.  Run
directly (``PYTHONPATH=src python benchmarks/bench_incremental.py``) or
through pytest (``pytest benchmarks/bench_incremental.py``).
"""

import json
import sys
import time
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import SCALE, SEED  # noqa: E402

from repro.core.candidates import eligible_key_types  # noqa: E402
from repro.core.constraints import DistanceConstraint  # noqa: E402
from repro.datasets import load_domain  # noqa: E402
from repro.engine import PreviewEngine, PreviewQuery  # noqa: E402
from repro.ext import IncrementalEntityGraph  # noqa: E402
from repro.graph.cliques import k_cliques  # noqa: E402
from repro.scoring import ScoringContext  # noqa: E402

DOMAIN = "music"
#: Flagship Fig. 9 point: tight d=3 at k=4 — ~250k qualifying subsets.
K, N, D, MODE = 4, 14, 3, "tight"
#: Sweep budgets warmed (and asserted retained) around the flagship n.
SWEEP_NS = (10, 12, 14)
#: Required delta-over-rebuild speedup for a single-type mutation.
SPEEDUP_FLOOR = 5.0
#: Mutate→query rounds aggregated per leg (keeps wall time modest while
#: smoothing scheduler noise).
ROUNDS = 3
#: The ineligible type used by the retention leg (no relationships ever,
#: so it cannot key a table and belongs to no dependency set).
IDLE_TYPE = "BENCH IDLE"
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_incremental.json"


def least_connected_type(context) -> str:
    """The eligible type in the fewest qualifying k-subsets.

    Re-enumerates the ``(K, D, MODE)`` clique group exactly the way the
    engine does, so the count reflects how many allocation profiles a
    mutation of that type dirties.
    """
    distance = DistanceConstraint.from_mode(D, MODE)
    oracle = context.schema.distance_oracle()
    key_pool = eligible_key_types(context)
    membership = Counter()
    for keys in k_cliques(
        key_pool,
        lambda a, b: distance.pair_ok(oracle, a, b),
        K,
        backend="apriori",
    ):
        for type_name in keys:
            membership[type_name] += 1
    return min(key_pool, key=lambda t: (membership.get(t, 0), str(t)))


def rebuild_answer(inc, query):
    """The seed path: full context rebuild + cold engine, one query."""
    context = ScoringContext(inc.schema, inc.entity_graph)
    return PreviewEngine(context).query(
        k=query.k, n=query.n, d=query.d, mode=query.mode
    )


def run_benchmark():
    graph = load_domain(DOMAIN, scale=SCALE, seed=SEED)  # private copy
    inc = IncrementalEntityGraph(base=graph)
    # Registered before warming so later IDLE mutations are
    # non-structural; the type never gets a relationship, so it stays
    # ineligible and outside every dependency set.
    inc.add_entity("bench-idle-0", [IDLE_TYPE])
    dirty_type = least_connected_type(inc.context())
    engine = inc.engine()
    grid = [PreviewQuery(k=K, n=n, d=D, mode=MODE) for n in SWEEP_NS]
    flagship = grid[-1]

    start = time.perf_counter()
    engine.sweep(grid)
    warm_ms = (time.perf_counter() - start) * 1000.0

    # -- Leg 1: delta mutate→query vs full rebuild ---------------------
    delta_ms = 0.0
    rebuild_ms = 0.0
    mismatches = []
    for round_index in range(ROUNDS):
        start = time.perf_counter()
        inc.add_entity(f"bench-delta-{round_index}", [dirty_type])
        delta_result = engine.query(k=K, n=N, d=D, mode=MODE)
        delta_ms += (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        rebuilt_result = rebuild_answer(inc, flagship)
        rebuild_ms += (time.perf_counter() - start) * 1000.0
        if delta_result != rebuilt_result:  # exact, not approximate
            mismatches.append(f"round {round_index}")
    speedup = rebuild_ms / delta_ms if delta_ms > 0 else float("inf")

    # -- Leg 2: retention across an untouched-type mutation ------------
    engine.sweep(grid)  # re-memoize every point at the current generation
    before = engine.cache_info()
    inc.add_entity("bench-idle-1", [IDLE_TYPE])  # dirty = {IDLE_TYPE}
    retained = engine.sweep(grid)
    after = engine.cache_info()
    retention = {
        "points": len(grid),
        "hits_gained": after["hits"] - before["hits"],
        "misses_gained": after["misses"] - before["misses"],
        "evicted_gained": after["evicted"] - before["evicted"],
        "full_invalidations_gained": after["invalidations"]
        - before["invalidations"],
        "identical_to_rebuild": all(
            result == rebuild_answer(inc, query)
            for query, result in zip(grid, retained)
        ),
    }

    payload = {
        "benchmark": "incremental_delta",
        "domain": DOMAIN,
        "point": [K, N, D, MODE],
        "sweep_ns": list(SWEEP_NS),
        "rounds": ROUNDS,
        "dirty_type": dirty_type,
        "warm_ms": round(warm_ms, 3),
        "delta_ms": round(delta_ms, 3),
        "rebuild_ms": round(rebuild_ms, 3),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_met": speedup >= SPEEDUP_FLOOR,
        "mismatches": mismatches,
        "retention": retention,
        "verified_against_rescan": inc.verify_against_rescan(),
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert not payload["mismatches"], (
        "delta-maintained results diverged from full rebuild at: "
        f"{payload['mismatches']}"
    )
    assert payload["verified_against_rescan"], (
        "incremental aggregates or patched candidate pools diverged from "
        "a full rescan"
    )
    retention = payload["retention"]
    assert retention["identical_to_rebuild"], (
        "retained sweep points diverged from a from-scratch rebuild"
    )
    assert retention["hits_gained"] == retention["points"], (
        f"expected {retention['points']} memo hits after an untouched-type "
        f"mutation, got {retention['hits_gained']}"
    )
    assert retention["misses_gained"] == 0, (
        f"{retention['misses_gained']} sweep point(s) were re-executed "
        "after a mutation that touched no dependency"
    )
    assert retention["evicted_gained"] == 0, "untouched entries were evicted"
    assert retention["full_invalidations_gained"] == 0, (
        "an untouched-type mutation triggered a full invalidation"
    )
    assert payload["speedup"] >= payload["speedup_floor"], (
        f"delta mutate→query only {payload['speedup']:.2f}x faster than the "
        f"full rebuild (floor {payload['speedup_floor']}x): delta "
        f"{payload['delta_ms']:.1f} ms vs rebuild {payload['rebuild_ms']:.1f} "
        f"ms over {payload['rounds']} rounds"
    )


def test_incremental_delta(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    print(
        f"single-{result['dirty_type']!r} mutation on {result['domain']}: "
        f"delta {result['delta_ms']:.0f} ms vs full rebuild "
        f"{result['rebuild_ms']:.0f} ms over {result['rounds']} rounds "
        f"({result['speedup']:.1f}x), results identical; "
        f"{result['retention']['points']} untouched sweep points retained"
    )
