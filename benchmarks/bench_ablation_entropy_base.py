"""Ablation — entropy log-base sensitivity.

DESIGN.md pins the entropy measure to base 10 (reverse-engineered from
the paper's worked example).  Does the choice matter?  Entropy scales by
a constant under base change, so *rankings* — and therefore discovered
previews — must be identical; only raw scores shift.  This bench makes
that argument empirically across bases 2, e, and 10.
"""

import math

import pytest
from conftest import domain_schema, domain_graph

from repro.bench import format_table, write_result
from repro.core import SizeConstraint, dynamic_programming_discover
from repro.scoring import EntropyNonKeyScorer, ScoringContext

BASES = (2.0, math.e, 10.0)


def build_ablation():
    schema = domain_schema("tv")
    graph = domain_graph("tv")
    out = {}
    for base in BASES:
        context = ScoringContext(
            schema,
            graph,
            key_scorer="coverage",
            nonkey_scorer=EntropyNonKeyScorer(log_base=base),
        )
        result = dynamic_programming_discover(context, SizeConstraint(k=4, n=8))
        out[base] = result
    return out


def test_ablation_entropy_base(benchmark):
    results = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    previews = {
        base: [(t.key, t.nonkey) for t in result.preview.tables]
        for base, result in results.items()
    }
    # Identical previews under every base (entropy is rank-invariant
    # under base change).
    reference = previews[10.0]
    for base, preview in previews.items():
        assert preview == reference, f"base {base} changed the preview"
    # Scores scale by log(10)/log(base).
    score10 = results[10.0].score
    for base in BASES:
        expected = score10 * math.log(10) / math.log(base)
        assert results[base].score == pytest.approx(expected, rel=1e-9)

    text = format_table(
        ["log base", "score", "preview keys"],
        [
            [f"{base:.3g}", f"{results[base].score:.6g}",
             ", ".join(k for k, _ in previews[base])]
            for base in BASES
        ],
        title="Ablation: entropy log-base sensitivity (tv, k=4, n=8)",
    )
    write_result("ablation_entropy_base.txt", text)
