"""Parallel sharding benchmark — serial vs process-pool subset evaluation.

Runs the paper's Alg. 1/3 hot loop — "enumerate qualifying k-subsets,
ComputePreview each, keep the max" — on the music domain (the largest
efficiency-experiment domain) two ways and records both wall times:

* **serial** — ``apriori_discover`` / ``brute_force_discover`` at
  ``jobs=1``, the seed behavior;
* **sharded** — the same calls at ``jobs=4``: the qualifying-subset list
  is chunked across worker processes, each worker scores its shard
  against a picklable :class:`~repro.parallel.ScoringSnapshot`, and the
  parent materializes the winner (see :mod:`repro.parallel`).

The Fig. 9-style grid leans on the constraint the paper itself flags as
expensive (tight ``d=3`` at ``k=4``: ~250k qualifying subsets on music),
where per-subset allocation dominates and sharding pays off; the cheap
points document that tiny workloads do not.

Asserts the sharded results are *bit-identical* to serial at every
point (always), and that sharding is at least 2x faster.  A leg that
misses the floor only passes when the machine demonstrably lacks the
cores (fewer usable CPUs than ``JOBS``) — a wall-clock claim about
parallel hardware is unfalsifiable on a genuinely single-core box, so
there the measured speedup is recorded instead.  Wall times land in
``BENCH_parallel.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel.py``)
or through pytest (``pytest benchmarks/bench_parallel.py``).
"""

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import domain_context  # noqa: E402

from repro import kernel  # noqa: E402
from repro.core import apriori_discover, brute_force_discover  # noqa: E402
from repro.core.constraints import (  # noqa: E402
    DistanceConstraint,
    SizeConstraint,
)

DOMAIN = "music"
JOBS = 4
#: Required sharded-over-serial speedup — asserted only on hardware with
#: at least JOBS usable cores (see module docstring).
SPEEDUP_FLOOR = 2.0
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"

#: Fig. 9-style (k, n, d) points.  Tight d=3 is the expensive radius the
#: paper highlights (~250k qualifying subsets at k=4 on music); the
#: diverse point shows the small-workload end of the same grid.
APRIORI_POINTS = (
    (4, 14, 3, "tight"),
    (4, 14, 4, "diverse"),
)
#: Brute-force points: the concise k=3 budget sweep enumerates all
#: C(69, 3) = 52,394 key subsets; the tight point filters them first.
BRUTE_FORCE_POINTS = (
    (3, 12, None, None),
    (3, 12, 2, "tight"),
)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_points(context, discover, points, jobs):
    results = []
    start = time.perf_counter()
    for k, n, d, mode in points:
        size = SizeConstraint(k=k, n=n)
        distance = (
            DistanceConstraint.from_mode(d, mode) if d is not None else None
        )
        if discover is apriori_discover:
            results.append(apriori_discover(context, size, distance, jobs=jobs))
        else:
            results.append(
                brute_force_discover(context, size, distance, jobs=jobs)
            )
    return (time.perf_counter() - start) * 1000.0, results


def compare(points, serial_results, sharded_results):
    mismatches = []
    for point, serial, sharded in zip(points, serial_results, sharded_results):
        if serial != sharded:  # DiscoveryResult equality is exact, not approx
            mismatches.append(str(point))
    return mismatches


def bench_leg(name, context, discover, points):
    serial_ms, serial_results = run_points(context, discover, points, jobs=1)
    sharded_ms, sharded_results = run_points(context, discover, points, jobs=JOBS)
    speedup = serial_ms / sharded_ms if sharded_ms > 0 else float("inf")
    return {
        "algorithm": name,
        "points": [list(point) for point in points],
        "serial_ms": round(serial_ms, 3),
        "sharded_ms": round(sharded_ms, 3),
        "speedup": round(speedup, 3),
        "mismatches": compare(points, serial_results, sharded_results),
    }


def run_benchmark():
    context = domain_context(DOMAIN)
    context.candidate_pool()  # shared precomputation outside both timings
    cpus = usable_cpus()
    legs = [
        bench_leg("apriori", context, apriori_discover, APRIORI_POINTS),
        bench_leg(
            "brute-force", context, brute_force_discover, BRUTE_FORCE_POINTS
        ),
    ]
    payload = {
        "benchmark": "parallel_sharding",
        "domain": DOMAIN,
        "jobs": JOBS,
        "cpus": cpus,
        "kernel_backend": kernel.backend_name(),
        "dispatch_threshold": kernel.dispatch_threshold(),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_met": all(leg["speedup"] >= SPEEDUP_FLOOR for leg in legs),
        "identical": all(not leg["mismatches"] for leg in legs),
        "legs": legs,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    for leg in payload["legs"]:
        assert not leg["mismatches"], (
            f"sharded {leg['algorithm']} diverged from serial at: "
            f"{leg['mismatches']}"
        )
    for leg in payload["legs"]:
        if leg["speedup"] >= payload["speedup_floor"]:
            continue
        # Only demonstrably missing cores excuse a miss of the floor.
        assert payload["cpus"] < payload["jobs"], (
            f"sharded {leg['algorithm']} only {leg['speedup']:.2f}x faster "
            f"than serial at jobs={payload['jobs']} (floor "
            f"{payload['speedup_floor']}x) on a {payload['cpus']}-core "
            f"machine: serial {leg['serial_ms']:.1f} ms, sharded "
            f"{leg['sharded_ms']:.1f} ms"
        )


def test_parallel_sharding(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    for leg in result["legs"]:
        print(
            f"{leg['algorithm']}: serial {leg['serial_ms']:.0f} ms, "
            f"jobs={result['jobs']} sharded {leg['sharded_ms']:.0f} ms "
            f"({leg['speedup']:.2f}x), identical results"
        )
    if not result["speedup_met"]:
        print(
            f"note: {result['speedup_floor']}x floor missed with only "
            f"{result['cpus']} usable core(s); identity was still asserted"
        )
