"""Parallel sharding benchmark — serial vs process-pool subset evaluation.

Runs the paper's Alg. 1/3 hot loop — "enumerate qualifying k-subsets,
ComputePreview each, keep the max" — on the music domain (the largest
efficiency-experiment domain) two ways and records both wall times:

* **serial** — ``apriori_discover`` / ``brute_force_discover`` at
  ``jobs=1``, the seed behavior;
* **sharded** — the same calls at ``jobs=4``: the qualifying-subset list
  is chunked across worker processes, each worker scores its shard
  against a picklable :class:`~repro.parallel.ScoringSnapshot`, and the
  parent materializes the winner (see :mod:`repro.parallel`).

The Fig. 9-style grid leans on the constraint the paper itself flags as
expensive (tight ``d=3`` at ``k=4``: ~250k qualifying subsets on music),
where per-subset allocation dominates and sharding pays off; the cheap
points document that tiny workloads do not.

Asserts the sharded results are *bit-identical* to serial at every
point (always), and that sharding is at least 2x faster.  The legs pin
the execution planner (``REPRO_PLAN``-style forcing via
:func:`repro.plan.use_mode`) so each measures what it claims: the
serial leg under ``serial``, the sharded leg under ``sharded``.  On a
single-core box the planner's affinity veto
(``vetoed_single_core: true`` in the record) makes worker processes
pure overhead, so the speedup floor is *skipped* there instead of
asserted — a wall-clock claim about parallel hardware is unfalsifiable
without the hardware; identity is still asserted.  Wall times and the
planner's per-leg decision counters land in ``BENCH_parallel.json`` at
the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel.py``)
or through pytest (``pytest benchmarks/bench_parallel.py``).
"""

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import domain_context  # noqa: E402

from repro import kernel, plan  # noqa: E402
from repro.core import apriori_discover, brute_force_discover  # noqa: E402
from repro.core.constraints import (  # noqa: E402
    DistanceConstraint,
    SizeConstraint,
)

DOMAIN = "music"
JOBS = 4
#: Required sharded-over-serial speedup — asserted only on hardware with
#: at least JOBS usable cores (see module docstring).
SPEEDUP_FLOOR = 2.0
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"

#: Fig. 9-style (k, n, d) points.  Tight d=3 is the expensive radius the
#: paper highlights (~250k qualifying subsets at k=4 on music); the
#: diverse point shows the small-workload end of the same grid.
APRIORI_POINTS = (
    (4, 14, 3, "tight"),
    (4, 14, 4, "diverse"),
)
#: Brute-force points: the concise k=3 budget sweep enumerates all
#: C(69, 3) = 52,394 key subsets; the tight point filters them first.
BRUTE_FORCE_POINTS = (
    (3, 12, None, None),
    (3, 12, 2, "tight"),
)


def run_points(context, discover, points, jobs, mode_name):
    """Time one leg with the planner pinned to ``mode_name``."""
    results = []
    before = plan.decision_counts()
    with plan.use_mode(mode_name):
        start = time.perf_counter()
        for k, n, d, mode in points:
            size = SizeConstraint(k=k, n=n)
            distance = (
                DistanceConstraint.from_mode(d, mode) if d is not None else None
            )
            if discover is apriori_discover:
                results.append(
                    apriori_discover(context, size, distance, jobs=jobs)
                )
            else:
                results.append(
                    brute_force_discover(context, size, distance, jobs=jobs)
                )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
    after = plan.decision_counts()
    decisions = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] - before.get(key, 0)
    }
    return elapsed_ms, results, decisions


def compare(points, serial_results, sharded_results):
    mismatches = []
    for point, serial, sharded in zip(points, serial_results, sharded_results):
        if serial != sharded:  # DiscoveryResult equality is exact, not approx
            mismatches.append(str(point))
    return mismatches


def bench_leg(name, context, discover, points):
    serial_ms, serial_results, serial_decisions = run_points(
        context, discover, points, jobs=1, mode_name="serial"
    )
    sharded_ms, sharded_results, sharded_decisions = run_points(
        context, discover, points, jobs=JOBS, mode_name="sharded"
    )
    speedup = serial_ms / sharded_ms if sharded_ms > 0 else float("inf")
    return {
        "algorithm": name,
        "points": [list(point) for point in points],
        "serial_ms": round(serial_ms, 3),
        "sharded_ms": round(sharded_ms, 3),
        "speedup": round(speedup, 3),
        "plan_decisions": {
            "serial_leg": serial_decisions,
            "sharded_leg": sharded_decisions,
        },
        "mismatches": compare(points, serial_results, sharded_results),
    }


def run_benchmark():
    context = domain_context(DOMAIN)
    context.candidate_pool()  # shared precomputation outside both timings
    cpus = plan.usable_cpus()
    legs = [
        bench_leg("apriori", context, apriori_discover, APRIORI_POINTS),
        bench_leg(
            "brute-force", context, brute_force_discover, BRUTE_FORCE_POINTS
        ),
    ]
    # The planner's single-core veto: with one usable core, worker
    # processes serialize and the sharded leg measures pure dispatch
    # overhead — its speedup says nothing about the sharded path.
    vetoed = min(JOBS, cpus) <= 1
    payload = {
        "benchmark": "parallel_sharding",
        "domain": DOMAIN,
        "jobs": JOBS,
        "cpus": cpus,
        "kernel_backend": kernel.backend_name(),
        "dispatch_threshold": kernel.dispatch_threshold(),
        "vetoed_single_core": vetoed,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_met": all(leg["speedup"] >= SPEEDUP_FLOOR for leg in legs),
        "identical": all(not leg["mismatches"] for leg in legs),
        "legs": legs,
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    for leg in payload["legs"]:
        assert not leg["mismatches"], (
            f"sharded {leg['algorithm']} diverged from serial at: "
            f"{leg['mismatches']}"
        )
    if payload["vetoed_single_core"]:
        # The planner vetoed sharding on this hardware: any speedup
        # number is dispatch overhead, not evidence.  Identity was
        # asserted above; the floor is meaningless here.
        return
    for leg in payload["legs"]:
        if leg["speedup"] >= payload["speedup_floor"]:
            continue
        # Only demonstrably missing cores excuse a miss of the floor.
        assert payload["cpus"] < payload["jobs"], (
            f"sharded {leg['algorithm']} only {leg['speedup']:.2f}x faster "
            f"than serial at jobs={payload['jobs']} (floor "
            f"{payload['speedup_floor']}x) on a {payload['cpus']}-core "
            f"machine: serial {leg['serial_ms']:.1f} ms, sharded "
            f"{leg['sharded_ms']:.1f} ms"
        )


def test_parallel_sharding(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    for leg in result["legs"]:
        print(
            f"{leg['algorithm']}: serial {leg['serial_ms']:.0f} ms, "
            f"jobs={result['jobs']} sharded {leg['sharded_ms']:.0f} ms "
            f"({leg['speedup']:.2f}x), identical results"
        )
    if result["vetoed_single_core"]:
        print(
            "note: planner vetoed sharding (single usable core); speedup "
            "floor skipped, identity still asserted"
        )
    elif not result["speedup_met"]:
        print(
            f"note: {result['speedup_floor']}x floor missed with only "
            f"{result['cpus']} usable core(s); identity was still asserted"
        )
