"""Tables 22/23 — P@K between the Freebase and Experts gold standards.

Paper: evaluating either curated preview against the other as ground
truth gives P@6 between 0.333 and 0.833, music being the most aligned.
The relationship is symmetric at K=6 (same intersection size).
"""

from conftest import GOLD_DOMAINS

from repro.bench import format_table, write_result
from repro.datasets import expert_key_attributes, gold_key_attributes
from repro.eval import precision_at_k


def build_tables():
    out = {}
    for domain in GOLD_DOMAINS:
        gold = gold_key_attributes(domain)
        expert = expert_key_attributes(domain)
        out[domain] = {
            "freebase_vs_experts": [
                precision_at_k(gold, set(expert), k) for k in range(1, 7)
            ],
            "experts_vs_freebase": [
                precision_at_k(expert, set(gold), k) for k in range(1, 7)
            ],
        }
    return out


def test_table22_23_expert_overlap(benchmark):
    tables = benchmark.pedantic(build_tables, rounds=1, iterations=1)

    for domain, curves in tables.items():
        p6_a = curves["freebase_vs_experts"][5]
        p6_b = curves["experts_vs_freebase"][5]
        # P@6 symmetric: both lists have 6 entries, same intersection.
        assert p6_a == p6_b
        # Paper band: 0.333 .. 0.833 (reasonable but partial overlap).
        assert 0.3 <= p6_a <= 0.9, (domain, p6_a)
    # Music is the most aligned domain (0.833).
    assert tables["music"]["freebase_vs_experts"][5] == max(
        curves["freebase_vs_experts"][5] for curves in tables.values()
    )

    blocks = []
    for label, key in (
        ("Table 22: P@K of Freebase keys using Experts as ground truth", "freebase_vs_experts"),
        ("Table 23: P@K of Experts keys using Freebase as ground truth", "experts_vs_freebase"),
    ):
        rows = [
            [k] + [f"{tables[d][key][k - 1]:.3f}" for d in GOLD_DOMAINS]
            for k in range(1, 7)
        ]
        blocks.append(format_table(["K"] + list(GOLD_DOMAINS), rows, title=label))
    write_result("table22_23_expert_overlap.txt", "\n\n".join(blocks))
