"""Ablation — how much brute-force work does bounding alone avoid?

The paper jumps straight from the brute force to the DP (concise) and the
Apriori lattice (tight/diverse).  This ablation asks whether a simpler
fix — best-first search with the Theorem-3 optimistic bound — would have
sufficed: it measures evaluated-subset counts and wall time against the
plain brute force, with the DP shown for context.
"""

import pytest
from conftest import domain_context

from repro.bench import format_table, time_callable, write_result
from repro.core import SizeConstraint, brute_force_discover, dynamic_programming_discover
from repro.core.branch_bound import branch_and_bound_discover

POINTS = (
    ("architecture", 3, 7),
    ("architecture", 4, 8),
    ("architecture", 5, 10),
)


def build_ablation():
    rows = []
    for domain, k, n in POINTS:
        context = domain_context(domain)
        size = SizeConstraint(k=k, n=n)
        bf = brute_force_discover(context, size)
        bb = branch_and_bound_discover(context, size)
        assert bb.score == pytest.approx(bf.score)
        bf_ms = time_callable(
            lambda: brute_force_discover(context, size), runs=3
        ).milliseconds
        bb_ms = time_callable(
            lambda: branch_and_bound_discover(context, size), runs=3
        ).milliseconds
        dp_ms = time_callable(
            lambda: dynamic_programming_discover(context, size), runs=3
        ).milliseconds
        rows.append(
            [
                f"{domain} k={k} n={n}",
                bf.candidates_examined,
                bb.candidates_examined,
                f"{bf_ms:.1f}",
                f"{bb_ms:.1f}",
                f"{dp_ms:.1f}",
            ]
        )
    return rows


def test_ablation_branch_bound(benchmark):
    rows = benchmark.pedantic(build_ablation, rounds=1, iterations=1)

    for row in rows:
        _label, bf_subsets, bb_subsets, *_ = row
        # Bounding must prune the overwhelming majority of subsets.
        assert bb_subsets < bf_subsets / 10, row

    text = format_table(
        [
            "point",
            "bf subsets",
            "b&b subsets",
            "bf ms",
            "b&b ms",
            "dp ms (context)",
        ],
        rows,
        title="Ablation: branch-and-bound pruning vs. plain brute force",
    )
    write_result("ablation_branch_bound.txt", text)
