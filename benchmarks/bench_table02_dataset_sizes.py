"""Table 2 — sizes of the entity/schema graphs for all seven domains.

Paper: per-domain vertex/edge counts and schema sizes (e.g. film: 2M/63
vertices, 18M/136 edges).  We match schema sizes exactly and entity/edge
counts scaled by 1000.
"""

from conftest import SCALE

from repro.bench import format_table, write_result
from repro.datasets import DOMAINS, FREEBASE_PROFILES, table2_row


def build_table2():
    return [table2_row(domain, scale=SCALE) for domain in DOMAINS]


def test_table02_dataset_sizes(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)

    # Shape: schema sizes equal the paper's Table 2 exactly.
    for row in rows:
        assert row["entity_types"] == row["paper_entity_types"]
        assert row["relationship_types"] == row["paper_relationship_types"]
        profile = FREEBASE_PROFILES[row["domain"]]
        # Entity counts near the scaled paper counts; tiny domains are
        # floored at 3 entities per type, so allow that slack too.
        target_entities = profile.scaled_entities(SCALE)
        slack = max(0.25 * target_entities, 3 * profile.entity_type_count)
        assert abs(row["entities"] - target_entities) <= slack

    text = format_table(
        [
            "domain",
            "# vertices (paper/1000)",
            "# edges (paper/1000)",
            "entity types (=paper)",
            "relationship types (=paper)",
        ],
        [
            [
                row["domain"],
                row["entities"],
                row["relationships"],
                row["entity_types"],
                row["relationship_types"],
            ]
            for row in rows
        ],
        title="Table 2: sizes of entity/schema graphs (scale = 1:1000)",
    )
    write_result("table02_dataset_sizes.txt", text)
