"""Tables 17-21 — per-domain user-experience responses (Q1-Q4 means).

Paper: mean Likert score per approach per question per domain; values in
the 2.9-4.7 band with domain-to-domain diversity.
"""

from conftest import GOLD_DOMAINS, user_study_for

from repro.bench import format_table, write_result
from repro.eval import APPROACHES
from repro.eval.likert import QUESTION_KEYS

TABLE_IDS = {"books": "17", "film": "18", "music": "19", "tv": "20", "people": "21"}


def build_tables():
    return {domain: user_study_for(domain).likert_means() for domain in GOLD_DOMAINS}


def test_tables_17_21_ux_responses(benchmark):
    tables = benchmark.pedantic(build_tables, rounds=1, iterations=1)

    blocks = []
    for domain in GOLD_DOMAINS:
        means = tables[domain]
        for approach in APPROACHES:
            for question in QUESTION_KEYS:
                value = means[approach][question]
                # Paper band: 2.9 .. 4.7; allow noise slack.
                assert 2.5 <= value <= 5.0, (domain, approach, question, value)
        rows = [
            [approach] + [f"{means[approach][q]:.2f}" for q in QUESTION_KEYS]
            for approach in APPROACHES
        ]
        blocks.append(
            format_table(
                ["approach"] + list(QUESTION_KEYS),
                rows,
                title=f"Table {TABLE_IDS[domain]}: UX responses, domain={domain}",
            )
        )
    write_result("table17_21_ux_responses.txt", "\n\n".join(blocks))
