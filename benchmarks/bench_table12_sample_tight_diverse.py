"""Table 12 — sample optimal tight (d=2) and diverse (d=4) film previews.

Paper shape: in the tight preview all key attributes huddle around FILM
(pairwise distance <= 2); in the diverse preview they are far apart
(pairwise distance >= 4) and cover peripheral concepts like festivals and
companies.
"""

from conftest import domain_context, domain_schema

from repro.bench import write_result
from repro.core import (
    DistanceConstraint,
    SizeConstraint,
    apriori_discover,
)
from repro.core.render import render_preview


def build_table12():
    context = domain_context("film", "coverage", "coverage")
    size = SizeConstraint(k=5, n=10)
    tight = apriori_discover(context, size, DistanceConstraint.tight(2))
    diverse = apriori_discover(context, size, DistanceConstraint.diverse(4))
    return tight, diverse


def test_table12_sample_tight_diverse(benchmark):
    tight, diverse = benchmark.pedantic(build_table12, rounds=1, iterations=1)
    schema = domain_schema("film")

    assert tight is not None and diverse is not None

    def pairwise(preview):
        keys = preview.keys()
        return [
            schema.distance(a, b)
            for i, a in enumerate(keys)
            for b in keys[i + 1:]
        ]

    tight_distances = pairwise(tight.preview)
    diverse_distances = pairwise(diverse.preview)
    assert max(tight_distances) <= 2
    assert min(diverse_distances) >= 4
    # The diverse preview spreads strictly farther than the tight one.
    assert min(diverse_distances) > max(tight_distances) - 1

    lines = [
        "Table 12: sample optimal tight (d=2) and diverse (d=4) previews, film",
        f"\nTight (score={tight.score:.4g}), pairwise distances {tight_distances}:",
        render_preview(tight.preview),
        f"\nDiverse (score={diverse.score:.4g}), pairwise distances {diverse_distances}:",
        render_preview(diverse.preview),
    ]
    write_result("table12_sample_tight_diverse.txt", "\n".join(lines))
