"""Serving benchmark — coalesced concurrent clients vs. sequential round trips.

The serve layer exists so one warm :class:`~repro.engine.PreviewEngine`
can answer *many clients at once*; this bench measures what that buys
over the real socket path, on the film domain.

**Throughput leg (the headline number).**  The workload is the live-graph
serving pattern: a stream of mutations interleaved with the flagship
tight query, where every mutation dirties the query's dependency set
(so answering after a write genuinely recomputes, ~20 ms).  Both legs
process an identical request mix — 8 mutations plus 8 identical preview
requests per round — differing only in arrival pattern:

* *sequential baseline* — strict ``mutate, query, mutate, query, ...``
  round trips on one connection.  Linearizability forces a recompute
  per query: each query must observe the write before it;
* *concurrent clients* — the 8 writes land first, then 8 clients issue
  the identical query at once.  The request coalescer folds all 8 onto
  **one** engine computation; 7 clients wait on the leader's task
  instead of recomputing.

Speedup ≈ (8 recomputes) / (1 recompute + overheads); required to be at
least ``SPEEDUP_FLOOR``x.  (A raw same-work concurrency comparison
cannot beat 1x on this container — it has a single CPU core — which is
exactly why the serving layer's win is *work collapse*, not thread
parallelism.)

**Warm-path leg (supplementary).**  Per-request socket cost with the
response cache hot, sequential vs. 8 concurrent threads — reported for
tracking (the fast path answers in ~0.1 ms), not gated.

**Identity.**  Every served payload is asserted bit-identical (as JSON
text) to serializing a direct ``PreviewEngine.run`` on an identically
mutated private replica, and all coalesced waiters of one round must
receive literally identical payloads.

Wall times and counters land in ``BENCH_serve.json`` at the repo root.
Run directly (``PYTHONPATH=src python benchmarks/bench_serve.py``) or
through pytest (``pytest benchmarks/bench_serve.py``).
"""

import json
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import SCALE, SEED  # noqa: E402

from repro.core.serialize import result_to_dict  # noqa: E402
from repro.datasets.freebase_like import generate_domain  # noqa: E402
from repro.engine import PreviewEngine, PreviewQuery  # noqa: E402
from repro.ext import IncrementalEntityGraph  # noqa: E402
from repro.serve import (  # noqa: E402
    EngineHost,
    PreviewService,
    ServeClient,
    run_in_background,
)

DOMAIN = "film"
#: Flagship tight point: ~20 ms to re-answer after a dirtying mutation.
K, N, D, MODE = 4, 12, 2, "tight"
PARAMS = {"k": K, "n": N, "d": D, "mode": MODE}
CLIENTS = 8
#: Rounds of (8 mutations + 8 identical queries) per throughput leg.
ROUNDS = 5
#: Round trips per warm-path measurement.
WARM_TRIPS = 200
#: Required sequential-over-concurrent wall-time speedup (throughput leg).
SPEEDUP_FLOOR = 2.0
RESULT_FILE = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def run_benchmark():
    graph = generate_domain(DOMAIN, scale=SCALE, seed=SEED)  # private copy
    host = EngineHost(DOMAIN, graph)
    service = PreviewService({DOMAIN: host}, max_pending=4 * CLIENTS)
    server = run_in_background(service)
    #: Direct-engine replica: every mutation the service receives is
    #: mirrored here, and served payloads are diffed against it.
    replica = IncrementalEntityGraph(
        base=generate_domain(DOMAIN, scale=SCALE, seed=SEED)
    )
    mismatches = []

    def expect(payload):
        """Assert one served payload equals the replica's direct answer."""
        direct = replica.engine().run(PreviewQuery(**PARAMS))
        if json.dumps(payload["result"], sort_keys=True) != json.dumps(
            result_to_dict(direct), sort_keys=True
        ):
            mismatches.append(payload["generation"])

    try:
        with ServeClient(port=server.port, timeout=60.0) as warmup:
            first = warmup.preview(**PARAMS)
            expect(first)
            # The key type of the winning preview is, by construction,
            # in the flagship query's dependency set: adding an entity
            # of that type makes every post-write query recompute.
            dirty_type = first["result"]["tables"][0]["key"]

        # -- Leg 1: live-update throughput ------------------------------
        entity_counter = [0]

        def mutate(client):
            entity_counter[0] += 1
            name = f"bench-serve-{entity_counter[0]}"
            client.mutate_entity(name, [dirty_type])
            replica.add_entity(name, [dirty_type])

        sequential_s = 0.0
        concurrent_s = 0.0
        for _ in range(ROUNDS):
            # Sequential: mutate, query, mutate, query ... — every query
            # must observe the write before it, so every query recomputes.
            with ServeClient(port=server.port, timeout=60.0) as client:
                start = time.perf_counter()
                for _ in range(CLIENTS):
                    mutate(client)
                    expect(client.preview(**PARAMS))
                sequential_s += time.perf_counter() - start

            # Concurrent: the same 8 writes land first, then 8 clients
            # ask the identical query at once — coalesced to 1 compute.
            clients = [
                ServeClient(port=server.port, timeout=60.0)
                for _ in range(CLIENTS)
            ]
            try:
                barrier = threading.Barrier(CLIENTS + 1)
                payloads = [None] * CLIENTS

                def ask(index, client):
                    barrier.wait()
                    payloads[index] = client.preview(**PARAMS)

                threads = [
                    threading.Thread(target=ask, args=(index, client))
                    for index, client in enumerate(clients)
                ]
                for thread in threads:
                    thread.start()
                start = time.perf_counter()
                for _ in range(CLIENTS):
                    mutate(clients[0])
                barrier.wait()  # all 8 queries fire together
                for thread in threads:
                    thread.join()
                concurrent_s += time.perf_counter() - start
            finally:
                for client in clients:
                    client.close()
            distinct = {
                json.dumps(payload, sort_keys=True) for payload in payloads
            }
            if len(distinct) != 1:
                mismatches.append("coalesced-divergence")
            expect(payloads[0])
        speedup = sequential_s / concurrent_s if concurrent_s > 0 else float("inf")

        with ServeClient(port=server.port) as stats_client:
            stats = stats_client.stats()["datasets"][0]
        coalescing = {
            "leaders": stats["coalescer"]["leaders"],
            "coalesced": stats["coalescer"]["coalesced"],
            "engine_misses": stats["engine"]["misses"],
            "response_cache_hits": stats["responses"]["hits"],
        }

        # -- Leg 2: warm-path round trips (supplementary) ----------------
        with ServeClient(port=server.port, timeout=60.0) as client:
            client.preview(**PARAMS)  # ensure the response cache is hot
            start = time.perf_counter()
            for _ in range(WARM_TRIPS):
                client.preview(**PARAMS)
            warm_sequential_s = time.perf_counter() - start

        warm_clients = [
            ServeClient(port=server.port, timeout=60.0) for _ in range(CLIENTS)
        ]
        try:
            barrier = threading.Barrier(CLIENTS + 1)

            def hammer(client):
                barrier.wait()
                for _ in range(WARM_TRIPS // CLIENTS):
                    client.preview(**PARAMS)

            threads = [
                threading.Thread(target=hammer, args=(client,))
                for client in warm_clients
            ]
            for thread in threads:
                thread.start()
            start = time.perf_counter()
            barrier.wait()
            for thread in threads:
                thread.join()
            warm_concurrent_s = time.perf_counter() - start
        finally:
            for client in warm_clients:
                client.close()
    finally:
        server.stop()

    requests = ROUNDS * CLIENTS
    payload = {
        "benchmark": "serve",
        "domain": DOMAIN,
        "point": [K, N, D, MODE],
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "dirty_type": dirty_type,
        "sequential_s": round(sequential_s, 4),
        "concurrent_s": round(concurrent_s, 4),
        "sequential_rps": round(requests / sequential_s, 1),
        "concurrent_rps": round(requests / concurrent_s, 1),
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_met": speedup >= SPEEDUP_FLOOR,
        "identical_to_direct_engine": not mismatches,
        "mismatches": mismatches,
        "coalescing": coalescing,
        "warm_path": {
            "trips": WARM_TRIPS,
            "sequential_rps": round(WARM_TRIPS / warm_sequential_s, 1),
            "concurrent_rps": round(WARM_TRIPS / warm_concurrent_s, 1),
        },
    }
    RESULT_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def check(payload):
    assert payload["identical_to_direct_engine"], (
        "served previews diverged from direct PreviewEngine.run at "
        f"generations {payload['mismatches']}"
    )
    assert payload["speedup"] >= payload["speedup_floor"], (
        f"{payload['clients']} coalesced concurrent clients only "
        f"{payload['speedup']:.2f}x faster than sequential mutate+query "
        f"round trips (floor {payload['speedup_floor']}x): concurrent "
        f"{payload['concurrent_s']:.3f}s vs sequential "
        f"{payload['sequential_s']:.3f}s"
    )
    coalescing = payload["coalescing"]
    assert coalescing["coalesced"] >= payload["rounds"], (
        f"coalescer deduplicated only {coalescing['coalesced']} requests "
        f"over {payload['rounds']} concurrent rounds"
    )


def test_serve_throughput(benchmark):
    payload = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    check(payload)


if __name__ == "__main__":
    result = run_benchmark()
    print(json.dumps(result, indent=2, sort_keys=True))
    check(result)
    print(
        f"{result['clients']} concurrent identical-query clients on "
        f"{result['domain']} under a live mutation stream: "
        f"{result['concurrent_rps']:.0f} req/s vs "
        f"{result['sequential_rps']:.0f} req/s sequential "
        f"({result['speedup']:.1f}x, floor {result['speedup_floor']}x); "
        f"{result['coalescing']['coalesced']} requests coalesced; warm "
        f"path {result['warm_path']['concurrent_rps']:.0f} req/s"
    )
