"""Table 10 — the Freebase gold standard, resolved against our domains.

The gold standard is data, not computation; this bench verifies that the
encoded Table 10 resolves losslessly against the generated schema graphs
(every gold key type exists; every gold attribute is a real candidate).
"""

from conftest import GOLD_DOMAINS, domain_schema

from repro.baselines import gold_preview
from repro.bench import write_result
from repro.core import render_preview
from repro.datasets import GOLD_STANDARD, gold_size_constraint


def build_table10():
    return {domain: gold_preview(domain, domain_schema(domain)) for domain in GOLD_DOMAINS}


def test_table10_gold_standard(benchmark):
    previews = benchmark.pedantic(build_table10, rounds=1, iterations=1)

    lines = ["Table 10: Freebase gold standard resolved against our schemas"]
    for domain, preview in previews.items():
        k, n = gold_size_constraint(domain)
        assert preview.table_count == 6
        # Every gold attribute resolved (the generator plants them all).
        assert preview.attribute_count == n
        for table in preview.tables:
            gold_attrs = set(GOLD_STANDARD[domain][table.key])
            assert {attr.name for attr in table.nonkey} == gold_attrs
        lines.append(f"\nDomain={domain}, k={k}, n={n}")
        lines.append(render_preview(preview))
    write_result("table10_gold_standard.txt", "\n".join(lines))
