#!/usr/bin/env python3
"""Run the doctest suites of the doctest-bearing modules.

``python -m doctest src/repro/engine/engine.py`` cannot work directly —
the file uses relative imports, and doctest's CLI imports it as a
top-level script.  This wrapper gives the same behavior through a
proper package import: each module below is imported as part of the
``repro`` package and its docstring examples are executed with
:func:`doctest.testmod`.

Usage::

    PYTHONPATH=src python tools/run_doctests.py

Exits non-zero if any example fails, printing doctest's usual report.
New modules that gain ``>>>`` examples should be added to
:data:`MODULES`.
"""

from __future__ import annotations

import doctest
import importlib
import sys
from pathlib import Path

#: Modules whose docstrings carry runnable examples.
MODULES = (
    "repro",
    "repro.engine.engine",
    "repro.engine.query",
    "repro.store.triple_store",
    "repro.serve.protocol",
    "repro.workload.generator",
)


def main() -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    total_attempted = 0
    total_failed = 0
    for name in MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        total_attempted += result.attempted
        total_failed += result.failed
        status = "ok" if result.failed == 0 else "FAILED"
        print(f"{name}: {result.attempted} example(s), {result.failed} failed [{status}]")
        if result.attempted == 0:
            print(f"{name}: no examples found — drop it from MODULES or add some")
            total_failed += 1
    if total_failed:
        print(f"run_doctests: {total_failed} failure(s) over {total_attempted} examples")
        return 1
    print(f"run_doctests: all {total_attempted} examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
