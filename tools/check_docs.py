#!/usr/bin/env python3
"""Verify that ``file:symbol`` references in the docs still resolve.

The docs (``docs/paper-map.md`` above all) anchor paper constructs to
code with inline references of the form::

    `src/repro/core/apriori.py:apriori_discover`
    `src/repro/ext/incremental.py:IncrementalEntityGraph.add_entity`

This checker extracts every such reference — plus every bare
`` `path/to/file.py` `` code span — from the given markdown files and
resolves it against the repository: the file must exist, and the symbol
must be a module-level ``def``/``class``/assignment in that file's AST
(or, for a dotted ``Class.method`` form, a member of that class).  A
rename that orphans a reference fails CI until the doc is updated.

Usage::

    python tools/check_docs.py [docs/paper-map.md docs/architecture.md ...]

With no arguments, every ``docs/*.md`` file is checked.  Exits non-zero
listing each dangling reference.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: `path/to/file.py:Symbol` or `path/to/file.py:Class.method` in a code span.
SYMBOL_REF = re.compile(r"`([\w./-]+\.py):([A-Za-z_][\w]*(?:\.[A-Za-z_][\w]*)?)`")
#: Bare `path/to/file.py` code spans (existence-checked only).
FILE_REF = re.compile(r"`([\w./-]+\.py)`")


def module_symbols(path: Path) -> Tuple[Set[str], Dict[str, Set[str]]]:
    """Top-level symbol names and per-class member names of one module."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    top: Set[str] = set()
    members: Dict[str, Set[str]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            top.add(node.name)
        elif isinstance(node, ast.ClassDef):
            top.add(node.name)
            names: Set[str] = set()
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(item.name)
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names.add(item.target.id)
            members[node.name] = names
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    top.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            top.add(node.target.id)
    return top, members


def check_document(doc: Path) -> List[str]:
    """Every dangling reference in ``doc``, as human-readable problems."""
    text = doc.read_text(encoding="utf-8")
    problems: List[str] = []
    cache: Dict[Path, Tuple[Set[str], Dict[str, Set[str]]]] = {}

    for match in SYMBOL_REF.finditer(text):
        rel, symbol = match.groups()
        target = REPO_ROOT / rel
        if not target.is_file():
            problems.append(f"{doc.name}: `{rel}:{symbol}` — no such file {rel}")
            continue
        if target not in cache:
            cache[target] = module_symbols(target)
        top, members = cache[target]
        if "." in symbol:
            class_name, member = symbol.split(".", 1)
            if class_name not in members:
                problems.append(
                    f"{doc.name}: `{rel}:{symbol}` — no class {class_name!r} in {rel}"
                )
            elif member not in members[class_name]:
                problems.append(
                    f"{doc.name}: `{rel}:{symbol}` — class {class_name!r} has no "
                    f"member {member!r}"
                )
        elif symbol not in top:
            problems.append(
                f"{doc.name}: `{rel}:{symbol}` — no top-level symbol "
                f"{symbol!r} in {rel}"
            )

    for match in FILE_REF.finditer(text):
        rel = match.group(1)
        if not (REPO_ROOT / rel).is_file():
            problems.append(f"{doc.name}: `{rel}` — no such file")

    return problems


def main(argv: List[str]) -> int:
    if argv:
        docs = [Path(arg) for arg in argv]
    else:
        docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    if not docs:
        print("check_docs: no documents to check", file=sys.stderr)
        return 1
    problems: List[str] = []
    checked = 0
    for doc in docs:
        if not doc.is_file():
            problems.append(f"{doc}: document does not exist")
            continue
        checked += 1
        problems.extend(check_document(doc))
    if problems:
        print(f"check_docs: {len(problems)} dangling reference(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"check_docs: all references resolve across {checked} document(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
