"""Dataset profiling: the statistics a data worker inspects before
committing to a dataset — and the aggregates our generators are tuned to.

Produces per-domain profiles covering:

* size (entities, relationships, types) — the Table 2 shape;
* type population distribution (Zipf-ness, skew, top types);
* degree distribution of entities;
* schema-graph topology (diameter, average path length, density,
  distance histogram) — the quantities Sec. 6.2 quotes when discussing
  why certain distance constraints are (un)selective.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..graph import average_path_length, diameter
from ..model.entity_graph import EntityGraph
from ..model.schema_graph import SchemaGraph


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-plus-mean summary of a non-empty numeric sample."""

    count: int
    minimum: float
    median: float
    mean: float
    p90: float
    maximum: float

    @classmethod
    def of(cls, values: List[float]) -> "DistributionSummary":
        """Summarize ``values`` into distribution statistics."""
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)
        n = len(ordered)
        return cls(
            count=n,
            minimum=ordered[0],
            median=ordered[n // 2],
            mean=sum(ordered) / n,
            p90=ordered[min(n - 1, int(0.9 * n))],
            maximum=ordered[-1],
        )


@dataclass(frozen=True)
class SchemaTopology:
    """Topological profile of a schema graph."""

    entity_types: int
    relationship_types: int
    diameter: int
    average_path_length: float
    density: float
    distance_histogram: Dict[int, int]

    def pairs_within(self, d: int) -> float:
        """Fraction of finite-distance pairs at distance <= d."""
        total = sum(self.distance_histogram.values())
        if total == 0:
            return 0.0
        close = sum(
            count for dist, count in self.distance_histogram.items() if dist <= d
        )
        return close / total


@dataclass(frozen=True)
class DatasetProfile:
    """Full profile of one entity graph."""

    name: str
    entities: int
    relationships: int
    type_populations: Dict[str, int]
    population_summary: DistributionSummary
    degree_summary: DistributionSummary
    zipf_exponent: float
    topology: SchemaTopology

    def top_types(self, count: int = 5) -> List[Tuple[str, int]]:
        """The ``count`` most frequent types, most frequent first."""
        return sorted(
            self.type_populations.items(), key=lambda item: (-item[1], item[0])
        )[:count]


def schema_topology(schema: SchemaGraph) -> SchemaTopology:
    """Compute the schema graph's topological profile."""
    graph = schema.multigraph()
    oracle = schema.distance_oracle()
    types = schema.entity_types()
    histogram: Counter = Counter()
    for i, a in enumerate(types):
        for b in types[i + 1:]:
            d = oracle.distance(a, b)
            if d != math.inf:
                histogram[int(d)] += 1
    k = schema.entity_type_count
    max_edges = k * (k - 1) if k > 1 else 1
    return SchemaTopology(
        entity_types=k,
        relationship_types=schema.relationship_type_count,
        diameter=diameter(graph) if k else 0,
        average_path_length=average_path_length(graph),
        density=schema.relationship_type_count / max_edges,
        distance_histogram=dict(histogram),
    )


def estimate_zipf_exponent(populations: List[int]) -> float:
    """Least-squares slope of log(count) vs. log(rank) (negated).

    Returns 0.0 for degenerate inputs (fewer than two distinct counts).
    """
    ordered = sorted((p for p in populations if p > 0), reverse=True)
    if len(ordered) < 2 or ordered[0] == ordered[-1]:
        return 0.0
    xs = [math.log(rank + 1) for rank in range(len(ordered))]
    ys = [math.log(count) for count in ordered]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        return 0.0
    return -(cov / var)


def profile_dataset(entity_graph: EntityGraph) -> DatasetProfile:
    """Profile an entity graph (sizes, skew, degrees, schema topology)."""
    schema = SchemaGraph.from_entity_graph(entity_graph)
    populations = {
        t: entity_graph.type_count(t) for t in entity_graph.entity_types()
    }
    degrees: Counter = Counter()
    for source, target, _rel in entity_graph.relationships():
        degrees[source] += 1
        degrees[target] += 1
    degree_values = [float(degrees.get(e, 0)) for e in entity_graph.entities()]
    return DatasetProfile(
        name=entity_graph.name,
        entities=entity_graph.entity_count,
        relationships=entity_graph.edge_count,
        type_populations=populations,
        population_summary=DistributionSummary.of(
            [float(v) for v in populations.values()]
        ),
        degree_summary=DistributionSummary.of(degree_values),
        zipf_exponent=estimate_zipf_exponent(list(populations.values())),
        topology=schema_topology(schema),
    )


def profile_report(profile: DatasetProfile) -> str:
    """Human-readable profile report (used by the CLI-style examples)."""
    lines = [
        f"dataset: {profile.name}",
        f"  entities: {profile.entities}   relationships: {profile.relationships}",
        f"  entity types: {profile.topology.entity_types}   "
        f"relationship types: {profile.topology.relationship_types}",
        f"  type population: median={profile.population_summary.median:.0f} "
        f"p90={profile.population_summary.p90:.0f} "
        f"max={profile.population_summary.maximum:.0f} "
        f"(zipf ~ {profile.zipf_exponent:.2f})",
        f"  entity degree: mean={profile.degree_summary.mean:.1f} "
        f"p90={profile.degree_summary.p90:.0f} "
        f"max={profile.degree_summary.maximum:.0f}",
        f"  schema: diameter={profile.topology.diameter} "
        f"avg path={profile.topology.average_path_length:.2f} "
        f"density={profile.topology.density:.3f}",
        "  top types: "
        + ", ".join(f"{t} ({c})" for t, c in profile.top_types(5)),
    ]
    return "\n".join(lines)
