"""Dataset analysis: profiling and statistics for entity graphs."""

from .profiling import (
    DatasetProfile,
    DistributionSummary,
    SchemaTopology,
    estimate_zipf_exponent,
    profile_dataset,
    profile_report,
    schema_topology,
)

__all__ = [
    "DatasetProfile",
    "DistributionSummary",
    "SchemaTopology",
    "estimate_zipf_exponent",
    "profile_dataset",
    "profile_report",
    "schema_topology",
]
