"""Multi-replica serving: mutation-log replication over JSON lines.

The replication tier promotes the per-generation
:class:`~repro.model.mutation_log.MutationLog` into a wire-streamable
replication log (ROADMAP: "Multi-replica serve tier").  Three roles,
all speaking the existing :mod:`repro.serve` protocol:

* **writer** (:class:`WriterHost` + :class:`WriterService`) — the one
  host that applies mutations; each mutation's wire params and dirty
  :class:`~repro.model.mutation_log.MutationDelta` are retained in a
  bounded window and pushed to subscribers via the ``subscribe``
  streaming op (snapshot bootstrap for subscribers behind the window);
* **replica** (:class:`ReplicaHost` + :class:`ReplicaService`) — warm
  read-only engines that apply streamed deltas in generation order
  (buffering reordered frames, skipping reconnect duplicates) and honor
  ``min_generation`` read-your-writes tokens;
* **router** (:class:`RouterService`) — the engine-less front end that
  consistent-hashes reads across replicas (with ``affinity`` pinning
  and failover), sends mutations to the writer, and aggregates
  per-replica lag in its ``stats`` op.

The safety net is the differential conformance harness: the
``replicated`` replay path (:mod:`repro.workload.replay`) drives a full
writer + replicas + router topology and must stay byte-identical to the
from-scratch serial oracle at every generation.  See
``docs/replication.md``.
"""

from .replica import ReplicaHost, ReplicaService
from .router import RouterService, build_ring, preference_list
from .snapshot import capture_snapshot, restore_snapshot
from .writer import WriterHost, WriterService

__all__ = [
    "ReplicaHost",
    "ReplicaService",
    "RouterService",
    "WriterHost",
    "WriterService",
    "build_ring",
    "capture_snapshot",
    "preference_list",
    "restore_snapshot",
]
