"""Graph snapshots: the bootstrap path for late-joining replicas.

The replication stream ships one framed delta per mutation, but a
subscriber whose baseline generation fell behind the writer's retained
window cannot catch up delta-by-delta — the per-entry history is gone
(see :meth:`~repro.model.mutation_log.MutationLog.horizon`).  Such a
subscriber receives one *snapshot* record instead: the writer's full
extensional graph content plus the generation it was captured at.

The codec must preserve more than set-equality.  Preview payloads are
diffed byte-for-byte across replicas, and tie-breaks downstream depend
on deterministic iteration orders (entity insertion order, type and
relationship-type first-seen order).  :func:`capture_snapshot` therefore
records entities and relationships in their live insertion order, with
each entity's types sorted by the *global* first-seen index — replaying
them in :func:`restore_snapshot` provably reproduces every first-seen
order the original graph had (a multi-new-type entity's types occupy
consecutive global positions in caller order, so the sort keeps their
relative order intact).  The restored graph's
:func:`~repro.datasets.loader.graph_fingerprint` is checked against the
one captured, and its mutation log is
:meth:`~repro.model.mutation_log.MutationLog.fast_forward`-ed to the
snapshot generation so subsequent stream deltas line up.
"""

from __future__ import annotations

from typing import Any, Dict

from ..datasets.loader import graph_fingerprint
from ..exceptions import ModelError, ReplicationError
from ..model.entity_graph import EntityGraph
from ..model.ids import RelationshipTypeId

#: Format marker + version carried by every snapshot record.
SNAPSHOT_KIND = "repro-graph-snapshot"
SNAPSHOT_VERSION = 1


def capture_snapshot(graph: EntityGraph, generation: int) -> Dict[str, Any]:
    """One JSON-ready snapshot of ``graph`` as of ``generation``.

    ``generation`` is the writer's generation at capture time (the
    graph must not mutate concurrently — the writer captures under its
    write-excluding read lock, on the host's worker thread).

    The record shape::

        {"kind": "repro-graph-snapshot", "version": 1,
         "name": ..., "generation": ..., "fingerprint": "sha256:...",
         "type_order": [type, ...],              # global first-seen order
         "entities": [[id, [type_index, ...]], ...],   # insertion order
         "relationships": [[src, tgt, name, st, tt], ...]}  # insertion order
    """
    type_order = graph.entity_types()
    type_index = {type_name: i for i, type_name in enumerate(type_order)}
    entities = [
        [entity, sorted(type_index[t] for t in graph.types_of(entity))]
        for entity in graph.entities()
    ]
    relationships = [
        [source, target, rel.name, rel.source_type, rel.target_type]
        for source, target, rel in graph.relationships()
    ]
    return {
        "kind": SNAPSHOT_KIND,
        "version": SNAPSHOT_VERSION,
        "name": graph.name,
        "generation": generation,
        "fingerprint": graph_fingerprint(graph),
        "type_order": type_order,
        "entities": entities,
        "relationships": relationships,
    }


def restore_snapshot(record: Dict[str, Any]) -> EntityGraph:
    """Rebuild the :class:`EntityGraph` a snapshot record describes.

    The restored graph's fingerprint must equal the captured one, and
    its mutation log is fast-forwarded to the snapshot generation (an
    empty delta window — a replica restored from a snapshot patches
    nothing, it *is* the snapshot state).

    Raises
    ------
    ReplicationError
        For a malformed record, an unsupported version, or a restored
        graph whose fingerprint does not match the captured one.
    """
    if not isinstance(record, dict) or record.get("kind") != SNAPSHOT_KIND:
        raise ReplicationError("not a graph snapshot record")
    if record.get("version") != SNAPSHOT_VERSION:
        raise ReplicationError(
            f"unsupported snapshot version {record.get('version')!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    generation = record.get("generation")
    if not isinstance(generation, int) or isinstance(generation, bool) or generation < 0:
        raise ReplicationError("snapshot 'generation' must be a non-negative integer")
    type_order = record.get("type_order")
    if not isinstance(type_order, list) or not all(
        isinstance(t, str) for t in type_order
    ):
        raise ReplicationError("snapshot 'type_order' must be a string array")
    name = record.get("name")
    if not isinstance(name, str):
        raise ReplicationError("snapshot 'name' must be a string")

    graph = EntityGraph(name=name)
    try:
        for entry in record.get("entities", ()):
            entity, indexes = entry
            graph.add_entity(entity, [type_order[i] for i in indexes])
        for entry in record.get("relationships", ()):
            source, target, rel_name, source_type, target_type = entry
            graph.add_relationship(
                source,
                target,
                RelationshipTypeId(
                    name=rel_name, source_type=source_type, target_type=target_type
                ),
            )
    except (TypeError, ValueError, IndexError, KeyError, ModelError) as exc:
        raise ReplicationError(f"malformed snapshot content: {exc}") from exc

    expected = record.get("fingerprint")
    actual = graph_fingerprint(graph)
    if expected != actual:
        raise ReplicationError(
            f"snapshot fingerprint mismatch: captured {expected}, "
            f"restored {actual} — the snapshot is corrupt or the codec drifted"
        )
    # Renumber: replaying the snapshot used fewer mutations than the
    # writer ever applied, but stream deltas are stamped with *writer*
    # generations.
    graph.mutation_log.fast_forward(generation)
    return graph
