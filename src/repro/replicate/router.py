"""The front-end router of the replication tier.

A :class:`RouterService` owns no engines at all: it terminates client
connections with the standard JSON-line framing/admission machinery
(:class:`~repro.serve.service.LineService`) and forwards each request
to a backend — mutations to the single writer, reads to a replica
chosen per dataset by consistent hashing.  Responses pass through
payload-identically: backends encode results with the same canonical
JSON the router re-encodes them with, so a routed read is byte-for-byte
the response the replica produced.

Routing is deterministic.  Each dataset hashes onto a sha256-based ring
(virtual nodes per replica; Python's randomized ``hash`` is useless
here — two router processes must agree), yielding a stable preference
list of replicas.  A read carrying an ``affinity`` integer (the
workload generator tags multi-client ops with their client id) picks
``preference[affinity % len]``, pinning each logical client to one
replica — which is what makes cross-client read-after-write visible:
client A's untokened read after client B's write may land on a replica
that has not applied it yet, unless the read carries B's generation
token.  Reads fail over down the preference list on connection errors.
"""

from __future__ import annotations

import asyncio
import hashlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ProtocolError, ServeError
from ..serve.protocol import decode_frame, encode_frame
from ..serve.service import LineService

#: Virtual nodes per backend on the consistent-hash ring.
VNODES = 64


def _ring_hash(text: str) -> int:
    """A process-stable 64-bit hash (sha256 prefix, not ``hash()``)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


def build_ring(backends: Sequence[str]) -> List[Tuple[int, str]]:
    """The sorted consistent-hash ring over backend labels."""
    ring = [
        (_ring_hash(f"{backend}#{vnode}"), backend)
        for backend in backends
        for vnode in range(VNODES)
    ]
    ring.sort()
    return ring


def preference_list(ring: List[Tuple[int, str]], key: str) -> List[str]:
    """Distinct backends in ring order starting at ``key``'s successor."""
    if not ring:
        return []
    point = _ring_hash(key)
    start = 0
    while start < len(ring) and ring[start][0] < point:
        start += 1
    seen: List[str] = []
    for offset in range(len(ring)):
        backend = ring[(start + offset) % len(ring)][1]
        if backend not in seen:
            seen.append(backend)
    return seen


class _Backend:
    """One lazily-connected JSON-line backend (writer or replica)."""

    def __init__(self, address: Tuple[str, int]) -> None:
        self.address = address
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        # Lazily bound (3.9 loop affinity, as serve.locks).
        self._lock: Optional[asyncio.Lock] = None

    @property
    def label(self) -> str:
        """The stable ``host:port`` label used on the hash ring."""
        return f"{self.address[0]}:{self.address[1]}"

    async def call(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip, serialized per backend.

        Raises
        ------
        ServeError
            On transport failure (the connection is dropped so the
            next call reconnects; callers fail over or surface it).
        """
        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.open_connection(
                        *self.address, limit=1 << 26
                    )
                self._writer.write(encode_frame(frame))
                await self._writer.drain()
                line = await self._reader.readline()
            except (ConnectionError, OSError) as exc:
                await self._drop()
                raise ServeError(
                    f"backend {self.label} failed mid-request: {exc}"
                ) from exc
            if not line:
                await self._drop()
                raise ServeError(f"backend {self.label} closed the connection")
            return decode_frame(line, max_frame=1 << 26)

    async def _drop(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - already broken
                pass
        self._reader = None
        self._writer = None

    async def aclose(self) -> None:
        """Drop the connection (idempotent)."""
        await self._drop()


class RouterService(LineService):
    """Consistent-hash front end over one writer and N replicas.

    Parameters
    ----------
    writer:
        The writer service's ``(host, port)`` address.
    replicas:
        Replica service addresses (reads route here; empty means reads
        fall back to the writer).
    datasets:
        The dataset names this router admits (requests for any other
        name answer ``unknown-dataset``).
    max_pending, request_timeout, max_frame:
        See :class:`~repro.serve.service.LineService`.

    Raises
    ------
    ServeError
        When constructed with no datasets.
    """

    def __init__(
        self,
        writer: Tuple[str, int],
        replicas: Sequence[Tuple[str, int]],
        datasets: Sequence[str],
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not datasets:
            raise ServeError("a RouterService needs at least one dataset name")
        self.datasets = tuple(datasets)
        self._writer_backend = _Backend(writer)
        self._replica_backends = {
            backend.label: backend
            for backend in (_Backend(address) for address in replicas)
        }
        read_pool = self._replica_backends or {
            self._writer_backend.label: self._writer_backend
        }
        self._read_pool = read_pool
        ring = build_ring(sorted(read_pool))
        #: dataset -> replica preference list (stable, hash-ring order).
        self._preferences: Dict[str, List[str]] = {
            dataset: preference_list(ring, dataset) for dataset in self.datasets
        }
        self._routed = {"writer": 0, "replica": 0, "failover": 0}

    async def aclose(self) -> None:
        """Close client connections and every backend connection."""
        await super().aclose()
        await self._writer_backend.aclose()
        for backend in self._replica_backends.values():
            await backend.aclose()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _check_dataset(self, request) -> str:
        dataset = request.dataset
        if dataset is None:
            if len(self.datasets) == 1:
                return self.datasets[0]
            raise ProtocolError(
                "bad-request",
                f"this router serves {len(self.datasets)} datasets; "
                f"the request must name one of {sorted(self.datasets)}",
            )
        if dataset not in self.datasets:
            raise ProtocolError(
                "unknown-dataset",
                f"unknown dataset {dataset!r}; "
                f"routed: {', '.join(sorted(self.datasets))}",
            )
        return dataset

    async def _forward(
        self,
        backend: _Backend,
        request,
        params: Dict[str, Any],
        dataset: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Ship one request to ``backend``; unwrap its response.

        Backend error responses re-raise as :class:`ProtocolError` with
        the backend's own code, which the line loop maps straight back
        onto the wire — the router is transparent to error semantics.
        """
        frame: Dict[str, Any] = {
            "op": request.op,
            "id": request.id,
            "params": params,
        }
        if dataset is not None:
            frame["dataset"] = dataset
        response = await backend.call(frame)
        if response.get("ok"):
            result = response.get("result")
            if not isinstance(result, dict):  # pragma: no cover - backend bug
                raise ProtocolError(
                    "internal", f"backend {backend.label} returned a bare result"
                )
            return result
        error = response.get("error") or {}
        raise ProtocolError(
            str(error.get("code", "internal")),
            str(error.get("message", f"backend {backend.label} failed")),
        )

    async def _dispatch(self, request) -> Dict[str, Any]:
        if request.op == "health":
            return {"status": "ok", "datasets": sorted(self.datasets)}
        if request.op == "stats":
            return await self._stats_op(request)
        dataset = self._check_dataset(request)
        if request.op == "mutate":
            self._routed["writer"] += 1
            return await self._forward(
                self._writer_backend, request, dict(request.params), dataset
            )
        if request.op in ("preview", "sweep"):
            return await self._routed_read(dataset, request)
        raise ProtocolError(
            "bad-request",
            f"op {request.op!r} is not supported by this router",
        )

    async def _routed_read(self, dataset: str, request) -> Dict[str, Any]:
        """Forward a read to its replica, failing over down the list."""
        params = dict(request.params)
        affinity = params.pop("affinity", None)
        preference = self._preferences[dataset]
        if (
            affinity is not None
            and isinstance(affinity, int)
            and not isinstance(affinity, bool)
        ):
            preference = (
                preference[affinity % len(preference):]
                + preference[: affinity % len(preference)]
            )
        last_error: Optional[ServeError] = None
        for label in preference:
            backend = self._read_pool[label]
            try:
                result = await self._forward(backend, request, params, dataset)
            except ServeError as exc:
                if isinstance(exc, ProtocolError):
                    raise  # a structured backend answer, not an outage
                last_error = exc
                self._routed["failover"] += 1
                continue
            self._routed["replica"] += 1
            return result
        raise last_error if last_error is not None else ProtocolError(
            "internal", f"no replica available for dataset {dataset!r}"
        )

    async def _stats_op(self, request) -> Dict[str, Any]:
        """Aggregate router, writer and per-replica stats.

        The writer's generation is authoritative; each replica's lag is
        recomputed here as ``writer_generation - replica_generation``
        (never negative), so the surface stays meaningful even when a
        replica has not heard from the writer recently.
        """
        writer_stats: Optional[Dict[str, Any]] = None
        writer_generation: Optional[int] = None
        try:
            writer_stats = await self._forward(
                self._writer_backend, request, {}
            )
            datasets = writer_stats.get("datasets") or []
            generations = [
                d.get("replication", {}).get("generation")
                for d in datasets
                if isinstance(d, dict)
            ]
            generations = [g for g in generations if isinstance(g, int)]
            if generations:
                writer_generation = max(generations)
        except ServeError:
            pass  # the writer being down must not break stats
        replicas = []
        for label in sorted(self._read_pool):
            if label == self._writer_backend.label and self._replica_backends:
                continue
            backend = self._read_pool[label]
            entry: Dict[str, Any] = {"backend": label}
            try:
                stats = await self._forward(backend, request, {})
            except ServeError as exc:
                entry["error"] = str(exc)
                replicas.append(entry)
                continue
            entry["service"] = stats.get("service")
            entry["datasets"] = stats.get("datasets")
            if writer_generation is not None:
                lags = []
                for d in entry.get("datasets") or []:
                    generation = (
                        d.get("replication", {}).get("generation")
                        if isinstance(d, dict)
                        else None
                    )
                    if isinstance(generation, int):
                        lags.append(max(0, writer_generation - generation))
                if lags:
                    entry["lag"] = max(lags)
            replicas.append(entry)
        service = self.stats()
        service["routed"] = dict(self._routed)
        return {
            "service": service,
            "writer": writer_stats,
            "writer_generation": writer_generation,
            "replicas": replicas,
            "preferences": {k: list(v) for k, v in self._preferences.items()},
        }
