"""The read-replica side of the replication tier.

A :class:`ReplicaHost` is an :class:`~repro.serve.EngineHost` whose
graph advances only by applying writer-originated deltas (its ``mutate``
answers ``read-only``).  Queries accept an optional ``min_generation``
read-your-writes token: the host blocks the query until its graph
reaches that generation, answering ``lagging`` when it cannot in time.

A :class:`ReplicaService` runs one background subscription task per
hosted dataset: it connects to the upstream writer, sends a
``subscribe`` request from the replica's current generation, and feeds
the resulting stream — snapshot bootstrap, backlog, live deltas — into
its host.  Connection loss (including a writer-side ``lagging`` kick)
triggers reconnect-with-resync from whatever generation the replica
reached, so a replica killed mid-stream converges after rejoining.

Deltas can arrive out of order when the transport between writer and
replica reorders lines (the fault suite injects exactly that), so
:meth:`ReplicaHost.apply_delta` buffers ahead-of-sequence entries and
applies them strictly in generation order; duplicates (replayed on
reconnect) are skipped idempotently.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, Optional, Tuple

from ..exceptions import ProtocolError, ReplicationError
from ..ext.incremental import IncrementalEntityGraph
from ..model.ids import RelationshipTypeId
from ..serve.host import EngineHost, parse_mutation
from ..serve.protocol import decode_frame, encode_frame
from ..serve.service import PreviewService
from .snapshot import restore_snapshot


class ReplicaHost(EngineHost):
    """A read-only host kept warm by the writer's delta stream."""

    role = "replica"

    #: Budget for a ``min_generation`` wait before answering ``lagging``.
    REPLICA_WAIT_SECONDS = 5.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Lazily bound for the same 3.9 loop-affinity reason as
        # serve.locks.ReadWriteLock: hosts are built off-loop.
        self._caught_up: Optional[asyncio.Condition] = None
        #: Ahead-of-sequence deltas keyed by generation (reordered wire).
        self._pending_deltas: Dict[int, Dict[str, Any]] = {}
        self._last_writer_generation = self.graph.generation
        self._applied = 0
        self._snapshots = 0
        self._resyncs = 0

    def _condition(self) -> asyncio.Condition:
        if self._caught_up is None:
            self._caught_up = asyncio.Condition()
        return self._caught_up

    # ------------------------------------------------------------------
    # Stream ingestion (called by ReplicaService's subscription task)
    # ------------------------------------------------------------------
    def note_writer_generation(self, generation: int) -> None:
        """Record the writer's generation for lag accounting."""
        if generation > self._last_writer_generation:
            self._last_writer_generation = generation

    async def apply_delta(self, entry: Dict[str, Any]) -> None:
        """Apply one writer delta entry (idempotent, order-restoring).

        ``entry`` is the writer's record: ``{"generation": g, "params":
        <wire mutation params>, "dirty": <MutationDelta record>}``.
        Entries at or below the replica generation are skipped
        (reconnect replays overlap); entries ahead of the next expected
        generation are buffered until the gap fills.

        Raises
        ------
        ReplicationError
            For a malformed entry, or when the locally computed dirty
            delta disagrees with the writer's shipped one (a divergence
            the conformance harness must never see — the caller
            resyncs from scratch).
        """
        generation = entry.get("generation")
        if not isinstance(generation, int) or isinstance(generation, bool):
            raise ReplicationError("delta entry needs an integer 'generation'")
        params = entry.get("params")
        if not isinstance(params, dict):
            raise ReplicationError("delta entry needs a 'params' object")
        if generation <= self.graph.generation:
            return  # duplicate from a reconnect overlap
        self._pending_deltas[generation] = entry
        while True:
            expected = self.graph.generation + 1
            pending = self._pending_deltas.pop(expected, None)
            if pending is None:
                return
            await self._apply_one(pending)

    async def _apply_one(self, entry: Dict[str, Any]) -> None:
        """Apply the next-in-sequence delta under the write lock."""
        kind, fields = parse_mutation(entry["params"])
        shipped = entry.get("dirty")

        def apply() -> Tuple[int, Dict[str, Any]]:
            before = self.graph.generation
            if kind == "entity":
                entity, types = fields
                self.graph.add_entity(entity, types)
            else:
                source, target, rel_name, source_type, target_type = fields
                self.graph.add_relationship(
                    source,
                    target,
                    RelationshipTypeId(
                        name=rel_name,
                        source_type=source_type,
                        target_type=target_type,
                    ),
                )
            return self.graph.generation, self.graph.dirty_since(before).to_record()

        async with self._lock.write_locked():
            generation, dirty = await self._on_worker(apply)
            self._mutations += 1
            self._applied += 1
            self._responses.clear()
        if generation != entry["generation"]:
            raise ReplicationError(
                f"replica applied generation {generation} but the writer "
                f"stamped {entry['generation']} — the streams diverged"
            )
        if shipped is not None and shipped != dirty:
            raise ReplicationError(
                f"dirty-delta mismatch at generation {generation}: writer "
                f"shipped {shipped}, replica computed {dirty}"
            )
        self.note_writer_generation(generation)
        condition = self._condition()
        async with condition:
            condition.notify_all()

    async def bootstrap(self, snapshot: Dict[str, Any]) -> None:
        """Replace this host's graph wholesale from a snapshot record.

        The snapshot-bootstrap path for a replica too far behind to
        catch up delta-by-delta: the restored graph (fingerprint
        verified, log fast-forwarded to the snapshot generation)
        replaces the live one, the engine is rebuilt against it, and
        every cache is dropped.

        Raises
        ------
        ReplicationError
            From :func:`~repro.replicate.snapshot.restore_snapshot`,
            or when the snapshot is older than the replica (bootstrap
            never rewinds a graph).
        """
        def rebuild() -> int:
            restored = restore_snapshot(snapshot)
            if restored.generation < self.graph.generation:
                raise ReplicationError(
                    f"snapshot at generation {restored.generation} is older "
                    f"than the replica at {self.graph.generation}"
                )
            self.graph = IncrementalEntityGraph(base=restored)
            self.engine = self.graph.engine(self.key_scorer, self.nonkey_scorer)
            return restored.generation

        async with self._lock.write_locked():
            generation = await self._on_worker(rebuild)
            self._snapshots += 1
            self._responses.clear()
            self._pending_deltas.clear()
        self.note_writer_generation(generation)
        condition = self._condition()
        async with condition:
            condition.notify_all()

    def note_resync(self) -> None:
        """Count one reconnect-with-resync (stats surface)."""
        self._resyncs += 1
        self._pending_deltas.clear()

    # ------------------------------------------------------------------
    # Read-your-writes admission
    # ------------------------------------------------------------------
    async def _admit_read(self, params: Dict[str, Any]) -> None:
        """Block until the graph reaches the request's generation token.

        Raises
        ------
        ProtocolError
            ``bad-request`` for a malformed token, ``lagging`` when the
            replica cannot reach it within the wait budget.
        """
        token = params.get("min_generation")
        if token is None:
            return
        if not isinstance(token, int) or isinstance(token, bool) or token < 0:
            raise ProtocolError(
                "bad-request",
                "param 'min_generation' must be a non-negative integer",
            )
        if self.graph.generation >= token:
            return
        condition = self._condition()

        async def wait_caught_up() -> None:
            async with condition:
                while self.graph.generation < token:
                    await condition.wait()

        try:
            await asyncio.wait_for(wait_caught_up(), self.REPLICA_WAIT_SECONDS)
        except asyncio.TimeoutError:
            raise ProtocolError(
                "lagging",
                f"replica is at generation {self.graph.generation}, below the "
                f"requested {token} (waited {self.REPLICA_WAIT_SECONDS}s)",
            ) from None

    async def preview(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Answer a ``preview`` once the generation token is satisfied."""
        await self._admit_read(params)
        return await super().preview(params)

    async def sweep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Answer a ``sweep`` once the generation token is satisfied."""
        await self._admit_read(params)
        return await super().sweep(params)

    async def mutate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Reject: replicas never originate mutations."""
        raise ProtocolError(
            "read-only",
            f"dataset {self.name!r} is a read replica; "
            "send mutations to the writer",
        )

    def encoded_response(self, op: str, params: Dict[str, Any]) -> Optional[bytes]:
        """The warm fast path, disabled while behind a generation token."""
        token = params.get("min_generation")
        if isinstance(token, int) and not isinstance(token, bool):
            if token > self.graph.generation:
                return None  # must wait: take the async path
        return super().encoded_response(op, params)

    def replication_stats(self) -> Dict[str, Any]:
        """Replica-side replication counters for the ``stats`` op."""
        stats = super().replication_stats()
        generation = self.graph.generation
        stats.update(
            lag=max(0, self._last_writer_generation - generation),
            writer_generation=self._last_writer_generation,
            applied=self._applied,
            snapshots=self._snapshots,
            resyncs=self._resyncs,
        )
        return stats


class ReplicaService(PreviewService):
    """A read-only service that follows one upstream writer.

    Parameters
    ----------
    hosts:
        The :class:`ReplicaHost` set (as for
        :class:`~repro.serve.PreviewService`).
    upstream:
        The writer service's ``(host, port)`` address.
    max_pending, request_timeout, max_frame:
        As for :class:`~repro.serve.PreviewService`.
    """

    #: Delay before reconnecting a broken subscription, seconds.
    RECONNECT_SECONDS = 0.2

    #: Stream buffer limit for the upstream connection — generous,
    #: because one line can carry a whole graph snapshot.
    STREAM_LIMIT = 1 << 26

    def __init__(self, hosts, upstream: Tuple[str, int], **kwargs) -> None:
        super().__init__(hosts, **kwargs)
        self.upstream = upstream
        self._subscriptions: list = []

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind, then launch one subscription task per hosted dataset."""
        await super().start(host, port)
        for name, replica in self._hosts.items():
            self._subscriptions.append(
                asyncio.ensure_future(self._subscription_loop(name, replica))
            )

    async def aclose(self) -> None:
        """Cancel the subscription tasks, then close like any service."""
        for task in self._subscriptions:
            task.cancel()
        if self._subscriptions:
            await asyncio.gather(*self._subscriptions, return_exceptions=True)
        self._subscriptions.clear()
        await super().aclose()

    async def _subscription_loop(self, name: str, replica: ReplicaHost) -> None:
        """Keep one dataset subscribed to the writer, forever.

        Each pass opens a connection, subscribes from the replica's
        current generation, and consumes stream frames until the
        connection breaks or the writer kicks; then it resyncs and
        reconnects.  Incoming lines are dispatched by *shape* (the
        ``stream`` key vs the ``ok`` acknowledgement), so a transport
        that delivers the acknowledgement late never desynchronizes
        the loop.
        """
        first = True
        while True:
            if not first:
                replica.note_resync()
                await asyncio.sleep(self.RECONNECT_SECONDS)
            first = False
            try:
                reader, writer = await asyncio.open_connection(
                    *self.upstream, limit=self.STREAM_LIMIT
                )
            except OSError:
                continue
            try:
                writer.write(
                    encode_frame(
                        {
                            "op": "subscribe",
                            "dataset": name,
                            "params": {
                                "from_generation": replica.graph.generation
                            },
                        }
                    )
                )
                await writer.drain()
                while True:
                    line = await reader.readline()
                    if not line:
                        break  # writer went away: resync
                    frame = decode_frame(line, max_frame=self.STREAM_LIMIT)
                    if await self._consume_frame(replica, frame):
                        break  # kicked: resync
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                ProtocolError,
                ReplicationError,
            ):
                pass  # fall through to resync
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    async def _consume_frame(
        self, replica: ReplicaHost, frame: Dict[str, Any]
    ) -> bool:
        """Handle one upstream frame; True when the stream must restart.

        Raises
        ------
        ReplicationError
            From delta/snapshot application (divergence, corruption) —
            the loop treats it as a resync trigger.
        """
        stream = frame.get("stream")
        if stream == "delta":
            entry = frame.get("delta")
            if not isinstance(entry, dict):
                raise ReplicationError("delta frame without a 'delta' object")
            await replica.apply_delta(entry)
            return False
        if stream == "snapshot":
            snapshot = frame.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ReplicationError(
                    "snapshot frame without a 'snapshot' object"
                )
            await replica.bootstrap(snapshot)
            return False
        if stream == "lagging":
            return True
        if frame.get("ok"):
            result = frame.get("result") or {}
            writer_generation = result.get("writer_generation")
            if isinstance(writer_generation, int):
                replica.note_writer_generation(writer_generation)
            return False
        if frame.get("ok") is False:
            error = frame.get("error") or {}
            raise ReplicationError(
                f"writer rejected the subscription: "
                f"[{error.get('code')}] {error.get('message')}"
            )
        raise ReplicationError(f"unrecognized stream frame: {sorted(frame)}")
