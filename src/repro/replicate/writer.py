"""The single-writer side of the replication tier.

A :class:`WriterHost` is an :class:`~repro.serve.EngineHost` that, in
addition to applying mutations locally, retains a bounded window of
per-mutation replication entries (generation, wire params, dirty-type
delta) and fans each new entry out to every attached subscriber queue.
A :class:`WriterService` is a :class:`~repro.serve.PreviewService`
whose ``subscribe`` op upgrades the connection to a server-push stream:
one acknowledgement response, an optional snapshot record (when the
subscriber's baseline fell behind the retained window), the backlog of
retained deltas, then live deltas as mutations land.

Backpressure is Redis-style: a subscriber whose bounded queue overflows
is *kicked* (it receives a ``lagging`` stream frame and its connection
closes) rather than ever stalling the writer's mutation path — the
replica reconnects and resyncs, from the delta backlog or a snapshot.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .. import config
from ..exceptions import ProtocolError
from ..model.ids import RelationshipTypeId
from ..serve.host import EngineHost, parse_mutation
from ..serve.protocol import encode_frame, error_response, ok_response
from ..serve.service import PreviewService
from .snapshot import capture_snapshot


class _Subscriber:
    """One attached replica stream: a bounded delta queue + kick flag."""

    def __init__(self, queue_size: int) -> None:
        self.queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue(
            maxsize=queue_size
        )
        self.kicked = False


class WriterHost(EngineHost):
    """The authoritative host: mutations originate here, deltas fan out.

    Parameters
    ----------
    name, data, key_scorer, nonkey_scorer, jobs:
        As for :class:`~repro.serve.EngineHost`.
    window:
        Replication-log entries retained for delta catch-up; defaults
        to the ``REPRO_REPLICATION_WINDOW`` knob.  A subscriber whose
        baseline predates the window bootstraps from a snapshot.
    queue_size:
        Bound on each subscriber's pending-delta queue; overflow kicks
        the subscriber instead of stalling the mutation path.
    """

    role = "writer"

    def __init__(
        self,
        name: str,
        data,
        key_scorer: str = "coverage",
        nonkey_scorer: str = "coverage",
        jobs: int = 1,
        window: Optional[int] = None,
        queue_size: int = 256,
    ) -> None:
        super().__init__(
            name,
            data,
            key_scorer=key_scorer,
            nonkey_scorer=nonkey_scorer,
            jobs=jobs,
        )
        self._repl_window = (
            window if window is not None else config.replication_window()
        )
        self._repl_queue_size = queue_size
        #: Retained per-mutation entries: {"generation", "params", "dirty"}.
        self._repl_entries: Deque[Dict[str, Any]] = deque()
        #: Highest generation no longer retained (snapshot territory).
        self._repl_horizon = self.graph.generation
        self._subscribers: List[_Subscriber] = []
        self._kicked = 0

    # ------------------------------------------------------------------
    # Mutation path (overrides EngineHost.mutate to log + broadcast)
    # ------------------------------------------------------------------
    async def mutate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one mutation, retain its delta entry, fan it out.

        The broadcast happens inside the write-locked section, on the
        event loop, after the graph mutation completed on the worker
        thread — so subscribers observe entries in strict generation
        order and a query admitted after the mutation's response can
        never race the entry's enqueue.
        """
        kind, fields = parse_mutation(params)

        def apply():
            before = self.graph.generation
            if kind == "entity":
                entity, types = fields
                self.graph.add_entity(entity, types)
            else:
                source, target, rel_name, source_type, target_type = fields
                self.graph.add_relationship(
                    source,
                    target,
                    RelationshipTypeId(
                        name=rel_name,
                        source_type=source_type,
                        target_type=target_type,
                    ),
                )
            return self.graph.generation, self.graph.dirty_since(before).to_record()

        async with self._lock.write_locked():
            generation, dirty = await self._on_worker(apply)
            self._mutations += 1
            self._responses.clear()
            entry = {"generation": generation, "params": dict(params), "dirty": dirty}
            self._repl_entries.append(entry)
            if len(self._repl_entries) > self._repl_window:
                dropped = self._repl_entries.popleft()
                self._repl_horizon = dropped["generation"]
            self._broadcast(entry)
        return {"kind": kind, "generation": generation}

    def _broadcast(self, entry: Dict[str, Any]) -> None:
        """Enqueue ``entry`` on every live subscriber; kick the full ones."""
        for subscriber in list(self._subscribers):
            try:
                subscriber.queue.put_nowait(entry)
            except asyncio.QueueFull:
                subscriber.kicked = True
                self._kicked += 1
                self._subscribers.remove(subscriber)
                # Wake the stream task so it can deliver the kick: the
                # sentinel always fits because the reader drains nothing
                # else once kicked.
                while True:
                    try:
                        subscriber.queue.put_nowait({"kicked": True})
                        break
                    except asyncio.QueueFull:  # pragma: no cover - defensive
                        subscriber.queue.get_nowait()

    # ------------------------------------------------------------------
    # Subscription attach (called by WriterService under the read lock)
    # ------------------------------------------------------------------
    def attach_subscriber(self) -> _Subscriber:
        """Register a new subscriber queue (event-loop thread only)."""
        subscriber = _Subscriber(self._repl_queue_size)
        self._subscribers.append(subscriber)
        return subscriber

    def detach_subscriber(self, subscriber: _Subscriber) -> None:
        """Remove a subscriber (idempotent; kicked ones already left)."""
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)

    def backlog_since(self, generation: int) -> List[Dict[str, Any]]:
        """Retained entries after ``generation``, oldest first."""
        return [
            entry
            for entry in self._repl_entries
            if entry["generation"] > generation
        ]

    @property
    def replication_horizon(self) -> int:
        """Highest generation already dropped from the retained window."""
        return self._repl_horizon

    def replication_stats(self) -> Dict[str, Any]:
        """Writer-side replication counters for the ``stats`` op."""
        stats = super().replication_stats()
        stats.update(
            subscribers=len(self._subscribers),
            log_entries=len(self._repl_entries),
            horizon=self._repl_horizon,
            kicked=self._kicked,
        )
        return stats


class WriterService(PreviewService):
    """A :class:`PreviewService` whose writer hosts accept ``subscribe``.

    The ``subscribe`` op upgrades its connection to a push stream (see
    :mod:`repro.replicate.writer`); every other op behaves exactly as
    on a standalone service.
    """

    STREAMING_OPS = ("subscribe",)

    #: When set, bound the per-subscriber transport buffer (user-space
    #: high-water mark) and the kernel send buffer, in bytes.  A slow
    #: subscriber then exerts backpressure at its bounded delta queue —
    #: where overflow is detected and kicks — instead of ballooning
    #: megabytes of frames inside the writer process and the kernel.
    STREAM_HIGH_WATER: Optional[int] = None
    STREAM_SNDBUF: Optional[int] = None

    def _bound_stream_buffers(self, writer: asyncio.StreamWriter) -> None:
        if self.STREAM_HIGH_WATER is not None:
            writer.transport.set_write_buffer_limits(
                high=self.STREAM_HIGH_WATER
            )
        if self.STREAM_SNDBUF is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                import socket as socket_module

                sock.setsockopt(
                    socket_module.SOL_SOCKET,
                    socket_module.SO_SNDBUF,
                    self.STREAM_SNDBUF,
                )

    async def _open_stream(self, request, writer: asyncio.StreamWriter) -> None:
        """Serve one replication stream until the subscriber leaves.

        Protocol: the acknowledgement response, then ``{"stream":
        "snapshot"|"delta"|"lagging", ...}`` frames.  Validation errors
        answer a normal error response and close the connection.
        """
        self._counters["requests"] += 1
        self._bound_stream_buffers(writer)
        try:
            host = self._resolve_host(request)
            if not isinstance(host, WriterHost):
                raise ProtocolError(
                    "bad-request",
                    f"dataset {host.name!r} is not writable on this service "
                    "(subscribe targets the writer role)",
                )
            baseline = request.params.get("from_generation", 0)
            if (
                not isinstance(baseline, int)
                or isinstance(baseline, bool)
                or baseline < 0
            ):
                raise ProtocolError(
                    "bad-request",
                    "param 'from_generation' must be a non-negative integer",
                )
        except ProtocolError as exc:
            self._counters["errors"] += 1
            await self._reply(writer, error_response(request.id, exc.code, str(exc)))
            return
        subscriber = None
        try:
            # The read lock excludes mutations, so the generation read,
            # the optional snapshot capture, the backlog collection and
            # the subscriber attach are one atomic cut: every mutation
            # after it reaches the queue, every one before it is in the
            # snapshot/backlog, and none is in both.
            async with host._lock.read_locked():
                writer_generation = host.graph.generation
                if baseline > writer_generation:
                    self._counters["errors"] += 1
                    await self._reply(
                        writer,
                        error_response(
                            request.id,
                            "bad-request",
                            f"from_generation {baseline} is ahead of the "
                            f"writer generation {writer_generation}",
                        ),
                    )
                    return
                needs_snapshot = baseline < host.replication_horizon
                snapshot = None
                if needs_snapshot:
                    snapshot = await host._on_worker(
                        lambda: capture_snapshot(
                            host.graph.entity_graph, writer_generation
                        )
                    )
                backlog = host.backlog_since(
                    writer_generation if needs_snapshot else baseline
                )
                subscriber = host.attach_subscriber()
            self._counters["ok"] += 1
            frames = [
                encode_frame(
                    ok_response(
                        request.id,
                        "subscribe",
                        {
                            "dataset": host.name,
                            "from": baseline,
                            "writer_generation": writer_generation,
                            "snapshot": needs_snapshot,
                        },
                    )
                )
            ]
            if snapshot is not None:
                frames.append(
                    encode_frame({"stream": "snapshot", "snapshot": snapshot})
                )
            frames.extend(
                encode_frame({"stream": "delta", "delta": entry})
                for entry in backlog
            )
            writer.write(b"".join(frames))
            await writer.drain()
            while True:
                entry = await subscriber.queue.get()
                if subscriber.kicked:
                    await self._reply(
                        writer,
                        {
                            "stream": "lagging",
                            "message": (
                                "subscriber queue overflowed; reconnect "
                                "and resync"
                            ),
                        },
                    )
                    return
                await self._reply(writer, {"stream": "delta", "delta": entry})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # subscriber went away; detach below
        finally:
            if subscriber is not None:
                host.detach_subscriber(subscriber)
