"""Pearson correlation coefficient (Eq. 4) and effect-size bands.

The crowd study (Sec. 6.1.3) correlates two 50-element lists — rank
differences under a scoring measure vs. vote differences from workers —
with the PCC, interpreting [0.5, 1.0] as strong, [0.3, 0.5) as medium and
[0.1, 0.3) as small positive correlation (Cohen's conventions).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..exceptions import EvaluationError


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """PCC of two equal-length sequences (Eq. 4).

    Returns 0.0 when either sequence has zero variance (no linear
    relationship is expressible), matching common statistical-package
    behaviour for degenerate inputs.
    """
    if len(x) != len(y):
        raise EvaluationError(
            f"sequences must have equal length, got {len(x)} and {len(y)}"
        )
    n = len(x)
    if n == 0:
        raise EvaluationError("sequences must be non-empty")
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y)) / n
    var_x = sum((a - mean_x) ** 2 for a in x) / n
    var_y = sum((b - mean_y) ** 2 for b in y) / n
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def correlation_strength(pcc: float) -> str:
    """Cohen's qualitative band for a PCC value (as quoted in Sec. 6.1.3)."""
    magnitude = abs(pcc)
    if magnitude >= 0.5:
        band = "strong"
    elif magnitude >= 0.3:
        band = "medium"
    elif magnitude >= 0.1:
        band = "small"
    else:
        return "negligible"
    return band if pcc > 0 else f"{band} negative"
