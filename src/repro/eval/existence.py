"""Existence-test questions and approach presentations (Sec. 6.3.1).

The user study asks Boolean questions of the form "Based on this schema
summary, I know the dataset provides the awards of a musician" — i.e.
whether a specific (entity type, relationship) fact exists.  This module
provides:

* :class:`Fact` — the unit of schema knowledge a summary can convey
  (an entity type, or an attribute of an entity type);
* :class:`ApproachPresentation` — what one approach actually shows a
  participant: its fact set, its display size (the reading-effort driver)
  and whether it shows *all* attributes of the types it includes;
* :func:`generate_questions` — a seeded question generator producing the
  paper's mix: positive facts (weighted toward prominent relationships,
  which is what study designers ask about) and fabricated negatives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple, Union

from ..baselines.schema_graph_baseline import present_schema_graph
from ..baselines.yps09.summarizer import YPS09Summary
from ..core.preview import Preview
from ..exceptions import EvaluationError
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph

#: ("type", entity type) or ("attr", entity type, attribute surface name).
Fact = Union[Tuple[str, TypeId], Tuple[str, TypeId, str]]


def type_fact(type_name: TypeId) -> Fact:
    """The existence fact asserting ``type_name`` is shown."""
    return ("type", type_name)


def attr_fact(type_name: TypeId, attr_name: str) -> Fact:
    """The existence fact asserting an attribute of a type is shown."""
    return ("attr", type_name, attr_name)


@dataclass(frozen=True)
class ApproachPresentation:
    """What a participant sees when using one approach."""

    name: str
    facts: FrozenSet[Fact]
    display_items: int
    #: True when every included type shows all of its attributes
    #: (YPS09 tables and the raw schema graph do; previews do not).
    full_coverage: bool

    def shows(self, fact: Fact) -> bool:
        """Whether this preview exhibits ``fact``."""
        return fact in self.facts

    def shows_type(self, type_name: TypeId) -> bool:
        """Whether this preview exhibits entity type ``type_name``."""
        return ("type", type_name) in self.facts


def presentation_from_preview(name: str, preview: Preview) -> ApproachPresentation:
    """Presentation of a preview-based approach (Concise/Tight/Diverse/...)."""
    facts = set()
    display = 0
    for table in preview.tables:
        facts.add(type_fact(table.key))
        display += 1
        for attribute in table.nonkey:
            facts.add(attr_fact(table.key, attribute.name))
            # An attribute also reveals the entity type on its far end.
            facts.add(type_fact(attribute.target_type()))
            display += 1
    return ApproachPresentation(
        name=name, facts=frozenset(facts), display_items=display, full_coverage=False
    )


def presentation_from_yps09(
    name: str, summary: YPS09Summary, schema: SchemaGraph
) -> ApproachPresentation:
    """Presentation of the YPS09 summary: k centers, *all* their columns."""
    facts = set()
    display = 0
    for center in summary.centers:
        facts.add(type_fact(center))
        display += 1
        for attribute in schema.candidate_attributes(center):
            facts.add(attr_fact(center, attribute.name))
            facts.add(type_fact(attribute.target_type()))
            display += 1
    return ApproachPresentation(
        name=name, facts=frozenset(facts), display_items=display, full_coverage=True
    )


def presentation_from_schema_graph(
    name: str, schema: SchemaGraph
) -> ApproachPresentation:
    """Presentation of the raw schema graph: everything, at full size."""
    presentation = present_schema_graph(schema)
    facts = set()
    for type_name in presentation.entity_types:
        facts.add(type_fact(type_name))
    for rel in presentation.relationship_types:
        facts.add(attr_fact(rel.source_type, rel.name))
        facts.add(attr_fact(rel.target_type, rel.name))
    return ApproachPresentation(
        name=name,
        facts=frozenset(facts),
        display_items=presentation.display_items,
        full_coverage=True,
    )


@dataclass(frozen=True)
class ExistenceQuestion:
    """One Boolean question plus its ground-truth answer."""

    fact: Fact
    answer: bool


def all_attribute_facts(schema: SchemaGraph) -> List[Tuple[Fact, int]]:
    """Every true (type, attribute) fact with its coverage weight."""
    facts: List[Tuple[Fact, int]] = []
    for type_name in schema.entity_types():
        for attribute in schema.candidate_attributes(type_name):
            weight = schema.relationship_count(attribute.rel_type)
            facts.append((attr_fact(type_name, attribute.name), weight))
    return facts


def generate_questions(
    schema: SchemaGraph,
    count: int,
    seed: int = 0,
    positive_fraction: float = 0.5,
) -> List[ExistenceQuestion]:
    """Seeded existence questions: weighted positives, fabricated negatives.

    Positives sample true attribute facts proportionally to relationship
    coverage (questions about a domain naturally target its prominent
    relationships).  Negatives pair real entity types with attribute
    names drawn from *other* types — plausible-sounding but false, the
    paper's style of distractor.
    """
    if count < 1:
        raise EvaluationError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    weighted = all_attribute_facts(schema)
    if not weighted:
        raise EvaluationError("schema has no attribute facts to ask about")
    facts = [fact for fact, _ in weighted]
    weights = [weight for _, weight in weighted]
    all_names = sorted({fact[2] for fact in facts})
    true_set = set(facts)
    types = schema.entity_types()

    questions: List[ExistenceQuestion] = []
    positives = round(count * positive_fraction)
    for _ in range(positives):
        fact = rng.choices(facts, weights=weights, k=1)[0]
        questions.append(ExistenceQuestion(fact=fact, answer=True))
    while len(questions) < count:
        type_name = types[rng.randrange(len(types))]
        attr_name = all_names[rng.randrange(len(all_names))]
        candidate = attr_fact(type_name, attr_name)
        if candidate in true_set:
            continue
        questions.append(ExistenceQuestion(fact=candidate, answer=False))
    rng.shuffle(questions)
    return questions
