"""Simulated seven-approach user study (Sec. 6.3).

Builds the seven approaches the paper compares — Concise, Tight, Diverse,
Freebase (gold), Experts, YPS09, Graph — over a generated domain, then
simulates participants answering existence tests and user-experience
questionnaires.  Sample sizes match Table 5 (10-13 participants per
approach, 4 questions per domain).

Behavioural model (the substitution DESIGN.md documents):

* **Accuracy** — a participant answers a positive question correctly with
  high probability when its fact is visible in the summary, and at
  guess-level probability otherwise; negative questions are answered
  correctly with high probability when the summary shows the full
  attribute set of the type in question (they can verify absence), and at
  a reduced probability otherwise.  Reading clutter (display size) erodes
  all of these.  Approach accuracy therefore *emerges* from what each
  approach actually shows, rather than being hard-coded.
* **Time** — log-normal per-question times whose median grows with the
  square root of display size, scaled by a per-approach coherence factor
  (tables with one clear hub read faster than scattered ones).
* **Likert** — perception priors (see :mod:`repro.eval.likert`).
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..baselines.gold_tables import expert_preview, gold_preview
from ..baselines.yps09.summarizer import YPS09Summarizer
from ..core.constraints import DistanceConstraint, SizeConstraint
from ..core.apriori import apriori_discover
from ..core.dynamic_prog import dynamic_programming_discover
from ..datasets.freebase_like import load_domain, load_schema
from ..datasets.gold_standard import gold_size_constraint
from ..exceptions import EvaluationError
from ..scoring.preview_score import ScoringContext
from .existence import (
    ApproachPresentation,
    ExistenceQuestion,
    generate_questions,
    presentation_from_preview,
    presentation_from_schema_graph,
    presentation_from_yps09,
)
from .hypothesis_tests import ZTestResult, two_proportion_z_test
from .likert import LikertResponse, mean_scores, simulate_response

#: The seven approaches, in the paper's presentation order.
APPROACHES = ("Concise", "Tight", "Diverse", "Freebase", "Experts", "YPS09", "Graph")

#: Participants per approach — reproduces Table 5's sample sizes
#: (responses = participants × 4 questions).
PARTICIPANTS: Dict[str, int] = {
    "Concise": 13,
    "Tight": 12,
    "Diverse": 13,
    "Freebase": 11,
    "Experts": 12,
    "YPS09": 13,
    "Graph": 10,
}

#: Coherence multipliers for reading time (lower = faster).  Tight's hub
#: structure reads fastest; YPS09's wide tables and the raw graph slowest.
COHERENCE: Dict[str, float] = {
    "Tight": 0.78,
    "Freebase": 0.88,
    "Concise": 1.00,
    "Diverse": 1.05,
    "Experts": 1.12,
    "YPS09": 1.30,
    "Graph": 1.45,
}

#: Distance constraints used for the study's tight/diverse previews (the
#: values the efficiency experiments fix: d=2 tight, d=4 diverse).
TIGHT_D = 2
DIVERSE_D = 4

QUESTIONS_PER_DOMAIN = 4


@dataclass
class ApproachOutcome:
    """Everything recorded for one approach in one domain."""

    presentation: ApproachPresentation
    #: One entry per response: was the existence answer correct?
    correct: List[bool] = field(default_factory=list)
    #: Seconds spent per response.
    times: List[float] = field(default_factory=list)
    likert: List[LikertResponse] = field(default_factory=list)

    @property
    def sample_size(self) -> int:
        """Number of participants recorded."""
        return len(self.correct)

    @property
    def conversion_rate(self) -> float:
        """Fraction of participants who answered correctly."""
        if not self.correct:
            return 0.0
        return sum(self.correct) / len(self.correct)

    @property
    def median_time(self) -> float:
        """Median task-completion time (0.0 when no times recorded)."""
        if not self.times:
            return 0.0
        return statistics.median(self.times)


@dataclass
class UserStudyResult:
    """All outcomes for one domain."""

    domain: str
    outcomes: Dict[str, ApproachOutcome]

    def conversion_rates(self) -> Dict[str, Tuple[int, float]]:
        """Table 5 cells: approach -> (n, conversion rate)."""
        return {
            name: (outcome.sample_size, outcome.conversion_rate)
            for name, outcome in self.outcomes.items()
        }

    def median_times(self) -> Dict[str, float]:
        """Median completion time per study condition."""
        return {name: outcome.median_time for name, outcome in self.outcomes.items()}

    def time_ranking(self) -> List[str]:
        """Approaches by ascending median time (one Table 6 row)."""
        return sorted(self.outcomes, key=lambda name: self.outcomes[name].median_time)

    def pairwise_z_tests(self) -> Dict[Tuple[str, str], ZTestResult]:
        """Upper-triangle pairwise z-tests (Tables 7 / 13-16)."""
        tests = {}
        names = list(self.outcomes)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                oa, ob = self.outcomes[a], self.outcomes[b]
                tests[(a, b)] = two_proportion_z_test(
                    sum(oa.correct), oa.sample_size, sum(ob.correct), ob.sample_size
                )
        return tests

    def likert_means(self) -> Dict[str, Dict[str, float]]:
        """Per-approach Q1-Q4 means (one Table 17-21 block)."""
        return {
            name: mean_scores(outcome.likert)
            for name, outcome in self.outcomes.items()
        }


def build_approaches(
    domain: str, scale: int = 1000, seed: int = 0
) -> Dict[str, ApproachPresentation]:
    """Construct the seven approaches' presentations for ``domain``.

    Size budgets follow the paper: the automatic approaches use the same
    (K, N) as the domain's Freebase gold standard.
    """
    entity_graph = load_domain(domain, scale=scale, seed=seed)
    schema = load_schema(domain, scale=scale, seed=seed)
    k, n = gold_size_constraint(domain)
    n = max(n, k)
    context = ScoringContext(
        schema, entity_graph, key_scorer="coverage", nonkey_scorer="coverage"
    )
    size = SizeConstraint(k=k, n=n)

    concise = dynamic_programming_discover(context, size)
    tight = apriori_discover(context, size, DistanceConstraint.tight(TIGHT_D))
    diverse = apriori_discover(context, size, DistanceConstraint.diverse(DIVERSE_D))
    if concise is None:
        raise EvaluationError(f"no concise preview found for {domain!r}")

    presentations = {
        "Concise": presentation_from_preview("Concise", concise.preview),
        "Freebase": presentation_from_preview("Freebase", gold_preview(domain, schema)),
        "Experts": presentation_from_preview("Experts", expert_preview(domain, schema)),
        "Graph": presentation_from_schema_graph("Graph", schema),
    }
    if tight is not None:
        presentations["Tight"] = presentation_from_preview("Tight", tight.preview)
    else:  # fall back: tight constraint infeasible at this d
        presentations["Tight"] = presentations["Concise"]
    if diverse is not None:
        presentations["Diverse"] = presentation_from_preview("Diverse", diverse.preview)
    else:
        presentations["Diverse"] = presentations["Concise"]
    summarizer = YPS09Summarizer(entity_graph, schema)
    presentations["YPS09"] = presentation_from_yps09(
        "YPS09", summarizer.summarize(k), schema
    )
    return presentations


def _answer_probability(
    presentation: ApproachPresentation, question: ExistenceQuestion
) -> float:
    """Probability a participant answers ``question`` correctly."""
    clutter = min(0.30, presentation.display_items / 600.0)
    if question.answer:
        if presentation.shows(question.fact):
            return 0.96 - clutter * 0.5
        return 0.38
    # Negative question: absence is verifiable when the summary shows the
    # type's complete attribute list; otherwise absence-of-evidence only.
    type_name = question.fact[1]
    if presentation.full_coverage and presentation.shows_type(type_name):
        return 0.94 - clutter * 0.5
    return 0.84 - clutter * 0.5


def _question_time(
    presentation: ApproachPresentation, rng: random.Random
) -> float:
    """Seconds for one existence test (log-normal, clutter-scaled)."""
    coherence = COHERENCE.get(presentation.name, 1.0)
    median = (14.0 + 2.1 * math.sqrt(presentation.display_items)) * coherence
    return rng.lognormvariate(math.log(median), 0.35)


def run_user_study(
    domain: str,
    scale: int = 1000,
    seed: int = 0,
    questions_per_domain: int = QUESTIONS_PER_DOMAIN,
) -> UserStudyResult:
    """Simulate the study for one domain; fully deterministic per seed."""
    schema = load_schema(domain, scale=scale, seed=seed)
    presentations = build_approaches(domain, scale=scale, seed=seed)
    outcomes: Dict[str, ApproachOutcome] = {}
    for approach in APPROACHES:
        presentation = presentations[approach]
        rng = random.Random(
            (seed * 977 + hash_name(approach) * 31 + hash_name(domain)) % (2**31)
        )
        questions = generate_questions(
            schema,
            questions_per_domain * PARTICIPANTS[approach],
            seed=seed * 31 + hash_name(domain),
        )
        outcome = ApproachOutcome(presentation=presentation)
        for question in questions:
            p = _answer_probability(presentation, question)
            outcome.correct.append(rng.random() < p)
            outcome.times.append(_question_time(presentation, rng))
        for _participant in range(PARTICIPANTS[approach]):
            outcome.likert.append(simulate_response(approach, rng))
        outcomes[approach] = outcome
    return UserStudyResult(domain=domain, outcomes=outcomes)


def hash_name(name: str) -> int:
    """Stable small hash (``hash()`` is randomized per process)."""
    digest = 0
    for ch in name:
        digest = (digest * 131 + ord(ch)) % (2**31)
    return digest


def cross_domain_likert_ranking(
    results: Sequence[UserStudyResult],
) -> Dict[str, List[str]]:
    """Table 9: approaches sorted by average UX score across domains."""
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for result in results:
        for approach, means in result.likert_means().items():
            bucket = sums.setdefault(approach, {q: 0.0 for q in means})
            for question, value in means.items():
                bucket[question] += value
            counts[approach] = counts.get(approach, 0) + 1
    averages = {
        approach: {q: total / counts[approach] for q, total in bucket.items()}
        for approach, bucket in sums.items()
    }
    from .likert import QUESTION_KEYS, rank_approaches

    return {
        question: rank_approaches(averages, question) for question in QUESTION_KEYS
    }
