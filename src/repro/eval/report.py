"""One-call experiment report builder.

Bundles the headline evaluations — scoring accuracy (Figs. 5-7 / Table 3
compact forms), crowd correlation (Table 4), algorithm sanity, and the
user-study summary (Tables 5/6) — into a single Markdown report for one
or more domains.  This is the "regenerate the paper's story" entry point
(``examples/full_report.py``); the per-table/figure benches remain the
precise artifacts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines.yps09.summarizer import YPS09Summarizer
from ..datasets.freebase_like import load_domain, load_schema
from ..datasets.gold_standard import GOLD_STANDARD, gold_key_attributes
from ..scoring.preview_score import ScoringContext
from .crowd import measure_crowd_correlation, run_crowd_study
from .ranking_metrics import (
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
)
from .user_study import run_user_study


def _key_rankings(domain: str, scale: int, seed: int) -> Dict[str, List[str]]:
    graph = load_domain(domain, scale=scale, seed=seed)
    schema = load_schema(domain, scale=scale, seed=seed)
    coverage = ScoringContext(schema, graph, key_scorer="coverage")
    walk = ScoringContext(schema, graph, key_scorer="random_walk")
    yps = YPS09Summarizer(graph, schema)
    return {
        "coverage": [t for t, _ in coverage.ranked_key_types()],
        "random_walk": [t for t, _ in walk.ranked_key_types()],
        "yps09": yps.ranked_types(),
    }


def _nonkey_mrr(domain: str, scale: int, seed: int, scorer: str) -> float:
    graph = load_domain(domain, scale=scale, seed=seed)
    schema = load_schema(domain, scale=scale, seed=seed)
    context = ScoringContext(
        schema, graph, key_scorer="coverage", nonkey_scorer=scorer
    )
    rankings, golds = [], []
    for key_type, gold_attrs in GOLD_STANDARD[domain].items():
        candidates = context.sorted_candidates(key_type)
        if len(candidates) < 5:
            continue
        rankings.append([attr.name for attr, _ in candidates])
        golds.append(set(gold_attrs))
    return mean_reciprocal_rank(rankings, golds)


def domain_report(domain: str, scale: int = 1000, seed: int = 0) -> str:
    """A Markdown report for one gold-standard domain."""
    gold = set(gold_key_attributes(domain))
    rankings = _key_rankings(domain, scale, seed)
    schema = load_schema(domain, scale=scale, seed=seed)
    populations = {t: schema.entity_count(t) for t in schema.entity_types()}
    study = run_crowd_study(populations, seed=seed + 11)
    user = run_user_study(domain, scale=scale, seed=seed + 7)

    lines = [f"## Domain: {domain}", ""]
    lines.append("| measure | P@6 | nDCG@10 | crowd PCC |")
    lines.append("|---|---|---|---|")
    for label, key in (
        ("coverage", "coverage"),
        ("random walk", "random_walk"),
        ("YPS09", "yps09"),
    ):
        ranking = rankings[key]
        lines.append(
            f"| {label} | {precision_at_k(ranking, gold, 6):.2f} "
            f"| {ndcg_at_k(ranking, gold, 10):.2f} "
            f"| {measure_crowd_correlation(study, ranking):.2f} |"
        )
    lines.append("")
    lines.append(
        f"Non-key MRR: coverage {_nonkey_mrr(domain, scale, seed, 'coverage'):.2f}, "
        f"entropy {_nonkey_mrr(domain, scale, seed, 'entropy'):.2f}."
    )
    lines.append("")
    lines.append("| approach | n | conversion | median time (s) |")
    lines.append("|---|---|---|---|")
    times = user.median_times()
    for approach, (n, rate) in user.conversion_rates().items():
        lines.append(f"| {approach} | {n} | {rate:.3f} | {times[approach]:.1f} |")
    lines.append("")
    lines.append(f"Fastest-to-use ranking: {', '.join(user.time_ranking())}.")
    return "\n".join(lines)


def full_report(
    domains: Optional[Sequence[str]] = None, scale: int = 1000, seed: int = 0
) -> str:
    """The multi-domain Markdown report."""
    chosen = list(domains) if domains else list(GOLD_STANDARD)
    parts = [
        "# Preview tables — reproduction report",
        "",
        "Shape summary of the paper's evaluation on the synthetic "
        "Freebase-like domains (see EXPERIMENTS.md for the full "
        "per-table/figure artifacts).",
        "",
    ]
    for domain in chosen:
        parts.append(domain_report(domain, scale=scale, seed=seed))
        parts.append("")
    return "\n".join(parts)
