"""User-experience questionnaire (Table 8) and its simulation model.

Four Likert-scale questions follow the existence tests in each domain:
Q1 readability, Q2 perceived understanding, Q3 perceived helpfulness,
Q4 perceived completeness.  The paper's central observation is a
*mismatch* between perception and efficacy: complex presentations (Graph,
YPS09) inflate perceived understanding/completeness, and the objectively
fastest approach (Tight) leaves the worst readability impression.

Because perception cannot be derived from first principles, the simulator
encodes perception priors per (question, approach) calibrated to the
paper's Table 9 orderings and adds per-response noise; the downstream
aggregation (per-domain means, cross-domain ranking) is the paper's own
computation.  DESIGN.md records this as an explicit substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..exceptions import EvaluationError

#: Table 8, abbreviated question texts.
QUESTIONS: Tuple[str, ...] = (
    "Q1: How easy was it to read the schema summary of this domain?",
    "Q2: How much understanding of the data can you gain from the summary?",
    "Q3: How helpful was the summary in assisting you to understand the data?",
    "Q4: Is the schema summary missing important information?",
)

#: Likert option labels per question (Table 8), scores 1..5 in order.
OPTION_LABELS: Dict[str, Tuple[str, ...]] = {
    "Q1": ("Very hard", "Hard", "Neutral", "Easy", "Very easy"),
    "Q2": ("Very little", "A little", "Neutral", "Some", "Very much"),
    "Q3": (
        "Not helpful at all",
        "Did not help much",
        "Neutral",
        "Somewhat helpful",
        "Very helpful",
    ),
    "Q4": (
        "Provides very little important information",
        "Provides some important information",
        "Neutral",
        "Provides most of the important information",
        "Provides all important information",
    ),
}

#: Perception priors per question — calibrated to reproduce the paper's
#: Table 9 cross-domain orderings (higher = more favourable perception).
PERCEPTION_PRIORS: Dict[str, Dict[str, float]] = {
    "Q1": {
        "Freebase": 4.25,
        "Diverse": 4.05,
        "Graph": 3.95,
        "Experts": 3.87,
        "YPS09": 3.80,
        "Concise": 3.72,
        "Tight": 3.55,
    },
    "Q2": {
        "Graph": 4.45,
        "Freebase": 4.28,
        "YPS09": 4.16,
        "Diverse": 4.06,
        "Concise": 3.97,
        "Tight": 3.89,
        "Experts": 3.80,
    },
    "Q3": {
        "Graph": 4.40,
        "Freebase": 4.25,
        "YPS09": 4.14,
        "Diverse": 4.05,
        "Experts": 3.96,
        "Concise": 3.88,
        "Tight": 3.78,
    },
    "Q4": {
        "YPS09": 3.95,
        "Concise": 3.78,
        "Experts": 3.68,
        "Graph": 3.58,
        "Tight": 3.47,
        "Freebase": 3.38,
        "Diverse": 3.25,
    },
}

QUESTION_KEYS = ("Q1", "Q2", "Q3", "Q4")

#: Per-response Gaussian noise before clamping to the 1-5 scale.
RESPONSE_NOISE = 0.55


@dataclass(frozen=True)
class LikertResponse:
    """One participant's four answers (integers 1-5) for one domain."""

    scores: Tuple[int, int, int, int]

    def score_for(self, question: str) -> int:
        """The recorded 1-5 response for ``question``."""
        return self.scores[QUESTION_KEYS.index(question)]


def simulate_response(approach: str, rng: random.Random) -> LikertResponse:
    """Draw one participant's Q1-Q4 answers for ``approach``."""
    scores = []
    for question in QUESTION_KEYS:
        try:
            prior = PERCEPTION_PRIORS[question][approach]
        except KeyError:
            raise EvaluationError(
                f"no perception prior for approach {approach!r}"
            ) from None
        raw = rng.gauss(prior, RESPONSE_NOISE)
        scores.append(int(min(5, max(1, round(raw)))))
    return LikertResponse(scores=tuple(scores))


def mean_scores(responses: Sequence[LikertResponse]) -> Dict[str, float]:
    """Per-question mean scores (one Table 17-21 row)."""
    if not responses:
        raise EvaluationError("no responses to aggregate")
    means = {}
    for idx, question in enumerate(QUESTION_KEYS):
        means[question] = sum(r.scores[idx] for r in responses) / len(responses)
    return means


def rank_approaches(
    per_approach_means: Dict[str, Dict[str, float]], question: str
) -> List[str]:
    """Approaches by descending mean score on ``question`` (Table 9 rows)."""
    if question not in QUESTION_KEYS:
        raise EvaluationError(f"unknown question {question!r}")
    return sorted(
        per_approach_means,
        key=lambda approach: (-per_approach_means[approach][question], approach),
    )
