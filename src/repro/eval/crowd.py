"""Simulated crowd study for scoring-measure correlation (Sec. 6.1.3).

The paper collected 1,000 pairwise importance judgments per domain on
Amazon Mechanical Turk: 50 random pairs of entity types, 20 workers each,
screened for attention.  Since we have no crowd, we simulate one (the
substitution DESIGN.md documents):

* every entity type has a latent importance — the log of its entity
  population perturbed by a per-type bias term, modelling that human
  perception of importance tracks prevalence but not perfectly;
* each worker prefers the pair's higher-latent type with a Bradley-Terry
  / logistic choice probability, modelling individual noise.

The downstream computation is exactly the paper's: list ``X`` holds the
rank-position differences of the pair under the evaluated measure, list
``Y`` the difference in worker votes, and the result is their PCC.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..exceptions import EvaluationError
from ..model.ids import TypeId
from .correlation import pearson_correlation

#: The paper's study shape.
DEFAULT_PAIRS = 50
DEFAULT_WORKERS_PER_PAIR = 20


@dataclass(frozen=True)
class CrowdStudy:
    """Simulated pairwise judgments: pairs plus per-pair vote counts."""

    pairs: Tuple[Tuple[TypeId, TypeId], ...]
    #: votes[i] = (votes for pairs[i][0], votes for pairs[i][1])
    votes: Tuple[Tuple[int, int], ...]

    @property
    def total_opinions(self) -> int:
        """Total votes cast across all comparison pairs."""
        return sum(a + b for a, b in self.votes)


def latent_importance(
    populations: Dict[TypeId, int], rng: random.Random, bias_scale: float = 0.35
) -> Dict[TypeId, float]:
    """Latent perceived importance: log-population plus a stable bias."""
    return {
        type_name: math.log1p(count) + rng.gauss(0.0, bias_scale)
        for type_name, count in populations.items()
    }


def run_crowd_study(
    populations: Dict[TypeId, int],
    seed: int = 0,
    pairs: int = DEFAULT_PAIRS,
    workers_per_pair: int = DEFAULT_WORKERS_PER_PAIR,
    choice_sharpness: float = 1.2,
) -> CrowdStudy:
    """Simulate the AMT study over the given entity-type populations."""
    types = sorted(populations)
    if len(types) < 2:
        raise EvaluationError("need at least two entity types for pairs")
    rng = random.Random(seed)
    latent = latent_importance(populations, rng)
    chosen_pairs: List[Tuple[TypeId, TypeId]] = []
    seen = set()
    attempts = 0
    max_pairs = len(types) * (len(types) - 1) // 2
    target = min(pairs, max_pairs)
    while len(chosen_pairs) < target and attempts < 100 * target:
        attempts += 1
        a, b = rng.sample(types, 2)
        key = (a, b) if a <= b else (b, a)
        if key in seen:
            continue
        seen.add(key)
        chosen_pairs.append((a, b))
    votes: List[Tuple[int, int]] = []
    for a, b in chosen_pairs:
        delta = latent[a] - latent[b]
        p_a = 1.0 / (1.0 + math.exp(-choice_sharpness * delta))
        count_a = sum(1 for _ in range(workers_per_pair) if rng.random() < p_a)
        votes.append((count_a, workers_per_pair - count_a))
    return CrowdStudy(pairs=tuple(chosen_pairs), votes=tuple(votes))


def measure_crowd_correlation(
    study: CrowdStudy, ranking: Sequence[TypeId]
) -> float:
    """PCC between a measure's ranking and the crowd's votes (Table 4).

    ``X[i]`` is the rank-position difference of pair ``i``'s types under
    ``ranking`` (types absent from the ranking rank last); ``Y[i]`` is the
    vote difference.  Note the sign convention: a *better* rank is a
    *smaller* position, so X uses ``rank(b) - rank(a)`` to align with
    ``votes(a) - votes(b)``.
    """
    position = {type_name: i for i, type_name in enumerate(ranking)}
    worst = len(ranking)
    xs: List[float] = []
    ys: List[float] = []
    for (a, b), (votes_a, votes_b) in zip(study.pairs, study.votes):
        rank_a = position.get(a, worst)
        rank_b = position.get(b, worst)
        xs.append(float(rank_b - rank_a))
        ys.append(float(votes_a - votes_b))
    return pearson_correlation(xs, ys)
