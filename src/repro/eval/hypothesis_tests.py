"""Two-proportion one-tailed z-tests (Sec. 6.3.1, Tables 7 and 13-16).

The user study compares approaches pairwise: assuming each existence-test
response is a Bernoulli trial, the test statistic for approaches A and B
with observed conversion rates ``cA, cB`` over ``nA, nB`` responses is

    z = (cA - cB) / sqrt( p̂ (1 - p̂) (1/nA + 1/nB) )

with pooled ``p̂ = (cA nA + cB nB) / (nA + nB)``.  The p-value is
one-tailed in the direction of the observed difference (right-tailed for
``cA > cB``), and significance uses α = 0.1 as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import EvaluationError

#: Significance level used throughout the paper's user study.
DEFAULT_ALPHA = 0.1


def normal_cdf(z: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class ZTestResult:
    """Outcome of one pairwise two-proportion z-test."""

    z: float
    p_value: float
    alpha: float
    n_a: int
    n_b: int
    rate_a: float
    rate_b: float

    @property
    def significant(self) -> bool:
        """Whether the p-value clears the alpha level."""
        return self.p_value < self.alpha

    @property
    def winner(self) -> str:
        """``"A"``, ``"B"`` or ``"-"`` (no significant difference)."""
        if not self.significant:
            return "-"
        return "A" if self.z > 0 else "B"


def two_proportion_z_test(
    successes_a: int,
    n_a: int,
    successes_b: int,
    n_b: int,
    alpha: float = DEFAULT_ALPHA,
) -> ZTestResult:
    """One-tailed two-proportion z-test in the observed direction."""
    if n_a <= 0 or n_b <= 0:
        raise EvaluationError("sample sizes must be positive")
    if not 0 <= successes_a <= n_a or not 0 <= successes_b <= n_b:
        raise EvaluationError("successes must lie within [0, n]")
    rate_a = successes_a / n_a
    rate_b = successes_b / n_b
    pooled = (successes_a + successes_b) / (n_a + n_b)
    variance = pooled * (1.0 - pooled) * (1.0 / n_a + 1.0 / n_b)
    if variance <= 0.0:
        z = 0.0
        p_value = 0.5
    else:
        z = (rate_a - rate_b) / math.sqrt(variance)
        # Right-tailed when z > 0, left-tailed when z < 0 (the paper
        # tests in the direction of the observed difference).
        p_value = 1.0 - normal_cdf(z) if z > 0 else normal_cdf(z)
    return ZTestResult(
        z=z,
        p_value=p_value,
        alpha=alpha,
        n_a=n_a,
        n_b=n_b,
        rate_a=rate_a,
        rate_b=rate_b,
    )
