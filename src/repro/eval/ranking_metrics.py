"""Ranking accuracy metrics: P@K, Average Precision, nDCG, MRR (Sec. 6.1.2).

All metrics follow the paper's definitions:

* **P@K** — fraction of the top-K results that are gold;
* **AvgP@K** — ``Σ_{i<=K} P@i · rel_i / |gold|``;
* **nDCG@K** — ``DCG_K / IDCG_K`` with ``DCG_K = rel_1 + Σ_{i>=2} rel_i /
  log2(i)`` (the paper's formula, which uses ``log2(i)`` rather than the
  more common ``log2(i+1)``);
* **MRR** — mean over entity types of the reciprocal rank of the first
  gold answer;
* the **optimal** curves (topmost lines of Figs. 5-7) are the best value
  any ranking could achieve given ``|gold|``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Set, TypeVar

from ..exceptions import EvaluationError

T = TypeVar("T")


def _validate_k(k: int) -> None:
    if k < 1:
        raise EvaluationError(f"K must be at least 1, got {k}")


def precision_at_k(ranking: Sequence[T], gold: Set[T], k: int) -> float:
    """Fraction of the top-``k`` ranked items that are in ``gold``."""
    _validate_k(k)
    top = ranking[:k]
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in gold)
    return hits / k


def optimal_precision_at_k(gold_size: int, k: int) -> float:
    """Best possible P@K: all gold items ranked first."""
    _validate_k(k)
    return min(gold_size, k) / k


def average_precision(ranking: Sequence[T], gold: Set[T], k: int) -> float:
    """``AvgP@K = Σ_{i=1..K} P@i · rel_i / |gold|`` (the paper's Fig. 6)."""
    _validate_k(k)
    if not gold:
        return 0.0
    total = 0.0
    hits = 0
    for i, item in enumerate(ranking[:k], start=1):
        if item in gold:
            hits += 1
            total += hits / i
    return total / len(gold)


def optimal_average_precision(gold_size: int, k: int) -> float:
    """Best possible AvgP@K: gold items occupy ranks 1..min(gold, K)."""
    _validate_k(k)
    if gold_size == 0:
        return 0.0
    return min(gold_size, k) / gold_size


def dcg_at_k(relevances: Sequence[float], k: int) -> float:
    """``DCG_K = rel_1 + Σ_{i=2..K} rel_i / log2(i)`` (paper's formula)."""
    _validate_k(k)
    total = 0.0
    for i, rel in enumerate(relevances[:k], start=1):
        if i == 1:
            total += rel
        else:
            total += rel / math.log2(i)
    return total


def ndcg_at_k(ranking: Sequence[T], gold: Set[T], k: int) -> float:
    """nDCG@K with binary relevance against ``gold``."""
    _validate_k(k)
    relevances = [1.0 if item in gold else 0.0 for item in ranking[:k]]
    ideal = [1.0] * min(len(gold), k)
    idcg = dcg_at_k(ideal, k) if ideal else 0.0
    if idcg == 0.0:
        return 0.0
    return dcg_at_k(relevances, k) / idcg


def reciprocal_rank(ranking: Sequence[T], gold: Set[T]) -> float:
    """1 / rank of the first gold item; 0.0 when none appears."""
    for i, item in enumerate(ranking, start=1):
        if item in gold:
            return 1.0 / i
    return 0.0


def mean_reciprocal_rank(
    rankings: Iterable[Sequence[T]], golds: Iterable[Set[T]]
) -> float:
    """MRR across paired (ranking, gold) cases; 0.0 with no cases."""
    rr: List[float] = []
    for ranking, gold in zip(rankings, golds):
        rr.append(reciprocal_rank(ranking, gold))
    if not rr:
        return 0.0
    return sum(rr) / len(rr)


def precision_curve(ranking: Sequence[T], gold: Set[T], max_k: int) -> List[float]:
    """``[P@1, ..., P@max_k]`` — one Fig. 5 line."""
    return [precision_at_k(ranking, gold, k) for k in range(1, max_k + 1)]


def average_precision_curve(
    ranking: Sequence[T], gold: Set[T], max_k: int
) -> List[float]:
    """``[AvgP@1, ..., AvgP@max_k]`` — one Fig. 6 line."""
    return [average_precision(ranking, gold, k) for k in range(1, max_k + 1)]


def ndcg_curve(ranking: Sequence[T], gold: Set[T], max_k: int) -> List[float]:
    """``[nDCG@1, ..., nDCG@max_k]`` — one Fig. 7 line."""
    return [ndcg_at_k(ranking, gold, k) for k in range(1, max_k + 1)]
