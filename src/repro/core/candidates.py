"""Candidate bookkeeping shared by all discovery algorithms.

Implements the consequence of Theorem 3: in an optimal preview, a table
with key ``τ`` and ``m`` non-key attributes uses exactly the top-``m``
entries of the sorted candidate list ``Γτ``.  Given a fixed set of key
attributes, the best attribute allocation is therefore:

1. give every table its top-1 candidate (each table needs one);
2. fill the remaining ``n - k`` slots with the globally best remaining
   candidates ranked by weighted score ``S(τ) × Sτ(γ)`` — a k-way merge
   over the per-type sorted lists (Alg. 1 lines 5-14).

Attributes with zero (or negative-rounded-to-zero) marginal contribution
beyond the mandatory first are skipped: Definition 2 only upper-bounds the
attribute count, and a zero-score attribute never increases the score, so
dropping it leaves the preview optimal while keeping it minimal.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from ..model.attributes import NonKeyAttribute
from ..model.ids import TypeId
from ..scoring.preview_score import ScoringContext
from .constraints import SizeConstraint
from .preview import Preview, PreviewTable


def eligible_key_types(context: ScoringContext) -> List[TypeId]:
    """Entity types that can key a table (non-empty candidate list)."""
    return [
        type_name
        for type_name in context.schema.entity_types()
        if context.sorted_candidates(type_name)
    ]


def best_preview_for_keys(
    context: ScoringContext,
    keys: Sequence[TypeId],
    size: SizeConstraint,
) -> Optional[Tuple[Preview, float]]:
    """Best attribute allocation for a fixed key set, or None if infeasible.

    Infeasible means some key type has no candidate non-key attribute at
    all (an isolated schema vertex cannot form a table).  The returned
    score is exact under Eq. 1 / Eq. 2.
    """
    if len(set(keys)) != len(keys):
        return None
    per_key: List[List[Tuple[NonKeyAttribute, float]]] = []
    for key in keys:
        ranked = context.sorted_candidates(key)
        if not ranked:
            return None
        per_key.append(ranked)

    chosen: List[List[NonKeyAttribute]] = []
    score = 0.0
    # Mandatory top-1 per table (Alg. 1 line 8).
    heap: List[Tuple[float, int, int]] = []  # (-weighted, key_idx, rank)
    for key_idx, (key, ranked) in enumerate(zip(keys, per_key)):
        top_attr, top_score = ranked[0]
        chosen.append([top_attr])
        key_weight = context.key_score(key)
        score += key_weight * top_score
        if len(ranked) > 1:
            weighted = key_weight * ranked[1][1]
            heapq.heappush(heap, (-weighted, key_idx, 1))

    # Merge-fill the remaining n - k slots (Alg. 1 lines 11-14).
    remaining = size.n - size.k
    while remaining > 0 and heap:
        neg_weighted, key_idx, rank = heapq.heappop(heap)
        weighted = -neg_weighted
        if weighted <= 0.0:
            break  # zero-score candidates never improve the preview
        attr = per_key[key_idx][rank][0]
        chosen[key_idx].append(attr)
        score += weighted
        remaining -= 1
        next_rank = rank + 1
        if next_rank < len(per_key[key_idx]):
            key_weight = context.key_score(keys[key_idx])
            next_weighted = key_weight * per_key[key_idx][next_rank][1]
            heapq.heappush(heap, (-next_weighted, key_idx, next_rank))

    preview = Preview(
        tables=tuple(
            PreviewTable(key=key, nonkey=tuple(attrs))
            for key, attrs in zip(keys, chosen)
        )
    )
    return preview, score


def upper_bound_for_keys(
    context: ScoringContext, keys: Sequence[TypeId], size: SizeConstraint
) -> float:
    """A cheap upper bound on the best score achievable with ``keys``.

    Used for pruning: each table independently takes its best
    ``n - (k - 1)`` candidates.  Never below the true optimum.
    """
    cap = size.max_attributes_per_table
    return sum(context.top_m_table_score(key, cap) for key in keys)
