"""Candidate bookkeeping shared by all discovery algorithms.

Implements the consequence of Theorem 3: in an optimal preview, a table
with key ``τ`` and ``m`` non-key attributes uses exactly the top-``m``
entries of the sorted candidate list ``Γτ``.  Given a fixed set of key
attributes, the best attribute allocation is therefore:

1. give every table its top-1 candidate (each table needs one);
2. fill the remaining ``n - k`` slots with the globally best remaining
   candidates ranked by weighted score ``S(τ) × Sτ(γ)`` — a k-way merge
   over the per-type sorted lists (Alg. 1 lines 5-14).

All reads go through the context's :class:`~repro.scoring.CandidatePool`
— flat arrays of sorted candidates, weighted scores and prefix sums
computed once per context — so repeated allocations (the hot loop of the
brute-force/Apriori/B&B algorithms) never rebuild dictionaries or sorts.

Attributes with zero (or negative-rounded-to-zero) marginal contribution
beyond the mandatory first are skipped: Definition 2 only upper-bounds the
attribute count, and a zero-score attribute never increases the score, so
dropping it leaves the preview optimal while keeping it minimal.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from .. import kernel
from ..exceptions import UnknownTypeError
from ..model.ids import TypeId
from ..scoring.candidate_pool import CandidatePool
from ..scoring.preview_score import ScoringContext
from .constraints import SizeConstraint
from .preview import DiscoveryResult, Preview, PreviewTable


def eligible_key_types(context: ScoringContext) -> List[TypeId]:
    """Entity types that can key a table (non-empty candidate list)."""
    return list(context.candidate_pool().eligible)


class AllocationProfile:
    """The k-way-merge pick sequence for one fixed key subset.

    ``picks[j]`` is the ``j``-th merge-filled candidate as
    ``(key_pos, rank)`` and ``cum[j]`` the preview score after taking
    ``j`` extra candidates beyond the mandatory top-1 per table
    (``cum[0]`` is the top-1-only score).  ``cap`` records the bound the
    profile was built with (None = run to exhaustion): reads beyond a
    finite ``cap`` would silently under-allocate, so callers check
    :meth:`covers` first.  Prefix reads reproduce the incremental
    allocation bit-for-bit because floats accumulate in pop order.
    """

    __slots__ = ("keys", "indices", "picks", "cum", "cap")

    def __init__(
        self,
        keys: Tuple[TypeId, ...],
        indices: Tuple[int, ...],
        picks: List[Tuple[int, int]],
        cum: List[float],
        cap: Optional[int],
    ) -> None:
        self.keys = keys
        self.indices = indices
        self.picks = picks
        self.cum = cum
        self.cap = cap

    def covers(self, extra_cap: int) -> bool:
        """Whether the profile is exact for ``extra_cap`` merge slots."""
        return self.cap is None or extra_cap <= self.cap

    def score_at(self, extra_cap: int) -> float:
        """Preview score with at most ``extra_cap`` merge-filled slots."""
        return self.cum[min(extra_cap, len(self.picks))]

    def preview_at(self, pool: CandidatePool, extra_cap: int) -> Preview:
        """Materialize the preview for one attribute budget."""
        counts = [1] * len(self.keys)
        for key_pos, _rank in self.picks[: min(extra_cap, len(self.picks))]:
            counts[key_pos] += 1
        return Preview(
            tables=tuple(
                PreviewTable(key=key, nonkey=pool.attrs[type_index][:count])
                for key, type_index, count in zip(self.keys, self.indices, counts)
            )
        )


def build_allocation_profile(
    pool: CandidatePool,
    keys: Sequence[TypeId],
    cap: Optional[int] = None,
) -> Optional[AllocationProfile]:
    """Run the Theorem-3 merge for ``keys``, recording the pick sequence.

    Mandatory top-1 per table (Alg. 1 line 8), then merge-fill by
    weighted score (lines 11-14) until ``cap`` extra picks (None = until
    the heap runs dry or hits a zero-score candidate).  Returns None when
    some key has no candidate attribute; raises
    :class:`~repro.exceptions.UnknownTypeError` for unknown types.
    """
    indices: List[int] = []
    for key in keys:
        try:
            type_index = pool.index[key]
        except KeyError:
            raise UnknownTypeError(key) from None
        if not pool.attrs[type_index]:
            return None
        indices.append(type_index)

    base = 0.0
    heap: List[Tuple[float, int, int]] = []  # (-weighted, key_pos, rank)
    for key_pos, type_index in enumerate(indices):
        weighted_row = pool.weighted[type_index]
        base += weighted_row[0]
        if len(weighted_row) > 1:
            heapq.heappush(heap, (-weighted_row[1], key_pos, 1))

    picks: List[Tuple[int, int]] = []
    cum: List[float] = [base]
    capped = False
    while heap:
        if cap is not None and len(picks) >= cap:
            capped = True
            break
        neg_weighted, key_pos, rank = heapq.heappop(heap)
        weighted = -neg_weighted
        if weighted <= 0.0:
            # The heap pops in descending order, so every remaining
            # candidate is also non-improving: the profile is complete
            # for every budget, not just the requested cap.
            break
        picks.append((key_pos, rank))
        cum.append(cum[-1] + weighted)
        next_rank = rank + 1
        weighted_row = pool.weighted[indices[key_pos]]
        if next_rank < len(weighted_row):
            heapq.heappush(heap, (-weighted_row[next_rank], key_pos, next_rank))
    return AllocationProfile(
        tuple(keys), tuple(indices), picks, cum, cap if capped else None
    )


def best_preview_for_keys(
    context: ScoringContext,
    keys: Sequence[TypeId],
    size: SizeConstraint,
) -> Optional[Tuple[Preview, float]]:
    """Best attribute allocation for a fixed key set, or None if infeasible.

    Infeasible means duplicate keys, or some key type with no candidate
    non-key attribute at all (an isolated schema vertex cannot form a
    table).  The returned score is exact under Eq. 1 / Eq. 2.
    """
    if len(set(keys)) != len(keys):
        return None
    pool = context.candidate_pool()
    extra_cap = size.n - size.k
    profile = build_allocation_profile(pool, keys, cap=extra_cap)
    if profile is None:
        return None
    return profile.preview_at(pool, extra_cap), profile.score_at(extra_cap)


def batched_discover(
    context: ScoringContext,
    size: SizeConstraint,
    subsets: Sequence[Tuple[TypeId, ...]],
    algorithm: str,
) -> Optional[DiscoveryResult]:
    """:class:`DiscoveryResult` from one serial batched-kernel evaluation.

    Scores every subset in a single :func:`repro.kernel.best_allocation`
    call against the live candidate pool and materializes only the
    winner — the batch-at-a-time replacement for the per-subset
    "ComputePreview each, keep the max" loops.  Every subset counts as
    examined, and the kernel's lowest-index tie-break matches the serial
    strict-``>`` scan, so results are bit-identical to the seed loops.
    """
    pool = context.candidate_pool()
    best = kernel.best_allocation(pool, subsets, size.n - size.k)
    if best is None:
        return None
    allocation = best_preview_for_keys(context, subsets[best[1]], size)
    if allocation is None:  # pragma: no cover - kernel said feasible
        return None
    preview, score = allocation
    return DiscoveryResult(
        preview=preview,
        score=score,
        algorithm=algorithm,
        key_scorer=context.key_scorer_name,
        nonkey_scorer=context.nonkey_scorer_name,
        candidates_examined=len(subsets),
    )


def sharded_best_preview(
    context: ScoringContext,
    size: SizeConstraint,
    subsets: Sequence[Tuple[TypeId, ...]],
    jobs: int,
    executor: Optional[object] = None,
) -> Optional[Tuple[Preview, float]]:
    """Best allocation over ``subsets``, sharded across worker processes.

    The parallel counterpart of the serial "ComputePreview each subset,
    keep the max" loops of Alg. 1/3: workers score shards against a
    picklable snapshot of the candidate pool (see :mod:`repro.parallel`)
    and only the winning subset — lowest index among equal scores,
    matching the serial strict-``>`` tie-break — is materialized here
    against the real pool.  Returns None when every subset is
    infeasible (duplicate keys, or a key with no candidate attribute).

    An already-running :class:`~repro.parallel.ShardedExecutor` can be
    passed as ``executor`` to amortize its worker pool across many calls
    (the engine does this for sweep batches); the caller keeps ownership
    and ``jobs`` is ignored.  Otherwise a pool is created per call.
    """
    # Imported lazily: jobs=1 callers never touch the parallel subsystem.
    from ..parallel import ScoringSnapshot, ShardedExecutor

    snapshot = ScoringSnapshot.from_pool(context.candidate_pool())
    extra_cap = size.n - size.k
    if executor is not None:
        best = executor.best_allocation(snapshot, subsets, extra_cap)
    else:
        with ShardedExecutor(jobs) as owned:
            best = owned.best_allocation(snapshot, subsets, extra_cap)
    if best is None:
        return None
    return best_preview_for_keys(context, subsets[best[1]], size)


def sharded_discover(
    context: ScoringContext,
    size: SizeConstraint,
    subsets: Sequence[Tuple[TypeId, ...]],
    jobs: int,
    algorithm: str,
    executor: Optional[object] = None,
) -> Optional[DiscoveryResult]:
    """:class:`DiscoveryResult` assembled from a sharded evaluation.

    Shared tail of the ``jobs != 1`` paths of ``apriori_discover`` and
    ``brute_force_discover``: every subset counts as examined (the
    serial loops score each qualifying subset), and the result carries
    the caller's ``algorithm`` label.

    Small batches never reach the worker pool: below the dispatch
    threshold (see :mod:`repro.kernel.plan`) one serial kernel call is
    cheaper than a single snapshot pickle round-trip, so the evaluation
    runs inline regardless of ``jobs``.
    """
    if executor is not None:
        effective_jobs = executor.jobs
    else:
        from ..parallel import resolve_jobs

        effective_jobs = resolve_jobs(jobs)
    if not kernel.should_shard(len(subsets), effective_jobs):
        return batched_discover(context, size, subsets, algorithm)
    allocation = sharded_best_preview(
        context, size, subsets, jobs, executor=executor
    )
    if allocation is None:
        return None
    preview, score = allocation
    return DiscoveryResult(
        preview=preview,
        score=score,
        algorithm=algorithm,
        key_scorer=context.key_scorer_name,
        nonkey_scorer=context.nonkey_scorer_name,
        candidates_examined=len(subsets),
    )


def upper_bound_for_keys(
    context: ScoringContext, keys: Sequence[TypeId], size: SizeConstraint
) -> float:
    """A cheap upper bound on the best score achievable with ``keys``.

    Used for pruning: each table independently takes its best
    ``n - (k - 1)`` candidates.  Never below the true optimum — an O(1)
    prefix-table lookup per key via the candidate pool.
    """
    cap = size.max_attributes_per_table
    return sum(context.top_m_table_score(key, cap) for key in keys)
