"""High-level preview discovery facade.

:func:`discover_preview` is the compatibility entry point of the library:
given an entity graph (or a prebuilt :class:`ScoringContext`), a size
constraint and an optional distance constraint, it delegates to a
short-lived :class:`~repro.engine.PreviewEngine`, which resolves the
algorithm through the :data:`~repro.core.registry.DISCOVERY_ALGORITHMS`
registry and returns a :class:`DiscoveryResult`.

Dispatch is data-driven: every algorithm module registers itself at
import time with :func:`~repro.core.registry.register_discovery_algorithm`,
declaring which constraint shapes (concise / tight / diverse) it serves.
``"auto"`` therefore needs no hard-coded branching — the registry picks
the best-ranked algorithm for the query's shape, reproducing the paper's
recommended pairing (DP for concise, Apriori for tight/diverse), and
third-party algorithms become selectable simply by registering.  Callers
holding many queries against one dataset should construct a
:class:`~repro.engine.PreviewEngine` directly and keep it: the engine
memoizes results and shares pruned candidate state across parameter
sweeps, which this one-shot facade cannot.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import DiscoveryError
from ..model.entity_graph import EntityGraph
from ..model.schema_graph import SchemaGraph
from ..scoring.preview_score import ScoringContext

# Importing the algorithm modules populates the registry; all four are
# imported eagerly so registration is uniform at import time.
from . import apriori as _apriori  # noqa: F401
from . import branch_bound as _branch_bound  # noqa: F401
from . import brute_force as _brute_force  # noqa: F401
from . import dynamic_prog as _dynamic_prog  # noqa: F401
from .preview import DiscoveryResult
from .registry import DISCOVERY_ALGORITHMS, available_algorithms

#: Algorithm names accepted by :func:`discover_preview` — ``"auto"`` plus
#: every registered algorithm, frozen at import time for compatibility;
#: :data:`DISCOVERY_ALGORITHMS` is the live source of truth.
ALGORITHMS = available_algorithms()


def make_context(
    data: Union[EntityGraph, SchemaGraph, ScoringContext],
    key_scorer: str = "coverage",
    nonkey_scorer: str = "coverage",
) -> ScoringContext:
    """Normalize any accepted input into a :class:`ScoringContext`."""
    if isinstance(data, ScoringContext):
        return data
    if isinstance(data, EntityGraph):
        schema = SchemaGraph.from_entity_graph(data)
        return ScoringContext(
            schema,
            entity_graph=data,
            key_scorer=key_scorer,
            nonkey_scorer=nonkey_scorer,
        )
    if isinstance(data, SchemaGraph):
        return ScoringContext(
            data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
        )
    raise DiscoveryError(
        "expected EntityGraph, SchemaGraph or ScoringContext, "
        f"got {type(data).__name__}"
    )


def discover_preview(
    data: Union[EntityGraph, SchemaGraph, ScoringContext],
    k: int,
    n: int,
    d: Optional[int] = None,
    mode: str = "tight",
    key_scorer: str = "coverage",
    nonkey_scorer: str = "coverage",
    algorithm: str = "auto",
) -> DiscoveryResult:
    """Discover an optimal preview (one-shot facade over the engine).

    Parameters
    ----------
    data:
        The entity graph (scores computed on the fly), a schema graph
        (for aggregate-only scorers), or a prebuilt scoring context.
    k, n:
        Size constraint: ``k`` tables, at most ``n`` non-key attributes.
    d, mode:
        Optional distance constraint; ``mode`` is ``"tight"`` (pairwise
        distance <= d) or ``"diverse"`` (>= d).
    key_scorer, nonkey_scorer:
        Scoring measure names; ignored when ``data`` is a context.
    algorithm:
        ``"auto"`` resolves through the algorithm registry to the
        best-ranked algorithm for the constraint shape (DP for concise,
        Apriori for tight/diverse — the paper's recommended pairing);
        any registered algorithm can be forced by name.

    Raises
    ------
    InfeasiblePreviewError
        When no preview satisfies the constraints.
    DiscoveryError
        For unknown algorithms and algorithm/constraint-shape
        combinations the registry declares unsupported.
    """
    # Imported here, not at module top: the engine layer sits above core,
    # and this facade is the single downward-compatibility bridge.
    from ..engine import PreviewEngine

    context = make_context(data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer)
    engine = PreviewEngine(context)
    return engine.query(k=k, n=n, d=d, mode=mode, algorithm=algorithm)
