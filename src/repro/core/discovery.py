"""High-level preview discovery facade.

:func:`discover_preview` is the main entry point of the library: given an
entity graph (or a prebuilt :class:`ScoringContext`), a size constraint
and an optional distance constraint, it selects the appropriate algorithm
(DP for concise previews, Apriori-style for tight/diverse — the paper's
recommended pairing), runs it and returns a :class:`DiscoveryResult`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..exceptions import DiscoveryError, InfeasiblePreviewError
from ..model.entity_graph import EntityGraph
from ..model.schema_graph import SchemaGraph
from ..scoring.preview_score import ScoringContext
from .apriori import apriori_discover
from .brute_force import brute_force_discover
from .constraints import DistanceConstraint, DistanceMode, SizeConstraint
from .dynamic_prog import dynamic_programming_discover
from .preview import DiscoveryResult

#: Algorithm names accepted by :func:`discover_preview`.
ALGORITHMS = (
    "auto",
    "brute-force",
    "dynamic-programming",
    "apriori",
    "branch-and-bound",
)


def make_context(
    data: Union[EntityGraph, SchemaGraph, ScoringContext],
    key_scorer: str = "coverage",
    nonkey_scorer: str = "coverage",
) -> ScoringContext:
    """Normalize any accepted input into a :class:`ScoringContext`."""
    if isinstance(data, ScoringContext):
        return data
    if isinstance(data, EntityGraph):
        schema = SchemaGraph.from_entity_graph(data)
        return ScoringContext(
            schema,
            entity_graph=data,
            key_scorer=key_scorer,
            nonkey_scorer=nonkey_scorer,
        )
    if isinstance(data, SchemaGraph):
        return ScoringContext(
            data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
        )
    raise DiscoveryError(
        f"expected EntityGraph, SchemaGraph or ScoringContext, "
        f"got {type(data).__name__}"
    )


def discover_preview(
    data: Union[EntityGraph, SchemaGraph, ScoringContext],
    k: int,
    n: int,
    d: Optional[int] = None,
    mode: str = "tight",
    key_scorer: str = "coverage",
    nonkey_scorer: str = "coverage",
    algorithm: str = "auto",
) -> DiscoveryResult:
    """Discover an optimal preview.

    Parameters
    ----------
    data:
        The entity graph (scores computed on the fly), a schema graph
        (for aggregate-only scorers), or a prebuilt scoring context.
    k, n:
        Size constraint: ``k`` tables, at most ``n`` non-key attributes.
    d, mode:
        Optional distance constraint; ``mode`` is ``"tight"`` (pairwise
        distance <= d) or ``"diverse"`` (>= d).
    key_scorer, nonkey_scorer:
        Scoring measure names; ignored when ``data`` is a context.
    algorithm:
        ``"auto"`` picks DP for concise and Apriori for tight/diverse,
        the paper's recommended algorithms; any specific algorithm can be
        forced (brute force supports every constraint type).

    Raises
    ------
    InfeasiblePreviewError
        When no preview satisfies the constraints.
    DiscoveryError
        For invalid algorithm/constraint combinations.
    """
    context = make_context(data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer)
    size = SizeConstraint(k=k, n=n)
    distance: Optional[DistanceConstraint] = None
    if d is not None:
        if mode == "tight":
            distance = DistanceConstraint.tight(d)
        elif mode == "diverse":
            distance = DistanceConstraint.diverse(d)
        else:
            raise DiscoveryError(
                f"mode must be 'tight' or 'diverse', got {mode!r}"
            )

    if algorithm not in ALGORITHMS:
        raise DiscoveryError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(ALGORITHMS)}"
        )
    if algorithm == "auto":
        algorithm = "dynamic-programming" if distance is None else "apriori"

    if algorithm == "dynamic-programming":
        if distance is not None:
            raise DiscoveryError(
                "the dynamic-programming algorithm only supports concise "
                "previews (the optimal substructure breaks under distance "
                "constraints, Sec. 5.2)"
            )
        result = dynamic_programming_discover(context, size)
    elif algorithm == "apriori":
        if distance is None:
            raise DiscoveryError(
                "the Apriori-style algorithm requires a distance constraint; "
                "use the DP or brute-force algorithm for concise previews"
            )
        result = apriori_discover(context, size, distance)
    elif algorithm == "branch-and-bound":
        from .branch_bound import branch_and_bound_discover

        result = branch_and_bound_discover(context, size, distance)
    else:
        result = brute_force_discover(context, size, distance)

    if result is None:
        constraint_text = f"k={k}, n={n}"
        if distance is not None:
            constraint_text += f", {mode} d={d}"
        raise InfeasiblePreviewError(
            f"no preview satisfies the constraints ({constraint_text})"
        )
    return result
