"""Discovery-algorithm registry: data-driven dispatch for the engine.

Mirrors the scorer registries in :mod:`repro.scoring.base`
(:data:`KEY_SCORERS` / :data:`NONKEY_SCORERS`): each discovery algorithm
registers itself with :func:`register_discovery_algorithm`, declaring the
*constraint shapes* it supports —

* ``"concise"`` — size constraint only (Definition 2, first clause);
* ``"tight"``   — pairwise key distance ``<= d``;
* ``"diverse"`` — pairwise key distance ``>= d``.

The facade (:func:`repro.core.discovery.discover_preview`) and the query
engine (:class:`repro.engine.PreviewEngine`) resolve algorithm names
through :func:`resolve_algorithm`; ``"auto"`` selection is likewise
data-driven — the registered algorithm with the lowest ``auto_rank`` for
the query's shape wins, which reproduces the paper's recommended pairing
(DP for concise, Apriori for tight/diverse) without hard-coding it at the
call site.  Third-party algorithms register the same way and immediately
become selectable by name (and by ``auto``, if their rank beats the
built-ins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from ..exceptions import DiscoveryError
from ..scoring.preview_score import ScoringContext
from .constraints import DistanceConstraint, DistanceMode, SizeConstraint
from .preview import DiscoveryResult

#: The three constraint shapes of Definition 2.
CONSTRAINT_SHAPES: Tuple[str, ...] = ("concise", "tight", "diverse")

#: Uniform runner signature every registered algorithm adapts to.
AlgorithmRunner = Callable[
    [ScoringContext, SizeConstraint, Optional[DistanceConstraint]],
    Optional[DiscoveryResult],
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered discovery algorithm.

    ``auto_rank`` orders candidates for ``"auto"`` selection per shape
    (lower wins); ``notes`` carries the human-readable reason a shape is
    unsupported, surfaced in :class:`~repro.exceptions.DiscoveryError`
    messages.
    """

    name: str
    runner: AlgorithmRunner
    shapes: FrozenSet[str]
    auto_rank: int = 100
    notes: str = ""

    def supports(self, shape: str) -> bool:
        """Whether this algorithm handles constraint ``shape``."""
        return shape in self.shapes

    def run(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: Optional[DistanceConstraint] = None,
    ) -> Optional[DiscoveryResult]:
        """Invoke the registered runner on (context, size, distance)."""
        return self.runner(context, size, distance)


#: Name -> spec; populated at import time by the algorithm modules.
DISCOVERY_ALGORITHMS: Dict[str, AlgorithmSpec] = {}


def register_discovery_algorithm(
    name: str,
    shapes: Tuple[str, ...],
    auto_rank: int = 100,
    notes: str = "",
) -> Callable[[AlgorithmRunner], AlgorithmRunner]:
    """Decorator registering a discovery algorithm runner.

    The decorated callable must accept ``(context, size, distance)`` and
    return a :class:`DiscoveryResult` or None when no preview satisfies
    the constraints.  Registration is idempotent per name (latest wins),
    so test doubles can shadow and restore built-ins.
    """
    if not name:
        raise DiscoveryError("algorithm name must be non-empty")
    unknown = set(shapes) - set(CONSTRAINT_SHAPES)
    if unknown:
        raise DiscoveryError(
            f"unknown constraint shapes {sorted(unknown)}; "
            f"valid shapes: {', '.join(CONSTRAINT_SHAPES)}"
        )
    if not shapes:
        raise DiscoveryError(f"algorithm {name!r} must support at least one shape")

    def decorator(runner: AlgorithmRunner) -> AlgorithmRunner:
        DISCOVERY_ALGORITHMS[name] = AlgorithmSpec(
            name=name,
            runner=runner,
            shapes=frozenset(shapes),
            auto_rank=auto_rank,
            notes=notes,
        )
        return runner

    return decorator


def unregister_discovery_algorithm(name: str) -> None:
    """Remove an algorithm from the registry (test/plugin cleanup)."""
    DISCOVERY_ALGORITHMS.pop(name, None)


def constraint_shape(distance: Optional[DistanceConstraint]) -> str:
    """The Definition-2 shape of a query's constraints."""
    if distance is None:
        return "concise"
    if distance.mode is DistanceMode.TIGHT:
        return "tight"
    return "diverse"


def available_algorithms() -> Tuple[str, ...]:
    """``"auto"`` plus every registered name, in registration order."""
    return ("auto",) + tuple(DISCOVERY_ALGORITHMS)


def auto_algorithm(shape: str) -> AlgorithmSpec:
    """The best-ranked registered algorithm for ``shape``."""
    candidates = [
        spec for spec in DISCOVERY_ALGORITHMS.values() if spec.supports(shape)
    ]
    if not candidates:
        raise DiscoveryError(
            f"no registered discovery algorithm supports {shape} previews"
        )
    return min(candidates, key=lambda spec: (spec.auto_rank, spec.name))


def resolve_algorithm(name: str, shape: str) -> AlgorithmSpec:
    """Resolve a user-facing algorithm name against a constraint shape.

    Raises :class:`DiscoveryError` for unknown names and for
    name/shape combinations the registered algorithm declares
    unsupported (e.g. the DP with a distance constraint).
    """
    if shape not in CONSTRAINT_SHAPES:
        raise DiscoveryError(
            f"unknown constraint shape {shape!r}; "
            f"valid shapes: {', '.join(CONSTRAINT_SHAPES)}"
        )
    if name == "auto":
        return auto_algorithm(shape)
    try:
        spec = DISCOVERY_ALGORITHMS[name]
    except KeyError:
        raise DiscoveryError(
            f"unknown algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}"
        ) from None
    if not spec.supports(shape):
        reason = f" ({spec.notes})" if spec.notes else ""
        raise DiscoveryError(
            f"algorithm {name!r} does not support {shape} previews; it "
            f"supports: {', '.join(sorted(spec.shapes))}{reason}"
        )
    return spec
