"""Dynamic-programming optimal *concise* preview discovery (Alg. 2).

Order the ``K`` candidate key types arbitrarily.  Let ``best(i, j, x)`` be
the best score of a preview with exactly ``i`` tables and at most ``j``
non-key attributes drawn from the first ``x`` types.  The optimal
substructure (Sec. 5.2):

    best(i, j, x) = max( best(i, j, x-1),
                         max_m best(i-1, j-m, x-1) + score(T_x^m) )

where ``T_x^m`` is the table keyed on type ``x`` with its top-``m``
candidates and ``1 <= m <= min(j - (i-1), |Γτx|)`` (every other table
still needs one attribute).  Complexity ``O(K N log N + K k n^2)``.

The substructure breaks under a distance constraint (a table's eligibility
would depend on *which* earlier tables were chosen, not just how many), so
this algorithm serves concise previews only — the paper makes the same
point and routes tight/diverse discovery to Alg. 3.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..scoring.preview_score import ScoringContext
from .constraints import DistanceConstraint, SizeConstraint, validate_constraints
from .preview import DiscoveryResult, Preview, PreviewTable
from .registry import register_discovery_algorithm

_NEG_INF = float("-inf")


def dynamic_programming_discover(
    context: ScoringContext,
    size: SizeConstraint,
) -> Optional[DiscoveryResult]:
    """Find an optimal concise preview in ``O(K k n^2)`` DP time.

    Returns None when fewer than ``k`` types can key a table.  The DP
    maximizes total score; the preview is reconstructed from per-state
    choice records (``m`` attributes taken for type ``x``, or skip).
    """
    pool = context.candidate_pool()
    key_pool = list(pool.eligible)
    validate_constraints(size, None, key_pool)
    k, n = size.k, size.n
    big_k = len(key_pool)
    if big_k < k:
        return None

    # Prefix table scores: table_score[x][m] = S(T_x^m) for m = 0..cap —
    # read straight off the pool's precomputed prefix-sum rows.
    cap = size.max_attributes_per_table
    table_score: List[Tuple[float, ...]] = [
        pool.prefix[pool.index[type_name]][: cap + 1] for type_name in key_pool
    ]

    # dp[i][j] = best score with exactly i tables, <= j attributes, over
    # the first x types; choice[x][i][j] = m taken for type x-1 (0 = skip).
    dp = [[_NEG_INF] * (n + 1) for _ in range(k + 1)]
    for j in range(n + 1):
        dp[0][j] = 0.0
    choice = [
        [[0] * (n + 1) for _ in range(k + 1)] for _ in range(big_k + 1)
    ]

    for x in range(1, big_k + 1):
        scores_x = table_score[x - 1]
        max_m = len(scores_x) - 1
        # Iterate i downward so dp rows can be updated in place (each type
        # is used at most once, like 0/1 knapsack).
        for i in range(min(k, x), 0, -1):
            row_prev = dp[i - 1]
            row_cur = dp[i]
            for j in range(n, i - 1, -1):
                best = row_cur[j]
                best_m = 0
                m_hi = min(j - (i - 1), max_m)
                for m in range(1, m_hi + 1):
                    base = row_prev[j - m]
                    if base == _NEG_INF:
                        continue
                    cand = base + scores_x[m]
                    if cand > best:
                        best = cand
                        best_m = m
                if best_m:
                    row_cur[j] = best
                choice[x][i][j] = best_m

    if dp[k][n] == _NEG_INF:
        return None

    # Reconstruction: walk x from K down, replaying the in-place updates.
    # Because rows were updated in place, choice[x][i][j] records the m
    # chosen when type x was processed; if 0 the type was skipped.
    tables: List[PreviewTable] = []
    i, j = k, n
    for x in range(big_k, 0, -1):
        m = choice[x][i][j]
        if m == 0 or i == 0:
            continue
        type_name = key_pool[x - 1]
        attrs = pool.top_m_attrs(type_name, m)
        tables.append(PreviewTable(key=type_name, nonkey=attrs))
        i -= 1
        j -= m
        if i == 0:
            break
    if i != 0:
        # Should be unreachable: dp said k tables fit.
        return None
    tables.reverse()
    preview = Preview(tables=tuple(tables))
    score = context.preview_score(preview.as_pairs())
    return DiscoveryResult(
        preview=preview,
        score=score,
        algorithm="dynamic-programming",
        key_scorer=context.key_scorer_name,
        nonkey_scorer=context.nonkey_scorer_name,
        candidates_examined=big_k * k * n,
    )


@register_discovery_algorithm(
    "dynamic-programming",
    shapes=("concise",),
    auto_rank=0,
    notes=(
        "the optimal substructure breaks under distance constraints, "
        "Sec. 5.2 — use apriori or brute-force for tight/diverse previews"
    ),
)
def _registered_dynamic_programming(
    context: ScoringContext,
    size: SizeConstraint,
    distance: Optional[DistanceConstraint] = None,
) -> Optional[DiscoveryResult]:
    """Registry adapter: the DP serves concise previews only."""
    return dynamic_programming_discover(context, size)
