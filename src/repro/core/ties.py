"""Enumerating *all* optimal previews under score ties.

Both Alg. 1 and Alg. 2 in the paper "are for finding one optimal preview.
Finding all optimal previews requires simple extension to deal with ties
in scores, which we will not further discuss."  This module supplies that
extension:

* :func:`all_optimal_previews` enumerates every preview attaining the
  maximum score, handling ties at **both** levels where they arise:

  1. between different key-attribute subsets whose best allocations score
     equally, and
  2. within one table, where candidate non-key attributes tie at the
     selection boundary (Theorem 3 only pins the *scores* of the chosen
     prefix, not its identity — any same-score swap at the boundary is
     also optimal).

Scores are compared with a relative tolerance to absorb floating-point
noise in score arithmetic.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterator, List, Optional, Tuple

from ..scoring.preview_score import ScoringContext
from .candidates import best_preview_for_keys, eligible_key_types
from .constraints import DistanceConstraint, SizeConstraint, validate_constraints
from .preview import Preview, PreviewTable

#: Relative tolerance for "equal" scores.
SCORE_TOLERANCE = 1e-9


def _scores_equal(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=SCORE_TOLERANCE, abs_tol=1e-12)


def _attribute_variants(
    context: ScoringContext, key: str, width: int
) -> Iterator[Tuple]:
    """All same-score variants of the top-``width`` candidate prefix.

    The sorted candidate list may contain a *tie group* straddling the
    prefix boundary; every way of filling the boundary slots from that
    group yields an equally scored table.
    """
    ranked = context.sorted_candidates(key)
    if width > len(ranked):
        return
    if width == 0:
        yield ()
        return
    boundary_score = ranked[width - 1][1]
    # Attributes strictly above the boundary are always included.
    fixed = [attr for attr, score in ranked[:width] if not _scores_equal(score, boundary_score)]
    tied = [attr for attr, score in ranked if _scores_equal(score, boundary_score)]
    slots = width - len(fixed)
    seen = set()
    for combo in combinations(tied, slots):
        variant = tuple(fixed) + combo
        if variant not in seen:
            seen.add(variant)
            yield variant


def all_optimal_previews(
    context: ScoringContext,
    size: SizeConstraint,
    distance: Optional[DistanceConstraint] = None,
    limit: int = 1000,
) -> List[Preview]:
    """Every optimal preview (up to ``limit``), brute-force based.

    Enumerates key subsets exactly like Alg. 1, keeps all subsets tying
    the best score, then expands per-table boundary-tie variants.  The
    ``limit`` guards against pathological all-equal-score inputs (e.g.
    the NP-hardness constructions, where *every* preview ties at score
    zero).
    """
    key_pool = eligible_key_types(context)
    validate_constraints(size, distance, key_pool)
    oracle = context.schema.distance_oracle() if distance is not None else None

    best_score = float("-inf")
    best: List[Tuple[Tuple[str, ...], Preview, float]] = []
    for keys in combinations(key_pool, size.k):
        if distance is not None and not distance.keys_ok(oracle, keys):
            continue
        allocation = best_preview_for_keys(context, keys, size)
        if allocation is None:
            continue
        preview, score = allocation
        if score > best_score and not _scores_equal(score, best_score):
            best_score = score
            best = [(keys, preview, score)]
        elif _scores_equal(score, best_score):
            best.append((keys, preview, score))

    results: List[Preview] = []
    emitted = set()
    for _keys, preview, _score in best:
        # Expand boundary ties per table, cartesian across tables.
        variants_per_table: List[List[PreviewTable]] = []
        for table in preview.tables:
            variants = [
                PreviewTable(key=table.key, nonkey=variant)
                for variant in _attribute_variants(context, table.key, table.width)
            ]
            variants_per_table.append(variants or [table])
        stack: List[Tuple[int, Tuple[PreviewTable, ...]]] = [(0, ())]
        while stack:
            index, prefix = stack.pop()
            if index == len(variants_per_table):
                candidate = Preview(tables=prefix)
                fingerprint = tuple(
                    (t.key, frozenset(t.nonkey)) for t in candidate.tables
                )
                if fingerprint not in emitted:
                    emitted.add(fingerprint)
                    results.append(candidate)
                    if len(results) >= limit:
                        return results
                continue
            for variant in variants_per_table[index]:
                stack.append((index + 1, prefix + (variant,)))
    return results
