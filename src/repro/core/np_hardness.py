"""Executable NP-hardness reductions (Theorems 1 and 2).

The paper proves optimal tight/diverse preview discovery NP-hard by
reducing Clique to the decision problems
``TightPreview(Gs, k, k, 1, 0)`` and ``DiversePreview(Gs, k, k, 2, 0)``.
This module makes both reductions executable:

* :func:`tight_reduction_schema` builds the schema graph of Theorem 1
  (vertex bijection, edge-preserving);
* :func:`diverse_reduction_schema` builds the schema graph of Theorem 2
  (complement graph plus a hub vertex ``τ0`` adjacent to everything);
* :func:`has_clique_via_tight_preview` / ``..._via_diverse_preview``
  decide Clique by running the actual discovery algorithms on the
  constructed schema graphs.

Tests verify the reductions against direct clique enumeration on random
graphs — an end-to-end check that the constructions, the distance
semantics and Alg. 3 agree.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from ..exceptions import DiscoveryError
from ..model.ids import RelationshipTypeId
from ..model.schema_graph import SchemaGraph
from ..scoring.preview_score import ScoringContext
from .apriori import apriori_discover
from .constraints import DistanceConstraint, SizeConstraint

Vertex = str
Edge = Tuple[Vertex, Vertex]

#: The hub vertex added by the Theorem 2 construction.
HUB = "__tau0__"


def _rel(source: Vertex, target: Vertex) -> RelationshipTypeId:
    """A uniform relationship type; scores are irrelevant (s = 0)."""
    return RelationshipTypeId(name="edge", source_type=source, target_type=target)


def _normalize(edges: Iterable[Edge]) -> Set[Edge]:
    out: Set[Edge] = set()
    for u, v in edges:
        if u == v:
            continue  # Clique instances are simple graphs
        out.add((u, v) if u <= v else (v, u))
    return out


def tight_reduction_schema(
    vertices: Sequence[Vertex], edges: Iterable[Edge]
) -> SchemaGraph:
    """Theorem 1 construction: ``Gs`` isomorphic to the Clique instance.

    Each graph edge becomes a relationship type; a k-clique in ``G``
    corresponds exactly to a tight preview with k tables at ``d = 1``.
    Entity populations are set to 1 so coverage scores are uniform and
    positive (the proof needs no score requirement; positivity keeps every
    vertex eligible as a key attribute).
    """
    schema = SchemaGraph(name="tight-reduction")
    for vertex in vertices:
        schema.add_entity_type(vertex, entity_count=1)
    for u, v in _normalize(edges):
        schema.add_relationship_type(_rel(u, v), edge_count=1)
    return schema


def diverse_reduction_schema(
    vertices: Sequence[Vertex], edges: Iterable[Edge]
) -> SchemaGraph:
    """Theorem 2 construction: complement graph plus hub ``τ0``.

    Non-adjacent vertices of ``G`` become adjacent in ``Gs`` (distance 1,
    excluded from diverse previews at d = 2); adjacent vertices of ``G``
    are connected only through the hub (distance exactly 2, allowed).
    """
    schema = SchemaGraph(name="diverse-reduction")
    schema.add_entity_type(HUB, entity_count=1)
    for vertex in vertices:
        if vertex == HUB:
            raise DiscoveryError(f"vertex name collides with hub sentinel: {vertex!r}")
        schema.add_entity_type(vertex, entity_count=1)
        schema.add_relationship_type(_rel(HUB, vertex), edge_count=1)
    present = _normalize(edges)
    ordered = list(vertices)
    for i, u in enumerate(ordered):
        for v in ordered[i + 1:]:
            pair = (u, v) if u <= v else (v, u)
            if pair not in present:
                schema.add_relationship_type(_rel(u, v), edge_count=1)
    return schema


def _decide(
    schema: SchemaGraph, k: int, constraint: DistanceConstraint, vertex_count: int
) -> bool:
    """Run Alg. 3 on a reduction schema and report feasibility (s = 0).

    ``k <= 1`` is answered directly (Clique is trivial there; the preview
    encoding needs each table to own a non-key attribute, which an
    isolated vertex cannot supply, so the reduction proper targets k >= 2
    exactly as hardness requires).
    """
    if k <= 0:
        return True
    if k == 1:
        return vertex_count > 0
    context = ScoringContext(schema)
    size = SizeConstraint(k=k, n=k)
    result = apriori_discover(context, size, constraint)
    return result is not None


def has_clique_via_tight_preview(
    vertices: Sequence[Vertex], edges: Iterable[Edge], k: int
) -> bool:
    """Decide Clique(G, k) through ``TightPreview(Gs, k, k, 1, 0)``."""
    schema = tight_reduction_schema(vertices, edges)
    return _decide(schema, k, DistanceConstraint.tight(1), len(vertices))


def has_clique_via_diverse_preview(
    vertices: Sequence[Vertex], edges: Iterable[Edge], k: int
) -> bool:
    """Decide Clique(G, k) through ``DiversePreview(Gs, k, k, 2, 0)``."""
    schema = diverse_reduction_schema(vertices, edges)
    return _decide(schema, k, DistanceConstraint.diverse(2), len(vertices))


def brute_force_has_clique(
    vertices: Sequence[Vertex], edges: Iterable[Edge], k: int
) -> bool:
    """Reference clique decision by direct enumeration (test oracle)."""
    from itertools import combinations

    if k <= 0:
        return True
    if k == 1:
        return len(vertices) > 0
    present = _normalize(edges)

    def adjacent(u: Vertex, v: Vertex) -> bool:
        return ((u, v) if u <= v else (v, u)) in present

    for subset in combinations(vertices, k):
        if all(
            adjacent(a, b)
            for i, a in enumerate(subset)
            for b in subset[i + 1:]
        ):
            return True
    return False
