"""Preview tables and previews (Definition 1).

A :class:`PreviewTable` has a mandatory key attribute (an entity type) and
at least one non-key attribute (a relationship type incident on the key
type, in either orientation); it corresponds to a star-shaped subgraph of
the schema graph.  A :class:`Preview` is a set of preview tables with
pairwise-distinct key attributes.

Both classes are immutable value objects; structural validation happens at
construction so the discovery algorithms can pass them around freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..exceptions import DiscoveryError
from ..model.attributes import NonKeyAttribute
from ..model.ids import TypeId


@dataclass(frozen=True)
class PreviewTable:
    """One preview table: a key attribute plus ordered non-key attributes."""

    key: TypeId
    nonkey: Tuple[NonKeyAttribute, ...]

    def __post_init__(self) -> None:
        if not self.nonkey:
            raise DiscoveryError(
                f"preview table {self.key!r} must have at least one non-key "
                "attribute (Definition 1)"
            )
        if len(set(self.nonkey)) != len(self.nonkey):
            raise DiscoveryError(
                f"preview table {self.key!r} has duplicate non-key attributes"
            )
        for attribute in self.nonkey:
            if attribute.key_type() != self.key:
                raise DiscoveryError(
                    f"attribute {attribute} is not incident on key type "
                    f"{self.key!r}"
                )

    @property
    def width(self) -> int:
        """Number of non-key attributes (the table's display width - 1)."""
        return len(self.nonkey)

    def __str__(self) -> str:
        attrs = ", ".join(str(attribute) for attribute in self.nonkey)
        return f"{self.key}[{attrs}]"


@dataclass(frozen=True)
class Preview:
    """A preview: a tuple of preview tables with distinct key attributes."""

    tables: Tuple[PreviewTable, ...]

    def __post_init__(self) -> None:
        keys = [table.key for table in self.tables]
        if len(set(keys)) != len(keys):
            raise DiscoveryError(
                "preview tables must have pairwise-distinct key attributes; "
                f"got {keys}"
            )

    @classmethod
    def of(cls, *tables: PreviewTable) -> "Preview":
        """Build a preview from ``tables``, in order."""
        return cls(tables=tuple(tables))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[TypeId, Iterable[NonKeyAttribute]]]
    ) -> "Preview":
        """Build a preview from (key, non-key attributes) pairs."""
        return cls(
            tables=tuple(
                PreviewTable(key=key, nonkey=tuple(attrs)) for key, attrs in pairs
            )
        )

    @property
    def table_count(self) -> int:
        """``k`` — the number of preview tables."""
        return len(self.tables)

    @property
    def attribute_count(self) -> int:
        """Total non-key attributes across tables (bounded by ``n``)."""
        return sum(table.width for table in self.tables)

    def keys(self) -> List[TypeId]:
        """The key attribute of each table, in table order."""
        return [table.key for table in self.tables]

    def table_for(self, key: TypeId) -> Optional[PreviewTable]:
        """The table keyed by ``key``, or None."""
        for table in self.tables:
            if table.key == key:
                return table
        return None

    def as_pairs(self) -> List[Tuple[TypeId, Tuple[NonKeyAttribute, ...]]]:
        """The shape :meth:`ScoringContext.preview_score` consumes."""
        return [(table.key, table.nonkey) for table in self.tables]

    def __iter__(self) -> Iterator[PreviewTable]:
        return iter(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __str__(self) -> str:
        return "; ".join(str(table) for table in self.tables)


@dataclass(frozen=True)
class DiscoveryResult:
    """A discovered preview with its score and bookkeeping metadata."""

    preview: Preview
    score: float
    algorithm: str
    key_scorer: str
    nonkey_scorer: str
    #: Number of candidate previews (k-subsets) the algorithm scored.
    candidates_examined: int = 0

    def summary(self) -> Dict[str, object]:
        """JSON-ready shape/size summary of this preview."""
        return {
            "algorithm": self.algorithm,
            "score": self.score,
            "tables": self.preview.table_count,
            "attributes": self.preview.attribute_count,
            "keys": self.preview.keys(),
            "key_scorer": self.key_scorer,
            "nonkey_scorer": self.nonkey_scorer,
            "candidates_examined": self.candidates_examined,
        }
