"""Branch-and-bound concise preview discovery (an engineering extension).

A drop-in alternative to the brute force for concise previews: explores
key subsets best-first, pruning any partial subset whose *optimistic
bound* (each remaining slot filled by the best-scoring available table,
every table taking its widest allowed prefix — see
:func:`~repro.core.candidates.upper_bound_for_keys`) cannot beat the
incumbent.  Exact: the bound dominates the true optimum, so pruning never
discards an optimal solution.

The DP (Alg. 2) remains asymptotically better for concise previews; the
value of this variant is (a) it extends to distance constraints where the
DP's substructure breaks, and (b) it quantifies — in
``bench_ablation_branch_bound.py`` — how much of the brute force's work
is avoidable by bounding alone, an ablation on the paper's design choice
of going straight to DP/Apriori.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..scoring.preview_score import ScoringContext
from .candidates import best_preview_for_keys, eligible_key_types
from .constraints import DistanceConstraint, SizeConstraint, validate_constraints
from .preview import DiscoveryResult
from .registry import register_discovery_algorithm


@register_discovery_algorithm(
    "branch-and-bound",
    shapes=("concise", "tight", "diverse"),
    auto_rank=60,
    notes="exact best-first search; supports every constraint shape",
)
def branch_and_bound_discover(
    context: ScoringContext,
    size: SizeConstraint,
    distance: Optional[DistanceConstraint] = None,
) -> Optional[DiscoveryResult]:
    """Exact best-first discovery with optimistic-bound pruning."""
    key_pool = eligible_key_types(context)
    validate_constraints(size, distance, key_pool)
    oracle = context.schema.distance_oracle() if distance is not None else None
    k = size.k
    cap = size.max_attributes_per_table

    # Per-type optimistic table value: its widest allowed top-m score.
    table_bound = {key: context.top_m_table_score(key, cap) for key in key_pool}
    # Order types by descending bound so greedy completions are tight.
    ordered = sorted(key_pool, key=lambda key: -table_bound[key])
    # Precompute, for each start index, the best (k) bounds in the suffix.
    bounds_from: List[List[float]] = [[] for _ in range(len(ordered) + 1)]
    for i in range(len(ordered) - 1, -1, -1):
        merged = sorted(bounds_from[i + 1] + [table_bound[ordered[i]]], reverse=True)
        bounds_from[i] = merged[:k]

    def optimistic(prefix_bound: float, next_index: int, picked: int) -> float:
        remaining = k - picked
        extra = sum(bounds_from[next_index][:remaining])
        if len(bounds_from[next_index]) < remaining:
            return float("-inf")  # not enough types left
        return prefix_bound + extra

    best_score = float("-inf")
    best_preview = None
    examined = 0
    # Heap entries: (-optimistic, next_index, keys tuple, prefix bound).
    heap: List[Tuple[float, int, Tuple[str, ...], float]] = []
    root = optimistic(0.0, 0, 0)
    if root > float("-inf"):
        heapq.heappush(heap, (-root, 0, (), 0.0))
    while heap:
        neg_bound, index, keys, prefix_bound = heapq.heappop(heap)
        if -neg_bound <= best_score:
            break  # best-first: nothing left can improve
        if len(keys) == k:
            examined += 1
            allocation = best_preview_for_keys(context, keys, size)
            if allocation is None:
                continue
            preview, score = allocation
            if score > best_score:
                best_score = score
                best_preview = preview
            continue
        if index >= len(ordered):
            continue
        key = ordered[index]
        # Branch 1: skip ordered[index].
        skip_bound = optimistic(prefix_bound, index + 1, len(keys))
        if skip_bound > best_score:
            heapq.heappush(heap, (-skip_bound, index + 1, keys, prefix_bound))
        # Branch 2: take it (respecting pairwise distance feasibility).
        if distance is not None and any(
            not distance.pair_ok(oracle, key, other) for other in keys
        ):
            continue
        taken = keys + (key,)
        taken_bound = prefix_bound + table_bound[key]
        total_bound = optimistic(taken_bound, index + 1, len(taken))
        if total_bound > best_score:
            heapq.heappush(heap, (-total_bound, index + 1, taken, taken_bound))

    if best_preview is None:
        return None
    return DiscoveryResult(
        preview=best_preview,
        score=best_score,
        algorithm="branch-and-bound",
        key_scorer=context.key_scorer_name,
        nonkey_scorer=context.nonkey_scorer_name,
        candidates_examined=examined,
    )
