"""Apriori-style optimal tight/diverse preview discovery (Alg. 3).

Two steps, exactly as the paper structures them:

1. **Find qualifying k-subsets** of entity types — all k-cliques of the
   *compatibility graph* in which two types are adjacent when their schema
   distance satisfies the constraint (``<= d`` tight, ``>= d`` diverse).
   The level-wise Apriori-style join lives in
   :mod:`repro.graph.cliques`; a Bron–Kerbosch backend is also available
   (the paper notes any k-clique algorithm can be plugged in).
2. **ComputePreview** for each qualifying subset — the Theorem-3 greedy
   allocation shared with Alg. 1 — keeping the best-scoring preview.

Worst-case complexity matches the brute force, but the L2 seeding and
joins prune most distance-violating subsets early, which is where the
orders-of-magnitude wins in Fig. 9 come from.
"""

from __future__ import annotations

from typing import Optional

from ..scoring.preview_score import ScoringContext
from .candidates import (
    batched_discover,
    eligible_key_types,
    sharded_discover,
)
from .constraints import DistanceConstraint, SizeConstraint, validate_constraints
from .preview import DiscoveryResult
from .registry import register_discovery_algorithm
from ..graph.cliques import k_cliques


def apriori_discover(
    context: ScoringContext,
    size: SizeConstraint,
    distance: DistanceConstraint,
    clique_backend: str = "apriori",
    jobs: int = 1,
    executor=None,
) -> Optional[DiscoveryResult]:
    """Find an optimal tight/diverse preview; None when none exists.

    ``clique_backend`` selects the k-clique enumerator: ``"apriori"``
    (the paper's level-wise join) or ``"bron-kerbosch"`` (the classical
    alternative used by the ablation bench).  ``jobs`` shards the
    per-subset ComputePreview step across worker processes (0 = all CPU
    cores); results are bit-identical to the serial run — see
    :mod:`repro.parallel`.  A live :class:`~repro.parallel.ShardedExecutor`
    can be passed as ``executor`` to reuse its pool across calls
    (``jobs`` is then ignored; the caller keeps ownership).
    """
    key_pool = eligible_key_types(context)
    validate_constraints(size, distance, key_pool)
    oracle = context.schema.distance_oracle()

    def adjacent(a, b) -> bool:
        return distance.pair_ok(oracle, a, b)

    subsets = k_cliques(key_pool, adjacent, size.k, backend=clique_backend)
    if not subsets:
        return None
    algorithm = f"apriori[{clique_backend}]"
    if (jobs != 1 or executor is not None) and len(subsets) > 1:
        return sharded_discover(
            context, size, subsets, jobs, algorithm, executor=executor
        )
    # Serial ComputePreview, batch-at-a-time: one kernel call scores the
    # whole clique group instead of a per-subset merge (bit-identical).
    return batched_discover(context, size, subsets, algorithm)


@register_discovery_algorithm(
    "apriori",
    shapes=("tight", "diverse"),
    auto_rank=0,
    notes=(
        "requires a distance constraint; use the DP or brute-force "
        "algorithm for concise previews"
    ),
)
def _registered_apriori(
    context: ScoringContext,
    size: SizeConstraint,
    distance: Optional[DistanceConstraint] = None,
) -> Optional[DiscoveryResult]:
    """Registry adapter: Apriori serves distance-constrained previews."""
    assert distance is not None  # guaranteed by registry shape validation
    return apriori_discover(context, size, distance)
