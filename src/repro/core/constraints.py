"""Size and distance constraints on previews (Sec. 4, Definition 2).

* :class:`SizeConstraint` ``(k, n)`` — a *concise* preview has exactly
  ``k`` tables and at most ``n`` non-key attributes in total.
* :class:`DistanceConstraint` ``(d, mode)`` — a *tight* preview further
  requires every pair of key attributes within schema distance ``d``; a
  *diverse* preview requires every pair at distance at least ``d``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..exceptions import InvalidConstraintError
from ..graph.distance import DistanceOracle
from ..model.ids import TypeId
from .preview import Preview


@dataclass(frozen=True)
class SizeConstraint:
    """``(k, n)``: k preview tables, at most n non-key attributes total."""

    k: int
    n: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise InvalidConstraintError(f"k must be at least 1, got {self.k}")
        if self.n < self.k:
            raise InvalidConstraintError(
                "n must be at least k (every table needs one non-key "
                f"attribute); got k={self.k}, n={self.n}"
            )

    def satisfied_by(self, preview: Preview) -> bool:
        """Whether ``preview`` meets the k (tables) and n (attrs) bounds."""
        return (
            preview.table_count == self.k
            and preview.attribute_count <= self.n
        )

    @property
    def max_attributes_per_table(self) -> int:
        """``n - (k - 1)``: the widest any single table can be."""
        return self.n - (self.k - 1)


class DistanceMode(enum.Enum):
    """Whether the pairwise distance bound is an upper or a lower bound."""

    TIGHT = "tight"  # dist <= d for every pair
    DIVERSE = "diverse"  # dist >= d for every pair


@dataclass(frozen=True)
class DistanceConstraint:
    """``d`` plus a mode; evaluated on key-attribute pairs via an oracle."""

    d: int
    mode: DistanceMode = DistanceMode.TIGHT

    def __post_init__(self) -> None:
        if self.d < 0:
            raise InvalidConstraintError(f"d must be non-negative, got {self.d}")

    @classmethod
    def tight(cls, d: int) -> "DistanceConstraint":
        """A tight-mode distance constraint at distance ``d``."""
        return cls(d=d, mode=DistanceMode.TIGHT)

    @classmethod
    def diverse(cls, d: int) -> "DistanceConstraint":
        """A diverse-mode distance constraint at distance ``d``."""
        return cls(d=d, mode=DistanceMode.DIVERSE)

    @classmethod
    def from_mode(cls, d: int, mode: str) -> "DistanceConstraint":
        """Build from a user-facing mode string (``"tight"``/``"diverse"``)."""
        try:
            mode_enum = DistanceMode(mode)
        except ValueError:
            raise InvalidConstraintError(
                f"mode must be 'tight' or 'diverse', got {mode!r}"
            ) from None
        return cls(d=d, mode=mode_enum)

    def pair_ok(self, oracle: DistanceOracle, a: TypeId, b: TypeId) -> bool:
        """Whether one pair of key attributes satisfies the bound."""
        if self.mode is DistanceMode.TIGHT:
            return oracle.within(a, b, self.d)
        return oracle.at_least(a, b, self.d)

    def keys_ok(self, oracle: DistanceOracle, keys: Sequence[TypeId]) -> bool:
        """Whether every pair among ``keys`` satisfies the bound."""
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                if not self.pair_ok(oracle, a, b):
                    return False
        return True

    def satisfied_by(self, oracle: DistanceOracle, preview: Preview) -> bool:
        """Whether the keys of ``preview`` satisfy the distance bound."""
        return self.keys_ok(oracle, preview.keys())


def validate_constraints(
    size: SizeConstraint,
    distance: Optional[DistanceConstraint],
    available_types: Iterable[TypeId],
) -> None:
    """Fail fast when ``k`` exceeds the number of candidate key types."""
    available = sum(1 for _ in available_types)
    if size.k > available:
        raise InvalidConstraintError(
            f"k={size.k} exceeds the {available} candidate key attributes"
        )
