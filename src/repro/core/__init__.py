"""Preview discovery — the paper's primary contribution."""

from .apriori import apriori_discover
from .branch_bound import branch_and_bound_discover
from .brute_force import brute_force_discover
from .candidates import best_preview_for_keys, eligible_key_types
from .constraints import (
    DistanceConstraint,
    DistanceMode,
    SizeConstraint,
)
from .discovery import ALGORITHMS, discover_preview, make_context
from .dynamic_prog import dynamic_programming_discover
from .registry import (
    CONSTRAINT_SHAPES,
    DISCOVERY_ALGORITHMS,
    AlgorithmSpec,
    available_algorithms,
    constraint_shape,
    register_discovery_algorithm,
    resolve_algorithm,
    unregister_discovery_algorithm,
)
from .materialize import (
    DEFAULT_SAMPLE_SIZE,
    MaterializedRow,
    MaterializedTable,
    materialize_preview,
    materialize_table,
    non_empty_ratio,
)
from .preview import DiscoveryResult, Preview, PreviewTable
from .render import render_materialized_table, render_preview
from .ties import all_optimal_previews
from .serialize import (
    preview_from_dict,
    preview_from_json,
    preview_to_dict,
    preview_to_json,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "ALGORITHMS",
    "CONSTRAINT_SHAPES",
    "DEFAULT_SAMPLE_SIZE",
    "DISCOVERY_ALGORITHMS",
    "AlgorithmSpec",
    "DiscoveryResult",
    "DistanceConstraint",
    "DistanceMode",
    "MaterializedRow",
    "MaterializedTable",
    "Preview",
    "PreviewTable",
    "SizeConstraint",
    "all_optimal_previews",
    "apriori_discover",
    "available_algorithms",
    "constraint_shape",
    "best_preview_for_keys",
    "branch_and_bound_discover",
    "brute_force_discover",
    "discover_preview",
    "dynamic_programming_discover",
    "eligible_key_types",
    "make_context",
    "materialize_preview",
    "materialize_table",
    "non_empty_ratio",
    "preview_from_dict",
    "preview_from_json",
    "preview_to_dict",
    "preview_to_json",
    "register_discovery_algorithm",
    "render_materialized_table",
    "render_preview",
    "resolve_algorithm",
    "result_from_dict",
    "result_to_dict",
    "unregister_discovery_algorithm",
]
