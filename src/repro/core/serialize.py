"""JSON (de)serialization for previews and discovery results.

Previews are the library's hand-off artifact — a catalog service
generates them offline and ships them to browsing clients — so they need
a stable, versioned wire format.  The format is plain JSON:

```json
{
  "version": 1,
  "tables": [
    {"key": "FILM",
     "nonkey": [{"name": "Genres", "source": "FILM",
                 "target": "FILM GENRE", "direction": "out"}]}
  ]
}
```
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..exceptions import DiscoveryError
from ..model.attributes import Direction, NonKeyAttribute
from ..model.ids import RelationshipTypeId
from .preview import DiscoveryResult, Preview, PreviewTable

#: Current wire-format version.
FORMAT_VERSION = 1


def attribute_to_dict(attribute: NonKeyAttribute) -> Dict[str, str]:
    """JSON-ready mapping for one non-key attribute."""
    rel = attribute.rel_type
    return {
        "name": rel.name,
        "source": rel.source_type,
        "target": rel.target_type,
        "direction": attribute.direction.value,
    }


def attribute_from_dict(data: Dict[str, Any]) -> NonKeyAttribute:
    """Inverse of :func:`attribute_to_dict`."""
    try:
        rel = RelationshipTypeId(
            name=data["name"],
            source_type=data["source"],
            target_type=data["target"],
        )
        direction = Direction(data["direction"])
    except (KeyError, ValueError) as exc:
        raise DiscoveryError(f"malformed attribute record {data!r}: {exc}") from exc
    return NonKeyAttribute(rel_type=rel, direction=direction)


def preview_to_dict(preview: Preview) -> Dict[str, Any]:
    """JSON-ready, versioned mapping for ``preview``."""
    return {
        "version": FORMAT_VERSION,
        "tables": [
            {
                "key": table.key,
                "nonkey": [attribute_to_dict(attr) for attr in table.nonkey],
            }
            for table in preview.tables
        ],
    }


def preview_from_dict(data: Dict[str, Any]) -> Preview:
    """Inverse of :func:`preview_to_dict`; validates the version."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise DiscoveryError(
            f"unsupported preview format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        tables = tuple(
            PreviewTable(
                key=record["key"],
                nonkey=tuple(
                    attribute_from_dict(attr) for attr in record["nonkey"]
                ),
            )
            for record in data["tables"]
        )
    except KeyError as exc:
        raise DiscoveryError(f"malformed preview record: missing {exc}") from exc
    return Preview(tables=tables)


def preview_to_json(preview: Preview, indent: int = 2) -> str:
    """Serialize ``preview`` to deterministic sorted-key JSON."""
    return json.dumps(preview_to_dict(preview), indent=indent, sort_keys=True)


def preview_from_json(text: str) -> Preview:
    """Parse JSON ``text`` back into a :class:`Preview`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DiscoveryError(f"invalid preview JSON: {exc}") from exc
    return preview_from_dict(data)


def result_to_dict(result: DiscoveryResult) -> Dict[str, Any]:
    """Discovery result with provenance (scorers, algorithm, score)."""
    payload = preview_to_dict(result.preview)
    payload["discovery"] = {
        "score": result.score,
        "algorithm": result.algorithm,
        "key_scorer": result.key_scorer,
        "nonkey_scorer": result.nonkey_scorer,
        "candidates_examined": result.candidates_examined,
    }
    return payload


def result_from_dict(data: Dict[str, Any]) -> DiscoveryResult:
    """Rebuild a :class:`DiscoveryResult` from its JSON mapping."""
    preview = preview_from_dict(data)
    meta = data.get("discovery")
    if not isinstance(meta, dict):
        raise DiscoveryError("missing 'discovery' metadata block")
    try:
        return DiscoveryResult(
            preview=preview,
            score=float(meta["score"]),
            algorithm=str(meta["algorithm"]),
            key_scorer=str(meta["key_scorer"]),
            nonkey_scorer=str(meta["nonkey_scorer"]),
            candidates_examined=int(meta.get("candidates_examined", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DiscoveryError(f"malformed discovery metadata: {exc}") from exc
