"""ASCII rendering of previews in the style of the paper's Fig. 2.

Renders each preview table as a boxed grid: the key attribute heads the
first column (underlined with ``=`` to mark it as the key, mirroring the
paper's underline convention), non-key attributes head the remaining
columns, and each sampled tuple becomes a row.  Multi-valued cells render
as ``{a, b}``; empty cells render as ``-`` (as in Fig. 2's ``t3.Genres``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..model.entity_graph import EntityGraph
from .materialize import (
    DEFAULT_SAMPLE_SIZE,
    MaterializedTable,
    materialize_preview,
)
from .preview import Preview

#: Cell text used for empty attribute values.
EMPTY_CELL = "-"
#: Hard cap on rendered cell width before truncation.
MAX_CELL_WIDTH = 40


def format_value(value: frozenset) -> str:
    """Render a value set: ``-`` empty, bare for singleton, ``{..}`` else."""
    if not value:
        return EMPTY_CELL
    items = sorted(value)
    if len(items) == 1:
        return _truncate(items[0])
    return _truncate("{" + ", ".join(items) + "}")


def _truncate(text: str) -> str:
    if len(text) <= MAX_CELL_WIDTH:
        return text
    return text[: MAX_CELL_WIDTH - 1] + "…"


def render_materialized_table(mat: MaterializedTable) -> str:
    """Render one materialized table as an ASCII grid."""
    headers = [mat.table.key] + [str(attr) for attr in mat.table.nonkey]
    headers = [_truncate(h) for h in headers]
    rows: List[List[str]] = []
    for row in mat.rows:
        cells = [_truncate(row.key_entity)]
        cells.extend(format_value(value) for value in row.values)
        rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    key_marker = format_row(
        ["=" * widths[0]] + [" " * w for w in widths[1:]]
    )
    lines = [separator, format_row(headers), key_marker, separator]
    for cells in rows:
        lines.append(format_row(cells))
    lines.append(separator)
    if mat.total_tuples > mat.shown:
        lines.append(f"({mat.shown} of {mat.total_tuples} tuples shown)")
    return "\n".join(lines)


def render_preview(
    preview: Preview,
    entity_graph: Optional[EntityGraph] = None,
    sample_size: Optional[int] = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> str:
    """Render a preview; with an entity graph, include sampled tuples.

    Without an entity graph, renders the schema-level shape only (key and
    non-key attribute names), which is what schema-only contexts can show.
    """
    if entity_graph is None:
        lines = []
        for table in preview.tables:
            attrs = ", ".join(str(attr) for attr in table.nonkey)
            lines.append(f"[{table.key}] {attrs}")
        return "\n".join(lines)
    blocks = [
        render_materialized_table(mat)
        for mat in materialize_preview(
            entity_graph, preview, sample_size=sample_size, seed=seed
        )
    ]
    return "\n\n".join(blocks)
