"""Tuple materialization and sampling for preview tables.

A preview table keyed on ``τ`` conceptually has one tuple per entity of
type ``τ``; each tuple's value on a non-key attribute is the (possibly
empty, possibly multi-valued) set of related entities (Definition 1).
Since a preview is meant for display, the paper "shows a few randomly
sampled tuples in each preview table" — selecting *representative* tuples
is explicitly future work, so we implement seeded uniform sampling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..exceptions import DiscoveryError
from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId
from .preview import Preview, PreviewTable

#: Default number of tuples displayed per table (Fig. 2 shows 2-4).
DEFAULT_SAMPLE_SIZE = 4


@dataclass(frozen=True)
class MaterializedRow:
    """One displayed tuple: the key entity plus per-attribute value sets."""

    key_entity: EntityId
    values: Tuple[FrozenSet[EntityId], ...]

    def value_for(self, index: int) -> FrozenSet[EntityId]:
        """The entity-id set shown at row ``index``."""
        return self.values[index]


@dataclass(frozen=True)
class MaterializedTable:
    """A preview table together with its sampled rows."""

    table: PreviewTable
    rows: Tuple[MaterializedRow, ...]
    total_tuples: int

    @property
    def shown(self) -> int:
        """Number of sample rows materialized."""
        return len(self.rows)


def materialize_table(
    entity_graph: EntityGraph,
    table: PreviewTable,
    sample_size: Optional[int] = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> MaterializedTable:
    """Materialize ``table`` against ``entity_graph``.

    ``sample_size=None`` materializes every tuple.  Sampling is uniform
    without replacement with a deterministic seed; entities are sorted
    before sampling so the result is stable across runs and platforms.
    """
    entities = sorted(entity_graph.entities_of_type(table.key))
    total = len(entities)
    if sample_size is not None and sample_size < 0:
        raise DiscoveryError(f"sample_size must be non-negative, got {sample_size}")
    if sample_size is not None and total > sample_size:
        rng = random.Random(seed)
        entities = sorted(rng.sample(entities, sample_size))
    rows = tuple(
        MaterializedRow(
            key_entity=entity,
            values=tuple(
                entity_graph.attribute_value(entity, attribute)
                for attribute in table.nonkey
            ),
        )
        for entity in entities
    )
    return MaterializedTable(table=table, rows=rows, total_tuples=total)


def materialize_preview(
    entity_graph: EntityGraph,
    preview: Preview,
    sample_size: Optional[int] = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> List[MaterializedTable]:
    """Materialize every table of ``preview`` (one seeded sample each)."""
    return [
        materialize_table(entity_graph, table, sample_size=sample_size, seed=seed + i)
        for i, table in enumerate(preview.tables)
    ]


def non_empty_ratio(
    entity_graph: EntityGraph, table: PreviewTable, attribute: NonKeyAttribute
) -> float:
    """Fraction of tuples with a non-empty value on ``attribute``.

    Diagnostic used by tests and the examples to show why entropy and
    coverage rank attributes differently.
    """
    if attribute not in table.nonkey:
        raise DiscoveryError(f"{attribute} is not an attribute of {table.key!r}")
    entities = entity_graph.entities_of_type(table.key)
    if not entities:
        return 0.0
    nonempty = sum(
        1 for entity in entities if entity_graph.attribute_value(entity, attribute)
    )
    return nonempty / len(entities)
