"""Brute-force optimal preview discovery (Alg. 1).

Enumerates every k-subset of candidate key attributes; for each subset the
attribute allocation follows Theorem 3 (top-1 per table, then the globally
best remaining candidates via a k-way merge — see
:func:`~repro.core.candidates.best_preview_for_keys`).  The distance-
constrained variant additionally rejects subsets with a violating key
pair, exactly as the paper describes ("performing distance check on every
pair of preview tables in each k-subset").

Complexity: ``O(K N log N + C(K, k) (k + n))`` — exponential in ``k``;
this is the baseline the DP and Apriori algorithms are measured against in
Figs. 8 and 9.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from .. import kernel
from ..scoring.preview_score import ScoringContext
from .candidates import (
    best_preview_for_keys,
    eligible_key_types,
    sharded_discover,
)
from .constraints import DistanceConstraint, SizeConstraint, validate_constraints
from .preview import DiscoveryResult
from .registry import register_discovery_algorithm


@register_discovery_algorithm(
    "brute-force",
    shapes=("concise", "tight", "diverse"),
    auto_rank=50,
    notes="exhaustive baseline; supports every constraint shape",
)
def brute_force_discover(
    context: ScoringContext,
    size: SizeConstraint,
    distance: Optional[DistanceConstraint] = None,
    jobs: int = 1,
    executor=None,
) -> Optional[DiscoveryResult]:
    """Find an optimal (concise/tight/diverse) preview by enumeration.

    Returns None when no k-subset is feasible (e.g. a diverse constraint
    nobody satisfies).  Ties in score are broken by enumeration order,
    which is deterministic given the schema construction order — the paper
    likewise returns one optimal preview and notes the extension to all.
    ``jobs`` shards the per-subset allocation across worker processes
    (0 = all CPU cores) with bit-identical results — see
    :mod:`repro.parallel`; the pairwise distance check stays in the
    parent, which holds the distance oracle.  A live
    :class:`~repro.parallel.ShardedExecutor` can be passed as
    ``executor`` to reuse its pool across calls (``jobs`` is then
    ignored; the caller keeps ownership).
    """
    key_pool = eligible_key_types(context)
    validate_constraints(size, distance, key_pool)
    oracle = context.schema.distance_oracle() if distance is not None else None

    qualifying = (
        keys
        for keys in combinations(key_pool, size.k)
        if distance is None or distance.keys_ok(oracle, keys)
    )
    if jobs != 1 or executor is not None:
        # Imported lazily: jobs=1 callers never touch the parallel
        # subsystem.
        from ..parallel import resolve_jobs

        # C(K, k) bounds the qualifying count before anything is
        # materialized: small key pools skip the worker pool outright.
        estimate = kernel.estimated_subsets(len(key_pool), size.k)
        effective_jobs = (
            executor.jobs if executor is not None else resolve_jobs(jobs)
        )
        if kernel.should_shard(estimate, effective_jobs):
            qualifying = list(qualifying)
            if len(qualifying) > 1:
                return sharded_discover(
                    context,
                    size,
                    qualifying,
                    jobs,
                    "brute-force",
                    executor=executor,
                )
            # 0 or 1 qualifying subsets: fall through to the serial scan
            # over the already-filtered list rather than re-enumerating.

    # Serial path: stream the combination generator through the batched
    # kernel in bounded chunks (the enumeration can be astronomically
    # larger than memory), keeping the first strict maximum across
    # chunks — the same lowest-index tie-break as the old scan.
    pool = context.candidate_pool()
    extra_cap = size.n - size.k
    best_score = float("-inf")
    best_keys = None
    examined = 0
    chunk = []
    append = chunk.append
    for keys in qualifying:
        append(keys)
        if len(chunk) < kernel.BATCH_SIZE:
            continue
        best = kernel.best_allocation(pool, chunk, extra_cap)
        examined += len(chunk)
        if best is not None and best[0] > best_score:
            best_score, best_keys = best[0], chunk[best[1]]
        chunk = []
        append = chunk.append
    if chunk:
        best = kernel.best_allocation(pool, chunk, extra_cap)
        examined += len(chunk)
        if best is not None and best[0] > best_score:
            best_score, best_keys = best[0], chunk[best[1]]
    if best_keys is None:
        return None
    allocation = best_preview_for_keys(context, best_keys, size)
    if allocation is None:  # pragma: no cover - kernel said feasible
        return None
    preview, score = allocation
    return DiscoveryResult(
        preview=preview,
        score=score,
        algorithm="brute-force",
        key_scorer=context.key_scorer_name,
        nonkey_scorer=context.nonkey_scorer_name,
        candidates_examined=examined,
    )
