"""The declared registry of ``REPRO_*`` environment knobs.

Every environment variable the codebase reads is declared here, once,
with its type, default and one-line purpose — and the static checker
(:mod:`repro.lint`, rule REP110) rejects any ``os.environ`` read of a
``REPRO_*`` name anywhere else.  That keeps the knob surface enumerable:
``repro-preview lint --list-rules`` documents the *rules*,
:func:`knob_catalog` documents the *knobs*, and neither can silently
drift from the code.

Reads happen at call time, never at import time, so tests that
``monkeypatch.setenv`` and processes that mutate their environment see
the current value — the same lazy semantics the scattered reads this
module replaced always had.

Raises :class:`~repro.exceptions.ConfigError` for reads of undeclared
names; malformed *values* raise whatever the caller-facing contract
promises (e.g. ``REPRO_DISPATCH_THRESHOLD`` keeps its historical
:class:`~repro.exceptions.KernelError`), which is why :func:`raw_knob`
exposes the unparsed string.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from .exceptions import ConfigError

#: Declared knob name -> spec.  The single source of truth for which
#: REPRO_* variables exist (REP110 forbids reads anywhere else).
_KNOBS: Dict[str, "Knob"] = {}


@dataclass(frozen=True)
class Knob:
    """One declared environment knob.

    Attributes
    ----------
    name:
        The full environment-variable name (``REPRO_KERNEL``).
    default:
        The unparsed default used when the variable is unset (``None``
        means "no default": the accessor reports absence).
    description:
        One line for :func:`knob_catalog` and the docs table.
    """

    name: str
    default: Optional[str]
    description: str


def _declare(name: str, default: Optional[str], description: str) -> Knob:
    knob = Knob(name=name, default=default, description=description)
    _KNOBS[name] = knob
    return knob


KERNEL = _declare(
    "REPRO_KERNEL",
    "auto",
    "scoring kernel backend: auto | oracle | python | numpy",
)
DISPATCH_THRESHOLD = _declare(
    "REPRO_DISPATCH_THRESHOLD",
    None,  # the kernel planner owns the numeric default (4096)
    "subset count below which scoring never pays for the process pool",
)
TEST_JOBS = _declare(
    "REPRO_TEST_JOBS",
    "2",
    "worker count the parallel-path test legs exercise",
)
RESULTS_DIR = _declare(
    "REPRO_RESULTS_DIR",
    None,
    "override directory for benchmark artifacts (default: <repo>/results)",
)
PLAN = _declare(
    "REPRO_PLAN",
    "auto",
    "execution planner mode: auto | serial | sharded | static",
)
PLAN_WINDOW = _declare(
    "REPRO_PLAN_WINDOW",
    None,  # the cost model owns the numeric default (64)
    "cost-model ring-buffer capacity per (signal, backend) series",
)
REPLICATION_WINDOW = _declare(
    "REPRO_REPLICATION_WINDOW",
    "1024",
    "writer-side replication log entries retained for delta catch-up",
)
SNAPSHOT = _declare(
    "REPRO_SNAPSHOT",
    "auto",
    "worker snapshot transport: auto | pickle | mmap",
)


def raw_knob(name: str) -> Optional[str]:
    """The current unparsed value of a *declared* knob.

    Returns the environment value if set, else the declared default
    (which may be ``None``).  This is the one sanctioned path from a
    ``REPRO_*`` name to ``os.environ`` — callers that need bespoke
    parsing/error contracts (the kernel's threshold) build on this.

    Raises
    ------
    ConfigError
        For a name not declared in this module.
    """
    knob = _KNOBS.get(name)
    if knob is None:
        raise ConfigError(
            f"undeclared environment knob {name!r}; declare it in "
            "repro.config before reading it"
        )
    value = os.environ.get(name)
    return value if value is not None else knob.default


def kernel_backend() -> str:
    """The requested kernel backend name, normalized (default ``auto``)."""
    value = (raw_knob(KERNEL.name) or "auto").strip().lower()
    return value or "auto"


def test_jobs() -> int:
    """Worker count for the parallel test legs (default 2).

    Raises
    ------
    ConfigError
        When ``REPRO_TEST_JOBS`` is set but not a positive integer.
    """
    raw = raw_knob(TEST_JOBS.name) or "2"
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{TEST_JOBS.name} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{TEST_JOBS.name} must be >= 1, got {value}")
    return value


def results_dir_override() -> Optional[str]:
    """The results-directory override, or ``None`` to use the default."""
    return raw_knob(RESULTS_DIR.name)


def plan_window() -> int:
    """Cost-model ring-buffer capacity (default 64, minimum 4).

    Raises
    ------
    ConfigError
        When ``REPRO_PLAN_WINDOW`` is set but not an integer >= 4 (the
        least-squares fit needs that many points to identify a slope).
    """
    raw = raw_knob(PLAN_WINDOW.name)
    if raw is None:
        return 64
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{PLAN_WINDOW.name} must be an integer, got {raw!r}"
        ) from None
    if value < 4:
        raise ConfigError(f"{PLAN_WINDOW.name} must be >= 4, got {value}")
    return value


def replication_window() -> int:
    """Writer-side replication-log retention, entries (default 1024).

    A subscriber whose baseline generation fell behind the retained
    window bootstraps from a snapshot instead of the delta stream.

    Raises
    ------
    ConfigError
        When ``REPRO_REPLICATION_WINDOW`` is set but not a positive
        integer.
    """
    raw = raw_knob(REPLICATION_WINDOW.name) or "1024"
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{REPLICATION_WINDOW.name} must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(f"{REPLICATION_WINDOW.name} must be >= 1, got {value}")
    return value


def snapshot_transport() -> str:
    """How scoring snapshots reach worker processes (default ``auto``).

    ``mmap`` shares one memory-mapped score file across workers
    (zero-copy, near-zero pickle cost), ``pickle`` ships the float
    tuples over the pipe, and ``auto`` prefers ``mmap`` with a silent
    fallback to ``pickle`` when the scratch file cannot be created.

    Raises
    ------
    ConfigError
        When ``REPRO_SNAPSHOT`` is set to an unknown transport.
    """
    value = (raw_knob(SNAPSHOT.name) or "auto").strip().lower() or "auto"
    if value not in ("auto", "pickle", "mmap"):
        raise ConfigError(
            f"{SNAPSHOT.name} must be auto, pickle or mmap, got {value!r}"
        )
    return value


def knob_catalog() -> List[Dict[str, Optional[str]]]:
    """JSON-ready summaries of every declared knob, sorted by name."""
    return [
        {
            "name": knob.name,
            "default": knob.default,
            "description": knob.description,
        }
        for name, knob in sorted(_KNOBS.items())
    ]
