"""Dataset persistence: TSV and JSON-Lines round-trips for triple stores.

Two interchangeable formats:

* **TSV** — one ``subject<TAB>predicate<TAB>object<TAB>count`` row per
  distinct triple; tabs/newlines/backslashes in terms are escaped.  This is
  the compact format the benchmark datasets ship in.
* **JSONL** — one JSON object per distinct triple; trivially greppable and
  robust to arbitrary term content.
"""

from __future__ import annotations

import json
import os
from typing import Union

from ..exceptions import PersistenceError
from ..model.triples import Triple
from .triple_store import TripleStore

PathLike = Union[str, "os.PathLike[str]"]

_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}

_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


def _escape(term: str) -> str:
    out = term
    for raw, escaped in _ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


def _unescape(term: str, location: str = "<term>") -> str:
    """Decode one escaped TSV term; malformed escapes fail loudly.

    ``location`` (``path:line``) prefixes the diagnostics.  An unknown
    escape sequence (``\\x``) or a trailing lone backslash means the
    term was not produced by :func:`save_tsv` — decoding it silently
    would hand a mangled term to the store, so both raise
    :class:`~repro.exceptions.PersistenceError` instead.
    """
    out = []
    i = 0
    while i < len(term):
        ch = term[i]
        if ch == "\\":
            if i + 1 >= len(term):
                raise PersistenceError(
                    f"{location}: trailing lone backslash in term {term!r}"
                )
            nxt = term[i + 1]
            mapped = _UNESCAPES.get(nxt)
            if mapped is None:
                raise PersistenceError(
                    f"{location}: unknown escape sequence "
                    f"'\\{nxt}' in term {term!r}"
                )
            out.append(mapped)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


# ----------------------------------------------------------------------
# TSV
# ----------------------------------------------------------------------
def save_tsv(store: TripleStore, path: PathLike) -> int:
    """Write the store as TSV; returns the number of rows written."""
    rows = 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for triple, count in sorted(store.triples()):
                handle.write(
                    f"{_escape(triple.subject)}\t{_escape(triple.predicate)}\t"
                    f"{_escape(triple.object)}\t{count}\n"
                )
                rows += 1
    except OSError as exc:
        raise PersistenceError(f"cannot write {path!r}: {exc}") from exc
    return rows


def load_tsv(path: PathLike) -> TripleStore:
    """Read a TSV file written by :func:`save_tsv`."""
    store = TripleStore()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) != 4:
                    raise PersistenceError(
                        f"{path!s}:{line_number}: expected 4 tab-separated "
                        f"fields, got {len(parts)}"
                    )
                subject, predicate, obj, count_text = parts
                try:
                    count = int(count_text)
                except ValueError:
                    raise PersistenceError(
                        f"{path!s}:{line_number}: bad count {count_text!r}"
                    ) from None
                if count <= 0:
                    raise PersistenceError(
                        f"{path!s}:{line_number}: count must be >= 1, "
                        f"got {count}"
                    )
                location = f"{path!s}:{line_number}"
                store.add(
                    Triple(
                        _unescape(subject, location),
                        _unescape(predicate, location),
                        _unescape(obj, location),
                    ),
                    count=count,
                )
    except OSError as exc:
        raise PersistenceError(f"cannot read {path!r}: {exc}") from exc
    return store


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def save_jsonl(store: TripleStore, path: PathLike) -> int:
    """Write the store as JSON-Lines; returns the number of rows written."""
    rows = 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for triple, count in sorted(store.triples()):
                record = {
                    "s": triple.subject,
                    "p": triple.predicate,
                    "o": triple.object,
                    "n": count,
                }
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
                rows += 1
    except OSError as exc:
        raise PersistenceError(f"cannot write {path!r}: {exc}") from exc
    return rows


def load_jsonl(path: PathLike) -> TripleStore:
    """Read a JSONL file written by :func:`save_jsonl`."""
    store = TripleStore()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    count = int(record.get("n", 1))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise PersistenceError(
                        f"{path!s}:{line_number}: malformed record: {exc}"
                    ) from exc
                if count <= 0:
                    raise PersistenceError(
                        f"{path!s}:{line_number}: count must be >= 1, "
                        f"got {count}"
                    )
                try:
                    store.add(
                        Triple(record["s"], record["p"], record["o"]),
                        count=count,
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise PersistenceError(
                        f"{path!s}:{line_number}: malformed record: {exc}"
                    ) from exc
    except OSError as exc:
        raise PersistenceError(f"cannot read {path!r}: {exc}") from exc
    return store
