"""A small pattern-query layer over :class:`TripleStore`.

Supports conjunctive patterns with variables (strings starting with ``?``)
evaluated by index-backed nested-loop joins with a greedy most-selective-
first ordering.  This is intentionally minimal — enough to express the
exploratory lookups the examples and the schema extractor need, in the
spirit of "load the dump into a database and query it" (Sec. 6).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import StoreError
from .triple_store import TripleStore

Binding = Dict[str, str]
Pattern = Tuple[str, str, str]


def is_variable(term: str) -> bool:
    """Variables are ``?``-prefixed non-empty names."""
    return isinstance(term, str) and term.startswith("?") and len(term) > 1


def _substitute(pattern: Pattern, binding: Binding) -> Pattern:
    return tuple(
        binding.get(term, term) if is_variable(term) else term for term in pattern
    )  # type: ignore[return-value]


def _selectivity(store: TripleStore, pattern: Pattern, binding: Binding) -> int:
    """Estimated result size used for greedy join ordering (lower = better)."""
    s, p, o = _substitute(pattern, binding)
    bound = sum(not is_variable(term) for term in (s, p, o))
    if bound == 3:
        return 0
    if bound == 0:
        return store.distinct_count
    # A crude but effective estimate: count matches up to a small cap.
    cap = 64
    matches = 0
    for _ in store.scan(
        None if is_variable(s) else s,
        None if is_variable(p) else p,
        None if is_variable(o) else o,
    ):
        matches += 1
        if matches >= cap:
            break
    return matches


def match_pattern(
    store: TripleStore, pattern: Pattern, binding: Optional[Binding] = None
) -> Iterator[Binding]:
    """Yield extensions of ``binding`` satisfying one triple pattern."""
    binding = dict(binding or {})
    s, p, o = _substitute(pattern, binding)
    scan = store.scan(
        None if is_variable(s) else s,
        None if is_variable(p) else p,
        None if is_variable(o) else o,
    )
    for triple in scan:
        extended = dict(binding)
        ok = True
        for term, value in zip((s, p, o), triple):
            if is_variable(term):
                if term in extended and extended[term] != value:
                    ok = False
                    break
                extended[term] = value
        if ok:
            yield extended


def query(store: TripleStore, patterns: Sequence[Pattern]) -> List[Binding]:
    """Evaluate a conjunctive query; returns all variable bindings.

    Patterns are reordered greedily by estimated selectivity after each
    join step.  Raises :class:`StoreError` on an empty pattern list.
    """
    if not patterns:
        raise StoreError("query requires at least one pattern")
    remaining = list(patterns)
    results: List[Binding] = [{}]
    while remaining:
        # Pick the most selective pattern under current bindings (use the
        # first binding as the representative; exact ordering only affects
        # performance, not correctness).
        representative = results[0] if results else {}
        remaining.sort(key=lambda pat: _selectivity(store, pat, representative))
        pattern = remaining.pop(0)
        next_results: List[Binding] = []
        for binding in results:
            next_results.extend(match_pattern(store, pattern, binding))
        results = next_results
        if not results:
            return []
    return results


def select(
    store: TripleStore, patterns: Sequence[Pattern], variables: Sequence[str]
) -> List[Tuple[str, ...]]:
    """Evaluate a query and project the given variables (with duplicates)."""
    for var in variables:
        if not is_variable(var):
            raise StoreError(f"projection term {var!r} is not a variable")
    rows = []
    for binding in query(store, patterns):
        try:
            rows.append(tuple(binding[var] for var in variables))
        except KeyError as exc:
            raise StoreError(f"unbound projection variable: {exc}") from None
    return rows
