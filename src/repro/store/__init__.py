"""Triple-store substrate: indexed storage, pattern queries, persistence."""

from .persistence import load_jsonl, load_tsv, save_jsonl, save_tsv
from .query import is_variable, match_pattern, query, select
from .schema_extract import (
    entity_graph_from_store,
    schema_graph_from_store,
    store_from_entity_graph,
)
from .triple_store import TripleStore

__all__ = [
    "TripleStore",
    "entity_graph_from_store",
    "is_variable",
    "load_jsonl",
    "load_tsv",
    "match_pattern",
    "query",
    "save_jsonl",
    "save_tsv",
    "schema_graph_from_store",
    "select",
    "store_from_entity_graph",
]
