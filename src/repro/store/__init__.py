"""Triple-store substrate: indexed storage, pattern queries, persistence.

:mod:`repro.store.disk` adds the persistent binary backend — a single
``.rgs`` file with a sorted string dictionary, mmap-backed triple
permutations and interval indexes — opened in O(header) time by
:func:`open_store`.
"""

from .disk import STORE_EXTENSION, DiskGraphStore, build_store, open_store
from .persistence import load_jsonl, load_tsv, save_jsonl, save_tsv
from .query import is_variable, match_pattern, query, select
from .schema_extract import (
    entity_graph_from_store,
    schema_graph_from_store,
    store_from_entity_graph,
)
from .triple_store import TripleStore

__all__ = [
    "STORE_EXTENSION",
    "DiskGraphStore",
    "TripleStore",
    "build_store",
    "entity_graph_from_store",
    "is_variable",
    "load_jsonl",
    "load_tsv",
    "match_pattern",
    "open_store",
    "query",
    "save_jsonl",
    "save_tsv",
    "schema_graph_from_store",
    "select",
    "store_from_entity_graph",
]
