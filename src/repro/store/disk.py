"""The persistent binary graph store: one file, O(header) cold opens.

The paper's pipeline imports the Freebase dump into a database before
deriving the schema graph and scores; this module is that import made
durable.  :func:`build_store` serializes an
:class:`~repro.model.entity_graph.EntityGraph` into a single binary
file and :func:`open_store` maps it back with a fixed-cost open —
validating the header, never walking the data — so serve hosts,
replicas and the workload oracle cold-start in O(header) instead of
regenerating and rebuilding O(entities) of state.

File format (version 1, little-endian)
--------------------------------------
A fixed :data:`MAGIC` header (version, total size, generation, counts,
the graph's ``sha256:`` fingerprint) is followed by a table of
``(offset, length)`` pairs, one per section in :data:`SECTION_NAMES`:

* a **sorted string dictionary** (``dict_offsets`` + ``dict_blob``):
  every term once, sorted, so dictionary ids order exactly like the
  strings they stand for and ``string -> id`` is a binary search;
* the **order-preserving graph encoding** (``type_order``,
  ``entity_ids``, ``entity_type_offsets``/``entity_type_indexes``,
  ``reltype_table``, ``relationships``): entities in insertion order,
  types in global first-seen order, per-entity type indexes sorted by
  that global order, relationship instances in insertion order — the
  exact codec :func:`~repro.replicate.snapshot.capture_snapshot` uses,
  so the materialized graph is bit-identical to the source and its
  fingerprint provably matches the header;
* **flat triple arrays** in all three permutation orders (``spo``,
  ``pos``, ``osp``): one ``(term, term, term, count)`` row of u64
  dictionary ids per distinct triple, sorted per permutation, so every
  pattern scan is a binary-searched range scan;
* **interval indexes** (``type_intervals``/``type_members`` and the
  ``adjacency_offsets``/``adjacency_targets`` CSR): "all entities of
  type τ" is one ``[start, end)`` slice of a sorted members array, and
  k-hop neighborhood membership walks sorted adjacency ranges — the
  XPath-accelerator-style interval encoding the ROADMAP cites, in
  place of dict-of-set traversal.

Every corruption shape — truncation, bad magic or version, section
bounds outside the file, dangling dictionary offsets, a fingerprint
that no longer matches the materialized graph — raises
:class:`~repro.exceptions.DiskStoreError` with a diagnostic; a damaged
store never answers queries.  See ``docs/disk-store.md``.
"""

from __future__ import annotations

import mmap
import os
import re
import struct
import sys
from array import array
from collections import Counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import DiskStoreError, ModelError, ReplicationError
from ..model.entity_graph import EntityGraph
from ..model.ids import RelationshipTypeId, qualified_name
from ..model.triples import TYPE_PREDICATE, Triple

PathLike = Union[str, "os.PathLike[str]"]

#: First 8 bytes of every store file (PNG-style: high bit, CRLF, ^Z, LF
#: — catches text-mode mangling and truncation-to-text corruption).
MAGIC = b"\x89RGS\r\n\x1a\n"

#: Current file-format version; readers reject anything else.
VERSION = 1

#: The canonical store-file extension (``repro graph store``).
STORE_EXTENSION = ".rgs"

#: Section names in header-table order.
SECTION_NAMES = (
    "dict_offsets",
    "dict_blob",
    "type_order",
    "entity_ids",
    "entity_type_offsets",
    "entity_type_indexes",
    "entity_index",
    "reltype_table",
    "relationships",
    "spo",
    "pos",
    "osp",
    "type_intervals",
    "type_members",
    "adjacency_offsets",
    "adjacency_targets",
)

#: magic, version, header_size, then 9 u64 counts, then fingerprint.
_HEADER = struct.Struct("<8sII9Q72s")

#: One (offset, length) pair per section.
_SECTION_ENTRY = struct.Struct("<QQ")

_HEADER_SIZE = _HEADER.size + _SECTION_ENTRY.size * len(SECTION_NAMES)

_FINGERPRINT_RE = re.compile(r"^sha256:[0-9a-f]{64}$")


def _pack_u64(values: Sequence[int]) -> bytes:
    """Little-endian u64 array bytes (byteswapped on big-endian hosts)."""
    data = array("Q", values)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        data.byteswap()
    return data.tobytes()


def _u64_view(buffer: memoryview, offset: int, length: int):
    """A random-access u64 sequence over ``buffer[offset:offset+length]``.

    Zero-copy (``memoryview.cast``) on little-endian hosts; a decoded
    copy on big-endian ones — same indexing semantics either way.
    """
    window = buffer[offset:offset + length]
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        data = array("Q")
        data.frombytes(bytes(window))
        data.byteswap()
        return data
    return window.cast("Q")


def _bisect_rows(view, width: int, prefix: Tuple[int, ...], upper: bool) -> int:
    """Lower (or upper) bound of ``prefix`` among fixed-width u64 rows."""
    k = len(prefix)
    lo, hi = 0, len(view) // width
    while lo < hi:
        mid = (lo + hi) // 2
        base = mid * width
        row_prefix = tuple(view[base:base + k])
        if row_prefix < prefix or (upper and row_prefix == prefix):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _equal_range(view, width: int, prefix: Tuple[int, ...]) -> Tuple[int, int]:
    """The ``[start, end)`` row range whose prefix equals ``prefix``."""
    return (
        _bisect_rows(view, width, prefix, upper=False),
        _bisect_rows(view, width, prefix, upper=True),
    )


def build_store(graph: EntityGraph, path: PathLike) -> int:
    """Serialize ``graph`` into a binary store file; returns bytes written.

    The graph's insertion orders, first-seen type order and
    ``graph_fingerprint`` are recorded so :meth:`DiskGraphStore.entity_graph`
    reproduces the graph bit-identically (same orders, same generation,
    verified fingerprint).

    Raises
    ------
    PersistenceError
        Never — write failures surface as :class:`DiskStoreError`.
    DiskStoreError
        When the file cannot be written.
    """
    # Lazy: repro.datasets imports repro.store at module scope, so the
    # reverse edge must resolve at call time.
    from ..datasets.loader import graph_fingerprint

    type_order = graph.entity_types()
    entities = list(graph.entities())
    relationships = list(graph.relationships())
    reltypes = graph.relationship_types()
    fingerprint = graph_fingerprint(graph)

    strings = set(entities)
    strings.update(type_order)
    strings.add(TYPE_PREDICATE)
    strings.add(graph.name)
    qualified = {}
    for rel in reltypes:
        strings.update((rel.name, rel.source_type, rel.target_type))
        qualified[rel] = qualified_name(rel)
        strings.add(qualified[rel])
    ordered_strings = sorted(strings)
    sid = {text: i for i, text in enumerate(ordered_strings)}

    blob_parts: List[bytes] = []
    dict_offsets = [0]
    position = 0
    for text in ordered_strings:
        encoded = text.encode("utf-8")
        blob_parts.append(encoded)
        position += len(encoded)
        dict_offsets.append(position)
    dict_blob = b"".join(blob_parts)

    type_rank = {t: i for i, t in enumerate(type_order)}
    entity_rows = {entity: row for row, entity in enumerate(entities)}

    entity_type_offsets = [0]
    entity_type_indexes: List[int] = []
    for entity in entities:
        for rank in sorted(type_rank[t] for t in graph.types_of(entity)):
            entity_type_indexes.append(rank)
        entity_type_offsets.append(len(entity_type_indexes))

    entity_index: List[int] = []
    for entity in sorted(entities):
        entity_index.extend((sid[entity], entity_rows[entity]))

    reltype_rank = {rel: i for i, rel in enumerate(reltypes)}
    reltype_table: List[int] = []
    for rel in reltypes:
        reltype_table.extend(
            (sid[rel.name], sid[rel.source_type], sid[rel.target_type])
        )

    relationship_rows: List[int] = []
    for source, target, rel in relationships:
        relationship_rows.extend(
            (entity_rows[source], reltype_rank[rel], entity_rows[target])
        )

    type_id = sid[TYPE_PREDICATE]
    triple_counts: Counter = Counter()
    for entity in entities:
        for rank in sorted(type_rank[t] for t in graph.types_of(entity)):
            triple_counts[(sid[entity], type_id, sid[type_order[rank]])] += 1
    for source, target, rel in relationships:
        triple_counts[(sid[source], sid[qualified[rel]], sid[target])] += 1
    spo_rows = sorted(triple_counts)
    spo: List[int] = []
    pos_list: List[int] = []
    osp: List[int] = []
    for s, p, o in spo_rows:
        spo.extend((s, p, o, triple_counts[(s, p, o)]))
    for p, o, s in sorted((p, o, s) for s, p, o in spo_rows):
        pos_list.extend((p, o, s, triple_counts[(s, p, o)]))
    for o, s, p in sorted((o, s, p) for s, p, o in spo_rows):
        osp.extend((o, s, p, triple_counts[(s, p, o)]))

    type_intervals: List[int] = []
    type_members: List[int] = []
    for type_name in type_order:
        members = sorted(
            entity_rows[entity] for entity in graph.entities_of_type(type_name)
        )
        type_intervals.extend((len(type_members), len(type_members) + len(members)))
        type_members.extend(members)

    neighbors: List[set] = [set() for _ in entities]
    for source, target, _rel in relationships:
        source_row = entity_rows[source]
        target_row = entity_rows[target]
        neighbors[source_row].add(target_row)
        neighbors[target_row].add(source_row)
    adjacency_offsets = [0]
    adjacency_targets: List[int] = []
    for row_neighbors in neighbors:
        adjacency_targets.extend(sorted(row_neighbors))
        adjacency_offsets.append(len(adjacency_targets))

    # dict_blob goes last so every u64 section stays 8-byte aligned.
    payloads = {
        "dict_offsets": _pack_u64(dict_offsets),
        "dict_blob": dict_blob,
        "type_order": _pack_u64([sid[t] for t in type_order]),
        "entity_ids": _pack_u64([sid[e] for e in entities]),
        "entity_type_offsets": _pack_u64(entity_type_offsets),
        "entity_type_indexes": _pack_u64(entity_type_indexes),
        "entity_index": _pack_u64(entity_index),
        "reltype_table": _pack_u64(reltype_table),
        "relationships": _pack_u64(relationship_rows),
        "spo": _pack_u64(spo),
        "pos": _pack_u64(pos_list),
        "osp": _pack_u64(osp),
        "type_intervals": _pack_u64(type_intervals),
        "type_members": _pack_u64(type_members),
        "adjacency_offsets": _pack_u64(adjacency_offsets),
        "adjacency_targets": _pack_u64(adjacency_targets),
    }
    write_order = [name for name in SECTION_NAMES if name != "dict_blob"]
    write_order.append("dict_blob")

    sections: Dict[str, Tuple[int, int]] = {}
    cursor = _HEADER_SIZE
    for name in write_order:
        sections[name] = (cursor, len(payloads[name]))
        cursor += len(payloads[name])
    total_size = cursor

    header = _HEADER.pack(
        MAGIC,
        VERSION,
        _HEADER_SIZE,
        total_size,
        graph.generation,
        sid[graph.name],
        len(ordered_strings),
        len(entities),
        len(type_order),
        len(reltypes),
        len(relationships),
        len(spo_rows),
        fingerprint.encode("ascii").ljust(72, b"\x00"),
    )
    table = b"".join(
        _SECTION_ENTRY.pack(*sections[name]) for name in SECTION_NAMES
    )
    try:
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(table)
            for name in write_order:
                handle.write(payloads[name])
    except OSError as exc:
        raise DiskStoreError(f"cannot write store file {path!s}: {exc}") from exc
    return total_size


class DiskGraphStore:
    """A read-only, mmap-backed view over one binary store file.

    Opening is O(header): the magic, version, sizes, section bounds and
    fingerprint format are validated, and *nothing else is read* until
    a query or :meth:`entity_graph` touches the mapped sections (the OS
    pages them in on demand).  Use as a context manager, or call
    :meth:`close`.
    """

    def __init__(self, path: PathLike) -> None:
        self._path = str(path)
        try:
            with open(path, "rb") as handle:
                file_size = os.fstat(handle.fileno()).st_size
                if file_size == 0:
                    raise DiskStoreError(f"{self._path}: empty store file")
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
        except OSError as exc:
            raise DiskStoreError(
                f"cannot open store file {self._path}: {exc}"
            ) from exc
        self._view = memoryview(self._mmap)
        try:
            self._read_header(file_size)
        except DiskStoreError:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    def _read_header(self, file_size: int) -> None:
        if file_size < _HEADER_SIZE:
            raise DiskStoreError(
                f"{self._path}: truncated header ({file_size} bytes, "
                f"need {_HEADER_SIZE})"
            )
        (
            magic,
            version,
            header_size,
            total_size,
            self.generation,
            self._name_id,
            self.dict_count,
            self.entity_count,
            self.type_count,
            self.reltype_count,
            self.relationship_count,
            self.triple_count,
            fingerprint_raw,
        ) = _HEADER.unpack_from(self._view, 0)
        if magic != MAGIC:
            raise DiskStoreError(
                f"{self._path}: bad magic {bytes(magic)!r} "
                f"(not a repro graph store)"
            )
        if version != VERSION:
            raise DiskStoreError(
                f"{self._path}: unsupported store version {version} "
                f"(this build reads version {VERSION})"
            )
        if header_size != _HEADER_SIZE:
            raise DiskStoreError(
                f"{self._path}: header size {header_size} does not match "
                f"the version-{VERSION} layout ({_HEADER_SIZE})"
            )
        if total_size != file_size:
            kind = "truncated" if file_size < total_size else "oversized"
            raise DiskStoreError(
                f"{self._path}: {kind} store file ({file_size} bytes on "
                f"disk, header promises {total_size})"
            )
        try:
            fingerprint = fingerprint_raw.rstrip(b"\x00").decode("ascii")
        except UnicodeDecodeError:
            fingerprint = ""
        if not _FINGERPRINT_RE.match(fingerprint):
            raise DiskStoreError(
                f"{self._path}: malformed fingerprint field "
                f"{fingerprint_raw.rstrip(b'x00')!r}"
            )
        self.fingerprint = fingerprint
        self._sections: Dict[str, Tuple[int, int]] = {}
        for position, name in enumerate(SECTION_NAMES):
            offset, length = _SECTION_ENTRY.unpack_from(
                self._view, _HEADER.size + position * _SECTION_ENTRY.size
            )
            if offset < _HEADER_SIZE or offset + length > total_size:
                raise DiskStoreError(
                    f"{self._path}: section {name!r} "
                    f"[{offset}, {offset + length}) falls outside the file"
                )
            self._sections[name] = (offset, length)
        expected_lengths = {
            "dict_offsets": (self.dict_count + 1) * 8,
            "type_order": self.type_count * 8,
            "entity_ids": self.entity_count * 8,
            "entity_type_offsets": (self.entity_count + 1) * 8,
            "entity_index": self.entity_count * 16,
            "reltype_table": self.reltype_count * 24,
            "relationships": self.relationship_count * 24,
            "spo": self.triple_count * 32,
            "pos": self.triple_count * 32,
            "osp": self.triple_count * 32,
            "type_intervals": self.type_count * 16,
            "adjacency_offsets": (self.entity_count + 1) * 8,
        }
        for name, expected in expected_lengths.items():
            actual = self._sections[name][1]
            if actual != expected:
                raise DiskStoreError(
                    f"{self._path}: section {name!r} holds {actual} bytes "
                    f"but the header counts imply {expected}"
                )
        for name in ("entity_type_indexes", "type_members", "adjacency_targets"):
            if self._sections[name][1] % 8:
                raise DiskStoreError(
                    f"{self._path}: section {name!r} length "
                    f"{self._sections[name][1]} is not a whole number of u64s"
                )
        if self._name_id >= self.dict_count:
            raise DiskStoreError(
                f"{self._path}: graph name id {self._name_id} is outside "
                f"the {self.dict_count}-entry dictionary"
            )

    def _section(self, name: str):
        offset, length = self._sections[name]
        return _u64_view(self._view, offset, length)

    # ------------------------------------------------------------------
    # Strings
    # ------------------------------------------------------------------
    def string(self, string_id: int) -> str:
        """The dictionary string with id ``string_id``.

        Raises
        ------
        DiskStoreError
            For an out-of-range id or a dangling dictionary offset.
        """
        if not 0 <= string_id < self.dict_count:
            raise DiskStoreError(
                f"{self._path}: string id {string_id} is outside the "
                f"{self.dict_count}-entry dictionary"
            )
        offsets = self._section("dict_offsets")
        blob_offset, blob_length = self._sections["dict_blob"]
        start, end = offsets[string_id], offsets[string_id + 1]
        if not 0 <= start <= end <= blob_length:
            raise DiskStoreError(
                f"{self._path}: dangling dictionary offset for string "
                f"{string_id} ([{start}, {end}) in a {blob_length}-byte blob)"
            )
        try:
            return bytes(
                self._view[blob_offset + start:blob_offset + end]
            ).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DiskStoreError(
                f"{self._path}: string {string_id} is not valid UTF-8: {exc}"
            ) from exc

    def string_id(self, text: str) -> Optional[int]:
        """The dictionary id of ``text`` (binary search), or ``None``."""
        lo, hi = 0, self.dict_count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.string(mid) < text:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.dict_count and self.string(lo) == text:
            return lo
        return None

    # ------------------------------------------------------------------
    # Header-level introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The stored graph's name."""
        return self.string(self._name_id)

    @property
    def path(self) -> str:
        """The store file this view maps."""
        return self._path

    def describe(self) -> Dict[str, object]:
        """O(header) store summary (the ``dataset info`` payload)."""
        offset, length = self._sections["dict_blob"]
        return {
            "path": self._path,
            "format": {"magic": "RGS", "version": VERSION},
            "name": self.name,
            "fingerprint": self.fingerprint,
            "generation": self.generation,
            "file_bytes": len(self._view),
            "counts": {
                "entities": self.entity_count,
                "entity_types": self.type_count,
                "relationship_types": self.reltype_count,
                "relationships": self.relationship_count,
                "distinct_triples": self.triple_count,
                "dictionary_strings": self.dict_count,
            },
            "sections": {
                name: {
                    "offset": self._sections[name][0],
                    "bytes": self._sections[name][1],
                }
                for name in SECTION_NAMES
            },
        }

    # ------------------------------------------------------------------
    # Interval-indexed queries
    # ------------------------------------------------------------------
    def _type_rank(self, type_name: str) -> Optional[int]:
        type_id = self.string_id(type_name)
        if type_id is None:
            return None
        order = self._section("type_order")
        for rank in range(self.type_count):
            if order[rank] == type_id:
                return rank
        return None

    def type_interval(self, type_name: str) -> Tuple[int, int]:
        """The ``[start, end)`` slice of ``type_members`` for a type.

        Raises
        ------
        DiskStoreError
            For a type the store does not contain.
        """
        rank = self._type_rank(type_name)
        if rank is None:
            raise DiskStoreError(
                f"{self._path}: unknown entity type {type_name!r}"
            )
        intervals = self._section("type_intervals")
        return intervals[2 * rank], intervals[2 * rank + 1]

    def entities_of_type(self, type_name: str) -> Tuple[str, ...]:
        """All entities of ``type_name``, via one interval range scan."""
        start, end = self.type_interval(type_name)
        members = self._section("type_members")
        entity_ids = self._section("entity_ids")
        return tuple(
            self.string(entity_ids[members[i]]) for i in range(start, end)
        )

    def entity_row(self, entity: str) -> Optional[int]:
        """The storage row of ``entity`` (binary search), or ``None``."""
        entity_id = self.string_id(entity)
        if entity_id is None:
            return None
        index = self._section("entity_index")
        lo, hi = 0, self.entity_count
        while lo < hi:
            mid = (lo + hi) // 2
            if index[2 * mid] < entity_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.entity_count and index[2 * lo] == entity_id:
            return index[2 * lo + 1]
        return None

    def neighborhood(self, entity: str, hops: int = 1) -> "frozenset":
        """Entities within ``hops`` undirected hops of ``entity``.

        A breadth-first walk over the CSR adjacency index (sorted
        neighbor ranges, no graph object in sight); includes ``entity``
        itself.

        Raises
        ------
        DiskStoreError
            For an entity the store does not contain, or hops < 0.
        """
        if hops < 0:
            raise DiskStoreError(f"neighborhood hops must be >= 0, got {hops}")
        row = self.entity_row(entity)
        if row is None:
            raise DiskStoreError(f"{self._path}: unknown entity {entity!r}")
        offsets = self._section("adjacency_offsets")
        targets = self._section("adjacency_targets")
        seen = {row}
        frontier = [row]
        for _ in range(hops):
            next_frontier = []
            for current in frontier:
                for i in range(offsets[current], offsets[current + 1]):
                    neighbor = targets[i]
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
        entity_ids = self._section("entity_ids")
        return frozenset(self.string(entity_ids[r]) for r in seen)

    # ------------------------------------------------------------------
    # Triple scans
    # ------------------------------------------------------------------
    def triples(self) -> Iterator[Tuple[Triple, int]]:
        """All distinct ``(triple, count)`` pairs in SPO order."""
        view = self._section("spo")
        for i in range(self.triple_count):
            s, p, o, count = view[4 * i:4 * i + 4]
            yield Triple(self.string(s), self.string(p), self.string(o)), count

    def scan_counted(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        object: Optional[str] = None,
    ) -> Iterator[Tuple[Triple, int]]:
        """Pattern scan: ``(triple, count)`` pairs matching the bound terms.

        Picks the permutation whose sort order turns the bound terms
        into a row prefix (SPO for subject, POS for predicate, OSP for
        object) and binary-searches the matching row range — never a
        full walk unless nothing is bound.
        """
        bound = []
        for term in (subject, predicate, object):
            if term is None:
                bound.append(None)
                continue
            term_id = self.string_id(term)
            if term_id is None:
                return
            bound.append(term_id)
        s_id, p_id, o_id = bound
        if s_id is not None:
            view = self._section("spo")
            prefix = [s_id]
            if p_id is not None:
                prefix.append(p_id)
                if o_id is not None:
                    prefix.append(o_id)
            start, end = _equal_range(view, 4, tuple(prefix))
            for i in range(start, end):
                s, p, o, count = view[4 * i:4 * i + 4]
                if p_id is None and o_id is not None and o != o_id:
                    continue
                yield (
                    Triple(self.string(s), self.string(p), self.string(o)),
                    count,
                )
            return
        if p_id is not None:
            view = self._section("pos")
            prefix = [p_id]
            if o_id is not None:
                prefix.append(o_id)
            start, end = _equal_range(view, 4, tuple(prefix))
            for i in range(start, end):
                p, o, s, count = view[4 * i:4 * i + 4]
                yield (
                    Triple(self.string(s), self.string(p), self.string(o)),
                    count,
                )
            return
        if o_id is not None:
            view = self._section("osp")
            start, end = _equal_range(view, 4, (o_id,))
            for i in range(start, end):
                o, s, p, count = view[4 * i:4 * i + 4]
                yield (
                    Triple(self.string(s), self.string(p), self.string(o)),
                    count,
                )
            return
        yield from self.triples()

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def entity_graph(self, verify: bool = True) -> EntityGraph:
        """Materialize the stored graph, bit-identical to the source.

        Entities are replayed in insertion order with their types in
        global first-seen order, relationship instances in insertion
        order, and the mutation log is fast-forwarded to the stored
        generation — exactly the
        :func:`~repro.replicate.snapshot.restore_snapshot` contract.
        With ``verify`` (the default) the materialized graph's
        fingerprint is recomputed and checked against the header.

        Raises
        ------
        DiskStoreError
            For any structural corruption (out-of-range ids, schema
            violations) or a fingerprint mismatch.
        """
        from ..datasets.loader import graph_fingerprint

        graph = EntityGraph(name=self.name)
        type_order_view = self._section("type_order")
        type_names = [self.string(type_order_view[i]) for i in range(self.type_count)]
        entity_ids = self._section("entity_ids")
        type_offsets = self._section("entity_type_offsets")
        type_indexes = self._section("entity_type_indexes")
        index_count = self._sections["entity_type_indexes"][1] // 8
        try:
            for row in range(self.entity_count):
                start, end = type_offsets[row], type_offsets[row + 1]
                if not 0 <= start <= end <= index_count:
                    raise DiskStoreError(
                        f"{self._path}: entity {row} type slice "
                        f"[{start}, {end}) overruns the index section"
                    )
                types = []
                for i in range(start, end):
                    rank = type_indexes[i]
                    if rank >= self.type_count:
                        raise DiskStoreError(
                            f"{self._path}: entity {row} references type "
                            f"rank {rank} of {self.type_count}"
                        )
                    types.append(type_names[rank])
                graph.add_entity(self.string(entity_ids[row]), types)
            reltype_view = self._section("reltype_table")
            reltypes = [
                RelationshipTypeId(
                    name=self.string(reltype_view[3 * i]),
                    source_type=self.string(reltype_view[3 * i + 1]),
                    target_type=self.string(reltype_view[3 * i + 2]),
                )
                for i in range(self.reltype_count)
            ]
            rel_view = self._section("relationships")
            for i in range(self.relationship_count):
                source_row, rank, target_row = rel_view[3 * i:3 * i + 3]
                if source_row >= self.entity_count or target_row >= self.entity_count:
                    raise DiskStoreError(
                        f"{self._path}: relationship {i} references entity "
                        f"row {max(source_row, target_row)} of "
                        f"{self.entity_count}"
                    )
                if rank >= self.reltype_count:
                    raise DiskStoreError(
                        f"{self._path}: relationship {i} references "
                        f"relationship type {rank} of {self.reltype_count}"
                    )
                graph.add_relationship(
                    self.string(entity_ids[source_row]),
                    self.string(entity_ids[target_row]),
                    reltypes[rank],
                )
        except ModelError as exc:
            raise DiskStoreError(
                f"{self._path}: stored graph violates the data model: {exc}"
            ) from exc
        if verify:
            actual = graph_fingerprint(graph)
            if actual != self.fingerprint:
                raise DiskStoreError(
                    f"{self._path}: fingerprint mismatch — the materialized "
                    f"graph digests {actual} but the header pins "
                    f"{self.fingerprint}; the store file is corrupt or was "
                    "written by a drifted encoder"
                )
        try:
            graph.mutation_log.fast_forward(self.generation)
        except ReplicationError as exc:
            raise DiskStoreError(
                f"{self._path}: stored generation {self.generation} is "
                f"behind the {graph.generation} mutations the graph "
                f"replays to: {exc}"
            ) from exc
        return graph

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the mapping (idempotent)."""
        view, self._view = getattr(self, "_view", None), None
        if view is not None:
            view.release()
        mapping, self._mmap = getattr(self, "_mmap", None), None
        if mapping is not None:
            mapping.close()

    def __enter__(self) -> "DiskGraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskGraphStore(path={self._path!r}, "
            f"entities={self.entity_count}, "
            f"relationships={self.relationship_count})"
        )


def open_store(path: PathLike) -> DiskGraphStore:
    """Open a store file written by :func:`build_store` (O(header)).

    Raises
    ------
    DiskStoreError
        For every corruption shape: unreadable file, bad magic or
        version, truncation, out-of-bounds sections, malformed
        fingerprint.
    """
    return DiskGraphStore(path)
