"""Bridge from the triple store to the entity-graph data model.

Mirrors the paper's pipeline: the dataset lives in a database (our triple
store), from which we materialize the entity graph, then derive its schema
graph and precompute scores before any preview discovery runs.
"""

from __future__ import annotations

from ..exceptions import ModelError, StoreError
from ..model.entity_graph import EntityGraph
from ..model.schema_graph import SchemaGraph
from ..model.triples import TYPE_PREDICATE, entity_graph_to_triples
from .triple_store import TripleStore


def store_from_entity_graph(graph: EntityGraph) -> TripleStore:
    """Load an entity graph into a fresh triple store (with multiplicity)."""
    store = TripleStore()
    for triple in entity_graph_to_triples(graph):
        store.add(triple)
    return store


def entity_graph_from_store(store: TripleStore, name: str = "entity-graph") -> EntityGraph:
    """Materialize an entity graph from a triple store.

    Processes all typing triples first, so relationship triples may appear
    in any order in the store.  Relationship multiplicity is honoured.

    Both passes walk ``store.triples()`` — the store's first-assertion
    insertion order — never the index dictionaries, whose innermost
    sets iterate in hash order.  A store loaded from
    :func:`~repro.model.triples.entity_graph_to_triples` therefore
    rebuilds the graph with the original entity insertion order and
    first-seen type order (typing triples are grouped per subject so
    each entity is added once, with its full ordered type list), and a
    store loaded from a sorted dataset file rebuilds it in the file's
    deterministic order.
    """
    from ..model.ids import parse_qualified_name

    graph = EntityGraph(name=name)
    entity_types: dict = {}
    for triple, _count in store.triples():
        # Typing triples are idempotent; multiplicity is ignored.
        if triple.predicate == TYPE_PREDICATE:
            types = entity_types.setdefault(triple.subject, [])
            if triple.object not in types:
                types.append(triple.object)
    for entity, types in entity_types.items():
        graph.add_entity(entity, types)
    for triple, count in store.triples():
        if triple.predicate == TYPE_PREDICATE:
            continue
        try:
            rel_type = parse_qualified_name(triple.predicate)
        except ModelError as exc:
            raise StoreError(
                f"predicate {triple.predicate!r} is not a qualified "
                f"relationship type: {exc}"
            ) from exc
        for _ in range(count):
            graph.add_relationship(triple.subject, triple.object, rel_type)
    return graph


def schema_graph_from_store(store: TripleStore, name: str = "entity-graph") -> SchemaGraph:
    """Derive a schema graph directly from a triple store."""
    return SchemaGraph.from_entity_graph(entity_graph_from_store(store, name=name))
