"""An in-memory indexed triple store.

The paper imports the Freebase dump into MySQL before deriving the schema
graph and scores.  This module is our storage substrate: a triple store
with the three classical permutation indexes (SPO, POS, OSP) so that every
single-variable pattern scan is an index lookup rather than a full scan.

The store is deliberately duplicate-preserving at the *relationship* level
when used through :mod:`repro.store.schema_extract` (entity graphs are
multigraphs), so triples carry multiplicity: the same (s, p, o) may be
asserted multiple times and each assertion counts.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from ..exceptions import StoreError
from ..model.triples import Triple

_WILDCARD = None


class TripleStore:
    """Multiset of triples with SPO / POS / OSP permutation indexes.

    ``add``/``remove`` are O(1) amortized; ``scan`` with any combination of
    bound terms uses the most selective available index.

    Examples
    --------
    Assertions are counted (entity graphs are multigraphs), and a scan
    with any bound/unbound combination is an index lookup:

    >>> from repro.model.triples import Triple
    >>> store = TripleStore()
    >>> store.add(Triple("Will Smith", "a", "FILM ACTOR"))
    >>> store.add(Triple("Will Smith", "Actor", "Men in Black"), count=2)
    >>> len(store)
    3
    >>> sorted(p for _, p, _ in store.scan(subject="Will Smith"))
    ['Actor', 'a']
    >>> store.count(Triple("Will Smith", "Actor", "Men in Black"))
    2
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        # index maps: first term -> second term -> set of third terms
        self._spo: Dict[str, Dict[str, Set[str]]] = {}
        self._pos: Dict[str, Dict[str, Set[str]]] = {}
        self._osp: Dict[str, Dict[str, Set[str]]] = {}
        self._size = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple, count: int = 1) -> None:
        """Assert ``triple`` ``count`` times."""
        if count <= 0:
            raise StoreError(f"count must be positive, got {count}")
        s, p, o = triple
        self._counts[triple] += count
        self._size += count
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)

    def add_all(self, triples: Iterable[Triple]) -> None:
        """Add every triple in ``triples``."""
        for triple in triples:
            self.add(triple)

    def remove(self, triple: Triple, count: int = 1) -> None:
        """Retract ``triple`` ``count`` times; removing absent triples errors."""
        existing = self._counts.get(triple, 0)
        if existing < count:
            raise StoreError(
                f"cannot remove {count} of {triple!r}; only {existing} asserted"
            )
        self._counts[triple] -= count
        self._size -= count
        if self._counts[triple] == 0:
            del self._counts[triple]
            s, p, o = triple
            self._spo[s][p].discard(o)
            if not self._spo[s][p]:
                del self._spo[s][p]
                if not self._spo[s]:
                    del self._spo[s]
            self._pos[p][o].discard(s)
            if not self._pos[p][o]:
                del self._pos[p][o]
                if not self._pos[p]:
                    del self._pos[p]
            self._osp[o][s].discard(p)
            if not self._osp[o][s]:
                del self._osp[o][s]
                if not self._osp[o]:
                    del self._osp[o]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def count(self, triple: Triple) -> int:
        """Multiplicity of an exact triple."""
        return self._counts.get(triple, 0)

    def __len__(self) -> int:
        """Total assertions (with multiplicity)."""
        return self._size

    @property
    def distinct_count(self) -> int:
        """Number of distinct (s, p, o) triples."""
        return len(self._counts)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._counts

    def triples(self) -> Iterator[Tuple[Triple, int]]:
        """Yield ``(triple, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def subjects(self) -> Iterator[str]:
        """Iterator over distinct subjects."""
        return iter(self._spo)

    def predicates(self) -> Iterator[str]:
        """Iterator over distinct predicates."""
        return iter(self._pos)

    def objects(self) -> Iterator[str]:
        """Iterator over distinct objects."""
        return iter(self._osp)

    # ------------------------------------------------------------------
    # Pattern scans
    # ------------------------------------------------------------------
    def scan(
        self,
        subject: Optional[str] = _WILDCARD,
        predicate: Optional[str] = _WILDCARD,
        object: Optional[str] = _WILDCARD,
    ) -> Iterator[Triple]:
        """Yield distinct triples matching the pattern (None = wildcard).

        Multiplicity is available via :meth:`count`; ``scan_counted``
        yields it inline.
        """
        s_bound = subject is not _WILDCARD
        p_bound = predicate is not _WILDCARD
        o_bound = object is not _WILDCARD

        if s_bound and p_bound and o_bound:
            triple = Triple(subject, predicate, object)
            if triple in self._counts:
                yield triple
            return
        if s_bound and p_bound:
            for o in self._spo.get(subject, {}).get(predicate, ()):
                yield Triple(subject, predicate, o)
            return
        if p_bound and o_bound:
            for s in self._pos.get(predicate, {}).get(object, ()):
                yield Triple(s, predicate, object)
            return
        if o_bound and s_bound:
            for p in self._osp.get(object, {}).get(subject, ()):
                yield Triple(subject, p, object)
            return
        if s_bound:
            for p, objects in self._spo.get(subject, {}).items():
                for o in objects:
                    yield Triple(subject, p, o)
            return
        if p_bound:
            for o, subjects in self._pos.get(predicate, {}).items():
                for s in subjects:
                    yield Triple(s, predicate, o)
            return
        if o_bound:
            for s, predicates in self._osp.get(object, {}).items():
                for p in predicates:
                    yield Triple(s, p, object)
            return
        for triple in self._counts:
            yield triple

    def scan_counted(
        self,
        subject: Optional[str] = _WILDCARD,
        predicate: Optional[str] = _WILDCARD,
        object: Optional[str] = _WILDCARD,
    ) -> Iterator[Tuple[Triple, int]]:
        """Like :meth:`scan` but yields ``(triple, multiplicity)``."""
        for triple in self.scan(subject, predicate, object):
            yield triple, self._counts[triple]

    def predicate_cardinality(self, predicate: str) -> int:
        """Total assertions (with multiplicity) under ``predicate``.

        This is the aggregate the coverage-based non-key scorer reads.
        """
        total = 0
        for o, subjects in self._pos.get(predicate, {}).items():
            for s in subjects:
                total += self._counts[Triple(s, predicate, o)]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TripleStore(assertions={self._size}, "
            f"distinct={self.distinct_count})"
        )
