"""repro — a reproduction of "Generating Preview Tables for Entity Graphs".

Yan, Hasani, Asudeh, Li.  SIGMOD 2016.

The package generates *preview tables* for entity graphs: given a large,
heterogeneous typed graph (a knowledge base domain, a social graph, ...),
it selects a few important entity types and, for each, a small set of
highly related relationship types, producing compact tables that fit a
display-size constraint.

Quickstart
----------
>>> from repro import EntityGraphBuilder, discover_preview, render_preview
>>> b = EntityGraphBuilder("tiny")
>>> _ = b.entity("Men in Black", "FILM").entity("Will Smith", "FILM ACTOR")
>>> _ = b.relate("Will Smith", "Actor", "Men in Black")
>>> graph = b.build()
>>> result = discover_preview(graph, k=1, n=1)
>>> result.preview.table_count
1

See ``examples/`` for realistic scenarios and ``benchmarks/`` for the
paper's full experimental suite.
"""

from .core import (
    DISCOVERY_ALGORITHMS,
    DiscoveryResult,
    DistanceConstraint,
    DistanceMode,
    Preview,
    PreviewTable,
    SizeConstraint,
    apriori_discover,
    brute_force_discover,
    discover_preview,
    dynamic_programming_discover,
    make_context,
    materialize_preview,
    register_discovery_algorithm,
    render_preview,
)
from .engine import PreviewEngine, PreviewQuery
from .parallel import ScoringSnapshot, ShardedExecutor, resolve_jobs
from .exceptions import (
    DiscoveryError,
    InfeasiblePreviewError,
    InvalidConstraintError,
    ModelError,
    ReproError,
    SchemaViolationError,
    ScoringError,
    StoreError,
    WorkloadError,
)
from .model import (
    Direction,
    EntityGraph,
    EntityGraphBuilder,
    MutationDelta,
    MutationLog,
    NonKeyAttribute,
    RelationshipTypeId,
    SchemaGraph,
)
from .scoring import ScoringContext
from .store import TripleStore

__version__ = "1.9.0"

__all__ = [
    "DISCOVERY_ALGORITHMS",
    "Direction",
    "DiscoveryError",
    "DiscoveryResult",
    "DistanceConstraint",
    "DistanceMode",
    "EntityGraph",
    "EntityGraphBuilder",
    "InfeasiblePreviewError",
    "InvalidConstraintError",
    "ModelError",
    "MutationDelta",
    "MutationLog",
    "NonKeyAttribute",
    "Preview",
    "PreviewEngine",
    "PreviewQuery",
    "PreviewTable",
    "RelationshipTypeId",
    "ReproError",
    "SchemaGraph",
    "SchemaViolationError",
    "ScoringContext",
    "ScoringError",
    "ScoringSnapshot",
    "ShardedExecutor",
    "SizeConstraint",
    "StoreError",
    "TripleStore",
    "WorkloadError",
    "apriori_discover",
    "brute_force_discover",
    "discover_preview",
    "dynamic_programming_discover",
    "make_context",
    "materialize_preview",
    "register_discovery_algorithm",
    "render_preview",
    "resolve_jobs",
    "__version__",
]
