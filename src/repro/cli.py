"""Command-line interface: generate previews for datasets from the shell.

Examples
--------
Preview a built-in Freebase-like domain::

    repro-preview --domain film --tables 5 --attrs 10

Tight/diverse previews::

    repro-preview --domain music --tables 5 --attrs 10 --tight 2
    repro-preview --domain music --tables 5 --attrs 10 --diverse 4

Preview a dataset file (TSV/JSONL in the repro triple format)::

    repro-preview --file mydata.tsv --tables 4 --attrs 8

Force a registered algorithm, or sweep the attribute budget through the
cache-aware engine (one line per point, shared pruning state)::

    repro-preview --domain film --tables 3 --attrs 9 --algorithm brute-force
    repro-preview --domain music --tables 5 --tight 2 --sweep-n 6:14

Shard the qualifying-subset evaluation across worker processes (results
are identical at any job count; 0 means all CPU cores)::

    repro-preview --domain music --tables 5 --tight 2 --sweep-n 6:14 --jobs 4

Serve preview tables to concurrent clients over the JSON-line protocol
(see ``docs/serving.md``)::

    repro-preview serve --datasets film,music --port 9400 --jobs 2

Run the replicated tier (``docs/replication.md``): one writer, any
number of read replicas subscribed to it, and a router in front::

    repro-preview serve --role writer --datasets film --port 9400
    repro-preview serve --role replica --datasets film --port 9401 \\
        --upstream 127.0.0.1:9400
    repro-preview serve --role router --datasets film --port 9500 \\
        --writer 127.0.0.1:9400 --replicas 127.0.0.1:9401

Record a workload trace and differentially verify it across the serial,
incremental, sharded, serve and replicated execution paths
(``docs/workloads.md``)::

    repro-preview workload record --domain film --ops 200 --out trace.jsonl
    repro-preview workload replay trace.jsonl --diff --jobs 2

Build a persistent binary store once, then cold-open it everywhere a
graph is accepted — O(header) instead of regeneration
(``docs/disk-store.md``)::

    repro-preview dataset build --domain film --out film.rgs
    repro-preview dataset info film.rgs --verify
    repro-preview --file film.rgs --tables 3 --attrs 9
    repro-preview serve --store film.rgs --port 9400
    repro-preview workload replay trace.jsonl --diff --store film.rgs
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from . import plan
from .core.registry import available_algorithms
from .core.render import render_preview
from .datasets.freebase_like import DOMAINS, generate_domain, load_domain
from .datasets.loader import load_domain_file
from .engine import PreviewEngine, PreviewQuery
from .exceptions import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-preview`` query argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-preview",
        description="Generate preview tables for an entity graph.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--domain",
        choices=DOMAINS,
        help="built-in Freebase-like domain to preview",
    )
    source.add_argument(
        "--file",
        help=(
            "dataset file (.tsv/.jsonl in the repro triple format, or a "
            ".rgs binary store built by `dataset build`)"
        ),
    )
    parser.add_argument("--tables", "-k", type=int, default=3, help="preview tables (k)")
    parser.add_argument(
        "--attrs", "-n", type=int, default=9, help="total non-key attributes (n)"
    )
    distance = parser.add_mutually_exclusive_group()
    distance.add_argument(
        "--tight", type=int, metavar="D", help="tight preview: pairwise distance <= D"
    )
    distance.add_argument(
        "--diverse", type=int, metavar="D", help="diverse preview: pairwise distance >= D"
    )
    parser.add_argument(
        "--key-scorer",
        choices=("coverage", "random_walk"),
        default="coverage",
        help="key attribute scoring measure",
    )
    parser.add_argument(
        "--nonkey-scorer",
        choices=("coverage", "entropy"),
        default="coverage",
        help="non-key attribute scoring measure",
    )
    parser.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="auto",
        help="discovery algorithm (auto resolves through the registry)",
    )
    parser.add_argument(
        "--sweep-n",
        metavar="LO:HI",
        help=(
            "sweep the attribute budget n from LO to HI through the "
            "cache-aware engine and print one summary line per point"
        ),
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sharded subset evaluation (default 1 = "
            "serial, 0 = all CPU cores); results are identical at any "
            "job count"
        ),
    )
    parser.add_argument(
        "--plan",
        choices=plan.PLAN_MODES,
        default=None,
        help=(
            "execution planner mode (default: the REPRO_PLAN environment "
            "knob, i.e. auto); results are identical in every mode"
        ),
    )
    parser.add_argument(
        "--tuples", type=int, default=4, help="sampled tuples shown per table"
    )
    parser.add_argument(
        "--scale", type=int, default=1000, help="domain downscale factor (built-ins)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    return parser


def _parse_sweep(spec: str) -> range:
    """``"LO:HI"`` -> inclusive range of attribute budgets."""
    try:
        lo_text, hi_text = spec.split(":", 1)
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise ReproError(f"--sweep-n expects LO:HI, got {spec!r}") from None
    if lo > hi:
        raise ReproError(f"--sweep-n range is empty: {spec!r}")
    return range(lo, hi + 1)


def _run_sweep(engine: PreviewEngine, args: argparse.Namespace, d, mode) -> int:
    budgets = _parse_sweep(args.sweep_n)
    for n in budgets:
        if n < args.tables:
            print(f"k={args.tables}, n={n}: invalid (n must be at least k)")
    queries = [
        PreviewQuery(k=args.tables, n=n, d=d, mode=mode, algorithm=args.algorithm)
        for n in budgets
        if n >= args.tables
    ]
    results = engine.sweep(queries, skip_infeasible=True, jobs=args.jobs)
    for query, result in zip(queries, results):
        if result is None:
            print(f"{query.describe()}: infeasible")
            continue
        keys = ", ".join(str(key) for key in result.preview.keys())
        print(
            f"{query.describe()}: score={result.score:.4g} "
            f"algorithm={result.algorithm} keys=[{keys}]"
        )
    info = engine.cache_info()
    print(
        f"# engine: {info['misses']} computed, {info['hits']} cache hits, "
        f"{info['profile_groups']} shared pruning group(s)"
    )
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro-preview serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-preview serve",
        description=(
            "Serve preview tables to concurrent clients over the "
            "JSON-line protocol (docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--datasets",
        default="film",
        metavar="NAMES",
        help=(
            "comma-separated built-in domains to host (each gets a "
            f"private copy); available: {', '.join(DOMAINS)}"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="PATHS",
        help=(
            "comma-separated .rgs binary store files to host instead of "
            "--datasets; each cold-opens in O(header) and serves under "
            "its stored graph name (docs/disk-store.md)"
        ),
    )
    parser.add_argument(
        "--role",
        choices=("standalone", "writer", "replica", "router"),
        default="standalone",
        help=(
            "service role (docs/replication.md): standalone serves reads "
            "and writes itself; writer additionally streams mutation "
            "deltas to subscribed replicas; replica follows --upstream "
            "and serves reads only; router owns no engines and forwards "
            "to --writer / --replicas"
        ),
    )
    parser.add_argument(
        "--upstream",
        metavar="HOST:PORT",
        help="(replica) the writer service to subscribe to",
    )
    parser.add_argument(
        "--writer",
        metavar="HOST:PORT",
        help="(router) the writer service mutations are forwarded to",
    )
    parser.add_argument(
        "--replicas",
        metavar="HOST:PORT,...",
        help=(
            "(router) comma-separated replica services reads are "
            "consistent-hashed across (empty: reads fall back to the "
            "writer)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=9400, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes per dataset for sharded subset evaluation "
            "(default 1 = serial, 0 = all CPU cores); one executor stays "
            "alive across requests"
        ),
    )
    parser.add_argument(
        "--key-scorer",
        choices=("coverage", "random_walk"),
        default="coverage",
        help="key attribute scoring measure",
    )
    parser.add_argument(
        "--nonkey-scorer",
        choices=("coverage", "entropy"),
        default="coverage",
        help="non-key attribute scoring measure",
    )
    parser.add_argument(
        "--scale", type=int, default=1000, help="domain downscale factor"
    )
    parser.add_argument("--seed", type=int, default=0, help="generation seed")
    parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="admission control: reject requests beyond N in flight",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request timeout; expired requests answer a timeout error",
    )
    return parser


def _parse_address(text: str, flag: str) -> tuple:
    """``"HOST:PORT"`` -> ``(host, port)`` with CLI-grade errors."""
    host, _, port_text = text.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(f"{flag} expects HOST:PORT, got {text!r}") from None
    if not host or not (0 < port < 65536):
        raise ReproError(f"{flag} expects HOST:PORT, got {text!r}")
    return host, port


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-preview serve``."""
    import asyncio

    from .serve import EngineHost, PreviewService

    args = build_serve_parser().parse_args(argv)
    try:
        store_paths = [
            text.strip() for text in (args.store or "").split(",") if text.strip()
        ]
        graphs = {}
        if store_paths:
            if args.role == "router":
                raise ReproError(
                    "--store does not apply to --role router (a router owns "
                    "no engines; point --writer/--replicas at store-backed "
                    "services instead)"
                )
            from .store import open_store

            for path in store_paths:
                # O(header) cold open: the graph materializes from the
                # mapped sections, fingerprint-verified, instead of being
                # regenerated from the domain profiles.
                with open_store(path) as store_file:
                    graph = store_file.entity_graph()
                if graph.name in graphs:
                    raise ReproError(
                        f"duplicate stored graph name {graph.name!r} "
                        f"across --store files"
                    )
                graphs[graph.name] = graph
            names = list(graphs)
        else:
            names = [name.strip() for name in args.datasets.split(",") if name.strip()]
            if not names:
                raise ReproError("--datasets must name at least one domain")
            for name in names:
                if name not in DOMAINS:
                    raise ReproError(
                        f"unknown domain {name!r}; available: {', '.join(DOMAINS)}"
                    )
        if args.role == "router":
            from .replicate import RouterService

            if not args.writer:
                raise ReproError("--role router requires --writer HOST:PORT")
            replicas = [
                _parse_address(text.strip(), "--replicas")
                for text in (args.replicas or "").split(",")
                if text.strip()
            ]
            service = RouterService(
                _parse_address(args.writer, "--writer"),
                replicas,
                names,
                max_pending=args.max_pending,
                request_timeout=args.timeout,
            )
        else:
            host_class = EngineHost
            if args.role == "writer":
                from .replicate import WriterHost

                host_class = WriterHost
            elif args.role == "replica":
                from .replicate import ReplicaHost

                host_class = ReplicaHost
            hosts = {}
            for name in names:
                # generate_domain (not the lru-cached load_domain): served
                # graphs accept mutations and must be private copies.  A
                # store-opened graph is already private to this process.
                graph = graphs.get(name) or generate_domain(
                    name, scale=args.scale, seed=args.seed
                )
                hosts[name] = host_class(
                    name,
                    graph,
                    key_scorer=args.key_scorer,
                    nonkey_scorer=args.nonkey_scorer,
                    jobs=args.jobs,
                )
            service_kwargs = dict(
                max_pending=args.max_pending,
                request_timeout=args.timeout,
            )
            if args.role == "writer":
                from .replicate import WriterService

                service = WriterService(hosts, **service_kwargs)
            elif args.role == "replica":
                from .replicate import ReplicaService

                if not args.upstream:
                    raise ReproError("--role replica requires --upstream HOST:PORT")
                service = ReplicaService(
                    hosts,
                    upstream=_parse_address(args.upstream, "--upstream"),
                    **service_kwargs,
                )
            else:
                service = PreviewService(hosts, **service_kwargs)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    async def run() -> None:
        await service.start(args.host, args.port)
        bound_host, bound_port = service.address
        print(
            f"serving {', '.join(sorted(names))} on {bound_host}:{bound_port} "
            f"(role={args.role}, jobs={args.jobs}, "
            f"max_pending={args.max_pending}, timeout={args.timeout:g}s)",
            flush=True,
        )
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    except OSError as exc:
        # Bind failures (port in use, privileged port, bad address)
        # follow the same error convention as every other CLI path.
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    return 0


def build_workload_parser() -> argparse.ArgumentParser:
    """The ``repro-preview workload`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-preview workload",
        description=(
            "Generate, record, replay and differentially verify workload "
            "traces (docs/workloads.md)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_generation_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--domain", choices=DOMAINS, default="film",
            help="built-in domain the trace runs against",
        )
        sub.add_argument(
            "--scale", type=int, default=1000, help="domain downscale factor"
        )
        sub.add_argument("--seed", type=int, default=0, help="generation seed")
        sub.add_argument(
            "--ops", type=int, default=100, help="operations to generate"
        )
        sub.add_argument(
            "--scenario", default="steady", metavar="NAME",
            help="scenario preset (see `repro.workload.SCENARIOS`)",
        )

    def add_jobs_arg(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--jobs", "-j", type=int, default=2, metavar="N",
            help="worker processes for the sharded path (default 2)",
        )

    def add_store_arg(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store", metavar="STORE.rgs",
            help=(
                "open the starting graph from a .rgs binary store "
                "(fingerprint-checked against the trace header) instead "
                "of regenerating the domain"
            ),
        )

    record = commands.add_parser(
        "record",
        help="generate a scenario, record payload digests, write a JSONL trace",
    )
    add_generation_args(record)
    record.add_argument(
        "--out", "-o", required=True, metavar="TRACE.jsonl",
        help="where to write the recorded trace",
    )

    replay = commands.add_parser(
        "replay", help="replay a recorded trace through one or all paths"
    )
    replay.add_argument("trace", metavar="TRACE.jsonl", help="trace file to replay")
    replay.add_argument(
        "--path", default="incremental", metavar="PATH",
        help=(
            "execution path: serial, incremental, sharded, serve, "
            "replicated (ignored with --diff, which runs all of them)"
        ),
    )
    replay.add_argument(
        "--diff", action="store_true",
        help="replay through every path and diff the payloads op by op",
    )
    add_jobs_arg(replay)
    add_store_arg(replay)

    diff = commands.add_parser(
        "diff", help="shorthand for `replay --diff` (all paths, differential)"
    )
    diff.add_argument("trace", metavar="TRACE.jsonl", help="trace file to diff")
    add_jobs_arg(diff)
    add_store_arg(diff)

    run = commands.add_parser(
        "run", help="generate a scenario and run the conformance oracle on it"
    )
    add_generation_args(run)
    add_jobs_arg(run)
    run.add_argument(
        "--paths",
        default=",".join(
            ("serial", "incremental", "sharded", "serve", "replicated")
        ),
        metavar="P1,P2,...", help="comma-separated replay paths to compare",
    )
    return parser


def _workload_diff(trace, jobs: int, paths=None, store=None) -> int:
    from .workload import REPLAY_PATHS, format_report, run_conformance

    report = run_conformance(
        trace, paths=paths or REPLAY_PATHS, jobs=jobs, store=store
    )
    print(format_report(report))
    ok = report["identical"] and report["recorded_digests"]["ok"]
    return 0 if ok else 1


def workload_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-preview workload``."""
    from .workload import (
        WorkloadTrace,
        generate_trace,
        record_digests,
        replay_trace,
    )

    args = build_workload_parser().parse_args(argv)
    try:
        if args.command == "record":
            trace = generate_trace(
                domain=args.domain, scale=args.scale, seed=args.seed,
                ops=args.ops, scenario=args.scenario,
            )
            trace = record_digests(trace)
            trace.dump(args.out)
            print(
                f"recorded {len(trace.ops)} ops ({trace.read_count} reads, "
                f"{trace.mutation_count} mutations) on {trace.domain} "
                f"-> {args.out}"
            )
            return 0
        if args.command == "run":
            trace = generate_trace(
                domain=args.domain, scale=args.scale, seed=args.seed,
                ops=args.ops, scenario=args.scenario,
            )
            paths = [name.strip() for name in args.paths.split(",") if name.strip()]
            return _workload_diff(trace, args.jobs, paths=paths)
        trace = WorkloadTrace.load(args.trace)
        if args.command == "diff" or args.diff:
            return _workload_diff(trace, args.jobs, store=args.store)
        result = replay_trace(
            trace, path=args.path, jobs=args.jobs, verify_digests=True,
            store=args.store,
        )
        print(
            f"{result.path}: {result.ops} ops in {result.seconds:.3f}s "
            f"({result.ops_per_second:.2f} ops/s, {result.reads} reads, "
            f"{result.mutations} mutations)"
        )
        # Checked unconditionally: a trace that carries digests on only
        # some ops (hand-edited, merge-damaged) must still fail loudly
        # when any of those digests is not reproduced.
        if result.digest_mismatches:
            first = result.digest_mismatches[0]
            print(
                f"error: {len(result.digest_mismatches)} recorded digest(s) "
                f"not reproduced (first at op #{first[0]})",
                file=sys.stderr,
            )
            return 1
        if trace.has_digests():
            print("recorded digests: reproduced byte-for-byte")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def build_dataset_parser() -> argparse.ArgumentParser:
    """The ``repro-preview dataset`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-preview dataset",
        description=(
            "Build and inspect persistent binary graph stores "
            "(docs/disk-store.md)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser(
        "build",
        help="serialize a domain or dataset file into a .rgs binary store",
    )
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--domain", choices=DOMAINS, help="built-in domain to store"
    )
    source.add_argument(
        "--file", help="dataset file to store (.tsv/.jsonl)"
    )
    build.add_argument(
        "--scale", type=int, default=1000, help="domain downscale factor"
    )
    build.add_argument("--seed", type=int, default=0, help="generation seed")
    build.add_argument(
        "--out", "-o", required=True, metavar="STORE.rgs",
        help="where to write the store file",
    )

    info = commands.add_parser(
        "info",
        help="print a store's header summary (O(header), JSON)",
    )
    info.add_argument("path", metavar="STORE.rgs", help="store file to inspect")
    info.add_argument(
        "--verify", action="store_true",
        help=(
            "additionally materialize the graph and check it against the "
            "header fingerprint (O(data))"
        ),
    )
    return parser


def dataset_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-preview dataset``."""
    import json

    from .datasets.loader import graph_fingerprint
    from .store import STORE_EXTENSION, build_store, open_store

    args = build_dataset_parser().parse_args(argv)
    try:
        if args.command == "build":
            if not args.out.endswith(STORE_EXTENSION):
                raise ReproError(
                    f"--out must end with {STORE_EXTENSION}, got {args.out!r}"
                )
            if args.domain:
                graph = generate_domain(
                    args.domain, scale=args.scale, seed=args.seed
                )
            else:
                graph = load_domain_file(args.file)
            total = build_store(graph, args.out)
            print(
                f"stored {graph.name}: {total} bytes, "
                f"fingerprint {graph_fingerprint(graph)} -> {args.out}"
            )
            return 0
        with open_store(args.path) as store_file:
            summary = store_file.describe()
            if args.verify:
                store_file.entity_graph(verify=True)
                summary["verified"] = True
            print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-preview lint``."""
    from .lint import main as run_lint

    return run_lint(argv)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-preview``: dispatch subcommands, run queries."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "workload":
        return workload_main(argv[1:])
    if argv and argv[0] == "dataset":
        return dataset_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.domain:
            graph = load_domain(args.domain, scale=args.scale, seed=args.seed)
        else:
            graph = load_domain_file(args.file)
        d = None
        mode = "tight"
        if args.tight is not None:
            d, mode = args.tight, "tight"
        elif args.diverse is not None:
            d, mode = args.diverse, "diverse"
        engine = PreviewEngine(
            graph,
            key_scorer=args.key_scorer,
            nonkey_scorer=args.nonkey_scorer,
        )
        forced = (
            plan.use_mode(args.plan) if args.plan is not None else nullcontext()
        )
        with forced:
            if args.sweep_n:
                return _run_sweep(engine, args, d, mode)
            result = engine.query(
                k=args.tables,
                n=args.attrs,
                d=d,
                mode=mode,
                algorithm=args.algorithm,
                jobs=args.jobs,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    header = (
        f"preview: k={args.tables} n={args.attrs} "
        f"key={args.key_scorer} nonkey={args.nonkey_scorer} "
        f"algorithm={result.algorithm} score={result.score:.4g}"
    )
    print(header)
    print("=" * len(header))
    print(render_preview(result.preview, graph, sample_size=args.tuples, seed=args.seed))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
