"""Preview score aggregation (Eq. 1 / Eq. 2) and the scoring context.

The score of a preview table is the product of its key attribute's score
and the sum of its non-key attributes' scores; the score of a preview is
the sum of its tables' scores:

    S(P)    = Σ_i S(P[i])                             (Eq. 1)
    S(P[i]) = S(τ) × Σ_{γ ∈ P[i].nonkey} Sτ(γ)        (Eq. 2)

:class:`ScoringContext` bundles a schema graph (and optionally the entity
graph) with one key scorer and one non-key scorer, precomputes every score
once — the paper assumes exactly this precomputation before discovery
(Sec. 5) — and exposes the sorted candidate lists ``Γτ`` that Theorem 3
makes sufficient for optimality.

The context additionally materializes a :class:`CandidatePool`
(:meth:`ScoringContext.candidate_pool`, built lazily and cached): flat
parallel arrays of per-type key scores, sorted ``Γτ`` candidates with
their raw and ``S(τ)``-weighted scores, and top-``m`` prefix-sum tables
``prefix[i][m] = S(T_τ^m)`` with ``prefix[i][0] == 0``.  The discovery
algorithms read from the pool instead of re-deriving dictionaries and
sorts per call — see :mod:`repro.scoring.candidate_pool` for the exact
array layout and conventions.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..exceptions import ScoringError
from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph
from .base import (
    KeyScorer,
    NonKeyScorer,
    make_key_scorer,
    make_nonkey_scorer,
    scorer_pair_supports_delta,
)
from .candidate_pool import CandidatePool


class ScoringContext:
    """Precomputed key/non-key scores over one dataset.

    Parameters
    ----------
    schema:
        The schema graph (always required).
    entity_graph:
        The underlying entity graph; required by entity-level measures
        (entropy), optional otherwise.
    key_scorer, nonkey_scorer:
        Registry names (``"coverage"``, ``"random_walk"``, ``"entropy"``)
        or scorer instances.
    """

    def __init__(
        self,
        schema: SchemaGraph,
        entity_graph: Optional[EntityGraph] = None,
        key_scorer: Union[str, KeyScorer] = "coverage",
        nonkey_scorer: Union[str, NonKeyScorer] = "coverage",
    ) -> None:
        self.schema = schema
        self.entity_graph = entity_graph
        self._key_scorer = (
            make_key_scorer(key_scorer) if isinstance(key_scorer, str) else key_scorer
        )
        self._nonkey_scorer = (
            make_nonkey_scorer(nonkey_scorer)
            if isinstance(nonkey_scorer, str)
            else nonkey_scorer
        )
        if self._nonkey_scorer.requires_entity_graph and entity_graph is None:
            raise ScoringError(
                f"non-key scorer {self._nonkey_scorer.name!r} requires an "
                "entity graph"
            )
        self._key_scores: Dict[TypeId, float] = self._key_scorer.score_all(
            schema, entity_graph
        )
        self._nonkey_scores: Dict[TypeId, Dict[NonKeyAttribute, float]] = {}
        self._sorted_candidates: Dict[TypeId, List[Tuple[NonKeyAttribute, float]]] = {}
        for type_name in schema.entity_types():
            scores = self._nonkey_scorer.score_candidates(
                type_name, schema, entity_graph
            )
            self._nonkey_scores[type_name] = scores
            ranked = sorted(
                scores.items(), key=lambda item: (-item[1], str(item[0]))
            )
            self._sorted_candidates[type_name] = ranked
        self._pool: Optional[CandidatePool] = None

    # ------------------------------------------------------------------
    # Names (for reports)
    # ------------------------------------------------------------------
    @property
    def key_scorer_name(self) -> str:
        """Name of the active key scorer."""
        return self._key_scorer.name

    @property
    def nonkey_scorer_name(self) -> str:
        """Name of the active non-key scorer."""
        return self._nonkey_scorer.name

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    @property
    def supports_delta(self) -> bool:
        """Whether :meth:`patched` is sound for this scorer pairing.

        True only when *both* scorers declare the per-type delta
        capability (see :class:`~repro.scoring.base.KeyScorer`); pairs
        with a global measure (random walk, entropy) rebuild from
        scratch instead.
        """
        return scorer_pair_supports_delta(self._key_scorer, self._nonkey_scorer)

    def patched(self, dirty_types: Iterable[TypeId]) -> "ScoringContext":
        """A new context with only ``dirty_types`` re-scored.

        The O(delta) sibling of ``__init__`` for *non-structural*
        mutations (no new entity types or relationship types): untouched
        types share their score dictionaries, ranked candidate lists and
        candidate-pool rows with this context, so cost scales with the
        dirty set, not the schema.  Requires :attr:`supports_delta`; the
        caller (see :meth:`repro.ext.incremental.IncrementalEntityGraph.context`)
        is responsible for routing structural deltas to a full rebuild.
        """
        if not self.supports_delta:
            raise ScoringError(
                f"scorer pair ({self.key_scorer_name!r}, "
                f"{self.nonkey_scorer_name!r}) does not support delta "
                "patching — rebuild the context instead"
            )
        dirty = list(dict.fromkeys(dirty_types))
        unknown = [t for t in dirty if t not in self._key_scores]
        if unknown:
            raise ScoringError(
                "cannot patch scoring context: types "
                f"{sorted(map(str, unknown))} are unknown to it (structural "
                "mutation requires a rebuild)"
            )
        # A shallow copy keeps every attribute — including any added to
        # __init__ later — and we then replace only the score state that
        # the delta actually moves.
        clone = copy.copy(self)
        clone._key_scores = dict(self._key_scores)
        clone._key_scores.update(
            self._key_scorer.score_types(dirty, self.schema, self.entity_graph)
        )
        clone._nonkey_scores = dict(self._nonkey_scores)
        clone._sorted_candidates = dict(self._sorted_candidates)
        for type_name in dirty:
            scores = self._nonkey_scorer.score_candidates(
                type_name, self.schema, self.entity_graph
            )
            clone._nonkey_scores[type_name] = scores
            clone._sorted_candidates[type_name] = sorted(
                scores.items(), key=lambda item: (-item[1], str(item[0]))
            )
        # Patch the pool only if this context ever built one; otherwise
        # stay lazy and let the clone build it on first use.
        clone._pool = (
            self._pool.patched(dirty, clone) if self._pool is not None else None
        )
        return clone

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def key_score(self, type_name: TypeId) -> float:
        """``S(τ)`` — the key attribute score of an entity type."""
        try:
            return self._key_scores[type_name]
        except KeyError:
            from ..exceptions import UnknownTypeError

            raise UnknownTypeError(type_name) from None

    def key_scores(self) -> Dict[TypeId, float]:
        """Copy of the per-type key scores."""
        return dict(self._key_scores)

    def nonkey_score(self, key_type: TypeId, attribute: NonKeyAttribute) -> float:
        """``Sτ(γ)`` — the non-key attribute score relative to ``key_type``."""
        try:
            return self._nonkey_scores[key_type][attribute]
        except KeyError:
            raise ScoringError(
                f"{attribute} is not a candidate attribute of {key_type!r}"
            ) from None

    def sorted_candidates(self, key_type: TypeId) -> List[Tuple[NonKeyAttribute, float]]:
        """``Γτ`` sorted by descending score (ties broken lexically).

        This is the list Theorem 3 guarantees optimal tables draw their
        top-m prefix from.
        """
        try:
            return list(self._sorted_candidates[key_type])
        except KeyError:
            from ..exceptions import UnknownTypeError

            raise UnknownTypeError(key_type) from None

    def candidate_pool(self) -> CandidatePool:
        """The flat precomputed arrays the discovery algorithms consume.

        Built on first access and cached for the context's lifetime
        (scores are immutable once the context exists — mutations go
        through a new context, see ``ext.incremental``).
        """
        if self._pool is None:
            self._pool = CandidatePool.build(
                self.schema.entity_types(),
                self._key_scores,
                self._sorted_candidates,
            )
        return self._pool

    def ranked_key_types(self) -> List[Tuple[TypeId, float]]:
        """All entity types by descending key score (ties lexically)."""
        return sorted(
            self._key_scores.items(), key=lambda item: (-item[1], str(item[0]))
        )

    # ------------------------------------------------------------------
    # Aggregation (Eq. 1 / Eq. 2)
    # ------------------------------------------------------------------
    def table_score(
        self, key_type: TypeId, attributes: Iterable[NonKeyAttribute]
    ) -> float:
        """``S(T) = S(τ) × Σ Sτ(γ)`` (Eq. 2)."""
        total = 0.0
        for attribute in attributes:
            total += self.nonkey_score(key_type, attribute)
        return self.key_score(key_type) * total

    def top_m_table_score(self, key_type: TypeId, m: int) -> float:
        """Score of the table using the top-``m`` candidates of ``key_type``.

        Efficient building block for the discovery algorithms: an O(1)
        lookup in the candidate pool's precomputed prefix-sum table.
        """
        if m < 0:
            raise ScoringError(f"m must be non-negative, got {m}")
        try:
            return self.candidate_pool().top_m_score(key_type, m)
        except KeyError:
            from ..exceptions import UnknownTypeError

            raise UnknownTypeError(key_type) from None

    def preview_score(
        self, tables: Iterable[Tuple[TypeId, Iterable[NonKeyAttribute]]]
    ) -> float:
        """``S(P) = Σ S(P[i])`` (Eq. 1) over ``(key, attributes)`` pairs."""
        return sum(
            self.table_score(key_type, attributes)
            for key_type, attributes in tables
        )
