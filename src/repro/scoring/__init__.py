"""Scoring measures for key attributes, non-key attributes and previews."""

from .base import (
    KEY_SCORERS,
    NONKEY_SCORERS,
    KeyScorer,
    NonKeyScorer,
    make_key_scorer,
    make_nonkey_scorer,
    register_key_scorer,
    register_nonkey_scorer,
)
from .candidate_pool import CandidatePool
from .coverage import CoverageKeyScorer, CoverageNonKeyScorer
from .entropy import (
    DEFAULT_LOG_BASE,
    EntropyNonKeyScorer,
    attribute_entropy,
    value_set_entropy,
)
from .preview_score import ScoringContext
from .random_walk import RandomWalkKeyScorer

__all__ = [
    "CandidatePool",
    "CoverageKeyScorer",
    "CoverageNonKeyScorer",
    "DEFAULT_LOG_BASE",
    "EntropyNonKeyScorer",
    "KEY_SCORERS",
    "KeyScorer",
    "NONKEY_SCORERS",
    "NonKeyScorer",
    "RandomWalkKeyScorer",
    "ScoringContext",
    "attribute_entropy",
    "make_key_scorer",
    "make_nonkey_scorer",
    "register_key_scorer",
    "register_nonkey_scorer",
    "value_set_entropy",
]
