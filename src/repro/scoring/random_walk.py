"""Random-walk key-attribute scoring (Sec. 3.2).

A walker traverses the undirected weighted type graph ``G`` (edge weight
``w_ij`` = number of entity-graph relationships between types ``τi`` and
``τj``, both directions), moving with probability ``M_ij = w_ij / Σk w_ik``
or jumping to a random type with a small probability.  The score of a type
is its stationary probability ``π_i``.  The idea mirrors PageRank and the
table-importance walk of Yang et al. (YPS09), which the paper points out.

Convergence on disconnected schema graphs is guaranteed by the additive
``1e-5`` smoothing the paper describes in Sec. 6 (implemented in
:mod:`repro.graph.stationary`).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..graph.stationary import DEFAULT_JUMP_PROBABILITY, stationary_distribution
from ..model.entity_graph import EntityGraph
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph
from .base import KeyScorer, register_key_scorer


@register_key_scorer
class RandomWalkKeyScorer(KeyScorer):
    """``Swalk(τi) = π_i`` of the smoothed random walk over the type graph."""

    name = "random_walk"
    #: The stationary distribution is a global fixed point: one new edge
    #: weight moves every π_i, so there is no sound per-type delta — the
    #: incremental pipeline falls back to a full recomputation.
    supports_delta = False

    def __init__(
        self,
        jump_probability: float = DEFAULT_JUMP_PROBABILITY,
        tolerance: float = 1e-12,
        max_iterations: int = 10_000,
    ) -> None:
        self.jump_probability = jump_probability
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def score_all(
        self, schema: SchemaGraph, entity_graph: Optional[EntityGraph] = None
    ) -> Dict[TypeId, float]:
        """Random-walk scores for every entity type."""
        graph = schema.undirected_weighted()
        if graph.node_count == 0:
            return {}
        return stationary_distribution(
            graph,
            jump_probability=self.jump_probability,
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
        )
