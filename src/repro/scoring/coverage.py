"""Coverage-based scoring measures (Sec. 3.2 and 3.3).

* Key attribute: ``Scov(τ)`` = number of entities of type ``τ`` — a table
  keyed on a populous type makes the preview "relevant to all those
  entities".
* Non-key attribute: ``Sτcov(γ)`` = number of relationship instances of
  type ``γ``.  The measure is symmetric: the same relationship type scores
  identically whether viewed outgoing or incoming (the paper notes
  ``Sτcov(γ) ≡ Sτ'cov(γ)``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph
from .base import KeyScorer, NonKeyScorer, register_key_scorer, register_nonkey_scorer


@register_key_scorer
class CoverageKeyScorer(KeyScorer):
    """``Scov(τ) = |{v ∈ Vd : v has type τ}|``."""

    name = "coverage"
    #: ``Scov(τ)`` reads one per-type count: rescoring only the dirty
    #: types after a mutation is exact (see the delta pipeline in
    #: :mod:`repro.ext.incremental`).
    supports_delta = True

    def score_all(
        self, schema: SchemaGraph, entity_graph: Optional[EntityGraph] = None
    ) -> Dict[TypeId, float]:
        """Coverage scores for every entity type."""
        return {
            type_name: float(schema.entity_count(type_name))
            for type_name in schema.entity_types()
        }

    def score_types(
        self,
        types: Iterable[TypeId],
        schema: SchemaGraph,
        entity_graph: Optional[EntityGraph] = None,
    ) -> Dict[TypeId, float]:
        """O(delta): one maintained-count lookup per dirty type."""
        return {
            type_name: float(schema.entity_count(type_name)) for type_name in types
        }


@register_nonkey_scorer
class CoverageNonKeyScorer(NonKeyScorer):
    """``Sτcov(γ) = |{e ∈ Ed : e has type γ}|`` (direction-symmetric)."""

    name = "coverage"
    requires_entity_graph = False
    #: ``Sτcov(γ)`` reads one per-relationship-type count, and a new
    #: instance of γ only dirties γ's two endpoint types — exactly the
    #: key types the mutation log reports.
    supports_delta = True

    def score_candidates(
        self,
        key_type: TypeId,
        schema: SchemaGraph,
        entity_graph: Optional[EntityGraph] = None,
    ) -> Dict[NonKeyAttribute, float]:
        """Coverage scores restricted to ``candidates``."""
        return {
            attribute: float(schema.relationship_count(attribute.rel_type))
            for attribute in schema.candidate_attributes(key_type)
        }
