"""Entropy-based non-key attribute scoring (Sec. 3.3).

The goodness of a non-key attribute ``γ`` for a table keyed on ``τ`` is
how much information it provides, measured as the entropy of its values
over the table's tuples:

    Sτent(γ) = H(γ) = Σ_j (n_j / |t.γ|) · log(|t.γ| / n_j)

where tuples are grouped by *value* and ``|t.γ|`` is the number of tuples
with a non-empty value on ``γ``.  The paper's worked example pins down two
details the formula leaves implicit:

* multi-valued attribute values are compared as **sets** ("we consider
  them equivalent if and only if they have the same set of component
  values"), so grouping is by ``frozenset``;
* the logarithm is **base 10** (``SFILMent(Director) = 0.45`` only under
  log10).

Unlike coverage, the measure is asymmetric: ``Sτent(γ) ≠ Sτ'ent(γ)`` in
general, because the grouping is over the tuples of the specific table.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, FrozenSet, Optional

from ..exceptions import ScoringError
from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId, TypeId
from ..model.schema_graph import SchemaGraph
from .base import NonKeyScorer, register_nonkey_scorer

#: Logarithm base matching the paper's worked example.
DEFAULT_LOG_BASE = 10.0


def value_set_entropy(
    groups: Counter, total_nonempty: int, log_base: float = DEFAULT_LOG_BASE
) -> float:
    """Entropy of a value-group histogram.

    ``groups`` maps each distinct (non-empty) value to the number of
    tuples attaining it; ``total_nonempty`` is their sum.  Returns 0.0 for
    empty histograms (an attribute with no non-empty values conveys no
    information).
    """
    if total_nonempty <= 0:
        return 0.0
    log_b = math.log(log_base)
    entropy = 0.0
    for count in groups.values():
        p = count / total_nonempty
        entropy += p * (math.log(total_nonempty / count) / log_b)
    return entropy


def attribute_entropy(
    entity_graph: EntityGraph,
    key_type: TypeId,
    attribute: NonKeyAttribute,
    log_base: float = DEFAULT_LOG_BASE,
) -> float:
    """``Sτent(γ)`` for one attribute of the table keyed on ``key_type``."""
    groups: Counter = Counter()
    nonempty = 0
    for entity in entity_graph.entities_of_type(key_type):
        value: FrozenSet[EntityId] = entity_graph.attribute_value(entity, attribute)
        if value:
            groups[value] += 1
            nonempty += 1
    return value_set_entropy(groups, nonempty, log_base=log_base)


@register_nonkey_scorer
class EntropyNonKeyScorer(NonKeyScorer):
    """Entropy-based non-key scoring over materialized attribute values."""

    name = "entropy"
    requires_entity_graph = True
    #: Entropy re-derives per-type value histograms from entity-level
    #: adjacency — a rescan of ``T.τ``, not an O(delta) patch — so the
    #: incremental pipeline falls back to a full context rebuild.
    supports_delta = False

    def __init__(self, log_base: float = DEFAULT_LOG_BASE) -> None:
        if log_base <= 1.0:
            raise ScoringError(f"log base must exceed 1, got {log_base}")
        self.log_base = log_base

    def score_candidates(
        self,
        key_type: TypeId,
        schema: SchemaGraph,
        entity_graph: Optional[EntityGraph] = None,
    ) -> Dict[NonKeyAttribute, float]:
        """Entropy scores restricted to ``candidates``."""
        if entity_graph is None:
            raise ScoringError(
                "entropy scoring requires the entity graph (it inspects "
                "tuple-level attribute values)"
            )
        return {
            attribute: attribute_entropy(
                entity_graph, key_type, attribute, log_base=self.log_base
            )
            for attribute in schema.candidate_attributes(key_type)
        }
