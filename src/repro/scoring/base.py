"""Scorer interfaces and registries.

The optimization results of Sec. 4 and the algorithms of Sec. 5 hold for
*any* scoring functions as long as the preview aggregation is monotonic in
``S(τ)`` and ``Sτ(γ)`` (the paper states this explicitly at the end of
Sec. 3.1).  We therefore decouple the discovery algorithms from concrete
measures behind two small interfaces:

* :class:`KeyScorer` — scores every entity type once per dataset;
* :class:`NonKeyScorer` — scores every candidate non-key attribute of a
  given key type.

Concrete measures register themselves in :data:`KEY_SCORERS` /
:data:`NONKEY_SCORERS` so callers can select them by the names used in the
paper's tables ("Coverage", "Random Walk", "Entropy").
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterable, Mapping, Optional

from ..exceptions import ScoringError, UnknownScorerError
from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph


class KeyScorer(abc.ABC):
    """Scores candidate key attributes (entity types)."""

    #: Registry name; subclasses must override.
    name: str = ""

    #: Whether the measure can be maintained under *non-structural*
    #: mutations by rescoring only the dirty types: a dirty type's score
    #: must depend only on that type's own aggregates, and untouched
    #: types' scores must be bit-identical after the mutation.  Coverage
    #: qualifies (``Scov(τ)`` reads one count); the random walk does not
    #: (one edge weight moves every stationary probability), so it keeps
    #: the default and falls back to a full rebuild transparently.
    supports_delta: bool = False

    @abc.abstractmethod
    def score_all(
        self, schema: SchemaGraph, entity_graph: Optional[EntityGraph] = None
    ) -> Dict[TypeId, float]:
        """Return the score of every entity type in ``schema``.

        ``entity_graph`` is optional: measures that only need aggregate
        counts (coverage, random walk) read them from the schema graph,
        which caches per-type populations and per-relationship-type edge
        counts.
        """

    def score_types(
        self,
        types: Iterable[TypeId],
        schema: SchemaGraph,
        entity_graph: Optional[EntityGraph] = None,
    ) -> Dict[TypeId, float]:
        """Scores of ``types`` only — the O(delta) re-scoring hook.

        The default projects :meth:`score_all` (correct for any scorer);
        delta-capable measures override it to touch only the given
        types.  Only called on types already present in the schema.
        """
        wanted = set(types)
        return {
            type_name: score
            for type_name, score in self.score_all(schema, entity_graph).items()
            if type_name in wanted
        }


class NonKeyScorer(abc.ABC):
    """Scores candidate non-key attributes relative to a key type."""

    name: str = ""

    #: Whether the measure depends on entity-level data (entropy does).
    requires_entity_graph: bool = False

    #: Whether re-running :meth:`score_candidates` for just the dirty key
    #: types is sound under non-structural mutations (untouched types'
    #: candidate scores must be bit-identical).  Coverage qualifies: a
    #: relationship instance of type γ only moves ``Sτcov(γ)`` for the
    #: two endpoint types, exactly the dirty set the mutation log
    #: records.  Entropy keeps the default (full rebuild): it reads
    #: entity-level adjacency, and re-deriving per-type histograms is a
    #: rescan, not a delta.
    supports_delta: bool = False

    @abc.abstractmethod
    def score_candidates(
        self,
        key_type: TypeId,
        schema: SchemaGraph,
        entity_graph: Optional[EntityGraph] = None,
    ) -> Dict[NonKeyAttribute, float]:
        """Return ``Sτ(γ)`` for every candidate attribute of ``key_type``."""


#: Name -> factory registries (factories take no arguments).
KEY_SCORERS: Dict[str, Callable[[], KeyScorer]] = {}
NONKEY_SCORERS: Dict[str, Callable[[], NonKeyScorer]] = {}


def register_key_scorer(cls: type) -> type:
    """Class decorator adding a :class:`KeyScorer` to the registry."""
    if not cls.name:
        raise ScoringError(f"{cls.__name__} must define a non-empty name")
    KEY_SCORERS[cls.name] = cls
    return cls


def register_nonkey_scorer(cls: type) -> type:
    """Class decorator adding a :class:`NonKeyScorer` to the registry."""
    if not cls.name:
        raise ScoringError(f"{cls.__name__} must define a non-empty name")
    NONKEY_SCORERS[cls.name] = cls
    return cls


def make_key_scorer(name: str) -> KeyScorer:
    """Instantiate a registered key scorer by name."""
    try:
        return KEY_SCORERS[name]()
    except KeyError:
        raise UnknownScorerError(name, tuple(KEY_SCORERS)) from None


def make_nonkey_scorer(name: str) -> NonKeyScorer:
    """Instantiate a registered non-key scorer by name."""
    try:
        return NONKEY_SCORERS[name]()
    except KeyError:
        raise UnknownScorerError(name, tuple(NONKEY_SCORERS)) from None


def _supports_delta(scorer, registry: Mapping[str, Callable]) -> bool:
    if isinstance(scorer, str):
        scorer = registry.get(scorer)
    return bool(getattr(scorer, "supports_delta", False))


def scorer_pair_supports_delta(key_scorer, nonkey_scorer) -> bool:
    """Whether a scorer pairing allows per-type delta maintenance.

    The single source of truth for every delta-pipeline decision (the
    engine's type-scoped eviction, the incremental wrapper's context
    patching): both scorers must declare :attr:`supports_delta`.
    Accepts instances, classes, or registry names; unknown names (and
    non-class factories) answer False, which degrades to a full
    rebuild — always sound.
    """
    return _supports_delta(key_scorer, KEY_SCORERS) and _supports_delta(
        nonkey_scorer, NONKEY_SCORERS
    )
