"""Flat, precomputed candidate arrays shared by all discovery algorithms.

Every algorithm of Sec. 5 consumes the same artifacts: the key scores
``S(τ)``, the sorted candidate lists ``Γτ`` and, via Theorem 3, the
scores of top-``m`` prefix tables ``S(T_τ^m)``.  The seed implementation
rebuilt these per call from :class:`ScoringContext`'s dictionaries — the
hot path of the Fig. 8 / Fig. 9 efficiency sweeps.  :class:`CandidatePool`
computes them once per context into flat parallel arrays:

Layout (all tuples indexed by one *type index* ``i``):

* ``types[i]``        — the entity type (``TypeId``), in schema order;
* ``key_scores[i]``   — ``S(types[i])``;
* ``attrs[i][r]``     — rank-``r`` candidate of ``Γ_{types[i]}`` (rank 0 is
  the best candidate; ties broken lexically, matching
  :meth:`ScoringContext.sorted_candidates`);
* ``attr_scores[i][r]`` — ``Sτ(attrs[i][r])``;
* ``weighted[i][r]``  — ``S(τ) × Sτ(γ)``, the merge key of Alg. 1;
* ``prefix[i][m]``    — ``S(T_τ^m)``, the score of the table keyed on
  ``types[i]`` with its top-``m`` candidates.  By convention
  ``prefix[i][0] == 0.0`` and ``len(prefix[i]) == len(attrs[i]) + 1``,
  so a prefix lookup replaces the per-call O(m) sums of
  ``top_m_table_score``.

``eligible`` lists the types with a non-empty candidate list (the only
ones that can key a preview table), preserving schema order so every
algorithm enumerates k-subsets in the exact order the seed code did —
tie-breaking between equal-scoring previews is unchanged.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from ..exceptions import ScoringError
from ..model.attributes import NonKeyAttribute
from ..model.ids import TypeId

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from .preview_score import ScoringContext


@dataclass(frozen=True)
class CandidatePool:
    """Immutable flat view of one :class:`ScoringContext`'s scores."""

    types: Tuple[TypeId, ...]
    key_scores: Tuple[float, ...]
    attrs: Tuple[Tuple[NonKeyAttribute, ...], ...]
    attr_scores: Tuple[Tuple[float, ...], ...]
    weighted: Tuple[Tuple[float, ...], ...]
    prefix: Tuple[Tuple[float, ...], ...]
    index: Dict[TypeId, int]
    eligible: Tuple[TypeId, ...]

    @classmethod
    def build(
        cls,
        types: Sequence[TypeId],
        key_scores: Dict[TypeId, float],
        sorted_candidates: Dict[TypeId, List[Tuple[NonKeyAttribute, float]]],
    ) -> "CandidatePool":
        """Assemble the pool from a context's precomputed dictionaries."""
        type_tuple = tuple(types)
        keys = array("d", (key_scores[t] for t in type_tuple))
        attrs: List[Tuple[NonKeyAttribute, ...]] = []
        attr_scores: List[Tuple[float, ...]] = []
        weighted: List[Tuple[float, ...]] = []
        prefix: List[Tuple[float, ...]] = []
        for i, type_name in enumerate(type_tuple):
            ranked = sorted_candidates.get(type_name, [])
            row = cls._row(keys[i], ranked)
            attrs.append(row[0])
            attr_scores.append(row[1])
            weighted.append(row[2])
            prefix.append(row[3])
        return cls(
            types=type_tuple,
            key_scores=tuple(keys),
            attrs=tuple(attrs),
            attr_scores=tuple(attr_scores),
            weighted=tuple(weighted),
            prefix=tuple(prefix),
            index={t: i for i, t in enumerate(type_tuple)},
            eligible=tuple(t for i, t in enumerate(type_tuple) if attrs[i]),
        )

    @staticmethod
    def _row(
        key_weight: float,
        ranked: Sequence[Tuple[NonKeyAttribute, float]],
    ) -> Tuple[
        Tuple[NonKeyAttribute, ...],
        Tuple[float, ...],
        Tuple[float, ...],
        Tuple[float, ...],
    ]:
        """One type's flat arrays — shared by :meth:`build` and
        :meth:`patched` so a patched row is bit-identical to a fresh one
        (same accumulation order, same float operations)."""
        attrs = tuple(attr for attr, _score in ranked)
        scores = tuple(score for _attr, score in ranked)
        weighted = tuple(key_weight * score for score in scores)
        sums = array("d", [0.0])
        running = 0.0
        for score in scores:
            running += score
            sums.append(key_weight * running)
        return attrs, scores, weighted, tuple(sums)

    def patched(
        self, dirty_types: Iterable[TypeId], context: "ScoringContext"
    ) -> "CandidatePool":
        """A new pool with only the dirty types' rows rebuilt.

        The delta-maintenance counterpart of :meth:`build`: every
        untouched type *shares* its tuples (``attrs``, ``attr_scores``,
        ``weighted``, ``prefix``) with this pool — O(delta) row rebuilds
        plus an O(K) outer-tuple copy, instead of O(total candidates).
        ``context`` supplies the post-mutation scores (it is the patched
        :class:`~repro.scoring.preview_score.ScoringContext` this pool
        will belong to).

        Only valid for *non-structural* deltas: the type universe and
        every ``Γτ`` membership must be unchanged, so ``index``,
        ``types`` and (by construction) ``eligible`` carry over.  A
        dirty type outside this pool's universe raises
        :class:`~repro.exceptions.ScoringError` — callers should have
        detected the structural mutation and rebuilt from scratch.
        """
        dirty = set(dirty_types)
        unknown = dirty.difference(self.index)
        if unknown:
            raise ScoringError(
                f"cannot patch candidate pool: types {sorted(map(str, unknown))} "
                "are not in the pool (structural mutation requires a rebuild)"
            )
        key_scores = list(self.key_scores)
        attrs = list(self.attrs)
        attr_scores = list(self.attr_scores)
        weighted = list(self.weighted)
        prefix = list(self.prefix)
        for type_name in dirty:
            i = self.index[type_name]
            key_scores[i] = context.key_score(type_name)
            row = self._row(key_scores[i], context.sorted_candidates(type_name))
            if bool(row[0]) != bool(self.attrs[i]):
                raise ScoringError(
                    "cannot patch candidate pool: eligibility of "
                    f"{type_name!r} changed (structural mutation requires "
                    "a rebuild)"
                )
            attrs[i], attr_scores[i], weighted[i], prefix[i] = row
        return CandidatePool(
            types=self.types,
            key_scores=tuple(key_scores),
            attrs=tuple(attrs),
            attr_scores=tuple(attr_scores),
            weighted=tuple(weighted),
            prefix=tuple(prefix),
            index=self.index,
            eligible=self.eligible,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def candidate_count(self, type_name: TypeId) -> int:
        """``|Γτ|`` for one type."""
        return len(self.attrs[self.index[type_name]])

    def top_m_score(self, type_name: TypeId, m: int) -> float:
        """``S(T_τ^m)`` via the prefix table (O(1); ``m`` is clamped)."""
        row = self.prefix[self.index[type_name]]
        if m >= len(row):
            return row[-1]
        return row[m]

    def top_m_attrs(self, type_name: TypeId, m: int) -> Tuple[NonKeyAttribute, ...]:
        """The top-``m`` prefix of ``Γτ`` (Theorem 3's table contents)."""
        return self.attrs[self.index[type_name]][:m]
