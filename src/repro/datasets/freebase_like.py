"""Freebase-like domain dataset builders.

Generates, per domain, an entity graph whose *schema graph size matches
the paper's Table 2 exactly* (K entity types, N relationship types) and
whose entity/edge counts are Table 2 scaled down by ``scale``.

Generation recipe (all steps seeded and deterministic):

1. **Types** — the profile's named types (gold-standard first) followed by
   filler types up to K.  Populations are Zipfian in importance rank with
   ±20% multiplicative noise, so gold types are *usually but not always*
   the most populous — which is exactly the regime where the paper's
   accuracy numbers (P@10 ≈ 0.6, MRR mostly > 0.5) are meaningful rather
   than trivial.
2. **Relationship types** — named relationships first, then fillers.  The
   first fillers attach every not-yet-connected type to an already
   connected one (schema graphs are near-connected in Freebase; the
   random-walk smoothing handles any remaining islands), the rest connect
   random type pairs.  Edge counts are Zipfian in rank with ±40% noise.
3. **Relationships** — for each relationship type, edges drawn with a
   uniform source entity and a popularity-skewed target entity, making
   value distributions non-degenerate for entropy scoring.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, List

from ..exceptions import DatasetError
from ..model.entity_graph import EntityGraph
from ..model.ids import RelationshipTypeId
from ..model.schema_graph import SchemaGraph
from .profiles import DEFAULT_SCALE, FREEBASE_PROFILES, DomainProfile
from .synthetic import allocate_counts, skewed_index, zipf_weights

#: Domains in the paper's Table 2 order.
DOMAINS = ("books", "film", "music", "tv", "people", "basketball", "architecture")

#: Domains with a Freebase gold standard (Sec. 6.1.2).
GOLD_DOMAINS = ("books", "film", "music", "tv", "people")


def _domain_seed(name: str, seed: int) -> int:
    """Stable per-domain seed (independent of hash randomization)."""
    digest = 0
    for ch in name:
        digest = (digest * 131 + ord(ch)) % (2**31)
    return digest ^ seed


def build_type_list(profile: DomainProfile) -> List[str]:
    """Named types followed by deterministic fillers, exactly K entries."""
    filler_count = profile.filler_type_count()
    if filler_count < 0:
        raise DatasetError(
            f"profile {profile.name!r} declares more named types than K"
        )
    prefix = profile.name.upper()
    fillers = [f"{prefix} TYPE {i:02d}" for i in range(filler_count)]
    return list(profile.named_types) + fillers


def build_relationship_list(
    profile: DomainProfile, types: List[str], rng: random.Random
) -> List[RelationshipTypeId]:
    """Named relationships followed by fillers, exactly N entries.

    Fillers first connect isolated types (so the schema graph is close to
    connected, as in Freebase), then add random links.
    """
    rels: List[RelationshipTypeId] = [
        RelationshipTypeId(named.name, named.source, named.target)
        for named in profile.named_relationships
    ]
    filler_budget = profile.filler_relationship_count()
    if filler_budget < 0:
        raise DatasetError(
            f"profile {profile.name!r} declares more named relationships than N"
        )
    touched = {t for rel in rels for t in (rel.source_type, rel.target_type)}
    connected = [t for t in types if t in touched] or [types[0]]
    counter = 0
    for type_name in types:
        if filler_budget == 0:
            break
        if type_name in touched:
            continue
        anchor = connected[rng.randrange(len(connected))]
        rels.append(
            RelationshipTypeId(f"Related To {counter:03d}", type_name, anchor)
        )
        counter += 1
        filler_budget -= 1
        touched.add(type_name)
        connected.append(type_name)
    while filler_budget > 0:
        source = types[rng.randrange(len(types))]
        target = types[rng.randrange(len(types))]
        rels.append(RelationshipTypeId(f"Link {counter:03d}", source, target))
        counter += 1
        filler_budget -= 1
    return rels


def generate_domain(
    name: str, scale: int = DEFAULT_SCALE, seed: int = 0
) -> EntityGraph:
    """Generate the Freebase-like entity graph for ``name``.

    ``scale`` divides Table 2's entity/edge counts (default 1000).  The
    same ``(name, scale, seed)`` always produces an identical graph.
    """
    try:
        profile = FREEBASE_PROFILES[name]
    except KeyError:
        raise DatasetError(
            f"unknown domain {name!r}; available: {', '.join(DOMAINS)}"
        ) from None
    rng = random.Random(_domain_seed(name, seed))
    types = build_type_list(profile)
    rels = build_relationship_list(profile, types, rng)

    populations = allocate_counts(
        profile.scaled_entities(scale),
        zipf_weights(len(types), exponent=1.05),
        minimum=3,
        rng=rng,
        noise=0.2,
    )
    edge_counts = allocate_counts(
        profile.scaled_relationships(scale),
        zipf_weights(len(rels), exponent=1.05),
        minimum=1,
        rng=rng,
        noise=0.4,
    )

    graph = EntityGraph(name=name)
    members: Dict[str, List[str]] = {}
    for type_name, population in zip(types, populations):
        entity_names = [f"{type_name} #{i}" for i in range(population)]
        members[type_name] = entity_names
        for entity in entity_names:
            graph.add_entity(entity, [type_name])

    for rel, count in zip(rels, edge_counts):
        sources = members[rel.source_type]
        targets = members[rel.target_type]
        for _ in range(count):
            source = sources[rng.randrange(len(sources))]
            target = targets[skewed_index(len(targets), rng)]
            graph.add_relationship(source, target, rel)
    return graph


@lru_cache(maxsize=32)
def load_domain(
    name: str, scale: int = DEFAULT_SCALE, seed: int = 0
) -> EntityGraph:
    """Cached :func:`generate_domain` (domains are reused across benches).

    The returned graph is shared — callers must treat it as read-only.
    """
    return generate_domain(name, scale=scale, seed=seed)


@lru_cache(maxsize=32)
def load_schema(name: str, scale: int = DEFAULT_SCALE, seed: int = 0) -> SchemaGraph:
    """Cached schema graph of a cached domain."""
    return SchemaGraph.from_entity_graph(load_domain(name, scale=scale, seed=seed))


def table2_row(name: str, scale: int = DEFAULT_SCALE, seed: int = 0) -> Dict[str, int]:
    """One row of the reproduced Table 2 for ``name``."""
    graph = load_domain(name, scale=scale, seed=seed)
    stats = graph.stats()
    profile = FREEBASE_PROFILES[name]
    return {
        "domain": name,
        "entities": stats["entities"],
        "relationships": stats["relationships"],
        "entity_types": stats["entity_types"],
        "relationship_types": stats["relationship_types"],
        "paper_entity_types": profile.entity_type_count,
        "paper_relationship_types": profile.relationship_type_count,
    }
