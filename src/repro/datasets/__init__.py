"""Datasets: synthetic Freebase-like domains, gold standards, loaders."""

from .freebase_like import (
    DOMAINS,
    GOLD_DOMAINS,
    generate_domain,
    load_domain,
    load_schema,
    table2_row,
)
from .gold_standard import (
    EXPERT_KEY_ATTRIBUTES,
    GOLD_STANDARD,
    expert_key_attributes,
    gold_key_attributes,
    gold_nonkey_attributes,
    gold_size_constraint,
)
from .loader import graph_fingerprint, load_domain_file, save_domain
from .profiles import (
    DEFAULT_SCALE,
    FREEBASE_PROFILES,
    DomainProfile,
    NamedRelationship,
)
from .synthetic import (
    allocate_counts,
    random_entity_graph,
    random_schema_graph,
    skewed_index,
    zipf_weights,
)

__all__ = [
    "DEFAULT_SCALE",
    "DOMAINS",
    "DomainProfile",
    "EXPERT_KEY_ATTRIBUTES",
    "FREEBASE_PROFILES",
    "GOLD_DOMAINS",
    "GOLD_STANDARD",
    "NamedRelationship",
    "allocate_counts",
    "expert_key_attributes",
    "generate_domain",
    "gold_key_attributes",
    "gold_nonkey_attributes",
    "gold_size_constraint",
    "graph_fingerprint",
    "load_domain",
    "load_domain_file",
    "load_schema",
    "random_entity_graph",
    "random_schema_graph",
    "save_domain",
    "skewed_index",
    "table2_row",
    "zipf_weights",
]
