"""A miniature TPC-E-like dataset for validating the YPS09 adaptation.

Yang et al. evaluated their relational summarizer on the TPC-E benchmark
schema, and the preview-tables paper validated its reimplementation the
same way (Sec. 6.1.1).  We cannot ship TPC-E, so this module hand-authors
a miniature entity graph with TPC-E's characteristic shape:

* **fact-like hubs** — TRADE (dominant), HOLDING, DAILY MARKET — huge
  populations, joined to everything;
* **core dimensions** — CUSTOMER, CUSTOMER ACCOUNT, SECURITY, COMPANY,
  BROKER — mid-size, semantically central;
* **lookup tables** — STATUS TYPE, TRADE TYPE, EXCHANGE, ZIP CODE,
  SECTOR, INDUSTRY — tiny, low-entropy.

The validation property (mirroring Yang et al.'s reported summaries): the
YPS09 importance walk must rank the hubs and core dimensions above every
lookup table, and a k-center summary must pick centers spanning the
customer/market/broker regions rather than k lookup tables.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Dict, List, Tuple

from ..model.entity_graph import EntityGraph
from ..model.ids import RelationshipTypeId

#: (type name, population) in TPC-E-like proportions (scaled down).
TPCE_TYPES: Tuple[Tuple[str, int], ...] = (
    ("TRADE", 1200),
    ("HOLDING", 700),
    ("DAILY MARKET", 500),
    ("CUSTOMER ACCOUNT", 250),
    ("CUSTOMER", 200),
    ("SECURITY", 150),
    ("COMPANY", 100),
    ("BROKER", 40),
    ("EXCHANGE", 4),
    ("SECTOR", 12),
    ("INDUSTRY", 30),
    ("STATUS TYPE", 5),
    ("TRADE TYPE", 5),
    ("ZIP CODE", 60),
)

#: Hubs + core dimensions that must outrank the lookups under YPS09.
TPCE_CORE = (
    "TRADE",
    "HOLDING",
    "DAILY MARKET",
    "CUSTOMER ACCOUNT",
    "CUSTOMER",
    "SECURITY",
    "COMPANY",
)

TPCE_LOOKUPS = ("STATUS TYPE", "TRADE TYPE", "EXCHANGE", "ZIP CODE", "SECTOR")

#: (name, source, target, edge count) — the join topology of TPC-E's core.
TPCE_RELATIONSHIPS: Tuple[Tuple[str, str, str, int], ...] = (
    ("Placed Through", "TRADE", "CUSTOMER ACCOUNT", 1200),
    ("Trades Security", "TRADE", "SECURITY", 1200),
    ("Trade Status", "TRADE", "STATUS TYPE", 1200),
    ("Trade Kind", "TRADE", "TRADE TYPE", 1200),
    ("Executed By", "TRADE", "BROKER", 1100),
    ("Holds", "HOLDING", "CUSTOMER ACCOUNT", 700),
    ("Holding Of", "HOLDING", "SECURITY", 700),
    ("Quoted Security", "DAILY MARKET", "SECURITY", 500),
    ("Owned By", "CUSTOMER ACCOUNT", "CUSTOMER", 250),
    ("Managed By", "CUSTOMER ACCOUNT", "BROKER", 250),
    ("Customer Zip", "CUSTOMER", "ZIP CODE", 200),
    ("Issued By", "SECURITY", "COMPANY", 150),
    ("Listed On", "SECURITY", "EXCHANGE", 150),
    ("In Industry", "COMPANY", "INDUSTRY", 100),
    ("Company Zip", "COMPANY", "ZIP CODE", 100),
    ("Industry Sector", "INDUSTRY", "SECTOR", 30),
)


@lru_cache(maxsize=1)
def build_tpce_mini(seed: int = 0) -> EntityGraph:
    """Build the miniature TPC-E-like entity graph (deterministic)."""
    rng = random.Random(seed)
    graph = EntityGraph(name="tpce-mini")
    members: Dict[str, List[str]] = {}
    for type_name, population in TPCE_TYPES:
        entities = [f"{type_name} #{i}" for i in range(population)]
        members[type_name] = entities
        for entity in entities:
            graph.add_entity(entity, [type_name])
    for name, source_type, target_type, count in TPCE_RELATIONSHIPS:
        rel = RelationshipTypeId(name, source_type, target_type)
        sources = members[source_type]
        targets = members[target_type]
        for i in range(count):
            # Facts reference sources roughly uniformly; targets follow a
            # mild popularity skew (as FK distributions do in practice).
            source = sources[i % len(sources)]
            target = targets[min(len(targets) - 1, int(len(targets) * rng.random() ** 1.5))]
            graph.add_relationship(source, target, rel)
    return graph
