"""The Freebase gold standard (paper Table 10) and the expert previews.

For the five largest Freebase domains the paper uses the manually curated
entrance pages as the gold standard: 6 key attributes (entity types) per
domain, each with at most 3 non-key attributes.  Table 10 is encoded here
verbatim; it drives the accuracy experiments (Figs. 5-7, Table 3) and the
"Freebase" approach in the user study.

Tables 22/23 additionally compare the gold standard against previews
hand-crafted by a panel of experts; :data:`EXPERT_KEY_ATTRIBUTES` encodes
a consistent expert variant with the overlap levels those tables report.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: The five gold-standard domains, in the paper's presentation order.
GOLD_DOMAINS = ("books", "film", "music", "tv", "people")

#: Table 10 — per domain: key attribute -> tuple of gold non-key attributes.
GOLD_STANDARD: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "books": {
        "BOOK": ("Characters", "Genre", "Editions"),
        "BOOK EDITION": ("Publication Date", "Publisher", "Credited To"),
        "SHORT STORY": ("Genre", "Characters"),
        "POEM": ("Characters", "Meter", "Verse Form"),
        "SHORT NON-FICTION": ("Mode Of Writing", "Verse Form"),
        "AUTHOR": (
            "Series Written (Or Contributed To)",
            "Works Edited",
            "Works Written",
        ),
    },
    "film": {
        "FILM": ("Directed By", "Tagline", "Initial Release Date"),
        "FILM ACTOR": ("Film Performances",),
        "FILM GENRE": ("Films Of This Genre",),
        "FILM DIRECTOR": ("Films Directed",),
        "FILM PRODUCER": ("Films Executive Produced", "Films Produced"),
        "FILM WRITER": ("Film Writing Credits",),
    },
    "music": {
        "COMPOSITION": ("Includes", "Lyricist", "Composer"),
        "CONCERT": ("Venue", "Start Date", "Concert Tour"),
        "MUSIC VIDEO": ("Song", "Initial Release Date", "Artist"),
        "MUSICAL ALBUM": ("Release Type", "Initial Release Date", "Artist"),
        "MUSICAL ARTIST": (
            "Albums",
            "Place Musical Career Began",
            "Musical Genres",
        ),
        "MUSICAL RECORDING": ("Length", "Featured Artists", "Recorded By"),
    },
    "tv": {
        "TV PROGRAM": (
            "Program Creator",
            "Air Date Of First Episode",
            "Air Date Of Final Episode",
        ),
        "TV ACTOR": ("Starring TV Roles",),
        "TV CHARACTER": ("Programs In Which This Was A Regular Character",),
        "TV WRITER": ("TV Programs (Recurring Writer)",),
        "TV PRODUCER": ("TV Programs Produced",),
        "TV DIRECTOR": ("TV Episodes Directed", "TV Segments Directed"),
    },
    "people": {
        "PERSON": ("Profession", "Country Of Nationality", "Date Of Birth"),
        "DECEASED PERSON": ("Cause Of Death", "Place Of Death", "Date Of Death"),
        "CAUSE OF DEATH": (
            "People Who Died This Way",
            "Includes Causes Of Death",
            "Parent Cause Of Death",
        ),
        "ETHNICITY": (
            "Geographic Distribution",
            "Includes Group(S)",
            "Included In Group(S)",
        ),
        "PROFESSION": (
            "Specializations",
            "Specialization Of",
            "People With This Profession",
        ),
        "PROFESSIONAL FIELD": ("Professions In This Field",),
    },
}

#: Expert previews: same size budget, "reasonable overlap but substantial
#: differences" (Sec. 6.3).  Tables 22/23 report P@6 = 0.333-0.833 between
#: the two; this encoding reproduces those overlap levels: per domain, the
#: experts keep 2-5 gold types and swap the rest for other prominent types.
EXPERT_KEY_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    # 2/6 shared with gold (P@6 = 0.333 in Tables 22/23).
    "books": (
        "BOOK",
        "AUTHOR",
        "BOOK CHARACTER",
        "LITERARY SERIES",
        "PUBLISHER",
        "BOOK GENRE",
    ),
    # 3/6 shared (P@6 = 0.5).
    "film": (
        "FILM",
        "FILM ACTOR",
        "FILM DIRECTOR",
        "FILM CHARACTER",
        "FILM CREWMEMBER",
        "FILM FESTIVAL",
    ),
    # 5/6 shared (P@6 = 0.833).
    "music": (
        "MUSICAL ARTIST",
        "MUSICAL ALBUM",
        "MUSICAL RECORDING",
        "COMPOSITION",
        "CONCERT",
        "MUSICAL RELEASE",
    ),
    # 3/6 shared (P@6 = 0.5).
    "tv": (
        "TV PROGRAM",
        "TV ACTOR",
        "TV EPISODE",
        "TV SEASON",
        "TV CHARACTER",
        "TV NETWORK",
    ),
    # 3/6 shared (P@6 = 0.5).
    "people": (
        "PERSON",
        "PROFESSION",
        "ETHNICITY",
        "FAMILY",
        "PLACE OF BIRTH",
        "NOBLE TITLE",
    ),
}


def gold_key_attributes(domain: str) -> List[str]:
    """The 6 gold key attributes for ``domain`` (Table 10 order)."""
    return list(GOLD_STANDARD[domain])

def gold_nonkey_attributes(domain: str, key_type: str) -> List[str]:
    """The gold non-key attribute names for one key type."""
    return list(GOLD_STANDARD[domain][key_type])


def gold_size_constraint(domain: str) -> Tuple[int, int]:
    """The ``(K, N)`` budget of the gold preview (used by the user study)."""
    tables = GOLD_STANDARD[domain]
    return len(tables), sum(len(attrs) for attrs in tables.values())


def expert_key_attributes(domain: str) -> List[str]:
    """The expert panel's 6 key attributes for ``domain``."""
    return list(EXPERT_KEY_ATTRIBUTES[domain])
