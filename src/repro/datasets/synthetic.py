"""Generic seeded random entity-graph generation.

Lower-level than the Freebase-like domain builders: produces arbitrary
random typed graphs for tests (including property-based tests) and for
users who want quick synthetic workloads with controlled shape.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..exceptions import DatasetError
from ..model.entity_graph import EntityGraph
from ..model.ids import RelationshipTypeId
from ..model.schema_graph import SchemaGraph


def zipf_weights(count: int, exponent: float = 1.05) -> List[float]:
    """Normalized Zipfian weights ``w_i ∝ 1 / (i + 1)^exponent``."""
    if count <= 0:
        return []
    raw = [1.0 / (i + 1) ** exponent for i in range(count)]
    total = sum(raw)
    return [value / total for value in raw]


def allocate_counts(
    total: int,
    weights: Sequence[float],
    minimum: int = 1,
    rng: Optional[random.Random] = None,
    noise: float = 0.0,
) -> List[int]:
    """Split ``total`` into integer counts proportional to ``weights``.

    Each share is floored at ``minimum``; optional multiplicative noise
    (``uniform(1-noise, 1+noise)``) perturbs shares before rounding.  The
    result sums to at least ``minimum * len(weights)`` and approximately
    to ``total``.
    """
    if total < 0:
        raise DatasetError(f"total must be non-negative, got {total}")
    counts = []
    for weight in weights:
        share = total * weight
        if rng is not None and noise > 0:
            share *= rng.uniform(1.0 - noise, 1.0 + noise)
        counts.append(max(minimum, round(share)))
    return counts


def skewed_index(size: int, rng: random.Random, skew: float = 2.5) -> int:
    """A random index in ``[0, size)`` biased toward small indices.

    ``skew > 1`` concentrates mass near 0 (popular entities attract more
    relationships, which is what makes entropy scoring informative).
    """
    if size <= 0:
        raise DatasetError("size must be positive")
    return min(size - 1, int(size * (rng.random() ** skew)))


def random_entity_graph(
    num_types: int,
    num_rel_types: int,
    num_entities: int,
    num_edges: int,
    seed: int = 0,
    name: str = "random",
    connect: bool = True,
) -> EntityGraph:
    """A random typed entity graph with the requested shape.

    * Types are named ``T00 .. T{num_types-1}`` with Zipfian populations.
    * Relationship types connect random ordered type pairs; with
      ``connect=True`` the first ``num_types - 1`` relationship types form
      a spanning chain so the schema graph is connected.
    * Edge counts per relationship type are Zipfian; endpoints are drawn
      uniformly (source) and skewed (target).
    """
    if num_types < 1:
        raise DatasetError("need at least one entity type")
    if num_rel_types < (num_types - 1 if connect else 0):
        raise DatasetError(
            f"{num_rel_types} relationship types cannot connect {num_types} "
            f"types (need at least {num_types - 1})"
        )
    if num_entities < num_types:
        raise DatasetError("need at least one entity per type")
    rng = random.Random(seed)
    types = [f"T{i:02d}" for i in range(num_types)]
    populations = allocate_counts(
        num_entities, zipf_weights(num_types), minimum=1, rng=rng, noise=0.2
    )

    graph = EntityGraph(name=name)
    entities: dict = {}
    for type_name, population in zip(types, populations):
        members = [f"{type_name}#{i}" for i in range(population)]
        entities[type_name] = members
        for member in members:
            graph.add_entity(member, [type_name])

    rel_types: List[RelationshipTypeId] = []
    used: set = set()
    if connect:
        order = list(range(num_types))
        rng.shuffle(order)
        for i in range(1, num_types):
            source = types[order[i]]
            target = types[order[rng.randrange(i)]]
            rel = RelationshipTypeId(f"link-{len(rel_types)}", source, target)
            rel_types.append(rel)
            used.add((source, target, rel.name))
    while len(rel_types) < num_rel_types:
        source = types[rng.randrange(num_types)]
        target = types[rng.randrange(num_types)]
        rel = RelationshipTypeId(f"link-{len(rel_types)}", source, target)
        rel_types.append(rel)

    edge_counts = allocate_counts(
        num_edges, zipf_weights(len(rel_types)), minimum=1, rng=rng, noise=0.3
    )
    for rel, count in zip(rel_types, edge_counts):
        sources = entities[rel.source_type]
        targets = entities[rel.target_type]
        for _ in range(count):
            s = sources[rng.randrange(len(sources))]
            t = targets[skewed_index(len(targets), rng)]
            graph.add_relationship(s, t, rel)
    return graph


def random_schema_graph(
    num_types: int,
    num_rel_types: int,
    seed: int = 0,
    max_entity_count: int = 1000,
    max_edge_count: int = 10_000,
) -> SchemaGraph:
    """A random schema graph with synthetic aggregate counts.

    Useful when only schema-level behaviour matters (algorithm efficiency
    sweeps, constraint feasibility tests) and building a full entity graph
    would waste time.
    """
    if num_types < 1:
        raise DatasetError("need at least one entity type")
    rng = random.Random(seed)
    schema = SchemaGraph(name=f"random-schema-{seed}")
    types = [f"T{i:02d}" for i in range(num_types)]
    for type_name in types:
        schema.add_entity_type(type_name, entity_count=rng.randint(1, max_entity_count))
    for j in range(num_rel_types):
        if j < num_types - 1:
            source = types[j + 1]
            target = types[rng.randrange(j + 1)]
        else:
            source = types[rng.randrange(num_types)]
            target = types[rng.randrange(num_types)]
        schema.add_relationship_type(
            RelationshipTypeId(f"link-{j}", source, target),
            edge_count=rng.randint(1, max_edge_count),
        )
    return schema
