"""Save/load Freebase-like domains through the triple-store formats.

Lets users materialize a generated domain to disk once and reload it
without regeneration — the workflow the paper's MySQL import supports.
"""

from __future__ import annotations

import os
from typing import Union

from ..exceptions import DatasetError
from ..model.entity_graph import EntityGraph
from ..store.persistence import load_jsonl, load_tsv, save_jsonl, save_tsv
from ..store.schema_extract import entity_graph_from_store, store_from_entity_graph

PathLike = Union[str, "os.PathLike[str]"]


def save_domain(graph: EntityGraph, path: PathLike) -> int:
    """Persist an entity graph; format chosen by extension (.tsv/.jsonl).

    Returns the number of rows written.
    """
    text = str(path)
    store = store_from_entity_graph(graph)
    if text.endswith(".tsv"):
        return save_tsv(store, path)
    if text.endswith(".jsonl"):
        return save_jsonl(store, path)
    raise DatasetError(f"unsupported dataset extension: {text!r} (use .tsv/.jsonl)")


def load_domain_file(path: PathLike, name: str = "entity-graph") -> EntityGraph:
    """Reload an entity graph saved by :func:`save_domain`."""
    text = str(path)
    if text.endswith(".tsv"):
        store = load_tsv(path)
    elif text.endswith(".jsonl"):
        store = load_jsonl(path)
    else:
        raise DatasetError(f"unsupported dataset extension: {text!r} (use .tsv/.jsonl)")
    return entity_graph_from_store(store, name=name)
