"""Save/load Freebase-like domains through the triple-store formats.

Lets users materialize a generated domain to disk once and reload it
without regeneration — the workflow the paper's MySQL import supports.
"""

from __future__ import annotations

import hashlib
import os
from typing import Union

from ..exceptions import DatasetError
from ..model.entity_graph import EntityGraph
from ..store.disk import STORE_EXTENSION, build_store, open_store
from ..store.persistence import load_jsonl, load_tsv, save_jsonl, save_tsv
from ..store.schema_extract import entity_graph_from_store, store_from_entity_graph

PathLike = Union[str, "os.PathLike[str]"]


def graph_fingerprint(graph: EntityGraph) -> str:
    """A stable content digest of an entity graph (``sha256:<hex>``).

    Hashes the sorted entity→types mapping and the sorted relationship
    instances — the full extensional content, independent of insertion
    order and hash randomization.  Two graphs with the same fingerprint
    answer every preview query identically.

    The workload-trace format (``docs/workloads.md``) embeds the
    fingerprint of a trace's starting graph in its header, so a
    replayer whose regenerated domain has drifted (generator change,
    profile edit) fails with a clear dataset-mismatch error instead of
    a wall of payload-digest mismatches.
    """
    digest = hashlib.sha256()
    for entity in sorted(graph.entities()):
        types = ",".join(sorted(graph.types_of(entity)))
        digest.update(f"E\t{entity}\t{types}\n".encode("utf-8"))
    for source, target, rel in sorted(
        graph.relationships(),
        key=lambda item: (item[0], item[1], item[2].name,
                          item[2].source_type, item[2].target_type),
    ):
        digest.update(
            f"R\t{source}\t{target}\t{rel.name}\t{rel.source_type}"
            f"\t{rel.target_type}\n".encode("utf-8")
        )
    return f"sha256:{digest.hexdigest()}"


def save_domain(graph: EntityGraph, path: PathLike) -> int:
    """Persist an entity graph; format chosen by extension.

    ``.tsv``/``.jsonl`` write the row-per-triple text formats and return
    the number of rows written; ``.rgs`` writes the binary graph store
    (:func:`repro.store.build_store`) and returns the bytes written.
    """
    text = str(path)
    if text.endswith(STORE_EXTENSION):
        return build_store(graph, path)
    store = store_from_entity_graph(graph)
    if text.endswith(".tsv"):
        return save_tsv(store, path)
    if text.endswith(".jsonl"):
        return save_jsonl(store, path)
    raise DatasetError(
        f"unsupported dataset extension: {text!r} (use .tsv/.jsonl/{STORE_EXTENSION})"
    )


def load_domain_file(path: PathLike, name: str = "entity-graph") -> EntityGraph:
    """Reload an entity graph saved by :func:`save_domain`.

    For ``.rgs`` store files the graph's *stored* name and generation
    are authoritative (``name`` is ignored) and the materialized graph
    is verified against the header fingerprint.
    """
    text = str(path)
    if text.endswith(STORE_EXTENSION):
        with open_store(path) as store_file:
            return store_file.entity_graph()
    if text.endswith(".tsv"):
        store = load_tsv(path)
    elif text.endswith(".jsonl"):
        store = load_jsonl(path)
    else:
        raise DatasetError(
            f"unsupported dataset extension: {text!r} "
            f"(use .tsv/.jsonl/{STORE_EXTENSION})"
        )
    return entity_graph_from_store(store, name=name)
