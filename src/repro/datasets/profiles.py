"""Domain profiles for the synthetic Freebase-like datasets.

Each profile pins the *schema-graph size* to the paper's Table 2 exactly
(K entity types, N relationship types) and scales the entity-graph size
down by :data:`DEFAULT_SCALE` (the algorithms' complexity is driven by
the schema size, which we match; the entity graph only feeds aggregate
counts and tuple materialization).

Profiles enumerate the *named* types and relationships — the gold-standard
entrance-page types (Table 10), the expert-preview types (Tables 22/23)
and the types appearing in the paper's sample previews (Tables 11/12) —
in descending importance order.  The generator fills the remainder with
deterministic filler types/relationships and assigns Zipfian populations
and edge counts with bounded noise, so that gold types/attributes rank
highly (the premise the paper's accuracy evaluation rests on) without the
ranking being trivially perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .gold_standard import GOLD_STANDARD

#: Entity/edge counts are the paper's Table 2 divided by this factor.
DEFAULT_SCALE = 1000


@dataclass(frozen=True)
class NamedRelationship:
    """A hand-authored relationship type: name plus endpoint types."""

    name: str
    source: str
    target: str


@dataclass(frozen=True)
class DomainProfile:
    """Static description of one Freebase-like domain."""

    name: str
    #: Table 2: number of entity types (schema vertices).
    entity_type_count: int
    #: Table 2: number of relationship types (schema edges).
    relationship_type_count: int
    #: Table 2: entity count before scaling.
    paper_entities: int
    #: Table 2: relationship count before scaling.
    paper_relationships: int
    #: Prominent types in descending importance order (gold types first).
    named_types: Tuple[str, ...]
    #: Hand-authored relationships in descending importance order.
    named_relationships: Tuple[NamedRelationship, ...]

    def scaled_entities(self, scale: int = DEFAULT_SCALE) -> int:
        """Entity count at ``scale`` (floored at 3 per type)."""
        return max(self.entity_type_count * 3, self.paper_entities // scale)

    def scaled_relationships(self, scale: int = DEFAULT_SCALE) -> int:
        """Relationship-instance count at ``scale``."""
        return max(
            self.relationship_type_count * 4, self.paper_relationships // scale
        )

    def filler_type_count(self) -> int:
        """Synthetic entity types needed beyond the named ones."""
        return self.entity_type_count - len(self.named_types)

    def filler_relationship_count(self) -> int:
        """Synthetic relationship types needed beyond the named ones."""
        return self.relationship_type_count - len(self.named_relationships)


def _rel(name: str, source: str, target: str) -> NamedRelationship:
    return NamedRelationship(name=name, source=source, target=target)


def _gold_relationships(domain: str, targets: Dict[str, str]) -> List[NamedRelationship]:
    """Gold attributes (Table 10) as relationships sourced at the key type.

    ``targets`` maps each gold attribute name to its value type; attributes
    absent from the map point at the domain's generic value type.
    """
    default_target = f"{domain.upper()} TOPIC"
    rels = []
    for key_type, attrs in GOLD_STANDARD[domain].items():
        for attr in attrs:
            rels.append(
                _rel(attr, key_type, targets.get(attr, default_target))
            )
    return rels


# ----------------------------------------------------------------------
# film — K=63, N=136; types from Tables 10-12.
# ----------------------------------------------------------------------
_FILM_TYPES = (
    "FILM",
    "FILM ACTOR",
    "FILM GENRE",
    "FILM DIRECTOR",
    "FILM PRODUCER",
    "FILM WRITER",
    "FILM CHARACTER",
    "FILM CREWMEMBER",
    "FILM EDITOR",
    "FILM FESTIVAL",
    "FILM COMPANY",
    "FILM CUT",
    "COUNTRY",
    "HUMAN LANGUAGE",
    "FILM CREW ROLE",
    "PERSON OR ENTITY APPEARING IN FILM",
    "TYPE OF APPEARANCE",
    "FILM FESTIVAL EVENT",
    "LOCATION",
    "FILM FESTIVAL FOCUS",
    "SPONSOR",
    "TAGLINE",
    "RELEASE DATE",
    "FILM TOPIC",
)

_FILM_RELS = tuple(
    _gold_relationships(
        "film",
        {
            "Directed By": "FILM DIRECTOR",
            "Tagline": "TAGLINE",
            "Initial Release Date": "RELEASE DATE",
            "Film Performances": "FILM",
            "Films Of This Genre": "FILM",
            "Films Directed": "FILM",
            "Films Executive Produced": "FILM",
            "Films Produced": "FILM",
            "Film Writing Credits": "FILM",
        },
    )
) + (
    _rel("Performances", "FILM", "FILM ACTOR"),
    _rel("Genres", "FILM", "FILM GENRE"),
    _rel("Runtime", "FILM", "FILM CUT"),
    _rel("Country Of Origin", "FILM", "COUNTRY"),
    _rel("Languages", "FILM", "HUMAN LANGUAGE"),
    _rel("Portrayed In Films", "FILM CHARACTER", "FILM"),
    _rel("Portrayed In Films (Dubbed)", "FILM CHARACTER", "FILM"),
    _rel("Films Crewed", "FILM CREWMEMBER", "FILM"),
    _rel("Crew Role", "FILM CREWMEMBER", "FILM CREW ROLE"),
    _rel("Films Edited", "FILM EDITOR", "FILM"),
    _rel("Films Appeared In", "PERSON OR ENTITY APPEARING IN FILM", "FILM"),
    _rel("Appearance Type", "PERSON OR ENTITY APPEARING IN FILM", "TYPE OF APPEARANCE"),
    _rel("Individual Festivals", "FILM FESTIVAL", "FILM FESTIVAL EVENT"),
    _rel("Festival Location", "FILM FESTIVAL", "LOCATION"),
    _rel("Focus", "FILM FESTIVAL", "FILM FESTIVAL FOCUS"),
    _rel("Sponsoring Organization", "FILM FESTIVAL", "SPONSOR"),
    _rel("Films", "FILM COMPANY", "FILM"),
)

# ----------------------------------------------------------------------
# music — K=69, N=176; types from Tables 10-11.
# ----------------------------------------------------------------------
_MUSIC_TYPES = (
    "MUSICAL ARTIST",
    "MUSICAL ALBUM",
    "MUSICAL RECORDING",
    "COMPOSITION",
    "CONCERT",
    "MUSIC VIDEO",
    "MUSICAL RELEASE",
    "RELEASE TRACK",
    "MUSICAL ALBUM TYPE",
    "MUSICAL GENRE",
    "CONCERT TOUR",
    "VENUE",
    "LYRICIST",
    "COMPOSER",
    "RECORD LABEL",
    "DATE",
    "MUSIC TOPIC",
)

# In Freebase's music domain the recording/release/track cluster carries
# the overwhelming majority of the 187M relationships (the paper's
# Table 11 random-walk preview is exactly that cluster), so those
# relationship types take the top importance ranks, ahead of the gold
# entrance-page attributes.
_MUSIC_RELS = (
    _rel("Releases", "MUSICAL RECORDING", "MUSICAL RELEASE"),
    _rel("Tracks", "MUSICAL RECORDING", "RELEASE TRACK"),
    _rel("Release Tracks", "MUSICAL RELEASE", "MUSICAL RECORDING"),
    _rel("Track List", "MUSICAL RELEASE", "RELEASE TRACK"),
    _rel("Release", "RELEASE TRACK", "MUSICAL RELEASE"),
    _rel("Recording", "RELEASE TRACK", "MUSICAL RECORDING"),
    _rel("Tracks Recorded", "MUSICAL ARTIST", "MUSICAL RECORDING"),
    _rel("Album Releases", "MUSICAL ALBUM", "MUSICAL RELEASE"),
    _rel("Label", "MUSICAL ALBUM", "RECORD LABEL"),
) + tuple(
    _gold_relationships(
        "music",
        {
            "Includes": "COMPOSITION",
            "Lyricist": "LYRICIST",
            "Composer": "COMPOSER",
            "Venue": "VENUE",
            "Start Date": "DATE",
            "Concert Tour": "CONCERT TOUR",
            "Song": "MUSICAL RECORDING",
            "Initial Release Date": "DATE",
            "Artist": "MUSICAL ARTIST",
            "Release Type": "MUSICAL ALBUM TYPE",
            "Albums": "MUSICAL ALBUM",
            "Place Musical Career Began": "MUSIC TOPIC",
            "Musical Genres": "MUSICAL GENRE",
            "Length": "MUSIC TOPIC",
            "Featured Artists": "MUSICAL ARTIST",
            "Recorded By": "MUSICAL ARTIST",
        },
    )
)

# ----------------------------------------------------------------------
# tv — K=59, N=177; types from Tables 10-11.
# ----------------------------------------------------------------------
_TV_TYPES = (
    "TV PROGRAM",
    "TV ACTOR",
    "TV EPISODE",
    "TV SEASON",
    "TV CHARACTER",
    "TV WRITER",
    "TV PRODUCER",
    "TV DIRECTOR",
    "TV NETWORK",
    "PERSON",
    "PERSONAL APPEARANCE ROLE",
    "TV CREATOR",
    "AIR DATE",
    "TV TOPIC",
)

_TV_RELS = tuple(
    _gold_relationships(
        "tv",
        {
            "Program Creator": "TV CREATOR",
            "Air Date Of First Episode": "AIR DATE",
            "Air Date Of Final Episode": "AIR DATE",
            "Starring TV Roles": "TV CHARACTER",
            "Programs In Which This Was A Regular Character": "TV PROGRAM",
            "TV Programs (Recurring Writer)": "TV PROGRAM",
            "TV Programs Produced": "TV PROGRAM",
            "TV Episodes Directed": "TV EPISODE",
            "TV Segments Directed": "TV EPISODE",
        },
    )
) + (
    _rel("Previous Episode", "TV EPISODE", "TV EPISODE"),
    _rel("Next Episode", "TV EPISODE", "TV EPISODE"),
    _rel("Episode Performances", "TV EPISODE", "TV ACTOR"),
    _rel("Season", "TV EPISODE", "TV SEASON"),
    _rel("Series", "TV EPISODE", "TV PROGRAM"),
    _rel("Personal Appearances", "TV EPISODE", "PERSON"),
    _rel("Appearance Role", "TV EPISODE", "PERSONAL APPEARANCE ROLE"),
    _rel("Regular Acting Performances", "TV PROGRAM", "TV ACTOR"),
    _rel("Episodes", "TV SEASON", "TV EPISODE"),
    _rel("TV Episode Performances", "TV ACTOR", "TV EPISODE"),
    _rel("Network", "TV PROGRAM", "TV NETWORK"),
)

# ----------------------------------------------------------------------
# books — K=91, N=201.
# ----------------------------------------------------------------------
_BOOKS_TYPES = (
    "BOOK",
    "BOOK EDITION",
    "AUTHOR",
    "SHORT STORY",
    "POEM",
    "SHORT NON-FICTION",
    "BOOK CHARACTER",
    "LITERARY SERIES",
    "PUBLISHER",
    "BOOK GENRE",
    "METER",
    "VERSE FORM",
    "MODE OF WRITING",
    "PUBLICATION DATE",
    "BOOKS TOPIC",
)

_BOOKS_RELS = tuple(
    _gold_relationships(
        "books",
        {
            "Characters": "BOOK CHARACTER",
            "Genre": "BOOK GENRE",
            "Editions": "BOOK EDITION",
            "Publication Date": "PUBLICATION DATE",
            "Publisher": "PUBLISHER",
            "Credited To": "AUTHOR",
            "Meter": "METER",
            "Verse Form": "VERSE FORM",
            "Mode Of Writing": "MODE OF WRITING",
            "Series Written (Or Contributed To)": "LITERARY SERIES",
            "Works Edited": "BOOK",
            "Works Written": "BOOK",
        },
    )
) + (
    _rel("Books In This Series", "LITERARY SERIES", "BOOK"),
    _rel("Books Published", "PUBLISHER", "BOOK EDITION"),
    _rel("Appears In Books", "BOOK CHARACTER", "BOOK"),
    _rel("Books Of This Genre", "BOOK GENRE", "BOOK"),
)

# ----------------------------------------------------------------------
# people — K=45, N=78.
# ----------------------------------------------------------------------
_PEOPLE_TYPES = (
    "PERSON",
    "DECEASED PERSON",
    "PROFESSION",
    "ETHNICITY",
    "CAUSE OF DEATH",
    "PROFESSIONAL FIELD",
    "FAMILY",
    "PLACE OF BIRTH",
    "NOBLE TITLE",
    "COUNTRY",
    "DATE",
    "LOCATION",
    "PEOPLE TOPIC",
)

_PEOPLE_RELS = tuple(
    _gold_relationships(
        "people",
        {
            "Profession": "PROFESSION",
            "Country Of Nationality": "COUNTRY",
            "Date Of Birth": "DATE",
            "Cause Of Death": "CAUSE OF DEATH",
            "Place Of Death": "LOCATION",
            "Date Of Death": "DATE",
            "People Who Died This Way": "DECEASED PERSON",
            "Includes Causes Of Death": "CAUSE OF DEATH",
            "Parent Cause Of Death": "CAUSE OF DEATH",
            "Geographic Distribution": "LOCATION",
            "Includes Group(S)": "ETHNICITY",
            "Included In Group(S)": "ETHNICITY",
            "Specializations": "PROFESSION",
            "Specialization Of": "PROFESSION",
            "People With This Profession": "PERSON",
            "Professions In This Field": "PROFESSION",
        },
    )
) + (
    _rel("Members", "FAMILY", "PERSON"),
    _rel("People Born Here", "PLACE OF BIRTH", "PERSON"),
    _rel("Holders", "NOBLE TITLE", "PERSON"),
)

# ----------------------------------------------------------------------
# basketball — K=6, N=21 (efficiency experiments, Fig. 8 "B").
# ----------------------------------------------------------------------
_BASKETBALL_TYPES = (
    "BASKETBALL PLAYER",
    "BASKETBALL TEAM",
    "BASKETBALL COACH",
    "BASKETBALL POSITION",
    "BASKETBALL CONFERENCE",
    "BASKETBALL ROSTER POSITION",
)

_BASKETBALL_RELS = (
    _rel("Players", "BASKETBALL TEAM", "BASKETBALL PLAYER"),
    _rel("Position", "BASKETBALL PLAYER", "BASKETBALL POSITION"),
    _rel("Head Coach", "BASKETBALL TEAM", "BASKETBALL COACH"),
    _rel("Teams Coached", "BASKETBALL COACH", "BASKETBALL TEAM"),
    _rel("Conference", "BASKETBALL TEAM", "BASKETBALL CONFERENCE"),
    _rel("Roster", "BASKETBALL TEAM", "BASKETBALL ROSTER POSITION"),
    _rel("Roster Player", "BASKETBALL ROSTER POSITION", "BASKETBALL PLAYER"),
    _rel("Roster Position", "BASKETBALL ROSTER POSITION", "BASKETBALL POSITION"),
)

# ----------------------------------------------------------------------
# architecture — K=23, N=48 (efficiency experiments, Fig. 8 "A").
# ----------------------------------------------------------------------
_ARCHITECTURE_TYPES = (
    "BUILDING",
    "ARCHITECT",
    "ARCHITECTURAL STYLE",
    "BUILDING FUNCTION",
    "STRUCTURE",
    "ENGINEER",
    "BUILDING COMPLEX",
    "ARCHITECTURE FIRM",
    "LOCATION",
    "ARCHITECTURE TOPIC",
)

_ARCHITECTURE_RELS = (
    _rel("Structures Designed", "ARCHITECT", "STRUCTURE"),
    _rel("Architectural Style", "BUILDING", "ARCHITECTURAL STYLE"),
    _rel("Building Function", "BUILDING", "BUILDING FUNCTION"),
    _rel("Buildings", "BUILDING COMPLEX", "BUILDING"),
    _rel("Firm", "ARCHITECT", "ARCHITECTURE FIRM"),
    _rel("Projects", "ARCHITECTURE FIRM", "STRUCTURE"),
    _rel("Structures Engineered", "ENGINEER", "STRUCTURE"),
    _rel("Location", "STRUCTURE", "LOCATION"),
)


#: All seven domains, keyed by the names used throughout the paper.
FREEBASE_PROFILES: Dict[str, DomainProfile] = {
    "books": DomainProfile(
        name="books",
        entity_type_count=91,
        relationship_type_count=201,
        paper_entities=6_000_000,
        paper_relationships=15_000_000,
        named_types=_BOOKS_TYPES,
        named_relationships=_BOOKS_RELS,
    ),
    "film": DomainProfile(
        name="film",
        entity_type_count=63,
        relationship_type_count=136,
        paper_entities=2_000_000,
        paper_relationships=18_000_000,
        named_types=_FILM_TYPES,
        named_relationships=_FILM_RELS,
    ),
    "music": DomainProfile(
        name="music",
        entity_type_count=69,
        relationship_type_count=176,
        paper_entities=27_000_000,
        paper_relationships=187_000_000,
        named_types=_MUSIC_TYPES,
        named_relationships=_MUSIC_RELS,
    ),
    "tv": DomainProfile(
        name="tv",
        entity_type_count=59,
        relationship_type_count=177,
        paper_entities=2_000_000,
        paper_relationships=17_000_000,
        named_types=_TV_TYPES,
        named_relationships=_TV_RELS,
    ),
    "people": DomainProfile(
        name="people",
        entity_type_count=45,
        relationship_type_count=78,
        paper_entities=3_000_000,
        paper_relationships=17_000_000,
        named_types=_PEOPLE_TYPES,
        named_relationships=_PEOPLE_RELS,
    ),
    "basketball": DomainProfile(
        name="basketball",
        entity_type_count=6,
        relationship_type_count=21,
        paper_entities=19_000,
        paper_relationships=557_000,
        named_types=_BASKETBALL_TYPES,
        named_relationships=_BASKETBALL_RELS,
    ),
    "architecture": DomainProfile(
        name="architecture",
        entity_type_count=23,
        relationship_type_count=48,
        paper_entities=133_000,
        paper_relationships=432_000,
        named_types=_ARCHITECTURE_TYPES,
        named_relationships=_ARCHITECTURE_RELS,
    ),
}
