"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Errors raised by the graph substrate (``repro.graph``)."""


class NodeNotFoundError(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node not found: {node!r}")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""


class ModelError(ReproError):
    """Errors raised by the entity-graph data model (``repro.model``)."""


class UnknownEntityError(ModelError):
    """A referenced entity does not exist in the entity graph."""

    def __init__(self, entity: object) -> None:
        super().__init__(f"unknown entity: {entity!r}")
        self.entity = entity


class UnknownTypeError(ModelError):
    """A referenced entity type does not exist in the entity graph."""

    def __init__(self, type_name: object) -> None:
        super().__init__(f"unknown entity type: {type_name!r}")
        self.type_name = type_name


class UnknownRelationshipTypeError(ModelError):
    """A referenced relationship type does not exist in the schema graph."""

    def __init__(self, rel_type: object) -> None:
        super().__init__(f"unknown relationship type: {rel_type!r}")
        self.rel_type = rel_type


class SchemaViolationError(ModelError):
    """A relationship contradicts an established relationship-type signature.

    The paper (Sec. 2) requires the type of a relationship to determine the
    types of its two end entities; the builder enforces this.
    """


class StoreError(ReproError):
    """Errors raised by the triple store (``repro.store``)."""


class PersistenceError(StoreError):
    """A dataset file could not be read or written."""


class DiskStoreError(StoreError):
    """A binary store file is unreadable, corrupt or untrustworthy.

    Raised by :mod:`repro.store.disk` for every corruption shape —
    truncation, a bad magic/version, section bounds outside the file,
    dangling dictionary offsets, or a materialized graph whose
    fingerprint no longer matches the header — so a damaged store file
    always fails loudly instead of answering queries from bad data.
    """


class ScoringError(ReproError):
    """Errors raised by scoring measures (``repro.scoring``)."""


class UnknownScorerError(ScoringError):
    """A scorer name was not found in the scorer registry."""

    def __init__(self, name: str, available: tuple) -> None:
        super().__init__(
            f"unknown scorer {name!r}; available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = available


class KernelError(ScoringError):
    """Errors raised by the batched scoring kernel (``repro.kernel``).

    Raised when ``REPRO_KERNEL`` names an unknown backend, or when the
    requested backend's optional dependency (numpy) is unavailable.
    """


class PlanError(ReproError):
    """Errors raised by the execution planner (``repro.plan``).

    Raised when ``REPRO_PLAN`` names an unknown mode (the threshold
    knob keeps its historical :class:`KernelError` contract).
    """


class DiscoveryError(ReproError):
    """Errors raised by preview discovery (``repro.core``)."""


class InvalidConstraintError(DiscoveryError):
    """A size or distance constraint is malformed or unsatisfiable."""


class InfeasiblePreviewError(DiscoveryError):
    """No preview satisfies the given constraints.

    Raised, for example, when a diverse preview with ``k`` tables is
    requested but no ``k`` entity types are pairwise at distance ``>= d``.
    """


class ServeError(ReproError):
    """Errors raised by the preview-table service (``repro.serve``)."""


class ProtocolError(ServeError):
    """A wire frame violates the JSON-line protocol.

    Carries the machine-readable error ``code`` the service reports back
    to the client (see ``docs/serving.md`` for the full code table).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class ReplicationError(ServeError):
    """Errors raised by the replication tier (``repro.replicate``).

    Covers malformed delta/snapshot records on the wire, fingerprint
    mismatches after a snapshot bootstrap, and attempts to rewind a
    mutation log's generation counter.
    """


class ServeRequestError(ServeError):
    """A request was rejected by the service (client-side view).

    Raised by :class:`~repro.serve.ServeClient` convenience methods when
    the server answers with an error response; ``code`` holds the
    protocol error code (``"infeasible"``, ``"timeout"``, ...).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class WorkloadError(ReproError):
    """Errors raised by the workload subsystem (``repro.workload``).

    Covers malformed or version-incompatible trace files, misconfigured
    scenario generators, and replay accounting violations (a replay
    path whose ``cache_info()``/coalescer counters stop being sane).
    """


class ConfigError(ReproError):
    """Errors raised by the environment-knob registry (``repro.config``).

    Raised when code reads an undeclared ``REPRO_*`` variable or a
    declared knob carries a malformed value.
    """


class LintError(ReproError):
    """Errors raised by the static invariant checker (``repro.lint``).

    Covers unreadable inputs, malformed suppression files and invalid
    rule registrations — not lint *findings*, which are data
    (:class:`repro.lint.Finding`), never exceptions.
    """


class EvaluationError(ReproError):
    """Errors raised by the evaluation harness (``repro.eval``)."""


class DatasetError(ReproError):
    """Errors raised by dataset generators and loaders (``repro.datasets``)."""
