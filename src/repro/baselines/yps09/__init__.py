"""YPS09 baseline: relational database summarization (Yang et al., VLDB'09)."""

from .importance import (
    column_entropy,
    information_content,
    join_graph,
    ranked_tables,
    table_importance,
)
from .kcenter import assign_clusters, weighted_k_center
from .similarity import distance_matrix, table_distance
from .summarizer import YPS09Summarizer, YPS09Summary

__all__ = [
    "YPS09Summarizer",
    "YPS09Summary",
    "assign_clusters",
    "column_entropy",
    "distance_matrix",
    "information_content",
    "join_graph",
    "ranked_tables",
    "table_distance",
    "table_importance",
    "weighted_k_center",
]
