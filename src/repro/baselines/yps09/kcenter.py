"""Weighted k-center clustering (the final YPS09 step).

Yang et al. place the database's tables into ``k`` clusters with a
weighted k-center algorithm; the cluster centers are the summary.  We
implement the classical greedy 2-approximation adapted with importance
weights: the first center is the most important table, and each
subsequent center maximizes ``importance(t) × dist(t, nearest center)`` —
important tables far from every existing center define new clusters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ...exceptions import ReproError
from ...model.ids import TypeId


def weighted_k_center(
    items: Sequence[TypeId],
    weights: Dict[TypeId, float],
    distances: Dict[TypeId, Dict[TypeId, float]],
    k: int,
) -> List[TypeId]:
    """Pick ``k`` cluster centers greedily; deterministic tie-breaking."""
    if k < 1:
        raise ReproError(f"k must be at least 1, got {k}")
    pool = list(items)
    if k > len(pool):
        raise ReproError(f"k={k} exceeds the {len(pool)} items")
    first = max(pool, key=lambda t: (weights.get(t, 0.0), str(t)))
    centers = [first]
    while len(centers) < k:
        best = None
        best_score: Tuple[float, str] = (-1.0, "")
        for item in pool:
            if item in centers:
                continue
            nearest = min(distances[item][center] for center in centers)
            score = weights.get(item, 0.0) * nearest
            key = (score, str(item))
            if key > best_score:
                best_score = key
                best = item
        if best is None:  # all remaining items are centers already
            break
        centers.append(best)
    return centers


def assign_clusters(
    items: Sequence[TypeId],
    centers: Sequence[TypeId],
    distances: Dict[TypeId, Dict[TypeId, float]],
) -> Dict[TypeId, TypeId]:
    """Map every item to its nearest center (ties to the earlier center)."""
    assignment = {}
    for item in items:
        assignment[item] = min(
            centers, key=lambda center: (distances[item][center], str(center))
        )
    return assignment
