"""YPS09 table importance (adaptation of Yang/Procopiuc/Srivastava VLDB'09).

Yang et al. rank relational tables by a stationary distribution of a
random walk over the database's join graph, where

* each table's *information content* couples its cardinality with the
  entropy of its attributes, and
* probability flows between joinable tables proportionally to the entropy
  carried by the join attributes, with the remainder staying at the table.

Our adaptation (documented in DESIGN.md) on the relationalized entity
graph:

* attribute entropy ``H(a)`` is the natural-log entropy of the column's
  value histogram (empty values excluded);
* information content ``IC(R) = log(1 + |R|) · (1 + Σ_a H(a))``;
* join edges connect the two tables sharing a relationship type, weighted
  by that column's entropy on each side;
* the walk's self-transition weight is ``IC(R)``, outgoing weights are
  the join-edge weights; rows are normalized and the stationary
  distribution is the table importance.

The paper validated its reimplementation on TPC-E; we validate ours on a
hand-built miniature with known structure (see tests) and reproduce the
*comparative* behaviour the paper reports: YPS09's ranking correlates
with gold standards and crowds consistently worse than the coverage /
random-walk measures (Figs. 5-7, Table 4).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ...graph.simple import UndirectedGraph
from ...graph.stationary import stationary_distribution
from ...model.ids import TypeId
from ..relationalize import ColumnStats, RelationalTable


def column_entropy(column: ColumnStats) -> float:
    """Natural-log entropy of the column's value histogram."""
    total = column.non_empty
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in column.histogram.values():
        p = count / total
        entropy -= p * math.log(p)
    return entropy


def information_content(table: RelationalTable) -> float:
    """``IC(R) = log(1 + |R|) · (1 + Σ_a H(a))``."""
    attr_entropy = sum(column_entropy(column) for column in table.columns)
    return math.log1p(table.row_count) * (1.0 + attr_entropy)


def join_graph(tables: Dict[TypeId, RelationalTable]) -> UndirectedGraph:
    """Join graph: tables connected through shared relationship types.

    The edge weight accumulates the entropy of the joining column on both
    sides (a high-entropy join transfers more information, hence more
    random-walk probability — the YPS09 intuition).
    """
    graph = UndirectedGraph()
    entropies: Dict[Tuple[TypeId, object], float] = {}
    for entity_type, table in tables.items():
        graph.add_node(entity_type)
        for column in table.columns:
            entropies[(entity_type, column.attribute.rel_type)] = column_entropy(
                column
            )
    seen = set()
    for entity_type, table in tables.items():
        for column in table.columns:
            rel = column.attribute.rel_type
            if rel in seen:
                continue
            seen.add(rel)
            other = column.attribute.target_type()
            if other not in tables:
                continue
            weight = entropies.get((entity_type, rel), 0.0) + entropies.get(
                (other, rel), 0.0
            )
            graph.add_edge(entity_type, other, weight + 1e-9)
    return graph


def table_importance(
    tables: Dict[TypeId, RelationalTable],
    jump_probability: float = 1e-2,
) -> Dict[TypeId, float]:
    """Stationary importance of every table.

    Builds the join graph augmented with per-table self-loops weighted by
    information content, then runs the shared power-iteration solver.

    The jump probability is larger than the schema walk's ``1e-5``: the
    self-loop weights (information content) dominate near-zero-entropy
    join edges, and without a non-trivial jump the chain mixes too slowly
    to converge in reasonable time.  YPS09's own formulation includes an
    equivalent damping term.
    """
    graph = join_graph(tables)
    for entity_type, table in tables.items():
        graph.add_edge(entity_type, entity_type, information_content(table))
    return stationary_distribution(
        graph, jump_probability=jump_probability, self_loops=True
    )


def ranked_tables(tables: Dict[TypeId, RelationalTable]) -> List[Tuple[TypeId, float]]:
    """Tables by descending importance (the list Figs. 5-7 evaluate)."""
    importance = table_importance(tables)
    return sorted(importance.items(), key=lambda item: (-item[1], str(item[0])))
