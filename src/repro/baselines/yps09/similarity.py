"""YPS09 table similarity / distance.

Yang et al. cluster tables with a distance derived from join
relationships: directly joinable tables are similar, tables joined only
through long paths are dissimilar.  The adaptation uses the hop distance
in the join graph — a proper metric, which the weighted k-center
clustering step requires.  Unreachable pairs receive a large finite
distance (one beyond the largest finite distance) so the clustering
remains well-defined on disconnected join graphs.
"""

from __future__ import annotations

from typing import Dict

from ...graph.distance import DistanceOracle
from ...model.ids import TypeId
from ..relationalize import RelationalTable
from .importance import join_graph


def distance_matrix(
    tables: Dict[TypeId, RelationalTable]
) -> Dict[TypeId, Dict[TypeId, float]]:
    """All-pairs table distances (hop distance in the join graph)."""
    graph = join_graph(tables)
    oracle = DistanceOracle(graph)
    names = list(tables)
    finite_max = 0.0
    raw: Dict[TypeId, Dict[TypeId, float]] = {}
    for a in names:
        row = {}
        for b in names:
            d = oracle.distance(a, b)
            if d != float("inf"):
                finite_max = max(finite_max, d)
            row[b] = d
        raw[a] = row
    ceiling = finite_max + 1.0
    for a in names:
        for b in names:
            if raw[a][b] == float("inf"):
                raw[a][b] = ceiling
    return raw


def table_distance(
    matrix: Dict[TypeId, Dict[TypeId, float]], a: TypeId, b: TypeId
) -> float:
    """Distance between tables ``a`` and ``b`` under ``matrix``."""
    return matrix[a][b]
