"""End-to-end YPS09 summarizer over entity graphs.

Pipeline (Sec. 6.1.1 of the preview-tables paper):

1. relationalize the entity graph (one table per entity type, one column
   per incident relationship type);
2. compute table importance (entropy-weighted random walk);
3. compute table distances;
4. weighted k-center clustering; the ``k`` centers are the summary.

Note what YPS09 deliberately does *not* do: it never selects a subset of
columns — each summary table carries **all** relationship types incident
on its entity type.  That is exactly the width problem the paper's user
study observes ("the tables are wide... less convenient in existence
tests"), and our user-study simulation models it the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...model.attributes import NonKeyAttribute
from ...model.entity_graph import EntityGraph
from ...model.ids import TypeId
from ...model.schema_graph import SchemaGraph
from ..relationalize import RelationalTable, relationalize
from .importance import ranked_tables, table_importance
from .kcenter import assign_clusters, weighted_k_center
from .similarity import distance_matrix


@dataclass(frozen=True)
class YPS09Summary:
    """The summarizer's output: centers, clusters, importances."""

    centers: Tuple[TypeId, ...]
    assignment: Dict[TypeId, TypeId]
    importance: Dict[TypeId, float]
    #: Every summary table keeps all incident attributes (full width).
    attributes: Dict[TypeId, Tuple[NonKeyAttribute, ...]]

    def ranked_types(self) -> List[TypeId]:
        """All entity types by descending importance (Figs. 5-7 input)."""
        return [
            type_name
            for type_name, _score in sorted(
                self.importance.items(), key=lambda item: (-item[1], str(item[0]))
            )
        ]


class YPS09Summarizer:
    """Adapter exposing the YPS09 pipeline over an entity graph."""

    def __init__(self, entity_graph: EntityGraph, schema: SchemaGraph) -> None:
        self.entity_graph = entity_graph
        self.schema = schema
        self._tables: Dict[TypeId, RelationalTable] = relationalize(
            entity_graph, schema
        )
        self._importance = table_importance(self._tables)
        self._distances = distance_matrix(self._tables)

    @property
    def tables(self) -> Dict[TypeId, RelationalTable]:
        """Mapping of type id to its relational table."""
        return self._tables

    def importance(self) -> Dict[TypeId, float]:
        """Copy of the per-table importance scores."""
        return dict(self._importance)

    def ranked_types(self) -> List[TypeId]:
        """Entity types ranked by table importance."""
        return [name for name, _ in ranked_tables(self._tables)]

    def summarize(self, k: int) -> YPS09Summary:
        """Cluster into ``k`` groups; the centers form the summary."""
        items = list(self._tables)
        centers = weighted_k_center(items, self._importance, self._distances, k)
        assignment = assign_clusters(items, centers, self._distances)
        attributes = {
            center: tuple(self.schema.candidate_attributes(center))
            for center in centers
        }
        return YPS09Summary(
            centers=tuple(centers),
            assignment=assignment,
            importance=dict(self._importance),
            attributes=attributes,
        )
