"""Baseline approaches: YPS09, schema-graph display, curated previews."""

from .gold_tables import expert_preview, gold_preview
from .relationalize import ColumnStats, RelationalTable, relationalize
from .schema_graph_baseline import SchemaGraphPresentation, present_schema_graph
from .yps09 import YPS09Summarizer, YPS09Summary

__all__ = [
    "ColumnStats",
    "RelationalTable",
    "SchemaGraphPresentation",
    "YPS09Summarizer",
    "YPS09Summary",
    "expert_preview",
    "gold_preview",
    "present_schema_graph",
    "relationalize",
]
