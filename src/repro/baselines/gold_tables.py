"""The "Freebase" and "Experts" user-study approaches as preview objects.

Both approaches present hand-curated preview tables (the gold standard of
Table 10 and the expert panel's consolidated previews).  This module
resolves those curated schemata against a generated domain's schema graph
into the same :class:`~repro.core.preview.Preview` shape the automatic
approaches produce, so the user-study simulation treats all seven
approaches uniformly.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.preview import Preview, PreviewTable
from ..datasets.gold_standard import (
    EXPERT_KEY_ATTRIBUTES,
    GOLD_STANDARD,
)
from ..model.attributes import NonKeyAttribute
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph


def _resolve_attribute(
    schema: SchemaGraph, key_type: TypeId, attr_name: str
) -> Optional[NonKeyAttribute]:
    """Find the candidate attribute of ``key_type`` with ``attr_name``."""
    for candidate in schema.candidate_attributes(key_type):
        if candidate.name == attr_name:
            return candidate
    return None


def gold_preview(domain: str, schema: SchemaGraph) -> Preview:
    """The Table 10 gold standard resolved against ``schema``.

    Gold attributes missing from the schema are skipped; a key type whose
    attributes all resolve to nothing falls back to its top candidate so
    the preview stays well-formed.
    """
    tables: List[PreviewTable] = []
    for key_type, attr_names in GOLD_STANDARD[domain].items():
        if not schema.has_entity_type(key_type):
            continue
        attrs = []
        for attr_name in attr_names:
            resolved = _resolve_attribute(schema, key_type, attr_name)
            if resolved is not None:
                attrs.append(resolved)
        if not attrs:
            candidates = schema.candidate_attributes(key_type)
            if not candidates:
                continue
            attrs = [candidates[0]]
        tables.append(PreviewTable(key=key_type, nonkey=tuple(attrs)))
    return Preview(tables=tuple(tables))


def expert_preview(
    domain: str, schema: SchemaGraph, attributes_per_table: int = 3
) -> Preview:
    """The expert panel's consolidated preview resolved against ``schema``.

    Experts chose their own key attributes (Tables 22/23 overlap with the
    gold standard) and, for each, a handful of prominent attributes — we
    model the latter as the type's top candidates by schema weight, which
    matches how the experts worked (they browsed Freebase and picked the
    relationships they saw most).
    """
    tables: List[PreviewTable] = []
    for key_type in EXPERT_KEY_ATTRIBUTES[domain]:
        if not schema.has_entity_type(key_type):
            continue
        candidates = sorted(
            schema.candidate_attributes(key_type),
            key=lambda attr: (-schema.relationship_count(attr.rel_type), str(attr)),
        )
        if not candidates:
            continue
        tables.append(
            PreviewTable(
                key=key_type, nonkey=tuple(candidates[:attributes_per_table])
            )
        )
    return Preview(tables=tuple(tables))
