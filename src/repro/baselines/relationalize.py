"""Relationalize an entity graph (the paper's Sec. 6.1.1 recipe).

To compare against YPS09 — which summarizes *relational* databases — the
paper converts each entity graph into a relational schema: one table per
entity type, whose first column holds the entities of that type and which
has one additional column per relationship type incident on the type; the
conceptual rows are the Cartesian product of an entity's values across
columns.

Materializing that Cartesian product is deliberately avoided here (it is
exponential in the worst case and YPS09's statistics do not need it): the
adaptation computes, per column, the value histogram over *entities*,
from which attribute entropies and distinct counts follow.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import TypeId
from ..model.schema_graph import SchemaGraph


@dataclass
class ColumnStats:
    """Statistics of one relational column (a non-key attribute view)."""

    attribute: NonKeyAttribute
    #: Histogram over value-sets (frozensets of entity ids).
    histogram: Counter = field(default_factory=Counter)
    #: Number of rows (entities) with a non-empty value.
    non_empty: int = 0

    @property
    def distinct_values(self) -> int:
        """Number of distinct values recorded for this column."""
        return len(self.histogram)


@dataclass
class RelationalTable:
    """One relational table: an entity type plus its column statistics."""

    entity_type: TypeId
    row_count: int
    columns: List[ColumnStats] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Columns including the leading key column."""
        return 1 + len(self.columns)


def relationalize(
    entity_graph: EntityGraph, schema: SchemaGraph
) -> Dict[TypeId, RelationalTable]:
    """Build the relational view: one table per entity type."""
    tables: Dict[TypeId, RelationalTable] = {}
    for entity_type in schema.entity_types():
        entities = entity_graph.entities_of_type(entity_type)
        table = RelationalTable(entity_type=entity_type, row_count=len(entities))
        for attribute in schema.candidate_attributes(entity_type):
            stats = ColumnStats(attribute=attribute)
            for entity in entities:
                value = entity_graph.attribute_value(entity, attribute)
                if value:
                    stats.histogram[value] += 1
                    stats.non_empty += 1
            table.columns.append(stats)
        tables[entity_type] = table
    return tables
