"""The "Graph" baseline: present the schema graph itself.

One of the seven user-study approaches (Sec. 6.3) simply shows the full
schema graph.  It is complete (every existence question is answerable
from it) but large — the paper's participants were slow with it and its
complexity inflated their perceived understanding (Table 9 discussion).

This module renders a deterministic adjacency-list presentation and
reports the size metrics the user-study simulation uses to model reading
effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.ids import RelationshipTypeId, TypeId
from ..model.schema_graph import SchemaGraph


@dataclass(frozen=True)
class SchemaGraphPresentation:
    """The rendered schema graph plus its display-size metrics."""

    entity_types: Tuple[TypeId, ...]
    relationship_types: Tuple[RelationshipTypeId, ...]
    text: str

    @property
    def display_items(self) -> int:
        """Total items a reader must scan (vertices + edges)."""
        return len(self.entity_types) + len(self.relationship_types)


def present_schema_graph(schema: SchemaGraph) -> SchemaGraphPresentation:
    """Render the schema graph as a sorted adjacency list."""
    types = tuple(sorted(schema.entity_types()))
    rels = tuple(
        sorted(schema.relationship_types(), key=lambda r: (r.source_type, r.name))
    )
    lines: List[str] = []
    by_source: Dict[TypeId, List[RelationshipTypeId]] = {}
    for rel in rels:
        by_source.setdefault(rel.source_type, []).append(rel)
    for type_name in types:
        count = schema.entity_count(type_name)
        lines.append(f"{type_name} ({count} entities)")
        for rel in by_source.get(type_name, []):
            weight = schema.relationship_count(rel)
            lines.append(f"  --{rel.name} [{weight}]--> {rel.target_type}")
    return SchemaGraphPresentation(
        entity_types=types, relationship_types=rels, text="\n".join(lines)
    )
