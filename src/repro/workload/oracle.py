"""The differential conformance oracle.

:func:`run_conformance` replays one trace through several execution
paths (:data:`~repro.workload.replay.REPLAY_PATHS` by default) and
compares the canonical payload digests op by op.  The paths differ in
everything the engine stack is allowed to vary — caching, delta
patching, process sharding, socket serving — and in nothing the paper's
algorithms define, so any divergence is a bug: the report pinpoints the
first diverging op and which paths disagree.

The oracle also:

* verifies every path against the digests *recorded in the trace*
  (when present), so a committed golden trace pins behavior across
  time, not just across paths in one run;
* carries each path's closing accounting stats (engine ``cache_info``,
  rescan verification, service counters) and wall-clock throughput —
  the numbers ``benchmarks/bench_workload.py`` publishes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..exceptions import WorkloadError
from .replay import REPLAY_PATHS, replay_trace
from .trace import WorkloadTrace


def run_conformance(
    trace: WorkloadTrace,
    paths: Sequence[str] = REPLAY_PATHS,
    jobs: int = 2,
    keep_payloads: bool = False,
    store: Optional[str] = None,
) -> Dict[str, Any]:
    """Replay ``trace`` through ``paths`` and diff every payload.

    Parameters
    ----------
    trace:
        The workload to replay.
    paths:
        Execution paths to compare (at least one); order is preserved
        in the report, and the first path is the comparison baseline.
    jobs:
        Worker processes for the ``sharded`` path.
    keep_payloads:
        Retain full payloads per path (for debugging a divergence).
    store:
        Optional ``.rgs`` binary store every path opens its starting
        graph from (fingerprint-checked) instead of regenerating the
        trace's domain.

    Returns
    -------
    dict
        The conformance report::

            {
              "trace": {...header...},
              "paths": {path: {"seconds", "ops_per_sec", ...}},
              "identical": bool,           # all paths agree at every op
              "first_divergence": {...} | None,
              "recorded_digests": {        # vs. digests in the trace
                "present": bool,
                "mismatches": {path: [[index, expected, actual], ...]},
                "ok": bool,
              },
            }

    Raises
    ------
    WorkloadError
        For an empty path list, an unknown path, or a replay-side
        accounting violation (the replayers raise mid-flight).
    """
    paths = list(paths)
    if not paths:
        raise WorkloadError("conformance needs at least one replay path")
    results = {}
    payloads = {}
    for path in paths:
        result = replay_trace(
            trace,
            path=path,
            jobs=jobs,
            verify_digests=True,
            keep_payloads=keep_payloads,
            store=store,
        )
        results[path] = result
        if keep_payloads:
            payloads[path] = result.payloads

    baseline = paths[0]
    first_divergence: Optional[Dict[str, Any]] = None
    for index, op in enumerate(trace.ops):
        if op.op == "stats":
            continue
        reference = results[baseline].digests[index]
        if all(results[path].digests[index] == reference for path in paths):
            continue
        first_divergence = {
            "index": index,
            "op": op.op,
            "params": op.params,
            "digests": {path: results[path].digests[index] for path in paths},
        }
        break

    recorded_mismatches = {
        path: [list(entry) for entry in results[path].digest_mismatches]
        for path in paths
        if results[path].digest_mismatches
    }
    report: Dict[str, Any] = {
        "trace": trace.header(),
        "paths": {
            path: {
                "seconds": round(results[path].seconds, 4),
                "ops_per_sec": round(results[path].ops_per_second, 2),
                "ops": results[path].ops,
                "reads": results[path].reads,
                "mutations": results[path].mutations,
                "stats": results[path].stats,
            }
            for path in paths
        },
        "baseline": baseline,
        "identical": first_divergence is None,
        "first_divergence": first_divergence,
        "recorded_digests": {
            "present": trace.has_digests(),
            "mismatches": recorded_mismatches,
            "ok": not recorded_mismatches,
        },
    }
    if keep_payloads:
        report["payloads"] = payloads
    return report


def format_report(report: Dict[str, Any]) -> str:
    """A compact human-readable rendering of a conformance report."""
    dataset = report["trace"]["dataset"]
    lines = [
        f"workload conformance on {dataset['domain']} "
        f"(scale={dataset['scale']}, seed={dataset['seed']}, "
        f"ops={report['trace']['ops']})"
    ]
    for path, stats in report["paths"].items():
        lines.append(
            f"  {path:<12} {stats['ops_per_sec']:>9.2f} ops/s  "
            f"({stats['seconds']:.3f}s, {stats['reads']} reads, "
            f"{stats['mutations']} mutations)"
        )
    if report["identical"]:
        lines.append("  payloads: bit-identical across all paths")
    else:
        divergence = report["first_divergence"]
        lines.append(
            f"  DIVERGENCE at op #{divergence['index']} "
            f"({divergence['op']} {divergence['params']}):"
        )
        for path, digest in divergence["digests"].items():
            lines.append(f"    {path:<12} {digest}")
    recorded = report["recorded_digests"]
    if recorded["present"]:
        if recorded["ok"]:
            lines.append("  recorded digests: reproduced byte-for-byte")
        else:
            for path, mismatches in recorded["mismatches"].items():
                lines.append(
                    f"  recorded digests: {path} missed "
                    f"{len(mismatches)} (first at op #{mismatches[0][0]})"
                )
    return "\n".join(lines)
