"""Seeded scenario generation for workload traces.

:func:`generate_trace` turns a named :class:`ScenarioSpec` (or a custom
one) into a deterministic :class:`~repro.workload.trace.WorkloadTrace`
over one built-in domain.  The generator reproduces the traffic shapes
the serving stack was built for:

* **Zipf-skewed hot queries** — reads draw from a small pool of
  distinct queries with Zipfian popularity, so a handful of queries
  dominate (the regime where response caching and coalescing matter);
* **mutation bursts** — writes arrive in runs of ``burst_length``, the
  way imports and backfills do, stressing invalidation batching;
* **structural-change spikes** — occasional mutations introduce a
  brand-new entity type, forcing the full-invalidation path instead of
  type-scoped patching;
* **multi-client interleavings** — ops carry a logical client id; the
  serve replayer maps each id to its own connection while the trace
  order stays the total order.

Everything is derived from one :class:`random.Random` seeded by the
caller: the same ``(domain, scale, seed, spec, ops)`` always produces
the identical trace, byte for byte.  Relationship mutations only ever
reference entities that provably exist at that point in the replay —
base-graph entities (sorted, so hash randomization cannot perturb the
choice) or entities the trace itself created earlier.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasets.freebase_like import DOMAINS, generate_domain
from ..datasets.loader import graph_fingerprint
from ..datasets.profiles import DEFAULT_SCALE
from ..engine import PreviewQuery
from ..exceptions import WorkloadError
from .trace import TraceOp, WorkloadTrace

#: Algorithms whose shape constraints the query-pool builder knows.
#: ``None`` d is the concise shape; a distance constraint is tight or
#: diverse.  (Mirrors the registry's declared shapes; kept literal so
#: generating a trace never imports algorithm modules.)
_CONCISE_CAPABLE = ("auto", "dynamic-programming", "brute-force", "branch-and-bound")
_DISTANCE_CAPABLE = ("auto", "apriori", "brute-force", "branch-and-bound")


@dataclass(frozen=True)
class ScenarioSpec:
    """The knobs of one workload scenario.

    Rates are fractions of the op stream (mutations are *burst starts*:
    a stream with ``mutate_rate=0.3`` and ``burst_length=4`` is still
    ~30% writes, arriving four at a time).
    """

    name: str
    #: Fraction of ops that are mutations.
    mutate_rate: float = 0.25
    #: Mutations arrive in runs of this length.
    burst_length: int = 1
    #: Fraction of mutations that introduce a brand-new entity type
    #: (a *structural* mutation: downstream caches fully invalidate).
    structural_rate: float = 0.0
    #: Fraction of non-structural mutations that add a relationship
    #: instance rather than an entity.
    relationship_rate: float = 0.5
    #: Fraction of read ops that are sweeps rather than single previews.
    sweep_rate: float = 0.1
    #: Fraction of ops that are ``stats`` accounting probes.
    stats_rate: float = 0.05
    #: Zipf exponent of the hot-query popularity ranking.
    zipf_exponent: float = 1.1
    #: Logical clients ops are attributed to.
    clients: int = 1
    #: Distinct queries in the hot pool.
    query_pool: int = 8
    #: Algorithms reads may name (filtered per query by shape).
    algorithms: Tuple[str, ...] = ("auto",)

    def validated(self) -> "ScenarioSpec":
        """This spec, or :class:`WorkloadError` on out-of-range knobs."""
        for name in ("mutate_rate", "structural_rate", "relationship_rate",
                     "sweep_rate", "stats_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"scenario {name} must be in [0, 1], got {value}")
        if self.mutate_rate + self.stats_rate > 1.0:
            raise WorkloadError("mutate_rate + stats_rate must not exceed 1")
        for name in ("burst_length", "clients", "query_pool"):
            if getattr(self, name) < 1:
                raise WorkloadError(f"scenario {name} must be at least 1")
        if self.zipf_exponent <= 0:
            raise WorkloadError("zipf_exponent must be positive")
        if not self.algorithms:
            raise WorkloadError("scenario needs at least one algorithm")
        return self


#: Built-in scenario presets, by name.
SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(name="steady"),
        ScenarioSpec(name="read-heavy", mutate_rate=0.06, sweep_rate=0.2,
                     zipf_exponent=1.4),
        ScenarioSpec(name="write-burst", mutate_rate=0.45, burst_length=5,
                     relationship_rate=0.6),
        ScenarioSpec(name="structural-spike", mutate_rate=0.3,
                     structural_rate=0.25),
        ScenarioSpec(name="multi-client", clients=4, mutate_rate=0.2,
                     stats_rate=0.08),
    )
}


def _zipf_pick(rng: random.Random, weights: Sequence[float]) -> int:
    """One index drawn from the normalized ``weights``."""
    total = sum(weights)
    roll = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(weights):
        acc += weight
        if roll < acc:
            return index
    return len(weights) - 1


def _build_query_pool(
    rng: random.Random, spec: ScenarioSpec, type_count: int
) -> List[PreviewQuery]:
    """The hot-query pool: distinct, shape-valid queries for this domain.

    Distinctness keeps the Zipf popularity ranks honest, but the
    shape-valid query space can be smaller than the requested pool
    (e.g. a concise-only algorithm list admits only k×n combinations),
    so the rejection sampling is bounded: after enough consecutive
    duplicate draws the pool is returned as-is, smaller than asked.
    """
    pool: List[PreviewQuery] = []
    seen = set()
    k_max = max(2, min(3, type_count))
    rejections = 0
    while len(pool) < spec.query_pool and rejections < 50 * spec.query_pool:
        k = rng.randint(2, k_max)
        n = k + rng.randint(0, 5)
        algorithm = spec.algorithms[rng.randrange(len(spec.algorithms))]
        if algorithm in _CONCISE_CAPABLE and (
            algorithm not in _DISTANCE_CAPABLE or rng.random() < 0.45
        ):
            query = PreviewQuery(k=k, n=n, algorithm=algorithm)
        else:
            d = rng.randint(1, 3)
            mode = "tight" if rng.random() < 0.8 else "diverse"
            query = PreviewQuery(k=k, n=n, d=d, mode=mode, algorithm=algorithm)
        if query in seen:
            rejections += 1
            continue
        seen.add(query)
        pool.append(query)
    return pool


class _MutationPlanner:
    """Plans applicable mutations against the evolving graph state.

    Tracks, per entity type, which entities exist *at this point of the
    trace* (base-graph members, sorted for determinism, plus entities
    the trace created), so relationship mutations always name valid
    endpoints on every replay path.
    """

    def __init__(self, rng: random.Random, graph, domain: str) -> None:
        self._rng = rng
        self._domain = domain
        #: Hot types mutations concentrate on (sorted sample).
        types = sorted(graph.entity_types())
        self._hot_types = types[: min(len(types), 6)]
        self._members: Dict[str, List[str]] = {
            t: sorted(graph.entities_of_type(t)) for t in self._hot_types
        }
        #: Relationship types whose endpoints lie in the hot types.
        hot = set(self._hot_types)
        self._rel_types = [
            rel
            for rel in sorted(
                graph.relationship_types(),
                key=lambda r: (r.name, r.source_type, r.target_type),
            )
            if rel.source_type in hot and rel.target_type in hot
        ]
        self._entity_counter = 0
        self._spike_counter = 0

    def _pick_member(self, type_name: str) -> str:
        members = self._members[type_name]
        return members[self._rng.randrange(len(members))]

    def entity_params(self) -> Dict[str, object]:
        """A non-structural entity insert into one hot type."""
        self._entity_counter += 1
        type_name = self._hot_types[self._rng.randrange(len(self._hot_types))]
        entity = f"wl-entity-{self._entity_counter:04d}"
        self._members[type_name].append(entity)
        return {"kind": "entity", "entity": entity, "types": [type_name]}

    def structural_params(self) -> Dict[str, object]:
        """An entity insert that introduces a brand-new entity type."""
        self._spike_counter += 1
        self._entity_counter += 1
        type_name = f"{self._domain.upper()} WL SPIKE {self._spike_counter:02d}"
        entity = f"wl-spike-{self._entity_counter:04d}"
        # Deliberately not added to the hot pool: spike types stay
        # out-of-band, so every spike is a fresh structural event.
        return {"kind": "entity", "entity": entity, "types": [type_name]}

    def relationship_params(self) -> Optional[Dict[str, object]]:
        """A relationship insert of an existing type, or None if none fit."""
        if not self._rel_types:
            return None
        rel = self._rel_types[self._rng.randrange(len(self._rel_types))]
        return {
            "kind": "relationship",
            "source": self._pick_member(rel.source_type),
            "target": self._pick_member(rel.target_type),
            "name": rel.name,
            "source_type": rel.source_type,
            "target_type": rel.target_type,
        }

    def next_params(self, spec: ScenarioSpec) -> Dict[str, object]:
        """The params of the next mutation, per the scenario's mix."""
        if self._rng.random() < spec.structural_rate:
            return self.structural_params()
        if self._rng.random() < spec.relationship_rate:
            params = self.relationship_params()
            if params is not None:
                return params
        return self.entity_params()


def generate_trace(
    domain: str = "film",
    scale: int = DEFAULT_SCALE,
    seed: int = 0,
    ops: int = 100,
    scenario: "str | ScenarioSpec" = "steady",
    key_scorer: str = "coverage",
    nonkey_scorer: str = "coverage",
) -> WorkloadTrace:
    """Generate one deterministic workload trace.

    Parameters
    ----------
    domain, scale, seed:
        The starting graph (:func:`~repro.datasets.generate_domain`
        parameters, recorded in the trace header).
    ops:
        Operations to emit (a burst may run slightly past a burst
        boundary; the stream is truncated to exactly ``ops``).
    scenario:
        A preset name from :data:`SCENARIOS` or a custom
        :class:`ScenarioSpec`.
    key_scorer, nonkey_scorer:
        Scoring measures recorded in the header and used by every
        replay path.

    Returns
    -------
    WorkloadTrace
        Without digests; record through
        :func:`repro.workload.replay.record_digests` to embed them.

    Raises
    ------
    WorkloadError
        For an unknown domain/scenario or out-of-range scenario knobs.
    """
    if domain not in DOMAINS:
        raise WorkloadError(
            f"unknown domain {domain!r}; available: {', '.join(DOMAINS)}"
        )
    if isinstance(scenario, str):
        try:
            spec = SCENARIOS[scenario]
        except KeyError:
            raise WorkloadError(
                f"unknown scenario {scenario!r}; available: "
                f"{', '.join(sorted(SCENARIOS))}"
            ) from None
    else:
        spec = scenario
    spec = spec.validated()
    if ops < 1:
        raise WorkloadError(f"a trace needs at least 1 op, got {ops}")

    rng = random.Random((seed * 1_000_003) ^ hash_text(f"{domain}/{spec.name}"))
    graph = generate_domain(domain, scale=scale, seed=seed)
    pool = _build_query_pool(rng, spec, type_count=len(graph.entity_types()))
    weights = [1.0 / (rank + 1) ** spec.zipf_exponent for rank in range(len(pool))]
    planner = _MutationPlanner(rng, graph, domain)

    trace_ops: List[TraceOp] = []
    # Multi-client presets pin each client's reads to its own replica
    # (affinity = client id) in replicated deployments: cross-client
    # read-after-write ordering is only exercised when two clients can
    # land on *different* replicas, one of which may not have applied a
    # write yet.  Single-client presets stay unpinned.
    affinity_of = (
        (lambda c: c) if spec.clients > 1 else (lambda c: None)
    )
    while len(trace_ops) < ops:
        client = rng.randrange(spec.clients)
        roll = rng.random()
        if roll < spec.stats_rate:
            trace_ops.append(TraceOp(op="stats", client=client))
        elif roll < spec.stats_rate + spec.mutate_rate / spec.burst_length:
            for _ in range(spec.burst_length):
                trace_ops.append(
                    TraceOp(op="mutate", params=planner.next_params(spec),
                            client=client)
                )
        elif rng.random() < spec.sweep_rate:
            base = pool[_zipf_pick(rng, weights)]
            start = base.k + rng.randint(0, 2)
            ns = list(range(start, start + rng.randint(2, 4)))
            params = dict(base.to_params())
            params.pop("n")
            params["ns"] = ns
            trace_ops.append(
                TraceOp(op="sweep", params=params, client=client,
                        affinity=affinity_of(client))
            )
        else:
            query = pool[_zipf_pick(rng, weights)]
            trace_ops.append(
                TraceOp(op="preview", params=query.to_params(), client=client,
                        affinity=affinity_of(client))
            )
    trace_ops = trace_ops[:ops]

    return WorkloadTrace(
        domain=domain,
        scale=scale,
        seed=seed,
        ops=tuple(trace_ops),
        key_scorer=key_scorer,
        nonkey_scorer=nonkey_scorer,
        fingerprint=graph_fingerprint(graph),
        scenario={
            "name": spec.name,
            "mutate_rate": spec.mutate_rate,
            "burst_length": spec.burst_length,
            "structural_rate": spec.structural_rate,
            "sweep_rate": spec.sweep_rate,
            "stats_rate": spec.stats_rate,
            "zipf_exponent": spec.zipf_exponent,
            "clients": spec.clients,
            "query_pool": spec.query_pool,
            "algorithms": list(spec.algorithms),
        },
    )


def hash_text(text: str) -> int:
    """A stable (hash-randomization-independent) 31-bit hash of ``text``."""
    digest = 0
    for ch in text:
        digest = (digest * 131 + ord(ch)) % (2**31)
    return digest


def scenario(name: str, **overrides) -> ScenarioSpec:
    """A preset :class:`ScenarioSpec` with ``overrides`` applied.

    >>> scenario("steady", clients=2).clients
    2

    Raises
    ------
    WorkloadError
        For an unknown preset name or unknown override fields.
    """
    try:
        base = SCENARIOS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        ) from None
    try:
        return replace(base, **overrides).validated()
    except TypeError as exc:
        raise WorkloadError(f"unknown scenario override: {exc}") from exc
